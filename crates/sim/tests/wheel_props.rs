//! Property tests pinning the calendar-wheel event queue to its
//! reference semantics: a `BinaryHeap` keyed by `(cycle, insertion
//! sequence)`. Arbitrary interleavings of pushes and due-pops — with
//! deltas short enough to stay on the wheel, long enough to take the
//! overflow path, and runs long enough to wrap the 128-slot horizon
//! many times — must pop in exactly the heap's order.

use marionette_sim::wheel::{EventWheel, WHEEL_SLOTS};
use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The ordering reference: earliest cycle first, FIFO within a cycle.
#[derive(Default)]
struct RefQueue {
    heap: BinaryHeap<Reverse<(u64, u64, u32)>>,
    seq: u64,
}

impl RefQueue {
    fn push(&mut self, at: u64, val: u32) {
        self.heap.push(Reverse((at, self.seq, val)));
        self.seq += 1;
    }

    fn next_at(&self) -> Option<u64> {
        self.heap.peek().map(|&Reverse((at, _, _))| at)
    }

    fn pop_due(&mut self, now: u64) -> Option<u32> {
        match self.heap.peek() {
            Some(&Reverse((at, _, _))) if at <= now => self.heap.pop().map(|Reverse((_, _, v))| v),
            _ => None,
        }
    }
}

/// Replays one sampled op stream against both queues, checking every
/// observable (`next_at`, pop results, lengths) in lock step, then
/// drains both to empty. `span` bounds the push deltas: `< WHEEL_SLOTS`
/// keeps everything on the wheel, larger spans force overflow entries
/// and their migration back into slots.
fn replay(ops: &[u64], span: u64) {
    let mut wheel: EventWheel<u32> = EventWheel::new();
    let mut reference = RefQueue::default();
    let mut now = 0u64;
    let mut tag = 0u32;
    for &w in ops {
        match w % 4 {
            // Push strictly into the future, like the machine does
            // (every modeled latency is >= 1 cycle).
            0..=2 => {
                let at = now + 1 + (w >> 8) % span;
                wheel.push(at, tag);
                reference.push(at, tag);
                tag += 1;
            }
            // Advance time to the next pending cycle and drain it.
            _ => {
                assert_eq!(wheel.next_at(), reference.next_at(), "next_at diverges");
                if let Some(at) = reference.next_at() {
                    now = now.max(at);
                    loop {
                        let (a, b) = (wheel.pop_due(now), reference.pop_due(now));
                        assert_eq!(a, b, "pop at cycle {now} diverges");
                        if a.is_none() {
                            break;
                        }
                    }
                }
            }
        }
        assert_eq!(wheel.len(), reference.heap.len(), "lengths diverge");
        assert_eq!(wheel.is_empty(), reference.heap.is_empty());
    }
    // Final drain: everything still pending must come out in heap order.
    while let Some(at) = reference.next_at() {
        assert_eq!(wheel.next_at(), Some(at), "drain next_at diverges");
        now = now.max(at);
        let (a, b) = (wheel.pop_due(now), reference.pop_due(now));
        assert!(b.is_some());
        assert_eq!(a, b, "drain pop at cycle {now} diverges");
    }
    assert!(wheel.is_empty());
    assert_eq!(wheel.next_at(), None);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Near-term schedules (the machine's common case): every delta fits
    /// the dense window, runs long enough to lap the slot array.
    #[test]
    fn on_wheel_schedules_pop_in_heap_order(
        ops in proptest::collection::vec(any::<u64>(), 96),
    ) {
        replay(&ops, WHEEL_SLOTS as u64 - 1);
    }

    /// Deltas straddling the horizon: a mix of direct slot pushes and
    /// overflow entries that must migrate back in sequence order as the
    /// base advances past them.
    #[test]
    fn overflow_migration_preserves_heap_order(
        ops in proptest::collection::vec(any::<u64>(), 96),
    ) {
        replay(&ops, 4 * WHEEL_SLOTS as u64);
    }

    /// Far-future-heavy schedules: most pushes overflow, popping is
    /// dominated by base jumps over long empty stretches.
    #[test]
    fn far_future_schedules_pop_in_heap_order(
        ops in proptest::collection::vec(any::<u64>(), 64),
    ) {
        replay(&ops, 50 * WHEEL_SLOTS as u64);
    }

    /// Same-cycle bursts tie-break FIFO exactly like the heap's
    /// insertion sequence, across wrap-around and overflow alike.
    #[test]
    fn same_cycle_bursts_stay_fifo(
        deltas in proptest::collection::vec(0u64..3, 64),
        burst in 2usize..6,
    ) {
        let mut wheel: EventWheel<u32> = EventWheel::new();
        let mut reference = RefQueue::default();
        let mut now = 0u64;
        let mut tag = 0u32;
        for &d in &deltas {
            // Several pushes landing on one cycle, some directly on the
            // wheel, some via overflow (the +WHEEL_SLOTS hop).
            for b in 0..burst {
                let far = if b % 2 == 0 { 0 } else { WHEEL_SLOTS as u64 };
                let at = now + 1 + d + far;
                wheel.push(at, tag);
                reference.push(at, tag);
                tag += 1;
            }
            if let Some(at) = reference.next_at() {
                now = now.max(at);
                loop {
                    let (a, b) = (wheel.pop_due(now), reference.pop_due(now));
                    prop_assert_eq!(a, b, "pop at cycle {} diverges", now);
                    if a.is_none() {
                        break;
                    }
                }
            }
        }
        while let Some(at) = reference.next_at() {
            now = now.max(at);
            prop_assert_eq!(wheel.pop_due(now), reference.pop_due(now));
        }
        prop_assert!(wheel.is_empty());
    }
}

/// `clear()` must behave like building a fresh wheel: the lane-reset
/// path depends on it.
#[test]
fn clear_is_equivalent_to_new() {
    let mut w: EventWheel<u32> = EventWheel::new();
    for i in 0..200u32 {
        w.push(u64::from(i) * 3 + 1, i);
    }
    // Pop a prefix so base, freelist, and occupancy are all mid-flight.
    let mut now = 0;
    for _ in 0..50 {
        while w.pop_due(now).is_none() {
            now = w.next_at().expect("events pending");
        }
    }
    w.clear();
    assert!(w.is_empty());
    // After clear, a fresh schedule replays exactly like a new wheel.
    let mut fresh: EventWheel<u32> = EventWheel::new();
    let mut reference = RefQueue::default();
    for i in 0..100u32 {
        let at = u64::from(i % 7) * 40 + 1;
        w.push(at, i);
        fresh.push(at, i);
        reference.push(at, i);
    }
    let mut now = 0;
    while let Some(at) = reference.next_at() {
        now = now.max(at);
        let expect = reference.pop_due(now);
        assert_eq!(w.pop_due(now), expect, "cleared wheel diverges");
        assert_eq!(fresh.pop_due(now), expect, "fresh wheel diverges");
    }
    assert!(w.is_empty() && fresh.is_empty());
}
