//! Unit tests of the machine's progress machinery on hand-built
//! programs: the deadlock detector (idle-streak path), the idle
//! fast-forward, and the borrowed array accessor.

use marionette_cdfg::op::{BinOp, Op};
use marionette_cdfg::value::{ElemTy, Value};
use marionette_isa::{
    ArrayInfo, MachineProgram, NodeConfig, OperandSrc, Placement, Route, RouteClass,
};
use marionette_sim::{run, SimError, TimingModel};

fn node(op: Op, srcs: Vec<OperandSrc>, pe: u16) -> NodeConfig {
    NodeConfig {
        op,
        srcs,
        place: Placement::Pe { pe },
        bb: 0,
        group: 0,
        label: None,
    }
}

fn local_route(src: u32, dst: u32, dst_port: u8) -> Route {
    Route {
        src,
        dst,
        dst_port,
        class: RouteClass::Data,
        activation: false,
        dynamic: false,
        path: Vec::new(),
    }
}

fn base_prog(name: &str) -> MachineProgram {
    MachineProgram {
        name: name.into(),
        rows: 2,
        cols: 2,
        nodes: Vec::new(),
        routes: Vec::new(),
        pes: Vec::new(),
        arrays: Vec::new(),
        params: Vec::new(),
    }
}

/// A flit wedged forever on a full destination queue must be diagnosed
/// as a deadlock through the idle-streak detector — not spin until the
/// cycle budget runs out.
#[test]
fn wedged_flit_is_reported_as_deadlock() {
    let mut prog = base_prog("wedge");
    // Start on tile 0 feeds an Add on tile 1 over the mesh; the Add's
    // second operand never arrives, and the input queue has no capacity,
    // so the flit can never deliver and nothing can ever fire.
    prog.nodes.push(node(Op::Start, vec![], 0));
    prog.nodes.push(node(
        Op::Bin(BinOp::Add),
        vec![OperandSrc::Route(0), OperandSrc::None],
        1,
    ));
    prog.routes.push(Route {
        path: vec![0, 1],
        ..local_route(0, 1, 0)
    });
    let mut tm = TimingModel::ideal("wedge");
    tm.queue_capacity = 0;
    let err = run(&prog, &tm, &[], &[], 1_000_000).expect_err("must not quiesce");
    match err {
        SimError::Deadlock { cycle, detail } => {
            assert!(
                cycle < 1_000,
                "detector should fire quickly, not at {cycle}"
            );
            assert!(
                detail.contains("blocked at destination"),
                "diagnostic should name the parked flit: {detail}"
            );
        }
        other => panic!("expected Deadlock, got {other:?}"),
    }
}

/// Builds Start -> Load -> Sink with the given memory latency and runs it.
fn load_chain(mem_latency: u32) -> (u64, Vec<Value>) {
    let mut prog = base_prog("ff");
    prog.arrays.push(ArrayInfo {
        name: "a".into(),
        len: 4,
        elem: ElemTy::I32,
        is_output: false,
    });
    prog.nodes.push(node(Op::Start, vec![], 0));
    // Load a[2]; the index token arrives from Start via a Gate-less
    // trigger: Start's unit token is the (ignored) dependence input.
    prog.nodes.push(node(
        Op::Load(marionette_cdfg::ArrayId(0)),
        vec![OperandSrc::Route(0), OperandSrc::None],
        1,
    ));
    prog.nodes.push({
        let mut n = node(Op::Sink, vec![OperandSrc::Route(1)], 2);
        n.label = Some("out".into());
        n
    });
    prog.routes.push(local_route(0, 1, 0));
    prog.routes.push(local_route(1, 2, 0));
    let mut tm = TimingModel::ideal("ff");
    tm.mem_latency = mem_latency;
    let inputs = vec![(
        "a".to_string(),
        vec![Value::I32(7), Value::I32(8), Value::I32(9), Value::I32(10)],
    )];
    let r = run(&prog, &tm, &inputs, &[], 1_000_000).expect("quiesces");
    (r.stats.cycles, r.sinks["out"].clone())
}

/// The idle fast-forward must skip dead cycles without changing
/// semantics: growing the memory latency by N grows the cycle count by
/// exactly N, and the outputs stay identical.
#[test]
fn idle_fast_forward_preserves_cycle_accuracy() {
    let (c_small, out_small) = load_chain(2);
    let (c_large, out_large) = load_chain(50_002);
    assert_eq!(
        c_large - c_small,
        50_000,
        "latency must translate 1:1 into cycles ({c_small} -> {c_large})"
    );
    assert_eq!(out_small, out_large);
    // Start emits Unit -> Load reads a[0] (unit coerces to index 0).
    assert_eq!(out_small.len(), 1);
}

/// `RunResult::array` hands out a borrowed view of final memory.
#[test]
fn run_result_array_borrows() {
    let mut prog = base_prog("arr");
    prog.arrays.push(ArrayInfo {
        name: "a".into(),
        len: 2,
        elem: ElemTy::I32,
        is_output: true,
    });
    prog.nodes.push(node(Op::Start, vec![], 0));
    let tm = TimingModel::ideal("arr");
    let inputs = vec![("a".to_string(), vec![Value::I32(3), Value::I32(4)])];
    let r = run(&prog, &tm, &inputs, &[], 1_000).expect("quiesces");
    let a: &[Value] = r.array(&prog, "a").expect("array exists");
    assert_eq!(a, &[Value::I32(3), Value::I32(4)]);
    assert!(r.array(&prog, "nope").is_none());
}
