//! Cycle-level simulator correctness: compiled kernels must produce
//! golden-identical outputs under representative timing models, and runs
//! must be deterministic.

use marionette_compiler::{compile, CompileOptions, CtrlPlacement};
use marionette_kernels::traits::{Kernel, Scale};
use marionette_kernels::verify::check_vs_golden;
use marionette_sim::{run, CtrlTransport, TimingModel};

const MAX_CYCLES: u64 = 200_000_000;

fn marionette_tm() -> TimingModel {
    TimingModel::ideal("marionette")
}

fn von_neumann_tm() -> TimingModel {
    let mut t = TimingModel::ideal("von-neumann");
    t.predicated_branches = true;
    t.ctrl_transport = CtrlTransport::Mesh;
    t.exclusive_groups = true;
    t.group_switch_cost = 12;
    t.dyn_bound_extra = 10;
    t.ctrl_parallel = false;
    t
}

fn dataflow_tm() -> TimingModel {
    let mut t = TimingModel::ideal("dataflow");
    t.per_fire_overhead = 1;
    t.ctrl_transport = CtrlTransport::Mesh;
    t.ctrl_parallel = false;
    t
}

fn opts_for(tm: &TimingModel) -> CompileOptions {
    let mut o = CompileOptions::marionette_4x4();
    if !tm.ctrl_parallel {
        o.ctrl = CtrlPlacement::PeSlots;
    }
    if tm.exclusive_groups {
        o.agile = false;
    }
    o
}

fn check_kernel(k: &dyn Kernel, tm: &TimingModel, seed: u64) -> u64 {
    let wl = k.workload(Scale::Small, seed);
    let golden = k.golden(&wl).expect("golden builds");
    let g = k.build(&wl).expect("kernel builds");
    let opts = opts_for(tm);
    let (prog, _report) = compile(&g, &opts).expect("compiles");
    let inputs: Vec<(String, Vec<marionette_cdfg::Value>)> = g
        .arrays
        .iter()
        .map(|a| (a.name.clone(), a.init.clone()))
        .collect();
    let r = run(&prog, tm, &inputs, &[], MAX_CYCLES)
        .unwrap_or_else(|e| panic!("{} under {}: {e}", k.name(), tm.name));
    assert_eq!(r.oob_events, 0, "{}: oob accesses", k.name());
    let mismatches = check_vs_golden(
        &g,
        &golden,
        |arr| r.memory[arr.0 as usize].clone(),
        |name| r.sinks.get(name).cloned().unwrap_or_default(),
    )
    .expect("golden arrays declared");
    assert!(
        mismatches.is_empty(),
        "{} under {}: {} mismatches, first: {}",
        k.name(),
        tm.name,
        mismatches.len(),
        mismatches[0]
    );
    r.stats.cycles
}

#[test]
fn gray_all_models() {
    let k = marionette_kernels::gray::GrayProcessing;
    check_kernel(&k, &marionette_tm(), 1);
    check_kernel(&k, &von_neumann_tm(), 1);
    check_kernel(&k, &dataflow_tm(), 1);
}

#[test]
fn gemm_all_models() {
    let k = marionette_kernels::gemm::Gemm;
    check_kernel(&k, &marionette_tm(), 2);
    check_kernel(&k, &von_neumann_tm(), 2);
    check_kernel(&k, &dataflow_tm(), 2);
}

#[test]
fn crc_all_models() {
    let k = marionette_kernels::crc::Crc;
    check_kernel(&k, &marionette_tm(), 3);
    check_kernel(&k, &von_neumann_tm(), 3);
    check_kernel(&k, &dataflow_tm(), 3);
}

#[test]
fn mergesort_all_models() {
    let k = marionette_kernels::mergesort::MergeSort;
    check_kernel(&k, &marionette_tm(), 4);
    check_kernel(&k, &von_neumann_tm(), 4);
    check_kernel(&k, &dataflow_tm(), 4);
}

#[test]
fn adpcm_all_models() {
    let k = marionette_kernels::adpcm::AdpcmEncode;
    check_kernel(&k, &marionette_tm(), 5);
    check_kernel(&k, &von_neumann_tm(), 5);
    check_kernel(&k, &dataflow_tm(), 5);
}

#[test]
fn runs_are_deterministic() {
    let k = marionette_kernels::crc::Crc;
    let a = check_kernel(&k, &marionette_tm(), 7);
    let b = check_kernel(&k, &marionette_tm(), 7);
    assert_eq!(a, b, "same seed, same cycles");
}

#[test]
fn dataflow_overhead_slows_execution() {
    let k = marionette_kernels::gray::GrayProcessing;
    let m = check_kernel(&k, &marionette_tm(), 9);
    let d = check_kernel(&k, &dataflow_tm(), 9);
    assert!(
        d > m,
        "per-fire configure overhead must cost cycles: {d} vs {m}"
    );
}

#[test]
fn stats_are_sane() {
    let k = marionette_kernels::gemm::Gemm;
    let wl = k.workload(Scale::Tiny, 0);
    let g = k.build(&wl).expect("kernel builds");
    let (prog, _) = compile(&g, &CompileOptions::marionette_4x4()).unwrap();
    let tm = marionette_tm();
    let r = run(&prog, &tm, &[], &[], MAX_CYCLES).unwrap();
    assert!(r.stats.cycles > 0);
    assert!(r.stats.fires > 0);
    let util = r.stats.mean_pe_utilization();
    assert!(util > 0.0 && util <= 1.0, "utilization {util}");
    assert!(r.stats.ctrl_tokens + r.stats.data_tokens > 0);
}
