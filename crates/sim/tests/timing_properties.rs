//! Directional properties of the timing machinery, isolated on a single
//! synthetic kernel: each modeled cost must actually cost cycles.

use marionette_cdfg::builder::CdfgBuilder;
use marionette_cdfg::Cdfg;
use marionette_compiler::{compile, CompileOptions};
use marionette_sim::{run, CtrlTransport, TimingModel};

/// An imperfect nest with branch divergence: every timing feature has
/// something to bite on.
fn workload_graph() -> Cdfg {
    let mut b = CdfgBuilder::new("t");
    let init: Vec<i32> = (0..64).map(|i| (i * 17 + 3) % 29 - 14).collect();
    let a = b.array_i32("a", 64, &init);
    let o = b.array_i32("o", 64, &[]);
    b.mark_output(o);
    let zero = b.imm(0);
    let _ = b.for_range(0, 8, &[zero], |b, i, v| {
        let base = b.mul(i, 8.into());
        let inner = b.for_range(0, 8, &[v[0]], |b, j, w| {
            let idx = b.add(base, j);
            let x = b.load(a, idx);
            let c = b.gt(x, 0.into());
            let r = b.if_else(c, |b| vec![b.mul(x, 3.into())], |b| vec![b.neg(x)]);
            b.store(o, idx, r[0]);
            vec![b.add(w[0], r[0])]
        });
        vec![inner[0]]
    });
    b.finish()
}

fn cycles_with(tm: &TimingModel, opts: &CompileOptions) -> u64 {
    let g = workload_graph();
    let (prog, _) = compile(&g, opts).unwrap();
    let inputs: Vec<(String, Vec<marionette_cdfg::Value>)> = g
        .arrays
        .iter()
        .map(|x| (x.name.clone(), x.init.clone()))
        .collect();
    run(&prog, tm, &inputs, &[], 50_000_000)
        .unwrap()
        .stats
        .cycles
}

#[test]
fn per_fire_overhead_costs_cycles() {
    let opts = CompileOptions::marionette_4x4();
    let base = TimingModel::ideal("base");
    let mut slow = TimingModel::ideal("overhead");
    slow.per_fire_overhead = 1;
    assert!(cycles_with(&slow, &opts) > cycles_with(&base, &opts));
}

#[test]
fn mesh_control_is_slower_than_the_control_network() {
    let opts = CompileOptions::marionette_4x4();
    let net = TimingModel::ideal("ctrlnet");
    let mut mesh = TimingModel::ideal("mesh");
    mesh.ctrl_transport = CtrlTransport::Mesh;
    assert!(cycles_with(&mesh, &opts) >= cycles_with(&net, &opts));
}

#[test]
fn exclusive_groups_cost_cycles() {
    let mut opts = CompileOptions::marionette_4x4();
    opts.agile = false;
    let free = TimingModel::ideal("free");
    let mut excl = TimingModel::ideal("excl");
    excl.exclusive_groups = true;
    excl.group_switch_cost = 8;
    assert!(cycles_with(&excl, &opts) > cycles_with(&free, &opts));
}

#[test]
fn switch_cost_scales_the_exclusivity_penalty() {
    let mut opts = CompileOptions::marionette_4x4();
    opts.agile = false;
    let mut cheap = TimingModel::ideal("cheap");
    cheap.exclusive_groups = true;
    cheap.group_switch_cost = 1;
    let mut dear = TimingModel::ideal("dear");
    dear.exclusive_groups = true;
    dear.group_switch_cost = 30;
    assert!(cycles_with(&dear, &opts) > cycles_with(&cheap, &opts));
}

#[test]
fn link_latency_slows_the_mesh() {
    let opts = CompileOptions::marionette_4x4();
    let mut l1 = TimingModel::ideal("l1");
    l1.ctrl_transport = CtrlTransport::Mesh;
    let mut l2 = TimingModel::ideal("l2");
    l2.ctrl_transport = CtrlTransport::Mesh;
    l2.link_latency = 3;
    assert!(cycles_with(&l2, &opts) > cycles_with(&l1, &opts));
}

#[test]
fn memory_latency_costs_cycles() {
    let opts = CompileOptions::marionette_4x4();
    let fast = TimingModel::ideal("m2");
    let mut slow = TimingModel::ideal("m8");
    slow.mem_latency = 8;
    assert!(cycles_with(&slow, &opts) > cycles_with(&fast, &opts));
}

#[test]
fn activation_extra_costs_cycles_on_nested_loops() {
    let opts = CompileOptions::marionette_4x4();
    let base = TimingModel::ideal("b");
    let mut act = TimingModel::ideal("a");
    act.activation_extra = 12;
    assert!(cycles_with(&act, &opts) > cycles_with(&base, &opts));
}

#[test]
fn queue_capacity_throttles_pipelining() {
    let opts = CompileOptions::marionette_4x4();
    let deep = TimingModel::ideal("deep");
    let mut shallow = TimingModel::ideal("shallow");
    shallow.queue_capacity = 1;
    shallow.route_inflight_cap = 1;
    assert!(cycles_with(&shallow, &opts) >= cycles_with(&deep, &opts));
}

// ---------------------------------------------------------------------
// Operator-latency invariants of the timing model itself (property-style
// over the whole operator space and sampled parameter values).
// ---------------------------------------------------------------------

mod latency_invariants {
    use marionette_cdfg::op::{BinOp, NlOp, Op, SteerRole, UnOp};
    use marionette_sim::TimingModel;
    use proptest::prelude::*;

    /// Every operator the machine can execute, over a representative
    /// sample of each class.
    fn all_ops() -> Vec<Op> {
        use BinOp::*;
        let bins = [
            Add, Sub, Mul, Div, Rem, And, Or, Xor, Shl, Shr, AShr, Min, Max, Lt, Le, Gt, Ge, Eq,
            Ne, FAdd, FSub, FMul, FDiv, FMin, FMax, FLt, FLe, FGt, FGe,
        ];
        let uns = [
            UnOp::Not,
            UnOp::Neg,
            UnOp::Abs,
            UnOp::FNeg,
            UnOp::FAbs,
            UnOp::I2F,
            UnOp::F2I,
            UnOp::LNot,
        ];
        let nls = [
            NlOp::Sigmoid,
            NlOp::Log,
            NlOp::Exp,
            NlOp::Sqrt,
            NlOp::Recip,
            NlOp::Tanh,
        ];
        let mut ops: Vec<Op> = Vec::new();
        ops.extend(bins.iter().map(|&b| Op::Bin(b)));
        ops.extend(uns.iter().map(|&u| Op::Un(u)));
        ops.extend(nls.iter().map(|&n| Op::Nl(n)));
        ops.push(Op::Mux);
        ops.push(Op::Load(marionette_cdfg::op::ArrayId(0)));
        ops.push(Op::Store(marionette_cdfg::op::ArrayId(0)));
        ops.push(Op::Gate);
        ops.push(Op::Steer {
            sense: true,
            role: SteerRole::Branch,
        });
        ops.push(Op::Merge {
            role: SteerRole::LoopCtl,
        });
        ops.push(Op::Carry);
        ops.push(Op::Inv);
        ops.push(Op::Sink);
        ops.push(Op::Start);
        ops
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// No firing is ever free: every operator's result latency is at
        /// least one cycle under any parameterization (sinks included).
        #[test]
        fn latency_never_zero(mem in 1u32..16, overhead in 0u32..5) {
            let mut tm = TimingModel::ideal("p");
            tm.mem_latency = mem;
            tm.per_fire_overhead = overhead;
            for op in all_ops() {
                prop_assert!(tm.result_latency(op) >= 1, "{op} latency zero");
            }
            prop_assert!(tm.issue_occupancy() >= 1);
        }

        /// Load latency tracks the scratchpad parameter monotonically.
        #[test]
        fn load_latency_monotone_in_mem_latency(a in 1u32..12, b in 1u32..12) {
            let (lo, hi) = (a.min(b), a.max(b));
            let mut slow = TimingModel::ideal("s");
            slow.mem_latency = hi;
            let mut fast = TimingModel::ideal("f");
            fast.mem_latency = lo;
            let ld = Op::Load(marionette_cdfg::op::ArrayId(0));
            prop_assert!(fast.result_latency(ld) <= slow.result_latency(ld));
            prop_assert_eq!(slow.result_latency(ld), u64::from(hi));
        }

        /// Issue occupancy is monotone in the per-firing configure
        /// overhead (the dataflow-PE tag-check cost).
        #[test]
        fn occupancy_monotone_in_overhead(a in 0u32..6, b in 0u32..6) {
            let (lo, hi) = (a.min(b), a.max(b));
            let mut light = TimingModel::ideal("l");
            light.per_fire_overhead = lo;
            let mut heavy = TimingModel::ideal("h");
            heavy.per_fire_overhead = hi;
            prop_assert!(light.issue_occupancy() <= heavy.issue_occupancy());
        }
    }

    /// Within each arithmetic class, adding operands never makes an
    /// operator faster: every unary op is at most as slow as any binary
    /// op of the same (int/float) class.
    #[test]
    fn latency_monotone_in_operand_count() {
        let tm = TimingModel::ideal("m");
        let int_uns = [UnOp::Not, UnOp::Neg, UnOp::Abs, UnOp::LNot];
        let int_bins = [BinOp::Add, BinOp::Mul, BinOp::Div, BinOp::Rem];
        for u in int_uns {
            for b in int_bins {
                assert!(tm.result_latency(Op::Un(u)) <= tm.result_latency(Op::Bin(b)));
            }
        }
        let f_uns = [UnOp::FNeg, UnOp::FAbs];
        let f_bins = [BinOp::FAdd, BinOp::FMul, BinOp::FDiv];
        for u in f_uns {
            for b in f_bins {
                assert!(tm.result_latency(Op::Un(u)) <= tm.result_latency(Op::Bin(b)));
            }
        }
    }

    /// The iterative divider is the slowest ALU op; multipliers beat it
    /// but cost at least an adder.
    #[test]
    fn class_latencies_ordered() {
        let tm = TimingModel::ideal("m");
        let l = |b: BinOp| tm.result_latency(Op::Bin(b));
        assert!(l(BinOp::Add) <= l(BinOp::Mul));
        assert!(l(BinOp::Mul) <= l(BinOp::Div));
        assert!(l(BinOp::FAdd) <= l(BinOp::FDiv));
        // Nonlinear fitting units are slower than plain ALU ops.
        assert!(tm.result_latency(Op::Nl(NlOp::Sigmoid)) >= l(BinOp::Add));
    }
}

#[test]
fn every_variant_stays_functionally_correct() {
    // All of the above knobs must never change results; re-run one
    // exotic combination and verify output contents.
    let g = workload_graph();
    let mut tm = TimingModel::ideal("exotic");
    tm.per_fire_overhead = 2;
    tm.ctrl_transport = CtrlTransport::Mesh;
    tm.exclusive_groups = true;
    tm.group_switch_cost = 17;
    tm.link_latency = 2;
    tm.mem_latency = 5;
    tm.queue_capacity = 2;
    tm.route_inflight_cap = 2;
    tm.predicated_branches = true;
    let mut opts = CompileOptions::marionette_4x4();
    opts.agile = false;
    let (prog, _) = compile(&g, &opts).unwrap();
    let inputs: Vec<(String, Vec<marionette_cdfg::Value>)> = g
        .arrays
        .iter()
        .map(|x| (x.name.clone(), x.init.clone()))
        .collect();
    let r = run(&prog, &tm, &inputs, &[], 50_000_000).unwrap();
    let expected =
        marionette_cdfg::interp::interpret(&g, marionette_cdfg::interp::ExecMode::Dropping, &[])
            .unwrap();
    let oid = g.array_by_name("o").unwrap();
    assert_eq!(
        r.memory[oid.0 as usize],
        expected.memory.array(oid).to_vec()
    );
}
