//! The cycle-level machine: executes a placed [`MachineProgram`] under a
//! [`TimingModel`].
//!
//! The machine is a synchronous token simulator:
//!
//! - every PE has a **data flow part** (one FU issue per cycle among its
//!   resident operators) and, on Marionette-style models, a **control
//!   flow part** issuing control operators in parallel (temporal
//!   decoupling, Fig 4);
//! - inter-tile data tokens traverse the mesh as flits, one link per
//!   cycle, one flit per directed link per cycle (contention is real);
//! - control tokens either ride the dedicated control network
//!   (fixed-path, one cycle, per-route serialization — Fig 6) or the
//!   mesh, per the timing model;
//! - configuration behaviour is modeled through group exclusivity and
//!   switch costs (CCU round trips for von Neumann machines, cheap
//!   proactive switches for non-agile Marionette) plus the per-firing
//!   configure overhead of dataflow PEs;
//! - operator firing semantics are identical to the reference
//!   interpreter's (`marionette-cdfg::interp`), including predicated
//!   (poison) execution — integration tests assert cycle-level runs
//!   produce bit-identical outputs.
//!
//! ## Engineering notes (hot loop)
//!
//! The simulator is the throughput bottleneck of the whole evaluation
//! sweep, so the core is event-driven and allocation-lean:
//!
//! - scheduled tokens live in a calendar-queue [`EventWheel`] (O(1) push
//!   and pop over a dense horizon, arena payloads, overflow bucket for
//!   the rare far-future booking) — the pre-wheel payload-carrying
//!   min-heap survives behind [`EngineKind::Heap`] as the differential
//!   reference engine;
//! - token queues are fixed-stride rings in one dense slab (`TokenQueues`),
//!   not per-port `VecDeque` allocations, and per-route hot metadata
//!   (hop link ids, destination queue/group) is flattened at
//!   construction so the flit and emit paths never chase `Route` heap
//!   pointers;
//! - sink labels are interned at construction; a sink firing is a dense
//!   `Vec` push, never a `HashMap<String, _>` probe;
//! - issue work comes from a maintained list of *active units* (units
//!   holding at least one ready candidate), walked in sorted order with a
//!   per-unit count of active-group candidates so exclusive models skip
//!   units whose whole backlog belongs to a parked group;
//! - batched lanes ([`run_lanes`]) reuse one machine skeleton across N
//!   workloads of the same bitstream: static tables are built once and
//!   dynamic state is `reset()` between lanes, bit-identical to N fresh
//!   runs.

use crate::fault::FaultSet;
use crate::stats::{GroupStats, RunStats, UnitStats};
use crate::timing::{CtrlTransport, TimingModel};
use crate::trace::{Tracer, TrackKey};
use crate::wheel::EventWheel;
use marionette_cdfg::op::{Op, SteerRole};
use marionette_cdfg::value::Value;
use marionette_isa::{MachineProgram, OperandSrc, Placement, RouteClass};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::fmt;
use std::str::FromStr;

/// Selects the event-queue implementation driving the simulator core.
///
/// Both engines execute the identical machine model and produce
/// bit-identical [`RunResult`]s — `crates/core/tests/engine_equivalence.rs`
/// pins this on every kernel × preset, healthy and faulted. The heap is
/// kept as the differential reference; the wheel is the default and what
/// all committed benchmark snapshots gate against.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Binary-heap event queue (the pre-wheel reference core).
    Heap,
    /// Calendar-queue event wheel (see [`crate::wheel`]).
    #[default]
    Wheel,
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineKind::Heap => write!(f, "heap"),
            EngineKind::Wheel => write!(f, "wheel"),
        }
    }
}

impl FromStr for EngineKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "heap" => Ok(EngineKind::Heap),
            "wheel" => Ok(EngineKind::Wheel),
            other => Err(format!("unknown engine {other:?} (expected heap|wheel)")),
        }
    }
}
/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// No progress is possible but tokens remain.
    Deadlock {
        /// Cycle at which the machine wedged.
        cycle: u64,
        /// Diagnostic description.
        detail: String,
    },
    /// The cycle budget was exhausted.
    CycleLimit {
        /// The exceeded budget.
        limit: u64,
    },
    /// A workload array does not exist in the program.
    UnknownArray(String),
    /// A parameter override does not exist in the program.
    UnknownParam(String),
    /// The bitstream touches a dead fabric resource from the injected
    /// [`FaultSet`] — diagnosed at machine construction, before any cycle
    /// runs, and distinguishable from a generic [`SimError::Deadlock`].
    Fault {
        /// The faulted resource, in fault-spec syntax (e.g. `pe:1,2`).
        what: String,
        /// Which part of the program touches it.
        detail: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { cycle, detail } => {
                write!(f, "deadlock at cycle {cycle}: {detail}")
            }
            SimError::CycleLimit { limit } => write!(f, "cycle limit {limit} exceeded"),
            SimError::UnknownArray(a) => write!(f, "unknown workload array {a}"),
            SimError::UnknownParam(p) => write!(f, "unknown parameter {p}"),
            SimError::Fault { what, detail } => {
                write!(f, "faulted resource {what}: {detail}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Result of one run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Run statistics (cycles, utilization, transport counters).
    pub stats: RunStats,
    /// Final contents of every array, by program array index.
    pub memory: Vec<Vec<Value>>,
    /// Sink collections by label.
    pub sinks: HashMap<String, Vec<Value>>,
    /// Out-of-bounds accesses observed (should be zero).
    pub oob_events: u64,
}

impl RunResult {
    /// Final contents of a named array, borrowed from the result.
    pub fn array(&self, prog: &MachineProgram, name: &str) -> Option<&[Value]> {
        prog.arrays
            .iter()
            .position(|a| a.name == name)
            .map(|i| self.memory[i].as_slice())
    }
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum SeqState {
    Fresh,
    Looping,
    Held(Value),
}

#[derive(Clone, Debug)]
enum EvKind {
    Deliver {
        node: u32,
        port: u8,
        value: Value,
        route: Option<u32>,
    },
    SpawnFlit {
        route: u32,
        value: Value,
    },
}

/// A scheduled event carrying its payload. Ordered so that
/// `BinaryHeap::pop` yields the earliest `(at, seq)` first — a single
/// min-heap replaces the old key-heap + payload-map pair, halving the
/// bookkeeping per delivered token.
#[derive(Clone, Debug)]
struct Ev {
    at: u64,
    seq: u64,
    kind: EvKind,
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for Ev {}

impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ev {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The machine's event queue, behind the [`EngineKind`] selector. Both
/// variants yield events in identical `(at, insertion order)` total
/// order; only the data structure differs.
enum EventQueue {
    Heap { heap: BinaryHeap<Ev>, seq: u64 },
    Wheel(EventWheel<EvKind>),
}

impl EventQueue {
    fn new(kind: EngineKind) -> Self {
        match kind {
            EngineKind::Heap => EventQueue::Heap {
                heap: BinaryHeap::new(),
                seq: 0,
            },
            EngineKind::Wheel => EventQueue::Wheel(EventWheel::new()),
        }
    }

    #[inline]
    fn push(&mut self, at: u64, kind: EvKind) {
        match self {
            EventQueue::Heap { heap, seq } => {
                let s = *seq;
                *seq += 1;
                heap.push(Ev { at, seq: s, kind });
            }
            EventQueue::Wheel(w) => w.push(at, kind),
        }
    }

    #[inline]
    fn pop_due(&mut self, now: u64) -> Option<EvKind> {
        match self {
            EventQueue::Heap { heap, .. } => {
                if heap.peek()?.at > now {
                    return None;
                }
                Some(heap.pop().expect("peeked event").kind)
            }
            EventQueue::Wheel(w) => w.pop_due(now),
        }
    }

    fn next_at(&self) -> Option<u64> {
        match self {
            EventQueue::Heap { heap, .. } => heap.peek().map(|ev| ev.at),
            EventQueue::Wheel(w) => w.next_at(),
        }
    }

    fn len(&self) -> usize {
        match self {
            EventQueue::Heap { heap, .. } => heap.len(),
            EventQueue::Wheel(w) => w.len(),
        }
    }

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn clear(&mut self) {
        match self {
            EventQueue::Heap { heap, seq } => {
                heap.clear();
                *seq = 0;
            }
            EventQueue::Wheel(w) => w.clear(),
        }
    }
}

/// Dense token storage: every capacity-bounded input queue is a
/// fixed-stride ring (`queue_capacity` slots) in one slab, so the hot
/// peek/pop/push paths touch two dense arrays instead of chasing a
/// per-port `VecDeque` allocation. The few loop-unit-internal register
/// queues (combinational same-cycle forwarding, *not* capacity-checked
/// by `output_ready`) keep growable `VecDeque` storage on the side.
struct TokenQueues {
    cap: usize,
    data: Vec<Value>,
    qhead: Vec<u32>,
    qlen: Vec<u32>,
    /// `spill[spill_idx[qi]]` replaces the slab ring when != `u32::MAX`.
    spill_idx: Vec<u32>,
    spill: Vec<VecDeque<Value>>,
}

impl TokenQueues {
    fn new(n: usize, cap: usize, is_spill: &[bool]) -> Self {
        let mut spill_idx = vec![u32::MAX; n];
        let mut spill = Vec::new();
        for (qi, &s) in is_spill.iter().enumerate() {
            if s {
                spill_idx[qi] = spill.len() as u32;
                spill.push(VecDeque::new());
            }
        }
        TokenQueues {
            cap,
            data: vec![Value::Unit; n * cap],
            qhead: vec![0; n],
            qlen: vec![0; n],
            spill_idx,
            spill,
        }
    }

    #[inline]
    fn len(&self, qi: usize) -> usize {
        let si = self.spill_idx[qi];
        if si != u32::MAX {
            return self.spill[si as usize].len();
        }
        self.qlen[qi] as usize
    }

    #[inline]
    fn front(&self, qi: usize) -> Option<Value> {
        let si = self.spill_idx[qi];
        if si != u32::MAX {
            return self.spill[si as usize].front().copied();
        }
        if self.qlen[qi] == 0 {
            return None;
        }
        Some(self.data[qi * self.cap + self.qhead[qi] as usize])
    }

    #[inline]
    fn push_back(&mut self, qi: usize, v: Value) {
        let si = self.spill_idx[qi];
        if si != u32::MAX {
            self.spill[si as usize].push_back(v);
            return;
        }
        let l = self.qlen[qi] as usize;
        debug_assert!(l < self.cap, "bounded queue overfilled");
        let mut pos = self.qhead[qi] as usize + l;
        if pos >= self.cap {
            pos -= self.cap;
        }
        self.data[qi * self.cap + pos] = v;
        self.qlen[qi] = (l + 1) as u32;
    }

    #[inline]
    fn pop_front(&mut self, qi: usize) -> Value {
        let si = self.spill_idx[qi];
        if si != u32::MAX {
            return self.spill[si as usize]
                .pop_front()
                .expect("pop on empty queue");
        }
        debug_assert!(self.qlen[qi] > 0, "pop on empty queue");
        let h = self.qhead[qi] as usize;
        let v = self.data[qi * self.cap + h];
        self.qhead[qi] = if h + 1 == self.cap { 0 } else { (h + 1) as u32 };
        self.qlen[qi] -= 1;
        v
    }

    /// Empties every queue (slab contents need no scrubbing: reads are
    /// gated by `qlen`).
    fn reset(&mut self) {
        self.qhead.fill(0);
        self.qlen.fill(0);
        for s in &mut self.spill {
            s.clear();
        }
    }
}

#[derive(Clone, Debug)]
struct Flit {
    route: u32,
    hop: usize,
    value: Value,
    alive: bool,
    /// Spawn order; ties between flits are always broken by serial, which
    /// reproduces the old single-vector iteration order.
    serial: u64,
    /// Earliest cycle the flit may take its next link (link latency).
    ready_at: u64,
}

/// A flit that lost link arbitration. It leaves the per-cycle traversal
/// scan entirely and waits in its link's serial-sorted queue; one waiter
/// is granted per link per cycle, and the stall cycles are accounted in
/// bulk at grant time (`grant_cycle - first_attempt`), exactly matching
/// the old one-stall-per-blocked-cycle accumulation.
#[derive(Clone, Debug)]
struct LinkWaiter {
    serial: u64,
    route: u32,
    hop: usize,
    value: Value,
    /// First cycle the flit contended for the link (the cycle it lost).
    first_attempt: u64,
}

/// A flit that reached its destination tile but found the input queue
/// full. Parked flits leave the per-cycle traversal loop entirely; their
/// stall cycles are accounted in bulk on delivery
/// (`delivery_cycle - first_attempt`), which equals the old
/// one-increment-per-blocked-cycle bookkeeping exactly.
#[derive(Clone, Debug)]
struct ParkedFlit {
    serial: u64,
    route: u32,
    value: Value,
    /// First cycle a delivery was attempted (last hop cycle + 1).
    first_attempt: u64,
}

/// Unit index space: data PEs, then control parts, then net switches,
/// then memory stream units.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct UnitId(usize);

struct Machine<'p> {
    prog: &'p MachineProgram,
    tm: &'p TimingModel,
    npes: usize,
    // topology of units
    node_unit: Vec<UnitId>,
    // Flat, cache-friendly copies of the per-node metadata the hot loop
    // reads every firing (NodeConfig is large and heap-indirected).
    /// Operand selectors, flat-indexed by `port_base[node] + port`.
    src_of: Vec<OperandSrc>,
    node_group: Vec<u16>,
    node_op: Vec<Op>,
    node_place: Vec<Placement>,
    /// First unit index that is a loop unit (loop units occupy the tail
    /// of the unit index space).
    first_loop_unit: usize,
    last_fire_cycle: Vec<u64>,
    unit_free_at: Vec<u64>,
    unit_candidates: Vec<VecDeque<u32>>,
    in_candidates: Vec<bool>,
    /// Units that currently hold at least one candidate, in insertion
    /// order (sorted on use). `unit_queued` mirrors membership.
    active_units: Vec<u32>,
    unit_queued: Vec<bool>,
    /// Total candidates across all units (== sum of deque lengths).
    cand_count: usize,
    /// Per-unit count of candidates whose group is the active group, plus
    /// the global total — maintained only on exclusive-group models
    /// (`track_groups`), recomputed on the rare group switch. Lets the
    /// issue pass skip units whose whole backlog is parked (a full
    /// wrong-group pass rotates the deque back to its start: a state
    /// no-op) and makes the fast-forward "any waiter outside the active
    /// group?" test O(1) (`cand_count > grp_cand_total`).
    unit_grp_cands: Vec<u32>,
    grp_cand_total: usize,
    track_groups: bool,
    /// Units holding at least one candidate of *any* group, with a
    /// membership flag (exclusive-group models only). Unlike
    /// `active_units` this keeps parked-backlog units reachable: the
    /// issue pass deregisters a unit whose whole backlog belongs to a
    /// parked group (so idle cycles stop re-walking it), and the group
    /// switch re-registers the new group's units from this list.
    /// Entries whose deque drained are compacted lazily on the rare
    /// switch scan, keeping mark/pop O(1).
    cand_units: Vec<u32>,
    in_cand_units: Vec<bool>,
    // queues
    port_base: Vec<usize>,
    queues: TokenQueues,
    /// Tokens emitted but not yet delivered (local/control-network), per
    /// queue: capacity checks count them so deliveries never find a full
    /// queue and per-edge FIFO order is preserved.
    reserved: Vec<usize>,
    blocked_on_queue: Vec<Vec<u32>>,
    /// Scratch buffer circulated through the blocked-list drains so the
    /// per-queue/per-route vecs keep their capacity across block/unblock
    /// cycles (a plain `mem::take` would re-allocate on every re-block).
    unblock_scratch: Vec<u32>,
    // routing: consumer links in CSR layout (`cons_base[n]..cons_base[n+1]`
    // indexes the flat `cons_*` arrays), so emission and the output
    // capacity check walk plain parallel arrays — no enum dispatch, no
    // recomputed queue indices.
    cons_base: Vec<u32>,
    /// Destination node per consumer link.
    cons_dst: Vec<u32>,
    /// Destination port per consumer link.
    cons_port: Vec<u8>,
    /// Destination input-queue index per consumer link.
    cons_qi: Vec<u32>,
    /// Route id per consumer link (`u32::MAX` = same-tile local edge).
    cons_route: Vec<u32>,
    /// Loop-unit-internal register edge: combinational same-cycle
    /// forwarding, exempt from capacity checks.
    cons_internal: Vec<bool>,
    // Flat per-route hot metadata (the flit/emit paths never touch
    // `prog.routes` — `Route.path` is heap-indirected and cold).
    /// Destination node per route.
    route_dst: Vec<u32>,
    /// Destination input-queue index per route (`qidx(dst, dst_port)`).
    route_dst_qi: Vec<u32>,
    /// Destination node's group per route.
    route_dst_group: Vec<u16>,
    /// Mesh path length (tile count) per route.
    route_hops: Vec<u32>,
    /// CSR base into `route_hop_link` per route.
    route_hop_base: Vec<u32>,
    /// Precomputed directed-link id for every hop of every route.
    route_hop_link: Vec<u32>,
    /// Activation/dynamic-bound latency surcharge per route.
    route_extra: Vec<u64>,
    /// Whether the route carries control tokens.
    route_is_ctrl: Vec<bool>,
    route_inflight: Vec<usize>,
    blocked_on_route: Vec<Vec<u32>>,
    route_next_free: Vec<u64>,
    link_used: Vec<u64>,
    /// Per-directed-link flaky multiplier (1 = nominal), indexed like
    /// `link_used`; empty unless `has_flaky`.
    flaky_mult: Vec<u64>,
    /// Fast-path gate: the healthy flit loop never reads `flaky_mult`.
    has_flaky: bool,
    /// In-transit flits only, always serial-sorted (spawn appends in
    /// serial order; waiters re-enter by sorted insert); at-destination
    /// flits move to `parked` until their input queue has space, and
    /// flits that lost link arbitration move to `link_waiters`.
    flits: Vec<Flit>,
    flit_serial: u64,
    /// Per-directed-link waiter queue (serial-sorted), indexed like
    /// `link_used`. The head is the arbitration winner once the link is
    /// free: among all flits wanting a link, the smallest serial wins —
    /// identical to the old serial-ordered full-vector scan.
    link_waiters: Vec<VecDeque<LinkWaiter>>,
    /// Links with a non-empty waiter queue.
    waiting_links: Vec<u32>,
    /// Total waiters across all links.
    link_wait_count: usize,
    /// Parked flits per input queue, each list in serial order.
    parked: Vec<Vec<ParkedFlit>>,
    /// Whether a queue has a non-empty parked list.
    queue_parked: Vec<bool>,
    parked_count: usize,
    /// Scratch for serial-ordered candidate wakeups after deliveries.
    deliver_buf: Vec<(u64, u32)>,
    /// Parked queues that regained space since the last delivery scan
    /// (set by `pop`): only these can accept a parked flit, so the
    /// delivery pass never rescans queues that stayed full.
    waked_queues: Vec<u32>,
    queue_waked: Vec<bool>,
    /// Reusable scratch for the issue pass (the sorted unit worklist and
    /// the carried-over registrations), kept to avoid per-cycle allocs.
    issue_work: Vec<u32>,
    issue_leftover: Vec<u32>,
    // events
    events: EventQueue,
    // Hot timing-model scalars, hoisted out of the `&TimingModel` so the
    // per-fire paths read plain fields.
    /// `tm.issue_occupancy()`.
    fire_occ: u64,
    /// `tm.queue_capacity`.
    qcap: usize,
    /// `tm.route_inflight_cap`.
    route_cap: usize,
    /// Per-node fire-to-result latency (`tm.result_latency(op)`).
    node_lat: Vec<u64>,
    // state
    seq_state: Vec<SeqState>,
    params: Vec<Value>,
    memory: Vec<Vec<Value>>,
    oob: u64,
    /// Interned sink storage: `sink_slot[node]` indexes `sink_data` /
    /// `sink_labels` (nodes sharing a label share a slot).
    sink_slot: Vec<u32>,
    sink_labels: Vec<String>,
    sink_data: Vec<Vec<Value>>,
    // groups
    active_group: u16,
    switch_until: u64,
    last_active_fire: u64,
    /// Tokens emitted but not yet delivered, per destination group:
    /// a group with in-flight traffic is not drained, so exclusive
    /// execution must not switch away from it yet.
    group_inflight: Vec<u64>,
    // stats
    stats: RunStats,
    cycle: u64,
    progressed: bool,
    /// Opt-in trace recorder ([`run_full_traced`]). `None` on every other
    /// entry point: each hook site is a single discriminant check, and
    /// the traced run is bit-identical to the untraced one.
    trace: Option<Box<Tracer>>,
}

/// Runs a program to quiescence.
///
/// `inputs` overwrite array contents by name (missing arrays zero-fill);
/// `params` override scalar parameters.
///
/// # Errors
/// Returns [`SimError`] on deadlock, cycle-budget exhaustion or unknown
/// workload names.
pub fn run(
    prog: &MachineProgram,
    tm: &TimingModel,
    inputs: &[(String, Vec<Value>)],
    params: &[(String, Value)],
    max_cycles: u64,
) -> Result<RunResult, SimError> {
    run_full(
        prog,
        tm,
        &FaultSet::none(),
        EngineKind::default(),
        inputs,
        params,
        max_cycles,
    )
}

/// [`run`] with an explicit [`EngineKind`] (same fault-free semantics).
///
/// # Errors
/// Returns [`SimError`] on deadlock, cycle-budget exhaustion or unknown
/// workload names.
pub fn run_with_engine(
    prog: &MachineProgram,
    tm: &TimingModel,
    engine: EngineKind,
    inputs: &[(String, Vec<Value>)],
    params: &[(String, Value)],
    max_cycles: u64,
) -> Result<RunResult, SimError> {
    run_full(
        prog,
        tm,
        &FaultSet::none(),
        engine,
        inputs,
        params,
        max_cycles,
    )
}

/// Runs a program to quiescence on a faulted fabric.
///
/// A dead resource the bitstream touches (a dead tile holding a node, a
/// dead link crossed by a flit-carrying route) surfaces as
/// [`SimError::Fault`] naming the resource, before any cycle executes.
/// Flaky links only stretch traversal time — the extra cycles are charged
/// to the link-stall counters and values are never altered. An empty
/// fault set is bit-identical to [`run`].
///
/// # Errors
/// Returns [`SimError`] on a touched fault, deadlock, cycle-budget
/// exhaustion or unknown workload names.
pub fn run_with_faults(
    prog: &MachineProgram,
    tm: &TimingModel,
    faults: &FaultSet,
    inputs: &[(String, Vec<Value>)],
    params: &[(String, Value)],
    max_cycles: u64,
) -> Result<RunResult, SimError> {
    run_full(
        prog,
        tm,
        faults,
        EngineKind::default(),
        inputs,
        params,
        max_cycles,
    )
}

/// The full-control entry point: faults **and** engine selection.
///
/// Every other `run*` function delegates here; see [`run_with_faults`]
/// for the fault semantics.
///
/// # Errors
/// Returns [`SimError`] on a touched fault, deadlock, cycle-budget
/// exhaustion or unknown workload names.
pub fn run_full(
    prog: &MachineProgram,
    tm: &TimingModel,
    faults: &FaultSet,
    engine: EngineKind,
    inputs: &[(String, Vec<Value>)],
    params: &[(String, Value)],
    max_cycles: u64,
) -> Result<RunResult, SimError> {
    let mut m = Machine::new(prog, tm, faults, engine)?;
    m.apply_workload(inputs, params)?;
    m.boot();
    m.run_to_quiescence(max_cycles)?;
    Ok(m.finish())
}

/// [`run_full`] with a [`Tracer`] recording the cycle-accurate event
/// stream (see [`crate::trace`]). The tracer is borrowed for the run and
/// handed back with the recorded events on success **and** on error (a
/// partial trace of a deadlocked run is exactly what one wants to look
/// at). The run itself is bit-identical to the untraced [`run_full`].
///
/// # Errors
/// Returns [`SimError`] exactly as [`run_full`] does.
#[allow(clippy::too_many_arguments)]
pub fn run_full_traced(
    prog: &MachineProgram,
    tm: &TimingModel,
    faults: &FaultSet,
    engine: EngineKind,
    inputs: &[(String, Vec<Value>)],
    params: &[(String, Value)],
    max_cycles: u64,
    tracer: &mut Tracer,
) -> Result<RunResult, SimError> {
    let mut m = Machine::new(prog, tm, faults, engine)?;
    let mut t = std::mem::take(tracer);
    t.set_cols(prog.cols as usize);
    m.trace = Some(Box::new(t));
    let run = m.apply_workload(inputs, params).and_then(|()| {
        m.boot();
        m.run_to_quiescence(max_cycles)
    });
    *tracer = *m.trace.take().expect("tracer installed above");
    run?;
    Ok(m.finish())
}

/// One lane of a batched [`run_lanes`] call: a workload (array contents
/// and parameter overrides) for the shared bitstream.
#[derive(Clone, Debug, Default)]
pub struct LaneSpec {
    /// Array contents by name (missing arrays zero-fill), as in [`run`].
    pub inputs: Vec<(String, Vec<Value>)>,
    /// Scalar parameter overrides by name, as in [`run`].
    pub params: Vec<(String, Value)>,
}

/// Runs N workloads ("lanes") of the same bitstream in one pass.
///
/// The machine skeleton — every static table derived from the program
/// (unit topology, flattened route/operand metadata, consumer CSR, sink
/// interning) plus all dynamic-state allocations — is built **once** and
/// reused across lanes; only the dynamic state is reset in between. Each
/// lane is bit-identical to an independent [`run`] with the same
/// workload: values, cycles, stats, and per-lane errors (a lane that
/// deadlocks or exhausts the budget reports its own `Err` without
/// poisoning its neighbours).
///
/// # Errors
/// The outer `Err` is construction-time only (fault screening of the
/// bitstream, as in [`run_with_faults`]); per-lane failures — deadlock,
/// cycle budget, unknown workload names — come back in the inner
/// results.
pub fn run_lanes(
    prog: &MachineProgram,
    tm: &TimingModel,
    lanes: &[LaneSpec],
    max_cycles: u64,
) -> Result<Vec<Result<RunResult, SimError>>, SimError> {
    run_lanes_full(
        prog,
        tm,
        &FaultSet::none(),
        EngineKind::default(),
        lanes,
        max_cycles,
    )
}

/// [`run_lanes`] with explicit faults and engine.
///
/// # Errors
/// As [`run_lanes`]: outer `Err` for construction/fault screening,
/// inner per-lane errors otherwise.
pub fn run_lanes_full(
    prog: &MachineProgram,
    tm: &TimingModel,
    faults: &FaultSet,
    engine: EngineKind,
    lanes: &[LaneSpec],
    max_cycles: u64,
) -> Result<Vec<Result<RunResult, SimError>>, SimError> {
    let mut m = Machine::new(prog, tm, faults, engine)?;
    let mut out = Vec::with_capacity(lanes.len());
    for (li, lane) in lanes.iter().enumerate() {
        if li > 0 {
            m.reset();
        }
        let r = run_one_lane(&mut m, lane, max_cycles);
        out.push(r);
    }
    Ok(out)
}

fn run_one_lane(
    m: &mut Machine<'_>,
    lane: &LaneSpec,
    max_cycles: u64,
) -> Result<RunResult, SimError> {
    m.apply_workload(&lane.inputs, &lane.params)?;
    m.boot();
    m.run_to_quiescence(max_cycles)?;
    Ok(m.finish())
}

/// Dense directed-link id (`from * 4 + dir`, east/west/south/north =
/// 0/1/2/3) — the encoding shared with `marionette_net::Mesh` and
/// [`FaultSet::link_dead`].
fn link_id_for(cols: usize, from: usize, to: usize) -> usize {
    let dir = if to == from + 1 {
        0 // east
    } else if to + 1 == from {
        1 // west
    } else if to == from + cols {
        2 // south
    } else {
        3 // north
    };
    from * 4 + dir
}

impl<'p> Machine<'p> {
    fn new(
        prog: &'p MachineProgram,
        tm: &'p TimingModel,
        faults: &FaultSet,
        engine: EngineKind,
    ) -> Result<Self, SimError> {
        let npes = prog.pe_count();
        let nmem = prog
            .nodes
            .iter()
            .filter_map(|n| match n.place {
                Placement::MemUnit { unit } => Some(unit as usize + 1),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        // Loop headers: blocks containing a Carry operator. Every header
        // block becomes a dedicated loop unit.
        let max_bb = prog
            .nodes
            .iter()
            .map(|n| n.bb as usize + 1)
            .max()
            .unwrap_or(1);
        let mut header_bb = vec![false; max_bb];
        for n in &prog.nodes {
            if matches!(n.op, Op::Carry) {
                header_bb[n.bb as usize] = true;
            }
        }
        let mut header_unit = vec![usize::MAX; max_bb];
        let first_loop_unit = 3 * npes + nmem;
        let mut next_unit = first_loop_unit;
        for (bb, is_h) in header_bb.iter().enumerate() {
            if *is_h {
                header_unit[bb] = next_unit;
                next_unit += 1;
            }
        }
        let nunits = next_unit;
        let mut port_base = Vec::with_capacity(prog.nodes.len() + 1);
        let mut total = 0usize;
        for n in &prog.nodes {
            port_base.push(total);
            total += n.srcs.len();
        }
        port_base.push(total);

        let node_unit: Vec<UnitId> = prog
            .nodes
            .iter()
            .map(|n| {
                if header_bb[n.bb as usize] && !n.op.is_memory() {
                    return UnitId(header_unit[n.bb as usize]);
                }
                match n.place {
                    Placement::Pe { pe } => UnitId(pe as usize),
                    Placement::CtrlPlane { pe } => {
                        if tm.ctrl_parallel {
                            UnitId(npes + pe as usize)
                        } else {
                            UnitId(pe as usize)
                        }
                    }
                    Placement::NetSwitch { sw } => UnitId(2 * npes + sw as usize),
                    Placement::MemUnit { unit } => UnitId(3 * npes + unit as usize),
                }
            })
            .collect();

        let mut consumers: Vec<Vec<u32>> = vec![Vec::new(); prog.nodes.len()];
        for (ri, r) in prog.routes.iter().enumerate() {
            consumers[r.src as usize].push(ri as u32);
        }
        let mut cons_base = Vec::with_capacity(prog.nodes.len() + 1);
        let mut cons_dst = Vec::with_capacity(prog.routes.len());
        let mut cons_port = Vec::with_capacity(prog.routes.len());
        let mut cons_qi = Vec::with_capacity(prog.routes.len());
        let mut cons_route = Vec::with_capacity(prog.routes.len());
        let mut cons_internal = Vec::with_capacity(prog.routes.len());
        for (src, c) in consumers.iter().enumerate() {
            cons_base.push(cons_dst.len() as u32);
            let src_bb = prog.nodes[src].bb as usize;
            for &ri in c {
                let r = &prog.routes[ri as usize];
                cons_dst.push(r.dst);
                cons_port.push(r.dst_port);
                cons_qi.push((port_base[r.dst as usize] + r.dst_port as usize) as u32);
                cons_route.push(if r.path.len() <= 1 { u32::MAX } else { ri });
                cons_internal.push(
                    header_bb[src_bb]
                        && prog.nodes[r.dst as usize].bb as usize == src_bb
                        && !prog.nodes[r.dst as usize].op.is_memory(),
                );
            }
        }
        cons_base.push(cons_dst.len() as u32);

        let cols = prog.cols as usize;
        // Flatten the per-route metadata the flit/emit hot paths read
        // (destination queue, per-hop link ids, latency surcharges) so
        // the cycle loop never dereferences a `Route`.
        let nroutes = prog.routes.len();
        let mut route_dst = Vec::with_capacity(nroutes);
        let mut route_dst_port = Vec::with_capacity(nroutes);
        let mut route_dst_group = Vec::with_capacity(nroutes);
        let mut route_hops = Vec::with_capacity(nroutes);
        let mut route_hop_base = Vec::with_capacity(nroutes + 1);
        let mut route_hop_link: Vec<u32> = Vec::new();
        let mut route_extra = Vec::with_capacity(nroutes);
        let mut route_is_ctrl = Vec::with_capacity(nroutes);
        for r in &prog.routes {
            route_dst.push(r.dst);
            route_dst_port.push(r.dst_port);
            route_dst_group.push(prog.nodes[r.dst as usize].group);
            route_hops.push(r.path.len() as u32);
            route_hop_base.push(route_hop_link.len() as u32);
            for w in r.path.windows(2) {
                route_hop_link.push(link_id_for(cols, w[0] as usize, w[1] as usize) as u32);
            }
            let mut extra = 0u64;
            if r.activation {
                extra += u64::from(tm.activation_extra);
                if r.dynamic {
                    extra += u64::from(tm.dyn_bound_extra);
                }
            }
            route_extra.push(extra);
            route_is_ctrl.push(r.class == RouteClass::Ctrl);
        }
        route_hop_base.push(route_hop_link.len() as u32);
        let route_dst_qi: Vec<u32> = prog
            .routes
            .iter()
            .map(|r| (port_base[r.dst as usize] + r.dst_port as usize) as u32)
            .collect();

        // Loop-unit-internal register queues (combinational same-cycle
        // forwarding in `emit`, exempt from `output_ready` capacity
        // checks) may exceed `queue_capacity`: give exactly those
        // growable spill storage instead of a fixed-stride slab ring.
        let mut is_spill = vec![false; total];
        for r in &prog.routes {
            let sb = prog.nodes[r.src as usize].bb as usize;
            if header_bb[sb]
                && prog.nodes[r.dst as usize].bb as usize == sb
                && !prog.nodes[r.dst as usize].op.is_memory()
            {
                is_spill[port_base[r.dst as usize] + r.dst_port as usize] = true;
            }
        }

        let src_of: Vec<OperandSrc> = prog
            .nodes
            .iter()
            .flat_map(|n| n.srcs.iter().copied())
            .collect();
        debug_assert_eq!(src_of.len(), total);
        let node_group: Vec<u16> = prog.nodes.iter().map(|n| n.group).collect();
        let node_op: Vec<Op> = prog.nodes.iter().map(|n| n.op).collect();
        let node_place: Vec<Placement> = prog.nodes.iter().map(|n| n.place).collect();

        let memory: Vec<Vec<Value>> = prog
            .arrays
            .iter()
            .map(|a| vec![a.elem.zero(); a.len as usize])
            .collect();

        // Intern sink labels so a sink firing is a dense Vec push. Nodes
        // sharing a label share a collection slot, matching the old
        // by-label HashMap semantics.
        let mut sink_slot = vec![u32::MAX; prog.nodes.len()];
        let mut sink_labels: Vec<String> = Vec::new();
        let mut sink_data: Vec<Vec<Value>> = Vec::new();
        for (i, n) in prog.nodes.iter().enumerate() {
            if matches!(n.op, Op::Sink) {
                let label = n.label.clone().unwrap_or_default();
                let slot = match sink_labels.iter().position(|l| *l == label) {
                    Some(s) => s,
                    None => {
                        sink_labels.push(label);
                        sink_data.push(Vec::new());
                        sink_labels.len() - 1
                    }
                };
                sink_slot[i] = slot as u32;
            }
        }

        if !faults.is_empty() {
            if faults.cols() != cols || faults.rows() * faults.cols() != npes {
                return Err(SimError::Fault {
                    what: format!("fabric:{}x{}", faults.rows(), faults.cols()),
                    detail: format!(
                        "fault set geometry does not match the {}x{} program fabric",
                        npes / cols.max(1),
                        cols
                    ),
                });
            }
            // Dead tiles: nothing may execute on their data or control
            // plane. The tile's mesh router survives, so pass-through
            // flits and NetSwitch/MemUnit placements are unaffected.
            for (i, n) in prog.nodes.iter().enumerate() {
                let pe = match n.place {
                    Placement::Pe { pe } | Placement::CtrlPlane { pe } => pe as usize,
                    _ => continue,
                };
                if faults.pe_dead(pe) {
                    return Err(SimError::Fault {
                        what: format!("pe:{},{}", pe / cols, pe % cols),
                        detail: format!("node {i} ({:?}) is placed on the dead tile", n.op),
                    });
                }
            }
            // Dead links: fault exactly the routes that would put flits
            // on the mesh — control-network transfers and combinational
            // loop-unit internals never touch mesh links.
            for (ri, r) in prog.routes.iter().enumerate() {
                if r.path.len() <= 1 {
                    continue;
                }
                if r.class == RouteClass::Ctrl
                    && matches!(tm.ctrl_transport, CtrlTransport::CtrlNetwork { .. })
                {
                    continue;
                }
                let src_bb = prog.nodes[r.src as usize].bb as usize;
                if header_bb[src_bb]
                    && prog.nodes[r.dst as usize].bb as usize == src_bb
                    && !prog.nodes[r.dst as usize].op.is_memory()
                {
                    continue;
                }
                for w in r.path.windows(2) {
                    let (from, to) = (w[0] as usize, w[1] as usize);
                    let lid = link_id_for(cols, from, to);
                    if faults.link_dead(lid) {
                        return Err(SimError::Fault {
                            what: format!(
                                "link:{},{}-{},{}",
                                from / cols,
                                from % cols,
                                to / cols,
                                to % cols
                            ),
                            detail: format!(
                                "route {ri} ({} -> {}) crosses the dead link",
                                r.src, r.dst
                            ),
                        });
                    }
                }
            }
        }
        let has_flaky = faults.has_flaky();
        let flaky_mult: Vec<u64> = if has_flaky {
            (0..4 * npes)
                .map(|l| u64::from(faults.link_mult(l)))
                .collect()
        } else {
            Vec::new()
        };

        Ok(Machine {
            prog,
            tm,
            npes,
            node_unit,
            src_of,
            node_group,
            node_op,
            node_place,
            first_loop_unit,
            last_fire_cycle: vec![u64::MAX; prog.nodes.len()],
            unit_free_at: vec![0; nunits],
            unit_candidates: vec![VecDeque::new(); nunits],
            in_candidates: vec![false; prog.nodes.len()],
            active_units: Vec::with_capacity(nunits),
            unit_queued: vec![false; nunits],
            cand_count: 0,
            unit_grp_cands: vec![0; nunits],
            grp_cand_total: 0,
            track_groups: tm.exclusive_groups,
            cand_units: Vec::new(),
            in_cand_units: vec![false; nunits],
            port_base,
            queues: TokenQueues::new(total, tm.queue_capacity, &is_spill),
            reserved: vec![0; total],
            blocked_on_queue: vec![Vec::new(); total],
            unblock_scratch: Vec::new(),
            cons_base,
            cons_dst,
            cons_port,
            cons_qi,
            cons_route,
            cons_internal,
            route_dst,
            route_dst_qi,
            route_dst_group,
            route_hops,
            route_hop_base,
            route_hop_link,
            route_extra,
            route_is_ctrl,
            route_inflight: vec![0; prog.routes.len()],
            blocked_on_route: vec![Vec::new(); prog.routes.len()],
            route_next_free: vec![0; prog.routes.len()],
            link_used: vec![u64::MAX; 4 * npes],
            flaky_mult,
            has_flaky,
            flits: Vec::new(),
            flit_serial: 0,
            link_waiters: vec![VecDeque::new(); 4 * npes],
            waiting_links: Vec::new(),
            link_wait_count: 0,
            parked: vec![Vec::new(); total],
            queue_parked: vec![false; total],
            parked_count: 0,
            deliver_buf: Vec::new(),
            waked_queues: Vec::new(),
            queue_waked: vec![false; total],
            issue_work: Vec::new(),
            issue_leftover: Vec::new(),
            events: EventQueue::new(engine),
            fire_occ: tm.issue_occupancy(),
            qcap: tm.queue_capacity,
            route_cap: tm.route_inflight_cap,
            node_lat: prog.nodes.iter().map(|n| tm.result_latency(n.op)).collect(),
            seq_state: vec![SeqState::Fresh; prog.nodes.len()],
            params: prog.params.iter().map(|p| p.default).collect(),
            memory,
            oob: 0,
            sink_slot,
            sink_labels,
            sink_data,
            active_group: 0,
            switch_until: 0,
            last_active_fire: 0,
            group_inflight: {
                let ngroups = prog
                    .nodes
                    .iter()
                    .map(|n| n.group as usize + 1)
                    .max()
                    .unwrap_or(1);
                vec![0; ngroups]
            },
            stats: RunStats {
                pe_data: vec![UnitStats::default(); npes],
                pe_ctrl: vec![UnitStats::default(); npes],
                groups: Vec::new(),
                link_stall_by_route: vec![0; prog.routes.len()],
                ..Default::default()
            },
            cycle: 0,
            progressed: false,
            trace: None,
        })
    }

    /// Overwrites array contents / parameter defaults with a workload.
    fn apply_workload(
        &mut self,
        inputs: &[(String, Vec<Value>)],
        params: &[(String, Value)],
    ) -> Result<(), SimError> {
        for (name, data) in inputs {
            let idx = self
                .prog
                .arrays
                .iter()
                .position(|a| &a.name == name)
                .ok_or_else(|| SimError::UnknownArray(name.clone()))?;
            let arr = &mut self.memory[idx];
            for (i, v) in data.iter().enumerate().take(arr.len()) {
                arr[i] = *v;
            }
        }
        for (name, v) in params {
            let idx = self
                .prog
                .param_by_name(name)
                .ok_or_else(|| SimError::UnknownParam(name.clone()))?;
            self.params[idx as usize] = *v;
        }
        Ok(())
    }

    /// Rewinds every piece of dynamic state to the fresh-construction
    /// value, reusing allocations. A `reset()` machine is bit-identical
    /// to a newly built one — the batched-lane equivalence tests pin
    /// this against independent serial runs.
    fn reset(&mut self) {
        self.last_fire_cycle.fill(u64::MAX);
        self.unit_free_at.fill(0);
        for q in &mut self.unit_candidates {
            q.clear();
        }
        self.in_candidates.fill(false);
        self.active_units.clear();
        self.unit_queued.fill(false);
        self.cand_count = 0;
        self.unit_grp_cands.fill(0);
        self.grp_cand_total = 0;
        self.cand_units.clear();
        self.in_cand_units.fill(false);
        self.queues.reset();
        self.reserved.fill(0);
        for b in &mut self.blocked_on_queue {
            b.clear();
        }
        self.route_inflight.fill(0);
        for b in &mut self.blocked_on_route {
            b.clear();
        }
        self.route_next_free.fill(0);
        self.link_used.fill(u64::MAX);
        self.flits.clear();
        for q in &mut self.link_waiters {
            q.clear();
        }
        self.waiting_links.clear();
        self.link_wait_count = 0;
        self.flit_serial = 0;
        for p in &mut self.parked {
            p.clear();
        }
        self.queue_parked.fill(false);
        self.parked_count = 0;
        self.deliver_buf.clear();
        self.waked_queues.clear();
        self.queue_waked.fill(false);
        self.issue_work.clear();
        self.issue_leftover.clear();
        self.events.clear();
        self.seq_state.fill(SeqState::Fresh);
        self.params.clear();
        self.params
            .extend(self.prog.params.iter().map(|p| p.default));
        self.memory = self
            .prog
            .arrays
            .iter()
            .map(|a| vec![a.elem.zero(); a.len as usize])
            .collect();
        self.oob = 0;
        self.sink_data = vec![Vec::new(); self.sink_labels.len()];
        self.active_group = 0;
        self.switch_until = 0;
        self.last_active_fire = 0;
        self.group_inflight.fill(0);
        self.stats = RunStats {
            pe_data: vec![UnitStats::default(); self.npes],
            pe_ctrl: vec![UnitStats::default(); self.npes],
            groups: Vec::new(),
            link_stall_by_route: vec![0; self.prog.routes.len()],
            ..Default::default()
        };
        self.cycle = 0;
        self.progressed = false;
    }

    /// Moves the run outputs out of the machine (leaving it in need of a
    /// [`Machine::reset`] before the next lane).
    fn finish(&mut self) -> RunResult {
        let mut stats = std::mem::take(&mut self.stats);
        stats.cycles = self.cycle;
        RunResult {
            stats,
            memory: std::mem::take(&mut self.memory),
            sinks: self
                .sink_labels
                .iter()
                .cloned()
                .zip(std::mem::take(&mut self.sink_data))
                .collect(),
            oob_events: self.oob,
        }
    }

    fn boot(&mut self) {
        // Fire every Start node at cycle 0.
        for (i, n) in self.prog.nodes.iter().enumerate() {
            if matches!(n.op, Op::Start) {
                self.active_group = n.group;
                self.record_fire(i as u32, false);
                self.emit(i as u32, Value::Unit, 1);
            }
        }
        // `emit` above may have marked candidates before the final Start
        // settled `active_group`: rebuild the per-group counts.
        self.recompute_group_counts();
    }

    fn qidx(&self, node: u32, port: u8) -> usize {
        self.port_base[node as usize] + port as usize
    }

    fn schedule(&mut self, at: u64, kind: EvKind) {
        self.events.push(at, kind);
    }

    fn mark_candidate(&mut self, node: u32) {
        if !self.in_candidates[node as usize] {
            self.in_candidates[node as usize] = true;
            self.cand_count += 1;
            let u = self.node_unit[node as usize].0;
            if self.track_groups {
                if self.node_group[node as usize] == self.active_group {
                    self.unit_grp_cands[u] += 1;
                    self.grp_cand_total += 1;
                }
                if !self.in_cand_units[u] {
                    self.in_cand_units[u] = true;
                    self.cand_units.push(u as u32);
                }
            }
            self.unit_candidates[u].push_back(node);
            if !self.unit_queued[u] {
                self.unit_queued[u] = true;
                self.active_units.push(u as u32);
            }
        }
    }

    /// Removes the front candidate of `unit`, clearing its membership.
    fn pop_candidate(&mut self, unit: usize) -> Option<u32> {
        let n = self.unit_candidates[unit].pop_front()?;
        self.in_candidates[n as usize] = false;
        self.cand_count -= 1;
        if self.track_groups && self.node_group[n as usize] == self.active_group {
            self.unit_grp_cands[unit] -= 1;
            self.grp_cand_total -= 1;
        }
        Some(n)
    }

    /// Rebuilds `unit_grp_cands` / `grp_cand_total` after the active
    /// group changed. Outside the issue pass every unit holding a
    /// candidate is registered in `active_units`, so the scan covers all
    /// candidates; switches are rare, so the O(candidates) cost is cold.
    fn recompute_group_counts(&mut self) {
        if !self.track_groups {
            return;
        }
        self.unit_grp_cands.fill(0);
        self.grp_cand_total = 0;
        let g = self.active_group;
        let mut cand_units = std::mem::take(&mut self.cand_units);
        cand_units.retain(|&uu| {
            let u = uu as usize;
            if self.unit_candidates[u].is_empty() {
                self.in_cand_units[u] = false;
                return false; // drained since registration: compact
            }
            let c = self.unit_candidates[u]
                .iter()
                .filter(|&&n| self.node_group[n as usize] == g)
                .count() as u32;
            self.unit_grp_cands[u] = c;
            self.grp_cand_total += c as usize;
            // Units parked until now hold backlog for the incoming group:
            // put them back on the walk.
            if c > 0 && !self.unit_queued[u] {
                self.unit_queued[u] = true;
                self.active_units.push(uu);
            }
            true
        });
        self.cand_units = cand_units;
    }

    /// Emits a value to all consumers of `node`.
    fn emit(&mut self, node: u32, value: Value, lat: u64) {
        for li in self.cons_base[node as usize] as usize..self.cons_base[node as usize + 1] as usize
        {
            // Combinational forwarding inside a loop unit: same-header
            // operators see the value in the same cycle.
            if self.cons_internal[li] {
                self.queues.push_back(self.cons_qi[li] as usize, value);
                self.mark_candidate(self.cons_dst[li]);
                continue;
            }
            let route = self.cons_route[li];
            if route == u32::MAX {
                let dst = self.cons_dst[li];
                let qi = self.cons_qi[li] as usize;
                self.reserved[qi] += 1;
                self.group_inflight[self.node_group[dst as usize] as usize] += 1;
                self.schedule(
                    self.cycle + lat,
                    EvKind::Deliver {
                        node: dst,
                        port: self.cons_port[li],
                        value,
                        route: None,
                    },
                );
            } else {
                let ri = route as usize;
                self.route_inflight[ri] += 1;
                self.group_inflight[self.route_dst_group[ri] as usize] += 1;
                let extra = self.route_extra[ri];
                let is_ctrl = self.route_is_ctrl[ri];
                if is_ctrl {
                    self.stats.ctrl_tokens += 1;
                } else {
                    self.stats.data_tokens += 1;
                }
                match (is_ctrl, self.tm.ctrl_transport) {
                    (true, CtrlTransport::CtrlNetwork { latency }) => {
                        // Fixed-path network: one transfer per route per
                        // cycle, single-cycle traversal.
                        let qi = self.cons_qi[li] as usize;
                        self.reserved[qi] += 1;
                        let ready = self.cycle + lat + extra;
                        let slot = ready.max(self.route_next_free[ri]);
                        self.route_next_free[ri] = slot + 1;
                        self.schedule(
                            slot + u64::from(latency),
                            EvKind::Deliver {
                                node: self.cons_dst[li],
                                port: self.cons_port[li],
                                value,
                                route: Some(route),
                            },
                        );
                    }
                    _ => {
                        self.schedule(self.cycle + lat + extra, EvKind::SpawnFlit { route, value });
                    }
                }
            }
        }
    }

    fn record_fire(&mut self, node: u32, poisoned: bool) {
        self.stats.fires += 1;
        let grp = self.node_group[node as usize] as usize;
        if self.stats.groups.len() <= grp {
            self.stats.groups.resize(grp + 1, GroupStats::default());
        }
        let gs = &mut self.stats.groups[grp];
        gs.fires += 1;
        gs.busy += 1;
        if gs.first_fire.is_none() {
            gs.first_fire = Some(self.cycle);
        }
        gs.last_fire = self.cycle;
        let occ = self.fire_occ;
        match self.node_place[node as usize] {
            Placement::Pe { pe } => {
                let u = &mut self.stats.pe_data[pe as usize];
                u.busy += occ;
                if poisoned {
                    u.poison_fires += 1;
                } else {
                    u.useful_fires += 1;
                }
            }
            Placement::CtrlPlane { pe } | Placement::NetSwitch { sw: pe } => {
                let u = &mut self.stats.pe_ctrl[pe as usize % self.npes];
                u.busy += occ;
                if poisoned {
                    u.poison_fires += 1;
                } else {
                    u.useful_fires += 1;
                }
            }
            Placement::MemUnit { .. } => {}
        }
        if self.node_group[node as usize] == self.active_group {
            self.last_active_fire = self.cycle;
        }
        if self.trace.is_some() {
            let key = match self.node_place[node as usize] {
                Placement::Pe { pe } => TrackKey::PeData(u32::from(pe)),
                Placement::CtrlPlane { pe } => TrackKey::PeCtrl(u32::from(pe)),
                Placement::NetSwitch { sw } => TrackKey::Switch(u32::from(sw)),
                Placement::MemUnit { unit } => TrackKey::Mem(u32::from(unit)),
            };
            let (cycle, dur) = (self.cycle, occ);
            if let Some(t) = self.trace.as_deref_mut() {
                t.fire(key, cycle, dur, node, poisoned);
            }
        }
    }

    // ---------------- queue helpers -----------------------------------

    /// Peeks the operand at flat queue slot `qi` without consuming it.
    #[inline]
    fn peek_qi(&self, qi: usize) -> Option<Value> {
        match self.src_of[qi] {
            OperandSrc::Imm(v) => Some(v),
            OperandSrc::Param(p) => Some(self.params[p as usize]),
            OperandSrc::Route(_) => self.queues.front(qi),
            OperandSrc::None => None,
        }
    }

    /// Consumes the operand previously peeked at `qi`: token queues pop
    /// (waking parked flits and queue-blocked producers); immediates and
    /// params are inexhaustible so consuming them is free. The firing
    /// arms peek every operand, check output capacity, then consume —
    /// one `src_of` dispatch per port instead of the peek/pop double.
    fn consume_qi(&mut self, qi: usize) {
        if matches!(self.src_of[qi], OperandSrc::Route(_)) {
            self.queues.pop_front(qi);
            // The queue shrank: unblock producers waiting on it and
            // wake any flits parked on the freed slot.
            if self.queue_parked[qi] && !self.queue_waked[qi] {
                self.queue_waked[qi] = true;
                self.waked_queues.push(qi as u32);
            }
            if !self.blocked_on_queue[qi].is_empty() {
                let mut blocked = std::mem::replace(
                    &mut self.blocked_on_queue[qi],
                    std::mem::take(&mut self.unblock_scratch),
                );
                for &b in &blocked {
                    self.mark_candidate(b);
                }
                blocked.clear();
                self.unblock_scratch = blocked;
            }
        }
    }

    /// Can the node send to every consumer (queue/flight capacity)?
    /// On the first full consumer, registers the node to be re-marked
    /// when that queue/route drains and reports not-ready.
    fn output_ready(&mut self, node: u32) -> bool {
        // Read-only scan first; at most one block site is registered, so
        // the mutable part is a single deferred push (no take/restore of
        // the consumer list).
        enum Block {
            Queue(usize),
            Route(usize),
        }
        let mut block: Option<Block> = None;
        'links: for li in
            self.cons_base[node as usize] as usize..self.cons_base[node as usize + 1] as usize
        {
            if self.cons_internal[li] {
                continue; // loop-unit internal registers
            }
            let route = self.cons_route[li];
            if route == u32::MAX {
                let qi = self.cons_qi[li] as usize;
                if self.queues.len(qi) + self.reserved[qi] >= self.qcap {
                    block = Some(Block::Queue(qi));
                    break 'links;
                }
            } else {
                let ri = route as usize;
                if self.route_inflight[ri] >= self.route_cap {
                    block = Some(Block::Route(ri));
                    break 'links;
                }
                if self.route_is_ctrl[ri]
                    && matches!(self.tm.ctrl_transport, CtrlTransport::CtrlNetwork { .. })
                {
                    let qi = self.cons_qi[li] as usize;
                    if self.queues.len(qi) + self.reserved[qi] >= self.qcap {
                        block = Some(Block::Queue(qi));
                        break 'links;
                    }
                }
            }
        }
        match block {
            None => true,
            Some(Block::Queue(qi)) => {
                self.blocked_on_queue[qi].push(node);
                false
            }
            Some(Block::Route(route)) => {
                self.blocked_on_route[route].push(node);
                false
            }
        }
    }

    // ---------------- firing ------------------------------------------

    /// Attempts to fire `node`; returns true if it fired.
    ///
    /// Each arm peeks its operands (side-effect free), checks output
    /// capacity, then consumes — so every port is dispatched on
    /// `src_of` exactly once per attempt and failed attempts touch no
    /// state beyond the `output_ready` block registration.
    fn try_fire(&mut self, node: u32) -> bool {
        let op = self.node_op[node as usize];
        let predicated = self.tm.predicated_branches;
        let pb = self.port_base[node as usize];
        match op {
            Op::Start => false,
            Op::Bin(b) => {
                let Some(x) = self.peek_qi(pb) else {
                    return false;
                };
                let Some(y) = self.peek_qi(pb + 1) else {
                    return false;
                };
                if !self.output_ready(node) {
                    return false;
                }
                self.consume_qi(pb);
                self.consume_qi(pb + 1);
                let out = b.eval(x, y);
                self.finish_fire(node, Some(out));
                true
            }
            Op::Un(u) => {
                let Some(x) = self.peek_qi(pb) else {
                    return false;
                };
                if !self.output_ready(node) {
                    return false;
                }
                self.consume_qi(pb);
                let out = u.eval(x);
                self.finish_fire(node, Some(out));
                true
            }
            Op::Nl(u) => {
                let Some(x) = self.peek_qi(pb) else {
                    return false;
                };
                if !self.output_ready(node) {
                    return false;
                }
                self.consume_qi(pb);
                let out = u.eval(x);
                self.finish_fire(node, Some(out));
                true
            }
            Op::Mux => {
                let Some(p) = self.peek_qi(pb) else {
                    return false;
                };
                let Some(t) = self.peek_qi(pb + 1) else {
                    return false;
                };
                let Some(f) = self.peek_qi(pb + 2) else {
                    return false;
                };
                if !self.output_ready(node) {
                    return false;
                }
                self.consume_qi(pb);
                self.consume_qi(pb + 1);
                self.consume_qi(pb + 2);
                let out = match p.as_bool() {
                    None => Value::Poison,
                    Some(true) => t,
                    Some(false) => f,
                };
                self.finish_fire(node, Some(out));
                true
            }
            Op::Load(arr) => {
                let need_dep = !matches!(self.src_of[pb + 1], OperandSrc::None);
                let Some(idx) = self.peek_qi(pb) else {
                    return false;
                };
                if need_dep && self.peek_qi(pb + 1).is_none() {
                    return false;
                }
                if !self.output_ready(node) {
                    return false;
                }
                self.consume_qi(pb);
                if need_dep {
                    self.consume_qi(pb + 1);
                }
                let out = if idx.is_poison() {
                    Value::Poison
                } else {
                    self.mem_load(arr.0 as usize, idx.to_i32_lossy())
                };
                self.finish_fire(node, Some(out));
                true
            }
            Op::Store(arr) => {
                let need_dep = !matches!(self.src_of[pb + 2], OperandSrc::None);
                let Some(idx) = self.peek_qi(pb) else {
                    return false;
                };
                let Some(val) = self.peek_qi(pb + 1) else {
                    return false;
                };
                if need_dep && self.peek_qi(pb + 2).is_none() {
                    return false;
                }
                if !self.output_ready(node) {
                    return false;
                }
                self.consume_qi(pb);
                self.consume_qi(pb + 1);
                if need_dep {
                    self.consume_qi(pb + 2);
                }
                let poisoned = idx.is_poison() || val.is_poison();
                if !poisoned {
                    self.mem_store(arr.0 as usize, idx.to_i32_lossy(), val);
                }
                self.finish_fire_poison(node, Some(Value::Unit), poisoned);
                true
            }
            Op::Gate => {
                let Some(trig) = self.peek_qi(pb) else {
                    return false;
                };
                let Some(v) = self.peek_qi(pb + 1) else {
                    return false;
                };
                if !self.output_ready(node) {
                    return false;
                }
                self.consume_qi(pb);
                self.consume_qi(pb + 1);
                let out = if trig.is_poison() { Value::Poison } else { v };
                self.finish_fire(node, Some(out));
                true
            }
            Op::Steer { sense, role } => {
                let Some(p) = self.peek_qi(pb) else {
                    return false;
                };
                let Some(v) = self.peek_qi(pb + 1) else {
                    return false;
                };
                if !self.output_ready(node) {
                    return false;
                }
                self.consume_qi(pb);
                self.consume_qi(pb + 1);
                let pred_mode = predicated && role == SteerRole::Branch;
                if pred_mode {
                    let out = match p.as_bool() {
                        Some(b) if b == sense => v,
                        _ => Value::Poison,
                    };
                    let poisoned = out.is_poison();
                    self.finish_fire_poison(node, Some(out), poisoned);
                } else if p.as_bool() == Some(sense) {
                    self.finish_fire(node, Some(v));
                } else {
                    self.finish_fire(node, None);
                }
                true
            }
            Op::Merge { role } => {
                let pred_mode = predicated && role == SteerRole::Branch;
                if pred_mode {
                    let Some(p) = self.peek_qi(pb) else {
                        return false;
                    };
                    let Some(t) = self.peek_qi(pb + 1) else {
                        return false;
                    };
                    let Some(f) = self.peek_qi(pb + 2) else {
                        return false;
                    };
                    if !self.output_ready(node) {
                        return false;
                    }
                    self.consume_qi(pb);
                    self.consume_qi(pb + 1);
                    self.consume_qi(pb + 2);
                    let out = match p.as_bool() {
                        None => Value::Poison,
                        Some(true) => t,
                        Some(false) => f,
                    };
                    self.finish_fire(node, Some(out));
                    true
                } else {
                    let Some(p) = self.peek_qi(pb) else {
                        return false;
                    };
                    let side = if p.as_bool() == Some(true) { 1 } else { 2 };
                    let Some(v) = self.peek_qi(pb + side) else {
                        return false;
                    };
                    if !self.output_ready(node) {
                        return false;
                    }
                    self.consume_qi(pb);
                    self.consume_qi(pb + side);
                    self.finish_fire(node, Some(v));
                    true
                }
            }
            Op::Carry => match self.seq_state[node as usize] {
                SeqState::Fresh => {
                    let Some(init) = self.peek_qi(pb + 1) else {
                        return false;
                    };
                    if !self.output_ready(node) {
                        return false;
                    }
                    self.consume_qi(pb + 1);
                    self.seq_state[node as usize] = SeqState::Looping;
                    self.finish_fire(node, Some(init));
                    true
                }
                SeqState::Looping => {
                    let Some(last) = self.peek_qi(pb) else {
                        return false;
                    };
                    let Some(next) = self.peek_qi(pb + 2) else {
                        return false;
                    };
                    if !self.output_ready(node) {
                        return false;
                    }
                    self.consume_qi(pb);
                    self.consume_qi(pb + 2);
                    if last.as_bool() == Some(false) {
                        self.finish_fire(node, Some(next));
                    } else {
                        self.seq_state[node as usize] = SeqState::Fresh;
                        self.finish_fire(node, None);
                    }
                    true
                }
                SeqState::Held(_) => unreachable!("carry never holds"),
            },
            Op::Inv => match self.seq_state[node as usize] {
                SeqState::Fresh => {
                    let Some(v) = self.peek_qi(pb) else {
                        return false;
                    };
                    if !self.output_ready(node) {
                        return false;
                    }
                    self.consume_qi(pb);
                    self.seq_state[node as usize] = SeqState::Held(v);
                    self.finish_fire(node, Some(v));
                    true
                }
                SeqState::Held(v) => {
                    let Some(last) = self.peek_qi(pb + 1) else {
                        return false;
                    };
                    if !self.output_ready(node) {
                        return false;
                    }
                    self.consume_qi(pb + 1);
                    if last.as_bool() == Some(false) {
                        self.finish_fire(node, Some(v));
                    } else {
                        self.seq_state[node as usize] = SeqState::Fresh;
                        self.finish_fire(node, None);
                    }
                    true
                }
                SeqState::Looping => unreachable!("inv never loops"),
            },
            Op::Sink => {
                let Some(v) = self.peek_qi(pb) else {
                    return false;
                };
                self.consume_qi(pb);
                let slot = self.sink_slot[node as usize] as usize;
                self.sink_data[slot].push(v);
                self.record_fire(node, false);
                true
            }
        }
    }

    fn finish_fire(&mut self, node: u32, out: Option<Value>) {
        let poisoned = matches!(out, Some(Value::Poison));
        self.finish_fire_poison(node, out, poisoned);
    }

    fn finish_fire_poison(&mut self, node: u32, out: Option<Value>, poisoned: bool) {
        self.record_fire(node, poisoned);
        self.last_fire_cycle[node as usize] = self.cycle;
        let u = self.node_unit[node as usize];
        self.unit_free_at[u.0] = self.cycle + self.fire_occ;
        if let Some(v) = out {
            let lat = self.node_lat[node as usize];
            self.emit(node, v, lat);
        }
        // The node may be immediately ready again.
        self.mark_candidate(node);
    }

    fn mem_load(&mut self, arr: usize, idx: i32) -> Value {
        if self.trace.is_some() {
            let cycle = self.cycle;
            if let Some(t) = self.trace.as_deref_mut() {
                t.mem(cycle, false, arr as u32);
            }
        }
        let a = &self.memory[arr];
        if idx < 0 || idx as usize >= a.len() {
            self.oob += 1;
            return Value::I32(0);
        }
        a[idx as usize]
    }

    fn mem_store(&mut self, arr: usize, idx: i32, v: Value) {
        if self.trace.is_some() {
            let cycle = self.cycle;
            if let Some(t) = self.trace.as_deref_mut() {
                t.mem(cycle, true, arr as u32);
            }
        }
        let a = &mut self.memory[arr];
        if idx < 0 || idx as usize >= a.len() {
            self.oob += 1;
            return;
        }
        a[idx as usize] = v;
    }

    // ---------------- cycle loop ---------------------------------------

    fn handle_event(&mut self, kind: EvKind) {
        self.progressed = true;
        match kind {
            EvKind::Deliver {
                node,
                port,
                value,
                route,
            } => {
                let qi = self.qidx(node, port);
                debug_assert!(
                    self.queues.len(qi) < self.tm.queue_capacity,
                    "reservation guarantees space"
                );
                self.reserved[qi] = self.reserved[qi].saturating_sub(1);
                let dg = self.node_group[node as usize] as usize;
                self.group_inflight[dg] = self.group_inflight[dg].saturating_sub(1);
                self.queues.push_back(qi, value);
                if let Some(r) = route {
                    self.route_inflight[r as usize] -= 1;
                    if !self.blocked_on_route[r as usize].is_empty() {
                        let mut blocked = std::mem::replace(
                            &mut self.blocked_on_route[r as usize],
                            std::mem::take(&mut self.unblock_scratch),
                        );
                        for &b in &blocked {
                            self.mark_candidate(b);
                        }
                        blocked.clear();
                        self.unblock_scratch = blocked;
                    }
                }
                self.mark_candidate(node);
            }
            EvKind::SpawnFlit { route, value } => {
                let serial = self.flit_serial;
                self.flit_serial += 1;
                self.flits.push(Flit {
                    route,
                    hop: 0,
                    value,
                    alive: true,
                    serial,
                    ready_at: self.cycle,
                });
            }
        }
    }

    fn process_events(&mut self) {
        while let Some(kind) = self.events.pop_due(self.cycle) {
            self.handle_event(kind);
        }
    }

    /// Attempts delivery of parked (at-destination) flits. Per queue the
    /// serial-smallest flits deliver while space lasts; candidate wakeups
    /// are then applied in global serial order, which is exactly the old
    /// one-vector iteration order.
    fn deliver_parked(&mut self) {
        // A parked flit can only deliver after its queue regained space,
        // i.e. after a `pop` on that queue (flit-fed queues receive no
        // other traffic), so only waked queues need a look.
        if self.waked_queues.is_empty() {
            return;
        }
        self.deliver_buf.clear();
        let mut waked = std::mem::take(&mut self.waked_queues);
        for &q in &waked {
            let qi = q as usize;
            self.queue_waked[qi] = false;
            if !self.queue_parked[qi] {
                continue;
            }
            let space = self.tm.queue_capacity.saturating_sub(self.queues.len(qi));
            if space == 0 {
                continue; // refilled before the scan; await the next pop
            }
            let take_n = self.parked[qi].len().min(space);
            for k in 0..take_n {
                let pf = self.parked[qi][k].clone();
                let dg = self.route_dst_group[pf.route as usize] as usize;
                self.group_inflight[dg] = self.group_inflight[dg].saturating_sub(1);
                self.queues.push_back(qi, pf.value);
                self.route_inflight[pf.route as usize] -= 1;
                // All cycles spent waiting, one stall per blocked cycle.
                self.stats.link_stall_cycles += self.cycle - pf.first_attempt;
                self.stats.link_stall_by_route[pf.route as usize] += self.cycle - pf.first_attempt;
                if self.trace.is_some() {
                    // Backpressure is charged to the route's final link.
                    let route = pf.route as usize;
                    let nhops = self.route_hops[route] as usize;
                    let lid = if nhops >= 2 {
                        self.route_hop_link[self.route_hop_base[route] as usize + nhops - 2]
                    } else {
                        0
                    };
                    let stall = self.cycle - pf.first_attempt;
                    if let Some(t) = self.trace.as_deref_mut() {
                        t.park(lid, pf.route, pf.first_attempt, stall);
                    }
                }
                self.parked_count -= 1;
                self.progressed = true;
                self.deliver_buf.push((pf.serial, pf.route));
            }
            self.parked[qi].drain(..take_n);
            if self.parked[qi].is_empty() {
                self.queue_parked[qi] = false;
            }
        }
        waked.clear();
        self.waked_queues = waked;
        self.deliver_buf.sort_unstable_by_key(|&(s, _)| s);
        let buf = std::mem::take(&mut self.deliver_buf);
        for &(_, route) in &buf {
            let dst = self.route_dst[route as usize];
            if !self.blocked_on_route[route as usize].is_empty() {
                let mut blocked = std::mem::replace(
                    &mut self.blocked_on_route[route as usize],
                    std::mem::take(&mut self.unblock_scratch),
                );
                for &b in &blocked {
                    self.mark_candidate(b);
                }
                blocked.clear();
                self.unblock_scratch = blocked;
            }
            self.mark_candidate(dst);
        }
        self.deliver_buf = buf;
    }

    /// Parks a delivered token (flit that completed its last hop): it
    /// re-enters delivery arbitration (serial order per queue) starting
    /// next cycle.
    fn park_token(&mut self, serial: u64, route: u32, value: Value) {
        let qi = self.route_dst_qi[route as usize] as usize;
        let pf = ParkedFlit {
            serial,
            route,
            value,
            first_attempt: self.cycle + 1,
        };
        // Same-queue flits ride the same route, so serials arrive in
        // order; insertion keeps the list sorted even if they did not.
        let pos = self.parked[qi]
            .binary_search_by_key(&pf.serial, |p| p.serial)
            .unwrap_err();
        self.parked[qi].insert(pos, pf);
        self.parked_count += 1;
        self.queue_parked[qi] = true;
        // If the queue already has space the first attempt (next cycle)
        // must run; otherwise the enabling pop will set the wake flag.
        if self.queues.len(qi) < self.tm.queue_capacity && !self.queue_waked[qi] {
            self.queue_waked[qi] = true;
            self.waked_queues.push(qi as u32);
        }
    }

    fn park_flit(&mut self, fi: usize) {
        let f = &self.flits[fi];
        let (serial, route, value) = (f.serial, f.route, f.value);
        self.park_token(serial, route, value);
        self.flits[fi].alive = false;
    }

    /// Per-grant traversal latency: the nominal link latency, stretched
    /// by a flaky multiplier with the extra cycles charged as link
    /// stalls (mirrored by the compiler's cost penalty); the value is
    /// untouched.
    fn grant_latency(&mut self, lid: usize, route: usize) -> (u64, u64) {
        let base = u64::from(self.tm.link_latency);
        let mut lat = base;
        if self.has_flaky {
            let mult = self.flaky_mult[lid];
            if mult > 1 {
                let extra = base.max(1) * (mult - 1);
                self.stats.link_stall_cycles += extra;
                self.stats.link_stall_by_route[route] += extra;
                lat += extra;
            }
        }
        (lat, base)
    }

    /// Advances the mesh by one cycle.
    ///
    /// Arbitration invariant: among all flits wanting a link this cycle,
    /// the smallest serial wins — exactly the old serial-ordered
    /// full-vector scan. Losers leave the scan for their link's waiter
    /// queue ([`LinkWaiter`]), so a congested link costs one grant per
    /// cycle instead of one scan per blocked flit per cycle.
    fn advance_flits(&mut self) {
        self.deliver_parked();
        if self.flits.is_empty() && self.link_wait_count == 0 {
            return;
        }
        let mut any_removed = false;
        // In-flight flits, in serial order (the vec is kept sorted).
        for fi in 0..self.flits.len() {
            if self.flits[fi].ready_at > self.cycle {
                continue; // still traversing the previous link
            }
            let route = self.flits[fi].route as usize;
            let hop = self.flits[fi].hop;
            let nhops = self.route_hops[route] as usize;
            if hop + 1 >= nhops {
                // The final hop finished a stretched (flaky-link)
                // traversal: deliver now that `ready_at` has arrived.
                self.park_flit(fi);
                any_removed = true;
                self.progressed = true;
                continue;
            }
            let lid = self.route_hop_link[self.route_hop_base[route] as usize + hop] as usize;
            // The link is taken if a smaller-serial flit already grabbed
            // it this cycle, or an earlier-arrived smaller-serial waiter
            // is owed it (granted in the waiter sweep below).
            let lost = self.link_used[lid] == self.cycle
                || self.link_waiters[lid]
                    .front()
                    .is_some_and(|w| w.serial < self.flits[fi].serial);
            if lost {
                let f = &mut self.flits[fi];
                let w = LinkWaiter {
                    serial: f.serial,
                    route: f.route,
                    hop: f.hop,
                    value: f.value,
                    first_attempt: self.cycle,
                };
                f.alive = false;
                any_removed = true;
                let q = &mut self.link_waiters[lid];
                if q.is_empty() {
                    self.waiting_links.push(lid as u32);
                }
                let pos = match q.binary_search_by_key(&w.serial, |p| p.serial) {
                    Ok(_) => unreachable!("flit serials are unique"),
                    Err(p) => p,
                };
                q.insert(pos, w);
                self.link_wait_count += 1;
            } else {
                self.link_used[lid] = self.cycle;
                self.flits[fi].hop += 1;
                let (lat, base) = self.grant_latency(lid, route);
                self.flits[fi].ready_at = self.cycle + lat;
                self.stats.mesh_hops += 1;
                self.progressed = true;
                if self.trace.is_some() {
                    let cycle = self.cycle;
                    if let Some(t) = self.trace.as_deref_mut() {
                        t.grant(lid as u32, route as u32, cycle, lat);
                    }
                }
                if self.flits[fi].hop + 1 >= nhops && lat == base {
                    // Nominal links deliver at grant time (the healthy
                    // fast path); a stretched final hop stays in flight
                    // until `ready_at` and is delivered above.
                    self.park_flit(fi);
                    any_removed = true;
                }
            }
        }
        // One grant per contended link: the head waiter (smallest
        // serial) takes any link no in-flight flit claimed this cycle.
        // Links are independent, so sweep order is immaterial.
        if self.link_wait_count > 0 {
            let mut wl = std::mem::take(&mut self.waiting_links);
            wl.retain(|&l| {
                let lid = l as usize;
                if self.link_used[lid] == self.cycle {
                    return true; // lost to a smaller-serial in-flight flit
                }
                let w = self.link_waiters[lid]
                    .pop_front()
                    .expect("waiting_links tracks non-empty queues");
                self.link_wait_count -= 1;
                let route = w.route as usize;
                // All cycles spent waiting, one stall per blocked cycle.
                let stall = self.cycle - w.first_attempt;
                self.stats.link_stall_cycles += stall;
                self.stats.link_stall_by_route[route] += stall;
                self.link_used[lid] = self.cycle;
                let (lat, base) = self.grant_latency(lid, route);
                let hop = w.hop + 1;
                self.stats.mesh_hops += 1;
                self.progressed = true;
                if self.trace.is_some() {
                    let cycle = self.cycle;
                    if let Some(t) = self.trace.as_deref_mut() {
                        t.stall(lid as u32, route as u32, w.first_attempt, stall);
                        t.grant(lid as u32, route as u32, cycle, lat);
                    }
                }
                if hop + 1 >= self.route_hops[route] as usize && lat == base {
                    self.park_token(w.serial, w.route, w.value);
                } else {
                    // Re-enters the in-flight scan (a stretched final hop
                    // parks there once `ready_at` arrives).
                    let f = Flit {
                        route: w.route,
                        hop,
                        value: w.value,
                        alive: true,
                        serial: w.serial,
                        ready_at: self.cycle + lat,
                    };
                    let pos = self.flits.partition_point(|x| x.serial < f.serial);
                    self.flits.insert(pos, f);
                }
                !self.link_waiters[lid].is_empty()
            });
            self.waiting_links = wl;
        }
        if any_removed {
            self.flits.retain(|f| f.alive);
        }
    }

    /// Units holding candidates, in ascending unit order (issue priority
    /// is by unit index, exactly like the old full-array scan). Source is
    /// `cand_units`, which — unlike `active_units` — still contains the
    /// parked-backlog units the issue pass deregistered.
    fn sorted_cand_units(&self) -> Vec<u32> {
        let mut units = self.cand_units.clone();
        units.sort_unstable();
        units
    }

    fn group_logic(&mut self) {
        if !self.tm.exclusive_groups {
            return;
        }
        if self.cycle < self.switch_until {
            self.stats.switch_stall_cycles += 1;
            return;
        }
        let idle = self.cycle.saturating_sub(self.last_active_fire);
        if idle <= u64::from(self.tm.idle_switch_threshold) {
            return;
        }
        // Only switch once the active group is truly drained: no tokens in
        // flight toward it (a transient memory/route stall is not a phase
        // boundary). A long stall overrides the drain check — the pending
        // tokens may themselves depend on another group's output.
        let drained = self
            .group_inflight
            .get(self.active_group as usize)
            .copied()
            .unwrap_or(0)
            == 0;
        if !drained && idle <= u64::from(self.tm.idle_switch_threshold) + 4 {
            return;
        }
        // Active group is idle: find another group with waiting candidates.
        // The group-candidate counters make the common no-switch case O(1):
        // a candidate outside the active group exists iff the total exceeds
        // the active group's share.
        if self.cand_count <= self.grp_cand_total {
            return;
        }
        let mut target: Option<u16> = None;
        'outer: for &ui in &self.sorted_cand_units() {
            for &n in &self.unit_candidates[ui as usize] {
                let g = self.node_group[n as usize];
                if g != self.active_group {
                    target = Some(g);
                    break 'outer;
                }
            }
        }
        if let Some(g) = target {
            self.active_group = g;
            self.switch_until = self.cycle + u64::from(self.tm.group_switch_cost);
            self.last_active_fire = self.switch_until;
            self.stats.group_switches += 1;
            if self.trace.is_some() {
                let (cycle, cost) = (self.cycle, u64::from(self.tm.group_switch_cost));
                if let Some(t) = self.trace.as_deref_mut() {
                    t.switch(cycle, cost, g);
                }
            }
            self.recompute_group_counts();
        }
    }

    /// Issues on one loop unit: evaluate the whole header cluster to
    /// fixpoint (each member at most once per cycle) — the paper's Loop
    /// operator sustains one iteration per cycle.
    fn issue_loop_unit(&mut self, ui: usize) {
        let mut fired_any = false;
        let mut guard = 0usize;
        loop {
            let mut fired_round = false;
            let len = self.unit_candidates[ui].len();
            for _ in 0..len {
                let Some(&n) = self.unit_candidates[ui].front() else {
                    break;
                };
                if self.last_fire_cycle[n as usize] == self.cycle
                    || (self.track_groups && self.node_group[n as usize] != self.active_group)
                {
                    // Keep waiting without losing the slot: a front-to-back
                    // rotation is pop+requeue minus the membership/counter
                    // churn (which cancels exactly).
                    self.unit_candidates[ui].rotate_left(1);
                    continue;
                }
                self.pop_candidate(ui);
                if self.try_fire(n) {
                    fired_round = true;
                    fired_any = true;
                }
            }
            guard += 1;
            if !fired_round || guard > 64 {
                break;
            }
        }
        if fired_any {
            self.progressed = true;
            self.unit_free_at[ui] = self.cycle + self.fire_occ;
        }
    }

    fn issue(&mut self) {
        if self.tm.exclusive_groups && self.cycle < self.switch_until {
            return; // the array is stalled while configurations change
        }
        // Visit only units holding candidates, in ascending unit order —
        // the same priority as the old 0..nunits scan. A unit activated
        // *during* the pass (e.g. a producer unblocked by a queue pop)
        // joins this cycle's walk iff its index is still ahead of the
        // cursor, exactly as the linear scan would have reached it.
        // The worklist is a sorted scratch vec walked by cursor:
        // mid-pass activations are inserted at their sorted position past
        // the cursor, so `work[i]` is always the minimum of the remaining
        // set — the same total order a min-heap would yield, without the
        // per-pop sift (active-unit counts are tiny). Scratch buffers
        // persist: the pass runs every active cycle and must not allocate.
        let mut work = std::mem::take(&mut self.issue_work);
        debug_assert!(work.is_empty());
        std::mem::swap(&mut work, &mut self.active_units);
        work.sort_unstable();
        let mut leftover = std::mem::take(&mut self.issue_leftover);
        let mut i = 0usize;
        let mut last: Option<u32> = None;
        loop {
            // Absorb activations that appeared while processing.
            if !self.active_units.is_empty() {
                for k in 0..self.active_units.len() {
                    let u = self.active_units[k];
                    if last.is_none_or(|l| u > l) {
                        let pos = i + work[i..].partition_point(|&w| w < u);
                        work.insert(pos, u);
                    } else {
                        leftover.push(u);
                    }
                }
                self.active_units.clear();
            }
            if i >= work.len() {
                break;
            }
            let u = work[i];
            i += 1;
            last = Some(u);
            let ui = u as usize;
            // Leaving the active list; firing/requeueing below re-adds.
            self.unit_queued[ui] = false;
            if self.unit_free_at[ui] > self.cycle {
                // Busy until a future cycle: stay registered, skip work.
                self.unit_queued[ui] = true;
                self.active_units.push(u);
                continue;
            }
            if self.unit_candidates[ui].is_empty() {
                continue; // drained earlier this cycle (stale entry)
            }
            if self.track_groups && self.unit_grp_cands[ui] == 0 {
                // Every candidate belongs to a parked group: a full pass
                // would rotate the deque back to its start and fire
                // nothing. Deregister — idle cycles must not re-walk the
                // unit; `cand_units` keeps it reachable and the group
                // switch (or an active-group arrival) re-registers it.
                continue;
            }
            if ui >= self.first_loop_unit {
                self.issue_loop_unit(ui);
            } else {
                // Pop candidates until one fires (or none can).
                let mut tried = 0usize;
                let max_tries = self.unit_candidates[ui].len();
                while tried < max_tries {
                    let Some(&n) = self.unit_candidates[ui].front() else {
                        break;
                    };
                    if self.track_groups && self.node_group[n as usize] != self.active_group {
                        // Wrong group: keep waiting without burning the
                        // slot (rotation == pop+requeue, counters cancel).
                        self.unit_candidates[ui].rotate_left(1);
                        tried += 1;
                        continue;
                    }
                    self.pop_candidate(ui);
                    if self.try_fire(n) {
                        self.progressed = true;
                        break;
                    }
                    tried += 1;
                }
            }
            if !self.unit_candidates[ui].is_empty() && !self.unit_queued[ui] {
                self.unit_queued[ui] = true;
                self.active_units.push(u);
            }
        }
        work.clear();
        self.issue_work = work; // empty; buffer reused next cycle
        std::mem::swap(&mut self.active_units, &mut leftover);
        self.issue_leftover = leftover; // now empty; buffer reused next cycle
    }

    fn pending_work(&self) -> bool {
        self.cand_count > 0
            || !self.events.is_empty()
            || !self.flits.is_empty()
            || self.link_wait_count > 0
            || self.parked_count > 0
    }

    fn run_to_quiescence(&mut self, max_cycles: u64) -> Result<(), SimError> {
        let mut idle_streak = 0u64;
        while self.pending_work() {
            if self.cycle >= max_cycles {
                return Err(SimError::CycleLimit { limit: max_cycles });
            }
            self.progressed = false;
            self.process_events();
            self.advance_flits();
            self.group_logic();
            self.issue();
            if self.trace.is_some() {
                let cycle = self.cycle;
                let qd = self.events.len() as u64;
                let inflight = (self.flits.len() + self.link_wait_count + self.parked_count) as u64;
                if let Some(t) = self.trace.as_deref_mut() {
                    t.counters(cycle, qd, inflight);
                }
            }
            if self.progressed {
                idle_streak = 0;
                self.cycle += 1;
                continue;
            }
            // Nothing happened: fast-forward to the next interesting cycle.
            // All scans below touch only the active-unit list, so an idle
            // machine costs O(active units), not O(all units).
            let mut next: Option<u64> = self.events.next_at();
            if !self.flits.is_empty() || self.link_wait_count > 0 {
                // In-transit and link-blocked flits arbitrate every cycle.
                next = Some(next.map_or(self.cycle + 1, |n| n.min(self.cycle + 1)));
            }
            // Parked flits add no wakeup of their own: their queues only
            // gain space through a firing, so the next state change is
            // bounded by the other sources below; bulk stall accounting
            // (delivery_cycle - first_attempt) is unaffected by skipped
            // cycles. If nothing else is pending, the machine is provably
            // wedged and the idle streak below diagnoses the deadlock.
            if self.tm.exclusive_groups {
                if self.switch_until > self.cycle {
                    next = Some(next.map_or(self.switch_until, |n| n.min(self.switch_until)));
                } else if self.cand_count > self.grp_cand_total {
                    // O(1) "any waiter outside the active group?" — the
                    // group-candidate counters make the old active-unit
                    // scan unnecessary.
                    let t = self.last_active_fire + u64::from(self.tm.idle_switch_threshold) + 1;
                    let t = t.max(self.cycle + 1);
                    next = Some(next.map_or(t, |n| n.min(t)));
                }
            }
            // Units busy in the future holding candidates.
            for &u in &self.active_units {
                let ui = u as usize;
                if !self.unit_candidates[ui].is_empty() && self.unit_free_at[ui] > self.cycle {
                    let t = self.unit_free_at[ui];
                    next = Some(next.map_or(t, |n| n.min(t)));
                }
            }
            match next {
                Some(t) if t > self.cycle => {
                    self.cycle = t;
                    idle_streak = 0;
                }
                _ => {
                    idle_streak += 1;
                    self.cycle += 1;
                    if idle_streak > 64 {
                        let waiting: Vec<u32> = self
                            .unit_candidates
                            .iter()
                            .flatten()
                            .copied()
                            .take(8)
                            .collect();
                        return Err(SimError::Deadlock {
                            cycle: self.cycle,
                            detail: format!(
                                "{} flits ({} blocked at destination), {} events, waiting nodes {:?}",
                                self.flits.len() + self.link_wait_count + self.parked_count,
                                self.parked_count,
                                self.events.len(),
                                waiting
                            ),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}
