//! The cycle-level machine: executes a placed [`MachineProgram`] under a
//! [`TimingModel`].
//!
//! The machine is a synchronous token simulator:
//!
//! - every PE has a **data flow part** (one FU issue per cycle among its
//!   resident operators) and, on Marionette-style models, a **control
//!   flow part** issuing control operators in parallel (temporal
//!   decoupling, Fig 4);
//! - inter-tile data tokens traverse the mesh as flits, one link per
//!   cycle, one flit per directed link per cycle (contention is real);
//! - control tokens either ride the dedicated control network
//!   (fixed-path, one cycle, per-route serialization — Fig 6) or the
//!   mesh, per the timing model;
//! - configuration behaviour is modeled through group exclusivity and
//!   switch costs (CCU round trips for von Neumann machines, cheap
//!   proactive switches for non-agile Marionette) plus the per-firing
//!   configure overhead of dataflow PEs;
//! - operator firing semantics are identical to the reference
//!   interpreter's (`marionette-cdfg::interp`), including predicated
//!   (poison) execution — integration tests assert cycle-level runs
//!   produce bit-identical outputs.
//!
//! ## Engineering notes (hot loop)
//!
//! The simulator is the throughput bottleneck of the whole evaluation
//! sweep, so the core is event-driven and allocation-lean:
//!
//! - tokens in flight live in a single payload-carrying min-heap keyed by
//!   `(cycle, sequence)` — one pop per delivered token, no side table;
//! - sink labels are interned at construction; a sink firing is a dense
//!   `Vec` push, never a `HashMap<String, _>` probe;
//! - issue work comes from a maintained list of *active units* (units
//!   holding at least one ready candidate), so a quiescent cycle costs
//!   O(changed units), not O(all units), and the idle fast-forward path
//!   inspects only that list.

use crate::fault::FaultSet;
use crate::stats::{GroupStats, RunStats, UnitStats};
use crate::timing::{CtrlTransport, TimingModel};
use marionette_cdfg::op::{Op, SteerRole};
use marionette_cdfg::value::Value;
use marionette_isa::{MachineProgram, OperandSrc, Placement, RouteClass};
use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::fmt;
/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// No progress is possible but tokens remain.
    Deadlock {
        /// Cycle at which the machine wedged.
        cycle: u64,
        /// Diagnostic description.
        detail: String,
    },
    /// The cycle budget was exhausted.
    CycleLimit {
        /// The exceeded budget.
        limit: u64,
    },
    /// A workload array does not exist in the program.
    UnknownArray(String),
    /// A parameter override does not exist in the program.
    UnknownParam(String),
    /// The bitstream touches a dead fabric resource from the injected
    /// [`FaultSet`] — diagnosed at machine construction, before any cycle
    /// runs, and distinguishable from a generic [`SimError::Deadlock`].
    Fault {
        /// The faulted resource, in fault-spec syntax (e.g. `pe:1,2`).
        what: String,
        /// Which part of the program touches it.
        detail: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { cycle, detail } => {
                write!(f, "deadlock at cycle {cycle}: {detail}")
            }
            SimError::CycleLimit { limit } => write!(f, "cycle limit {limit} exceeded"),
            SimError::UnknownArray(a) => write!(f, "unknown workload array {a}"),
            SimError::UnknownParam(p) => write!(f, "unknown parameter {p}"),
            SimError::Fault { what, detail } => {
                write!(f, "faulted resource {what}: {detail}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Result of one run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Run statistics (cycles, utilization, transport counters).
    pub stats: RunStats,
    /// Final contents of every array, by program array index.
    pub memory: Vec<Vec<Value>>,
    /// Sink collections by label.
    pub sinks: HashMap<String, Vec<Value>>,
    /// Out-of-bounds accesses observed (should be zero).
    pub oob_events: u64,
}

impl RunResult {
    /// Final contents of a named array, borrowed from the result.
    pub fn array(&self, prog: &MachineProgram, name: &str) -> Option<&[Value]> {
        prog.arrays
            .iter()
            .position(|a| a.name == name)
            .map(|i| self.memory[i].as_slice())
    }
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum SeqState {
    Fresh,
    Looping,
    Held(Value),
}

#[derive(Clone, Debug)]
enum EvKind {
    Deliver {
        node: u32,
        port: u8,
        value: Value,
        route: Option<u32>,
    },
    SpawnFlit {
        route: u32,
        value: Value,
    },
}

/// A scheduled event carrying its payload. Ordered so that
/// `BinaryHeap::pop` yields the earliest `(at, seq)` first — a single
/// min-heap replaces the old key-heap + payload-map pair, halving the
/// bookkeeping per delivered token.
#[derive(Clone, Debug)]
struct Ev {
    at: u64,
    seq: u64,
    kind: EvKind,
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for Ev {}

impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ev {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

#[derive(Clone, Debug)]
struct Flit {
    route: u32,
    hop: usize,
    value: Value,
    alive: bool,
    /// Spawn order; ties between flits are always broken by serial, which
    /// reproduces the old single-vector iteration order.
    serial: u64,
    /// Earliest cycle the flit may take its next link (link latency).
    ready_at: u64,
}

/// A flit that reached its destination tile but found the input queue
/// full. Parked flits leave the per-cycle traversal loop entirely; their
/// stall cycles are accounted in bulk on delivery
/// (`delivery_cycle - first_attempt`), which equals the old
/// one-increment-per-blocked-cycle bookkeeping exactly.
#[derive(Clone, Debug)]
struct ParkedFlit {
    serial: u64,
    route: u32,
    value: Value,
    /// First cycle a delivery was attempted (last hop cycle + 1).
    first_attempt: u64,
}

#[derive(Clone, Copy, Debug)]
enum ConsLink {
    Local { node: u32, port: u8 },
    Remote { route: u32 },
}

/// Unit index space: data PEs, then control parts, then net switches,
/// then memory stream units.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct UnitId(usize);

struct Machine<'p> {
    prog: &'p MachineProgram,
    tm: &'p TimingModel,
    npes: usize,
    cols: usize,
    // topology of units
    node_unit: Vec<UnitId>,
    // Flat, cache-friendly copies of the per-node metadata the hot loop
    // reads every firing (NodeConfig is large and heap-indirected).
    /// Operand selectors, flat-indexed by `port_base[node] + port`.
    src_of: Vec<OperandSrc>,
    node_group: Vec<u16>,
    node_bb: Vec<u16>,
    node_op: Vec<Op>,
    node_place: Vec<Placement>,
    node_is_mem: Vec<bool>,
    /// Loop-header basic blocks: their operators form one *loop unit*
    /// (the paper's Loop operator / stream generators of the baselines)
    /// that evaluates combinationally once per cycle.
    header_bb: Vec<bool>,
    /// First unit index that is a loop unit (loop units occupy the tail
    /// of the unit index space).
    first_loop_unit: usize,
    last_fire_cycle: Vec<u64>,
    unit_free_at: Vec<u64>,
    unit_candidates: Vec<VecDeque<u32>>,
    in_candidates: Vec<bool>,
    /// Units that currently hold at least one candidate, in insertion
    /// order (sorted on use). `unit_queued` mirrors membership.
    active_units: Vec<u32>,
    unit_queued: Vec<bool>,
    /// Total candidates across all units (== sum of deque lengths).
    cand_count: usize,
    // queues
    port_base: Vec<usize>,
    queues: Vec<VecDeque<Value>>,
    /// Tokens emitted but not yet delivered (local/control-network), per
    /// queue: capacity checks count them so deliveries never find a full
    /// queue and per-edge FIFO order is preserved.
    reserved: Vec<usize>,
    blocked_on_queue: Vec<Vec<u32>>,
    // routing: consumer links in CSR layout (`cons_base[n]..cons_base[n+1]`
    // indexes `cons_links`), so emission walks a flat slice by index with
    // no per-firing list take/restore.
    cons_base: Vec<u32>,
    cons_links: Vec<ConsLink>,
    route_inflight: Vec<usize>,
    blocked_on_route: Vec<Vec<u32>>,
    route_next_free: Vec<u64>,
    link_used: Vec<u64>,
    /// Per-directed-link flaky multiplier (1 = nominal), indexed like
    /// `link_used`; empty unless `has_flaky`.
    flaky_mult: Vec<u64>,
    /// Fast-path gate: the healthy flit loop never reads `flaky_mult`.
    has_flaky: bool,
    /// In-transit flits only (spawn order); at-destination flits move to
    /// `parked` until their input queue has space.
    flits: Vec<Flit>,
    flit_serial: u64,
    /// Parked flits per input queue, each list in serial order.
    parked: Vec<Vec<ParkedFlit>>,
    /// Whether a queue has a non-empty parked list.
    queue_parked: Vec<bool>,
    parked_count: usize,
    /// Scratch for serial-ordered candidate wakeups after deliveries.
    deliver_buf: Vec<(u64, u32)>,
    /// Parked queues that regained space since the last delivery scan
    /// (set by `pop`): only these can accept a parked flit, so the
    /// delivery pass never rescans queues that stayed full.
    waked_queues: Vec<u32>,
    queue_waked: Vec<bool>,
    /// Reusable scratch for the issue pass (min-heap of unit indices and
    /// the carried-over registrations), kept to avoid per-cycle allocs.
    issue_heap: BinaryHeap<Reverse<u32>>,
    issue_leftover: Vec<u32>,
    // events
    events: BinaryHeap<Ev>,
    ev_seq: u64,
    // state
    seq_state: Vec<SeqState>,
    params: Vec<Value>,
    memory: Vec<Vec<Value>>,
    oob: u64,
    /// Interned sink storage: `sink_slot[node]` indexes `sink_data` /
    /// `sink_labels` (nodes sharing a label share a slot).
    sink_slot: Vec<u32>,
    sink_labels: Vec<String>,
    sink_data: Vec<Vec<Value>>,
    // groups
    active_group: u16,
    switch_until: u64,
    last_active_fire: u64,
    /// Tokens emitted but not yet delivered, per destination group:
    /// a group with in-flight traffic is not drained, so exclusive
    /// execution must not switch away from it yet.
    group_inflight: Vec<u64>,
    // stats
    stats: RunStats,
    cycle: u64,
    progressed: bool,
}

/// Runs a program to quiescence.
///
/// `inputs` overwrite array contents by name (missing arrays zero-fill);
/// `params` override scalar parameters.
///
/// # Errors
/// Returns [`SimError`] on deadlock, cycle-budget exhaustion or unknown
/// workload names.
pub fn run(
    prog: &MachineProgram,
    tm: &TimingModel,
    inputs: &[(String, Vec<Value>)],
    params: &[(String, Value)],
    max_cycles: u64,
) -> Result<RunResult, SimError> {
    run_with_faults(prog, tm, &FaultSet::none(), inputs, params, max_cycles)
}

/// Runs a program to quiescence on a faulted fabric.
///
/// A dead resource the bitstream touches (a dead tile holding a node, a
/// dead link crossed by a flit-carrying route) surfaces as
/// [`SimError::Fault`] naming the resource, before any cycle executes.
/// Flaky links only stretch traversal time — the extra cycles are charged
/// to the link-stall counters and values are never altered. An empty
/// fault set is bit-identical to [`run`].
///
/// # Errors
/// Returns [`SimError`] on a touched fault, deadlock, cycle-budget
/// exhaustion or unknown workload names.
pub fn run_with_faults(
    prog: &MachineProgram,
    tm: &TimingModel,
    faults: &FaultSet,
    inputs: &[(String, Vec<Value>)],
    params: &[(String, Value)],
    max_cycles: u64,
) -> Result<RunResult, SimError> {
    let mut m = Machine::new(prog, tm, faults)?;
    for (name, data) in inputs {
        let idx = prog
            .arrays
            .iter()
            .position(|a| &a.name == name)
            .ok_or_else(|| SimError::UnknownArray(name.clone()))?;
        let arr = &mut m.memory[idx];
        for (i, v) in data.iter().enumerate().take(arr.len()) {
            arr[i] = *v;
        }
    }
    for (name, v) in params {
        let idx = prog
            .param_by_name(name)
            .ok_or_else(|| SimError::UnknownParam(name.clone()))?;
        m.params[idx as usize] = *v;
    }
    m.boot();
    m.run_to_quiescence(max_cycles)?;
    let mut stats = m.stats;
    stats.cycles = m.cycle;
    Ok(RunResult {
        stats,
        memory: m.memory,
        sinks: m.sink_labels.into_iter().zip(m.sink_data).collect(),
        oob_events: m.oob,
    })
}

/// Dense directed-link id (`from * 4 + dir`, east/west/south/north =
/// 0/1/2/3) — the encoding shared with `marionette_net::Mesh` and
/// [`FaultSet::link_dead`].
fn link_id_for(cols: usize, from: usize, to: usize) -> usize {
    let dir = if to == from + 1 {
        0 // east
    } else if to + 1 == from {
        1 // west
    } else if to == from + cols {
        2 // south
    } else {
        3 // north
    };
    from * 4 + dir
}

impl<'p> Machine<'p> {
    fn new(
        prog: &'p MachineProgram,
        tm: &'p TimingModel,
        faults: &FaultSet,
    ) -> Result<Self, SimError> {
        let npes = prog.pe_count();
        let nmem = prog
            .nodes
            .iter()
            .filter_map(|n| match n.place {
                Placement::MemUnit { unit } => Some(unit as usize + 1),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        // Loop headers: blocks containing a Carry operator. Every header
        // block becomes a dedicated loop unit.
        let max_bb = prog
            .nodes
            .iter()
            .map(|n| n.bb as usize + 1)
            .max()
            .unwrap_or(1);
        let mut header_bb = vec![false; max_bb];
        for n in &prog.nodes {
            if matches!(n.op, Op::Carry) {
                header_bb[n.bb as usize] = true;
            }
        }
        let mut header_unit = vec![usize::MAX; max_bb];
        let first_loop_unit = 3 * npes + nmem;
        let mut next_unit = first_loop_unit;
        for (bb, is_h) in header_bb.iter().enumerate() {
            if *is_h {
                header_unit[bb] = next_unit;
                next_unit += 1;
            }
        }
        let nunits = next_unit;
        let mut port_base = Vec::with_capacity(prog.nodes.len() + 1);
        let mut total = 0usize;
        for n in &prog.nodes {
            port_base.push(total);
            total += n.srcs.len();
        }
        port_base.push(total);

        let node_unit: Vec<UnitId> = prog
            .nodes
            .iter()
            .map(|n| {
                if header_bb[n.bb as usize] && !n.op.is_memory() {
                    return UnitId(header_unit[n.bb as usize]);
                }
                match n.place {
                    Placement::Pe { pe } => UnitId(pe as usize),
                    Placement::CtrlPlane { pe } => {
                        if tm.ctrl_parallel {
                            UnitId(npes + pe as usize)
                        } else {
                            UnitId(pe as usize)
                        }
                    }
                    Placement::NetSwitch { sw } => UnitId(2 * npes + sw as usize),
                    Placement::MemUnit { unit } => UnitId(3 * npes + unit as usize),
                }
            })
            .collect();

        let mut consumers: Vec<Vec<ConsLink>> = vec![Vec::new(); prog.nodes.len()];
        for (ri, r) in prog.routes.iter().enumerate() {
            let link = if r.path.len() <= 1 {
                ConsLink::Local {
                    node: r.dst,
                    port: r.dst_port,
                }
            } else {
                ConsLink::Remote { route: ri as u32 }
            };
            consumers[r.src as usize].push(link);
        }
        let mut cons_base = Vec::with_capacity(prog.nodes.len() + 1);
        let mut cons_links = Vec::with_capacity(prog.routes.len());
        for c in &consumers {
            cons_base.push(cons_links.len() as u32);
            cons_links.extend_from_slice(c);
        }
        cons_base.push(cons_links.len() as u32);

        let src_of: Vec<OperandSrc> = prog
            .nodes
            .iter()
            .flat_map(|n| n.srcs.iter().copied())
            .collect();
        debug_assert_eq!(src_of.len(), total);
        let node_group: Vec<u16> = prog.nodes.iter().map(|n| n.group).collect();
        let node_bb: Vec<u16> = prog.nodes.iter().map(|n| n.bb).collect();
        let node_op: Vec<Op> = prog.nodes.iter().map(|n| n.op).collect();
        let node_place: Vec<Placement> = prog.nodes.iter().map(|n| n.place).collect();
        let node_is_mem: Vec<bool> = prog.nodes.iter().map(|n| n.op.is_memory()).collect();

        let memory: Vec<Vec<Value>> = prog
            .arrays
            .iter()
            .map(|a| vec![a.elem.zero(); a.len as usize])
            .collect();

        // Intern sink labels so a sink firing is a dense Vec push. Nodes
        // sharing a label share a collection slot, matching the old
        // by-label HashMap semantics.
        let mut sink_slot = vec![u32::MAX; prog.nodes.len()];
        let mut sink_labels: Vec<String> = Vec::new();
        let mut sink_data: Vec<Vec<Value>> = Vec::new();
        for (i, n) in prog.nodes.iter().enumerate() {
            if matches!(n.op, Op::Sink) {
                let label = n.label.clone().unwrap_or_default();
                let slot = match sink_labels.iter().position(|l| *l == label) {
                    Some(s) => s,
                    None => {
                        sink_labels.push(label);
                        sink_data.push(Vec::new());
                        sink_labels.len() - 1
                    }
                };
                sink_slot[i] = slot as u32;
            }
        }

        let cols = prog.cols as usize;
        if !faults.is_empty() {
            if faults.cols() != cols || faults.rows() * faults.cols() != npes {
                return Err(SimError::Fault {
                    what: format!("fabric:{}x{}", faults.rows(), faults.cols()),
                    detail: format!(
                        "fault set geometry does not match the {}x{} program fabric",
                        npes / cols.max(1),
                        cols
                    ),
                });
            }
            // Dead tiles: nothing may execute on their data or control
            // plane. The tile's mesh router survives, so pass-through
            // flits and NetSwitch/MemUnit placements are unaffected.
            for (i, n) in prog.nodes.iter().enumerate() {
                let pe = match n.place {
                    Placement::Pe { pe } | Placement::CtrlPlane { pe } => pe as usize,
                    _ => continue,
                };
                if faults.pe_dead(pe) {
                    return Err(SimError::Fault {
                        what: format!("pe:{},{}", pe / cols, pe % cols),
                        detail: format!("node {i} ({:?}) is placed on the dead tile", n.op),
                    });
                }
            }
            // Dead links: fault exactly the routes that would put flits
            // on the mesh — control-network transfers and combinational
            // loop-unit internals never touch mesh links.
            for (ri, r) in prog.routes.iter().enumerate() {
                if r.path.len() <= 1 {
                    continue;
                }
                if r.class == RouteClass::Ctrl
                    && matches!(tm.ctrl_transport, CtrlTransport::CtrlNetwork { .. })
                {
                    continue;
                }
                let src_bb = prog.nodes[r.src as usize].bb as usize;
                if header_bb[src_bb]
                    && prog.nodes[r.dst as usize].bb as usize == src_bb
                    && !prog.nodes[r.dst as usize].op.is_memory()
                {
                    continue;
                }
                for w in r.path.windows(2) {
                    let (from, to) = (w[0] as usize, w[1] as usize);
                    let lid = link_id_for(cols, from, to);
                    if faults.link_dead(lid) {
                        return Err(SimError::Fault {
                            what: format!(
                                "link:{},{}-{},{}",
                                from / cols,
                                from % cols,
                                to / cols,
                                to % cols
                            ),
                            detail: format!(
                                "route {ri} ({} -> {}) crosses the dead link",
                                r.src, r.dst
                            ),
                        });
                    }
                }
            }
        }
        let has_flaky = faults.has_flaky();
        let flaky_mult: Vec<u64> = if has_flaky {
            (0..4 * npes)
                .map(|l| u64::from(faults.link_mult(l)))
                .collect()
        } else {
            Vec::new()
        };

        Ok(Machine {
            prog,
            tm,
            npes,
            cols,
            node_unit,
            src_of,
            node_group,
            node_bb,
            node_op,
            node_place,
            node_is_mem,
            header_bb,
            first_loop_unit,
            last_fire_cycle: vec![u64::MAX; prog.nodes.len()],
            unit_free_at: vec![0; nunits],
            unit_candidates: vec![VecDeque::new(); nunits],
            in_candidates: vec![false; prog.nodes.len()],
            active_units: Vec::with_capacity(nunits),
            unit_queued: vec![false; nunits],
            cand_count: 0,
            port_base,
            queues: vec![VecDeque::new(); total],
            reserved: vec![0; total],
            blocked_on_queue: vec![Vec::new(); total],
            cons_base,
            cons_links,
            route_inflight: vec![0; prog.routes.len()],
            blocked_on_route: vec![Vec::new(); prog.routes.len()],
            route_next_free: vec![0; prog.routes.len()],
            link_used: vec![u64::MAX; 4 * npes],
            flaky_mult,
            has_flaky,
            flits: Vec::new(),
            flit_serial: 0,
            parked: vec![Vec::new(); total],
            queue_parked: vec![false; total],
            parked_count: 0,
            deliver_buf: Vec::new(),
            waked_queues: Vec::new(),
            queue_waked: vec![false; total],
            issue_heap: BinaryHeap::new(),
            issue_leftover: Vec::new(),
            events: BinaryHeap::new(),
            ev_seq: 0,
            seq_state: vec![SeqState::Fresh; prog.nodes.len()],
            params: prog.params.iter().map(|p| p.default).collect(),
            memory,
            oob: 0,
            sink_slot,
            sink_labels,
            sink_data,
            active_group: 0,
            switch_until: 0,
            last_active_fire: 0,
            group_inflight: {
                let ngroups = prog
                    .nodes
                    .iter()
                    .map(|n| n.group as usize + 1)
                    .max()
                    .unwrap_or(1);
                vec![0; ngroups]
            },
            stats: RunStats {
                pe_data: vec![UnitStats::default(); npes],
                pe_ctrl: vec![UnitStats::default(); npes],
                groups: Vec::new(),
                link_stall_by_route: vec![0; prog.routes.len()],
                ..Default::default()
            },
            cycle: 0,
            progressed: false,
        })
    }

    fn boot(&mut self) {
        // Fire every Start node at cycle 0.
        for (i, n) in self.prog.nodes.iter().enumerate() {
            if matches!(n.op, Op::Start) {
                self.active_group = n.group;
                self.record_fire(i as u32, false);
                self.emit(i as u32, Value::Unit, 1);
            }
        }
    }

    fn qidx(&self, node: u32, port: u8) -> usize {
        self.port_base[node as usize] + port as usize
    }

    fn schedule(&mut self, at: u64, kind: EvKind) {
        let seq = self.ev_seq;
        self.ev_seq += 1;
        self.events.push(Ev { at, seq, kind });
    }

    fn mark_candidate(&mut self, node: u32) {
        if !self.in_candidates[node as usize] {
            self.in_candidates[node as usize] = true;
            self.cand_count += 1;
            let u = self.node_unit[node as usize].0;
            self.unit_candidates[u].push_back(node);
            if !self.unit_queued[u] {
                self.unit_queued[u] = true;
                self.active_units.push(u as u32);
            }
        }
    }

    /// Removes the front candidate of `unit`, clearing its membership.
    fn pop_candidate(&mut self, unit: usize) -> Option<u32> {
        let n = self.unit_candidates[unit].pop_front()?;
        self.in_candidates[n as usize] = false;
        self.cand_count -= 1;
        Some(n)
    }

    /// Re-enqueues a candidate that must keep waiting (wrong group / per
    /// cycle fire limit) without losing its slot.
    fn requeue_candidate(&mut self, unit: usize, node: u32) {
        self.in_candidates[node as usize] = true;
        self.cand_count += 1;
        self.unit_candidates[unit].push_back(node);
    }

    /// Latency from fire to result availability.
    fn result_latency(&self, op: Op) -> u64 {
        self.tm.result_latency(op)
    }

    /// Emits a value to all consumers of `node`.
    fn emit(&mut self, node: u32, value: Value, lat: u64) {
        let src_bb = self.node_bb[node as usize] as usize;
        let in_cluster = self.header_bb[src_bb];
        for li in self.cons_base[node as usize]..self.cons_base[node as usize + 1] {
            let link = self.cons_links[li as usize];
            // Combinational forwarding inside a loop unit: same-header
            // operators see the value in the same cycle.
            if in_cluster {
                let (dst, port) = match link {
                    ConsLink::Local { node: dst, port } => (dst, port),
                    ConsLink::Remote { route } => {
                        let r = &self.prog.routes[route as usize];
                        (r.dst, r.dst_port)
                    }
                };
                if self.node_bb[dst as usize] as usize == src_bb && !self.node_is_mem[dst as usize]
                {
                    let qi = self.qidx(dst, port);
                    self.queues[qi].push_back(value);
                    self.mark_candidate(dst);
                    continue;
                }
            }
            match link {
                ConsLink::Local { node: dst, port } => {
                    let qi = self.qidx(dst, port);
                    self.reserved[qi] += 1;
                    self.group_inflight[self.node_group[dst as usize] as usize] += 1;
                    self.schedule(
                        self.cycle + lat,
                        EvKind::Deliver {
                            node: dst,
                            port,
                            value,
                            route: None,
                        },
                    );
                }
                ConsLink::Remote { route } => {
                    let r = &self.prog.routes[route as usize];
                    self.route_inflight[route as usize] += 1;
                    self.group_inflight[self.node_group[r.dst as usize] as usize] += 1;
                    let mut extra = 0u64;
                    if r.activation {
                        extra += u64::from(self.tm.activation_extra);
                        if r.dynamic {
                            extra += u64::from(self.tm.dyn_bound_extra);
                        }
                    }
                    let is_ctrl = r.class == RouteClass::Ctrl;
                    if is_ctrl {
                        self.stats.ctrl_tokens += 1;
                    } else {
                        self.stats.data_tokens += 1;
                    }
                    match (is_ctrl, self.tm.ctrl_transport) {
                        (true, CtrlTransport::CtrlNetwork { latency }) => {
                            // Fixed-path network: one transfer per route per
                            // cycle, single-cycle traversal.
                            let qi = self.qidx(r.dst, r.dst_port);
                            self.reserved[qi] += 1;
                            let ready = self.cycle + lat + extra;
                            let slot = ready.max(self.route_next_free[route as usize]);
                            self.route_next_free[route as usize] = slot + 1;
                            self.schedule(
                                slot + u64::from(latency),
                                EvKind::Deliver {
                                    node: r.dst,
                                    port: r.dst_port,
                                    value,
                                    route: Some(route),
                                },
                            );
                        }
                        _ => {
                            self.schedule(
                                self.cycle + lat + extra,
                                EvKind::SpawnFlit { route, value },
                            );
                        }
                    }
                }
            }
        }
    }

    fn record_fire(&mut self, node: u32, poisoned: bool) {
        self.stats.fires += 1;
        let grp = self.node_group[node as usize] as usize;
        if self.stats.groups.len() <= grp {
            self.stats.groups.resize(grp + 1, GroupStats::default());
        }
        let gs = &mut self.stats.groups[grp];
        gs.fires += 1;
        gs.busy += 1;
        if gs.first_fire.is_none() {
            gs.first_fire = Some(self.cycle);
        }
        gs.last_fire = self.cycle;
        let occ = self.tm.issue_occupancy();
        match self.node_place[node as usize] {
            Placement::Pe { pe } => {
                let u = &mut self.stats.pe_data[pe as usize];
                u.busy += occ;
                if poisoned {
                    u.poison_fires += 1;
                } else {
                    u.useful_fires += 1;
                }
            }
            Placement::CtrlPlane { pe } | Placement::NetSwitch { sw: pe } => {
                let u = &mut self.stats.pe_ctrl[pe as usize % self.npes];
                u.busy += occ;
                if poisoned {
                    u.poison_fires += 1;
                } else {
                    u.useful_fires += 1;
                }
            }
            Placement::MemUnit { .. } => {}
        }
        if self.node_group[node as usize] == self.active_group {
            self.last_active_fire = self.cycle;
        }
    }

    // ---------------- queue helpers -----------------------------------

    fn peek(&self, node: u32, port: u8) -> Option<Value> {
        match self.src_of[self.qidx(node, port)] {
            OperandSrc::Imm(v) => Some(v),
            OperandSrc::Param(p) => Some(self.params[p as usize]),
            OperandSrc::Route(_) => self.queues[self.qidx(node, port)].front().copied(),
            OperandSrc::None => None,
        }
    }

    fn avail(&self, node: u32, port: u8) -> bool {
        self.peek(node, port).is_some()
    }

    fn connected(&self, node: u32, port: u8) -> bool {
        !matches!(self.src_of[self.qidx(node, port)], OperandSrc::None)
    }

    fn pop(&mut self, node: u32, port: u8) -> Value {
        match self.src_of[self.qidx(node, port)] {
            OperandSrc::Imm(v) => v,
            OperandSrc::Param(p) => self.params[p as usize],
            OperandSrc::Route(_) => {
                let qi = self.qidx(node, port);
                let v = self.queues[qi].pop_front().expect("pop on empty queue");
                // The queue shrank: unblock producers waiting on it and
                // wake any flits parked on the freed slot.
                if self.queue_parked[qi] && !self.queue_waked[qi] {
                    self.queue_waked[qi] = true;
                    self.waked_queues.push(qi as u32);
                }
                if !self.blocked_on_queue[qi].is_empty() {
                    let blocked = std::mem::take(&mut self.blocked_on_queue[qi]);
                    for b in blocked {
                        self.mark_candidate(b);
                    }
                }
                v
            }
            OperandSrc::None => panic!("pop on unconnected port"),
        }
    }

    /// Can the node send to every consumer (queue/flight capacity)?
    /// On the first full consumer, registers the node to be re-marked
    /// when that queue/route drains and reports not-ready.
    fn output_ready(&mut self, node: u32) -> bool {
        // Read-only scan first; at most one block site is registered, so
        // the mutable part is a single deferred push (no take/restore of
        // the consumer list).
        enum Block {
            Queue(usize),
            Route(usize),
        }
        let mut block: Option<Block> = None;
        let src_bb = self.node_bb[node as usize] as usize;
        let in_cluster = self.header_bb[src_bb];
        'links: for li in self.cons_base[node as usize]..self.cons_base[node as usize + 1] {
            let link = self.cons_links[li as usize];
            if in_cluster {
                let dst = match link {
                    ConsLink::Local { node: dst, .. } => dst,
                    ConsLink::Remote { route } => self.prog.routes[route as usize].dst,
                };
                if self.node_bb[dst as usize] as usize == src_bb && !self.node_is_mem[dst as usize]
                {
                    continue; // loop-unit internal registers
                }
            }
            match link {
                ConsLink::Local { node: dst, port } => {
                    let qi = self.qidx(dst, port);
                    if self.queues[qi].len() + self.reserved[qi] >= self.tm.queue_capacity {
                        block = Some(Block::Queue(qi));
                        break 'links;
                    }
                }
                ConsLink::Remote { route } => {
                    if self.route_inflight[route as usize] >= self.tm.route_inflight_cap {
                        block = Some(Block::Route(route as usize));
                        break 'links;
                    }
                    let r = &self.prog.routes[route as usize];
                    if r.class == RouteClass::Ctrl
                        && matches!(self.tm.ctrl_transport, CtrlTransport::CtrlNetwork { .. })
                    {
                        let qi = self.qidx(r.dst, r.dst_port);
                        if self.queues[qi].len() + self.reserved[qi] >= self.tm.queue_capacity {
                            block = Some(Block::Queue(qi));
                            break 'links;
                        }
                    }
                }
            }
        }
        match block {
            None => true,
            Some(Block::Queue(qi)) => {
                self.blocked_on_queue[qi].push(node);
                false
            }
            Some(Block::Route(route)) => {
                self.blocked_on_route[route].push(node);
                false
            }
        }
    }

    // ---------------- firing ------------------------------------------

    /// Attempts to fire `node`; returns true if it fired.
    fn try_fire(&mut self, node: u32) -> bool {
        let op = self.node_op[node as usize];
        let predicated = self.tm.predicated_branches;
        macro_rules! need {
            ($($port:expr),*) => {
                if $( !self.avail(node, $port) )||* { return false; }
            };
        }
        match op {
            Op::Start => false,
            Op::Bin(b) => {
                need!(0, 1);
                if !self.output_ready(node) {
                    return false;
                }
                let x = self.pop(node, 0);
                let y = self.pop(node, 1);
                let out = b.eval(x, y);
                self.finish_fire(node, Some(out), op);
                true
            }
            Op::Un(u) => {
                need!(0);
                if !self.output_ready(node) {
                    return false;
                }
                let x = self.pop(node, 0);
                let out = u.eval(x);
                self.finish_fire(node, Some(out), op);
                true
            }
            Op::Nl(u) => {
                need!(0);
                if !self.output_ready(node) {
                    return false;
                }
                let x = self.pop(node, 0);
                let out = u.eval(x);
                self.finish_fire(node, Some(out), op);
                true
            }
            Op::Mux => {
                need!(0, 1, 2);
                if !self.output_ready(node) {
                    return false;
                }
                let p = self.pop(node, 0);
                let t = self.pop(node, 1);
                let f = self.pop(node, 2);
                let out = match p.as_bool() {
                    None => Value::Poison,
                    Some(true) => t,
                    Some(false) => f,
                };
                self.finish_fire(node, Some(out), op);
                true
            }
            Op::Load(arr) => {
                let need_dep = self.connected(node, 1);
                if !self.avail(node, 0) || (need_dep && !self.avail(node, 1)) {
                    return false;
                }
                if !self.output_ready(node) {
                    return false;
                }
                let idx = self.pop(node, 0);
                if need_dep {
                    self.pop(node, 1);
                }
                let out = if idx.is_poison() {
                    Value::Poison
                } else {
                    self.mem_load(arr.0 as usize, idx.to_i32_lossy())
                };
                self.finish_fire(node, Some(out), op);
                true
            }
            Op::Store(arr) => {
                let need_dep = self.connected(node, 2);
                if !(self.avail(node, 0) && self.avail(node, 1))
                    || (need_dep && !self.avail(node, 2))
                {
                    return false;
                }
                if !self.output_ready(node) {
                    return false;
                }
                let idx = self.pop(node, 0);
                let val = self.pop(node, 1);
                if need_dep {
                    self.pop(node, 2);
                }
                let poisoned = idx.is_poison() || val.is_poison();
                if !poisoned {
                    self.mem_store(arr.0 as usize, idx.to_i32_lossy(), val);
                }
                self.finish_fire_poison(node, Some(Value::Unit), op, poisoned);
                true
            }
            Op::Gate => {
                let val_tok = matches!(self.src_of[self.qidx(node, 1)], OperandSrc::Route(_));
                if !self.avail(node, 0) || (val_tok && !self.avail(node, 1)) {
                    return false;
                }
                if !self.output_ready(node) {
                    return false;
                }
                let trig = self.pop(node, 0);
                let v = self.pop(node, 1);
                let out = if trig.is_poison() { Value::Poison } else { v };
                self.finish_fire(node, Some(out), op);
                true
            }
            Op::Steer { sense, role } => {
                need!(0, 1);
                if !self.output_ready(node) {
                    return false;
                }
                let p = self.pop(node, 0);
                let v = self.pop(node, 1);
                let pred_mode = predicated && role == SteerRole::Branch;
                if pred_mode {
                    let out = match p.as_bool() {
                        Some(b) if b == sense => v,
                        _ => Value::Poison,
                    };
                    let poisoned = out.is_poison();
                    self.finish_fire_poison(node, Some(out), op, poisoned);
                } else if p.as_bool() == Some(sense) {
                    self.finish_fire(node, Some(v), op);
                } else {
                    self.finish_fire(node, None, op);
                }
                true
            }
            Op::Merge { role } => {
                let pred_mode = predicated && role == SteerRole::Branch;
                if pred_mode {
                    need!(0, 1, 2);
                    if !self.output_ready(node) {
                        return false;
                    }
                    let p = self.pop(node, 0);
                    let t = self.pop(node, 1);
                    let f = self.pop(node, 2);
                    let out = match p.as_bool() {
                        None => Value::Poison,
                        Some(true) => t,
                        Some(false) => f,
                    };
                    self.finish_fire(node, Some(out), op);
                    true
                } else {
                    let Some(p) = self.peek(node, 0) else {
                        return false;
                    };
                    let side = if p.as_bool() == Some(true) { 1 } else { 2 };
                    if !self.avail(node, side) {
                        return false;
                    }
                    if !self.output_ready(node) {
                        return false;
                    }
                    self.pop(node, 0);
                    let v = self.pop(node, side);
                    self.finish_fire(node, Some(v), op);
                    true
                }
            }
            Op::Carry => match self.seq_state[node as usize] {
                SeqState::Fresh => {
                    if !self.avail(node, 1) {
                        return false;
                    }
                    if !self.output_ready(node) {
                        return false;
                    }
                    let init = self.pop(node, 1);
                    self.seq_state[node as usize] = SeqState::Looping;
                    self.finish_fire(node, Some(init), op);
                    true
                }
                SeqState::Looping => {
                    let Some(last) = self.peek(node, 0) else {
                        return false;
                    };
                    if !self.avail(node, 2) {
                        return false;
                    }
                    if !self.output_ready(node) {
                        return false;
                    }
                    self.pop(node, 0);
                    let next = self.pop(node, 2);
                    if last.as_bool() == Some(false) {
                        self.finish_fire(node, Some(next), op);
                    } else {
                        self.seq_state[node as usize] = SeqState::Fresh;
                        self.finish_fire(node, None, op);
                    }
                    true
                }
                SeqState::Held(_) => unreachable!("carry never holds"),
            },
            Op::Inv => match self.seq_state[node as usize] {
                SeqState::Fresh => {
                    if !self.avail(node, 0) {
                        return false;
                    }
                    if !self.output_ready(node) {
                        return false;
                    }
                    let v = self.pop(node, 0);
                    self.seq_state[node as usize] = SeqState::Held(v);
                    self.finish_fire(node, Some(v), op);
                    true
                }
                SeqState::Held(v) => {
                    if !self.avail(node, 1) {
                        return false;
                    }
                    if !self.output_ready(node) {
                        return false;
                    }
                    let last = self.pop(node, 1);
                    if last.as_bool() == Some(false) {
                        self.finish_fire(node, Some(v), op);
                    } else {
                        self.seq_state[node as usize] = SeqState::Fresh;
                        self.finish_fire(node, None, op);
                    }
                    true
                }
                SeqState::Looping => unreachable!("inv never loops"),
            },
            Op::Sink => {
                need!(0);
                let v = self.pop(node, 0);
                let slot = self.sink_slot[node as usize] as usize;
                self.sink_data[slot].push(v);
                self.record_fire(node, false);
                true
            }
        }
    }

    fn finish_fire(&mut self, node: u32, out: Option<Value>, op: Op) {
        let poisoned = matches!(out, Some(Value::Poison));
        self.finish_fire_poison(node, out, op, poisoned);
    }

    fn finish_fire_poison(&mut self, node: u32, out: Option<Value>, op: Op, poisoned: bool) {
        self.record_fire(node, poisoned);
        self.last_fire_cycle[node as usize] = self.cycle;
        let u = self.node_unit[node as usize];
        self.unit_free_at[u.0] = self.cycle + self.tm.issue_occupancy();
        if let Some(v) = out {
            let lat = self.result_latency(op);
            self.emit(node, v, lat);
        }
        // The node may be immediately ready again.
        self.mark_candidate(node);
    }

    fn mem_load(&mut self, arr: usize, idx: i32) -> Value {
        let a = &self.memory[arr];
        if idx < 0 || idx as usize >= a.len() {
            self.oob += 1;
            return Value::I32(0);
        }
        a[idx as usize]
    }

    fn mem_store(&mut self, arr: usize, idx: i32, v: Value) {
        let a = &mut self.memory[arr];
        if idx < 0 || idx as usize >= a.len() {
            self.oob += 1;
            return;
        }
        a[idx as usize] = v;
    }

    // ---------------- cycle loop ---------------------------------------

    fn handle_event(&mut self, kind: EvKind) {
        self.progressed = true;
        match kind {
            EvKind::Deliver {
                node,
                port,
                value,
                route,
            } => {
                let qi = self.qidx(node, port);
                debug_assert!(
                    self.queues[qi].len() < self.tm.queue_capacity,
                    "reservation guarantees space"
                );
                self.reserved[qi] = self.reserved[qi].saturating_sub(1);
                let dg = self.node_group[node as usize] as usize;
                self.group_inflight[dg] = self.group_inflight[dg].saturating_sub(1);
                self.queues[qi].push_back(value);
                if let Some(r) = route {
                    self.route_inflight[r as usize] -= 1;
                    if !self.blocked_on_route[r as usize].is_empty() {
                        let blocked = std::mem::take(&mut self.blocked_on_route[r as usize]);
                        for b in blocked {
                            self.mark_candidate(b);
                        }
                    }
                }
                self.mark_candidate(node);
            }
            EvKind::SpawnFlit { route, value } => {
                let serial = self.flit_serial;
                self.flit_serial += 1;
                self.flits.push(Flit {
                    route,
                    hop: 0,
                    value,
                    alive: true,
                    serial,
                    ready_at: self.cycle,
                });
            }
        }
    }

    fn process_events(&mut self) {
        while let Some(ev) = self.events.peek() {
            if ev.at > self.cycle {
                break;
            }
            let ev = self.events.pop().expect("peeked event");
            self.handle_event(ev.kind);
        }
    }

    fn link_id(&self, from: usize, to: usize) -> usize {
        link_id_for(self.cols, from, to)
    }

    /// Attempts delivery of parked (at-destination) flits. Per queue the
    /// serial-smallest flits deliver while space lasts; candidate wakeups
    /// are then applied in global serial order, which is exactly the old
    /// one-vector iteration order.
    fn deliver_parked(&mut self) {
        // A parked flit can only deliver after its queue regained space,
        // i.e. after a `pop` on that queue (flit-fed queues receive no
        // other traffic), so only waked queues need a look.
        if self.waked_queues.is_empty() {
            return;
        }
        self.deliver_buf.clear();
        let mut waked = std::mem::take(&mut self.waked_queues);
        for &q in &waked {
            let qi = q as usize;
            self.queue_waked[qi] = false;
            if !self.queue_parked[qi] {
                continue;
            }
            let space = self.tm.queue_capacity.saturating_sub(self.queues[qi].len());
            if space == 0 {
                continue; // refilled before the scan; await the next pop
            }
            let take_n = self.parked[qi].len().min(space);
            for k in 0..take_n {
                let pf = self.parked[qi][k].clone();
                let r = &self.prog.routes[pf.route as usize];
                let dg = self.node_group[r.dst as usize] as usize;
                self.group_inflight[dg] = self.group_inflight[dg].saturating_sub(1);
                self.queues[qi].push_back(pf.value);
                self.route_inflight[pf.route as usize] -= 1;
                // All cycles spent waiting, one stall per blocked cycle.
                self.stats.link_stall_cycles += self.cycle - pf.first_attempt;
                self.stats.link_stall_by_route[pf.route as usize] += self.cycle - pf.first_attempt;
                self.parked_count -= 1;
                self.progressed = true;
                self.deliver_buf.push((pf.serial, pf.route));
            }
            self.parked[qi].drain(..take_n);
            if self.parked[qi].is_empty() {
                self.queue_parked[qi] = false;
            }
        }
        waked.clear();
        self.waked_queues = waked;
        self.deliver_buf.sort_unstable_by_key(|&(s, _)| s);
        let buf = std::mem::take(&mut self.deliver_buf);
        for &(_, route) in &buf {
            let dst = self.prog.routes[route as usize].dst;
            let blocked = std::mem::take(&mut self.blocked_on_route[route as usize]);
            for b in blocked {
                self.mark_candidate(b);
            }
            self.mark_candidate(dst);
        }
        self.deliver_buf = buf;
    }

    /// Parks a flit that completed its last hop: it re-enters delivery
    /// arbitration (serial order per queue) starting next cycle.
    fn park_flit(&mut self, fi: usize) {
        let f = &self.flits[fi];
        let r = &self.prog.routes[f.route as usize];
        let qi = self.qidx(r.dst, r.dst_port);
        let pf = ParkedFlit {
            serial: f.serial,
            route: f.route,
            value: f.value,
            first_attempt: self.cycle + 1,
        };
        // Same-queue flits ride the same route, so serials arrive in
        // order; insertion keeps the list sorted even if they did not.
        let pos = self.parked[qi]
            .binary_search_by_key(&pf.serial, |p| p.serial)
            .unwrap_err();
        self.parked[qi].insert(pos, pf);
        self.parked_count += 1;
        self.queue_parked[qi] = true;
        // If the queue already has space the first attempt (next cycle)
        // must run; otherwise the enabling pop will set the wake flag.
        if self.queues[qi].len() < self.tm.queue_capacity && !self.queue_waked[qi] {
            self.queue_waked[qi] = true;
            self.waked_queues.push(qi as u32);
        }
        self.flits[fi].alive = false;
    }

    fn advance_flits(&mut self) {
        self.deliver_parked();
        if self.flits.is_empty() {
            return;
        }
        let mut any_parked = false;
        for fi in 0..self.flits.len() {
            if self.flits[fi].ready_at > self.cycle {
                continue; // still traversing the previous link
            }
            let route = self.flits[fi].route as usize;
            let hop = self.flits[fi].hop;
            let r = &self.prog.routes[route];
            if hop + 1 >= r.path.len() {
                // The final hop finished a stretched (flaky-link)
                // traversal: deliver now that `ready_at` has arrived.
                self.park_flit(fi);
                any_parked = true;
                self.progressed = true;
                continue;
            }
            let from = r.path[hop] as usize;
            let to = r.path[hop + 1] as usize;
            let lid = self.link_id(from, to);
            if self.link_used[lid] != self.cycle {
                self.link_used[lid] = self.cycle;
                self.flits[fi].hop += 1;
                let base = u64::from(self.tm.link_latency);
                let mut lat = base;
                if self.has_flaky {
                    let mult = self.flaky_mult[lid];
                    if mult > 1 {
                        // A flaky link only stretches time: the extra
                        // traversal cycles are charged as link stalls
                        // (mirrored by the compiler's cost penalty) and
                        // the value is untouched.
                        let extra = base.max(1) * (mult - 1);
                        self.stats.link_stall_cycles += extra;
                        self.stats.link_stall_by_route[route] += extra;
                        lat += extra;
                    }
                }
                self.flits[fi].ready_at = self.cycle + lat;
                self.stats.mesh_hops += 1;
                self.progressed = true;
                if self.flits[fi].hop + 1 >= r.path.len() && lat == base {
                    // Nominal links deliver at grant time (the healthy
                    // fast path); a stretched final hop stays in flight
                    // until `ready_at` and is delivered above.
                    self.park_flit(fi);
                    any_parked = true;
                }
            } else {
                self.stats.link_stall_cycles += 1;
                self.stats.link_stall_by_route[route] += 1;
            }
        }
        if any_parked {
            self.flits.retain(|f| f.alive);
        }
    }

    /// Active units in ascending unit order (issue priority is by unit
    /// index, exactly like the old full-array scan).
    fn sorted_active_units(&self) -> Vec<u32> {
        let mut units = self.active_units.clone();
        units.sort_unstable();
        units
    }

    fn group_logic(&mut self) {
        if !self.tm.exclusive_groups {
            return;
        }
        if self.cycle < self.switch_until {
            self.stats.switch_stall_cycles += 1;
            return;
        }
        let idle = self.cycle.saturating_sub(self.last_active_fire);
        if idle <= u64::from(self.tm.idle_switch_threshold) {
            return;
        }
        // Only switch once the active group is truly drained: no tokens in
        // flight toward it (a transient memory/route stall is not a phase
        // boundary). A long stall overrides the drain check — the pending
        // tokens may themselves depend on another group's output.
        let drained = self
            .group_inflight
            .get(self.active_group as usize)
            .copied()
            .unwrap_or(0)
            == 0;
        if !drained && idle <= u64::from(self.tm.idle_switch_threshold) + 4 {
            return;
        }
        // Active group is idle: find another group with waiting candidates.
        let mut target: Option<u16> = None;
        'outer: for &ui in &self.sorted_active_units() {
            for &n in &self.unit_candidates[ui as usize] {
                let g = self.node_group[n as usize];
                if g != self.active_group {
                    target = Some(g);
                    break 'outer;
                }
            }
        }
        if let Some(g) = target {
            self.active_group = g;
            self.switch_until = self.cycle + u64::from(self.tm.group_switch_cost);
            self.last_active_fire = self.switch_until;
            self.stats.group_switches += 1;
        }
    }

    /// Issues on one loop unit: evaluate the whole header cluster to
    /// fixpoint (each member at most once per cycle) — the paper's Loop
    /// operator sustains one iteration per cycle.
    fn issue_loop_unit(&mut self, ui: usize) {
        let mut fired_any = false;
        let mut guard = 0usize;
        loop {
            let mut fired_round = false;
            let len = self.unit_candidates[ui].len();
            for _ in 0..len {
                let Some(n) = self.pop_candidate(ui) else {
                    break;
                };
                if self.last_fire_cycle[n as usize] == self.cycle
                    || (self.tm.exclusive_groups
                        && self.node_group[n as usize] != self.active_group)
                {
                    self.requeue_candidate(ui, n);
                    continue;
                }
                if self.try_fire(n) {
                    fired_round = true;
                    fired_any = true;
                }
            }
            guard += 1;
            if !fired_round || guard > 64 {
                break;
            }
        }
        if fired_any {
            self.progressed = true;
            self.unit_free_at[ui] = self.cycle + self.tm.issue_occupancy();
        }
    }

    fn issue(&mut self) {
        if self.tm.exclusive_groups && self.cycle < self.switch_until {
            return; // the array is stalled while configurations change
        }
        // Visit only units holding candidates, in ascending unit order —
        // the same priority as the old 0..nunits scan. A unit activated
        // *during* the pass (e.g. a producer unblocked by a queue pop)
        // joins this cycle's walk iff its index is still ahead of the
        // cursor, exactly as the linear scan would have reached it.
        // Reuse persistent scratch buffers: the issue pass runs every
        // active cycle and must not allocate.
        let mut heap = std::mem::take(&mut self.issue_heap);
        for &u in &self.active_units {
            heap.push(Reverse(u));
        }
        self.active_units.clear();
        let mut leftover = std::mem::take(&mut self.issue_leftover);
        let mut last: Option<u32> = None;
        loop {
            // Absorb activations that appeared while processing.
            for i in 0..self.active_units.len() {
                let u = self.active_units[i];
                if last.is_none_or(|l| u > l) {
                    heap.push(Reverse(u));
                } else {
                    leftover.push(u);
                }
            }
            self.active_units.clear();
            let Some(Reverse(u)) = heap.pop() else { break };
            last = Some(u);
            let ui = u as usize;
            // Leaving the active list; firing/requeueing below re-adds.
            self.unit_queued[ui] = false;
            if self.unit_free_at[ui] > self.cycle {
                // Busy until a future cycle: stay registered, skip work.
                self.unit_queued[ui] = true;
                self.active_units.push(u);
                continue;
            }
            if self.unit_candidates[ui].is_empty() {
                continue; // drained earlier this cycle (stale entry)
            }
            if ui >= self.first_loop_unit {
                self.issue_loop_unit(ui);
            } else {
                // Pop candidates until one fires (or none can).
                let mut tried = 0usize;
                let max_tries = self.unit_candidates[ui].len();
                while tried < max_tries {
                    let Some(n) = self.pop_candidate(ui) else {
                        break;
                    };
                    if self.tm.exclusive_groups && self.node_group[n as usize] != self.active_group
                    {
                        // Wrong group: keep waiting without burning the slot.
                        self.requeue_candidate(ui, n);
                        tried += 1;
                        continue;
                    }
                    if self.try_fire(n) {
                        self.progressed = true;
                        break;
                    }
                    tried += 1;
                }
            }
            if !self.unit_candidates[ui].is_empty() && !self.unit_queued[ui] {
                self.unit_queued[ui] = true;
                self.active_units.push(u);
            }
        }
        leftover.append(&mut self.active_units);
        std::mem::swap(&mut self.active_units, &mut leftover);
        self.issue_leftover = leftover; // now empty; buffer reused next cycle
        self.issue_heap = heap; // drained; buffer reused next cycle
    }

    fn pending_work(&self) -> bool {
        self.cand_count > 0
            || !self.events.is_empty()
            || !self.flits.is_empty()
            || self.parked_count > 0
    }

    fn run_to_quiescence(&mut self, max_cycles: u64) -> Result<(), SimError> {
        let mut idle_streak = 0u64;
        while self.pending_work() {
            if self.cycle >= max_cycles {
                return Err(SimError::CycleLimit { limit: max_cycles });
            }
            self.progressed = false;
            self.process_events();
            self.advance_flits();
            self.group_logic();
            self.issue();
            if self.progressed {
                idle_streak = 0;
                self.cycle += 1;
                continue;
            }
            // Nothing happened: fast-forward to the next interesting cycle.
            // All scans below touch only the active-unit list, so an idle
            // machine costs O(active units), not O(all units).
            let mut next: Option<u64> = self.events.peek().map(|ev| ev.at);
            if !self.flits.is_empty() {
                // In-transit flits arbitrate for links every cycle.
                next = Some(next.map_or(self.cycle + 1, |n| n.min(self.cycle + 1)));
            }
            // Parked flits add no wakeup of their own: their queues only
            // gain space through a firing, so the next state change is
            // bounded by the other sources below; bulk stall accounting
            // (delivery_cycle - first_attempt) is unaffected by skipped
            // cycles. If nothing else is pending, the machine is provably
            // wedged and the idle streak below diagnoses the deadlock.
            if self.tm.exclusive_groups {
                if self.switch_until > self.cycle {
                    next = Some(next.map_or(self.switch_until, |n| n.min(self.switch_until)));
                } else if self.active_units.iter().any(|&u| {
                    self.unit_candidates[u as usize]
                        .iter()
                        .any(|&n| self.node_group[n as usize] != self.active_group)
                }) {
                    let t = self.last_active_fire + u64::from(self.tm.idle_switch_threshold) + 1;
                    let t = t.max(self.cycle + 1);
                    next = Some(next.map_or(t, |n| n.min(t)));
                }
            }
            // Units busy in the future holding candidates.
            for &u in &self.active_units {
                let ui = u as usize;
                if !self.unit_candidates[ui].is_empty() && self.unit_free_at[ui] > self.cycle {
                    let t = self.unit_free_at[ui];
                    next = Some(next.map_or(t, |n| n.min(t)));
                }
            }
            match next {
                Some(t) if t > self.cycle => {
                    self.cycle = t;
                    idle_streak = 0;
                }
                _ => {
                    idle_streak += 1;
                    self.cycle += 1;
                    if idle_streak > 64 {
                        let waiting: Vec<u32> = self
                            .unit_candidates
                            .iter()
                            .flatten()
                            .copied()
                            .take(8)
                            .collect();
                        return Err(SimError::Deadlock {
                            cycle: self.cycle,
                            detail: format!(
                                "{} flits ({} blocked at destination), {} events, waiting nodes {:?}",
                                self.flits.len() + self.parked_count,
                                self.parked_count,
                                self.events.len(),
                                waiting
                            ),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}
