//! The cycle-level machine: executes a placed [`MachineProgram`] under a
//! [`TimingModel`].
//!
//! The machine is a synchronous token simulator:
//!
//! - every PE has a **data flow part** (one FU issue per cycle among its
//!   resident operators) and, on Marionette-style models, a **control
//!   flow part** issuing control operators in parallel (temporal
//!   decoupling, Fig 4);
//! - inter-tile data tokens traverse the mesh as flits, one link per
//!   cycle, one flit per directed link per cycle (contention is real);
//! - control tokens either ride the dedicated control network
//!   (fixed-path, one cycle, per-route serialization — Fig 6) or the
//!   mesh, per the timing model;
//! - configuration behaviour is modeled through group exclusivity and
//!   switch costs (CCU round trips for von Neumann machines, cheap
//!   proactive switches for non-agile Marionette) plus the per-firing
//!   configure overhead of dataflow PEs;
//! - operator firing semantics are identical to the reference
//!   interpreter's (`marionette-cdfg::interp`), including predicated
//!   (poison) execution — integration tests assert cycle-level runs
//!   produce bit-identical outputs.

use crate::stats::{GroupStats, RunStats, UnitStats};
use crate::timing::{CtrlTransport, TimingModel};
use marionette_cdfg::op::{Op, SteerRole};
use marionette_cdfg::value::Value;
use marionette_isa::{MachineProgram, OperandSrc, Placement, RouteClass};
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::cmp::Reverse;
use std::fmt;

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// No progress is possible but tokens remain.
    Deadlock {
        /// Cycle at which the machine wedged.
        cycle: u64,
        /// Diagnostic description.
        detail: String,
    },
    /// The cycle budget was exhausted.
    CycleLimit {
        /// The exceeded budget.
        limit: u64,
    },
    /// A workload array does not exist in the program.
    UnknownArray(String),
    /// A parameter override does not exist in the program.
    UnknownParam(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { cycle, detail } => {
                write!(f, "deadlock at cycle {cycle}: {detail}")
            }
            SimError::CycleLimit { limit } => write!(f, "cycle limit {limit} exceeded"),
            SimError::UnknownArray(a) => write!(f, "unknown workload array {a}"),
            SimError::UnknownParam(p) => write!(f, "unknown parameter {p}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Result of one run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Run statistics (cycles, utilization, transport counters).
    pub stats: RunStats,
    /// Final contents of every array, by program array index.
    pub memory: Vec<Vec<Value>>,
    /// Sink collections by label.
    pub sinks: HashMap<String, Vec<Value>>,
    /// Out-of-bounds accesses observed (should be zero).
    pub oob_events: u64,
}

impl RunResult {
    /// Final contents of a named array.
    pub fn array(&self, prog: &MachineProgram, name: &str) -> Option<Vec<Value>> {
        prog.arrays
            .iter()
            .position(|a| a.name == name)
            .map(|i| self.memory[i].clone())
    }
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum SeqState {
    Fresh,
    Looping,
    Held(Value),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct EvKey {
    at: u64,
    seq: u64,
}

#[derive(Clone, Debug)]
enum EvKind {
    Deliver {
        node: u32,
        port: u8,
        value: Value,
        route: Option<u32>,
    },
    SpawnFlit {
        route: u32,
        value: Value,
    },
}

#[derive(Clone, Debug)]
struct Flit {
    route: u32,
    hop: usize,
    value: Value,
    alive: bool,
    /// Earliest cycle the flit may take its next link (link latency).
    ready_at: u64,
}

#[derive(Clone, Copy, Debug)]
enum ConsLink {
    Local { node: u32, port: u8 },
    Remote { route: u32 },
}

/// Unit index space: data PEs, then control parts, then net switches,
/// then memory stream units.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct UnitId(usize);

struct Machine<'p> {
    prog: &'p MachineProgram,
    tm: &'p TimingModel,
    npes: usize,
    cols: usize,
    // topology of units
    node_unit: Vec<UnitId>,
    /// Loop-header basic blocks: their operators form one *loop unit*
    /// (the paper's Loop operator / stream generators of the baselines)
    /// that evaluates combinationally once per cycle.
    header_bb: Vec<bool>,
    /// Virtual unit index per header bb (usize::MAX when not a header).
    header_unit: Vec<usize>,
    last_fire_cycle: Vec<u64>,
    unit_free_at: Vec<u64>,
    unit_candidates: Vec<VecDeque<u32>>,
    in_candidates: Vec<bool>,
    // queues
    port_base: Vec<usize>,
    queues: Vec<VecDeque<Value>>,
    /// Tokens emitted but not yet delivered (local/control-network), per
    /// queue: capacity checks count them so deliveries never find a full
    /// queue and per-edge FIFO order is preserved.
    reserved: Vec<usize>,
    blocked_on_queue: Vec<Vec<u32>>,
    // routing
    consumers: Vec<Vec<ConsLink>>,
    route_inflight: Vec<usize>,
    blocked_on_route: Vec<Vec<u32>>,
    route_next_free: Vec<u64>,
    link_used: Vec<u64>,
    flits: Vec<Flit>,
    // events
    events: BinaryHeap<Reverse<EvKey>>,
    event_payload: HashMap<EvKey, EvKind>,
    ev_seq: u64,
    // state
    seq_state: Vec<SeqState>,
    params: Vec<Value>,
    memory: Vec<Vec<Value>>,
    oob: u64,
    sinks: HashMap<String, Vec<Value>>,
    // groups
    active_group: u16,
    switch_until: u64,
    last_active_fire: u64,
    /// Tokens emitted but not yet delivered, per destination group:
    /// a group with in-flight traffic is not drained, so exclusive
    /// execution must not switch away from it yet.
    group_inflight: Vec<u64>,
    // stats
    stats: RunStats,
    cycle: u64,
    progressed: bool,
}

/// Runs a program to quiescence.
///
/// `inputs` overwrite array contents by name (missing arrays zero-fill);
/// `params` override scalar parameters.
///
/// # Errors
/// Returns [`SimError`] on deadlock, cycle-budget exhaustion or unknown
/// workload names.
pub fn run(
    prog: &MachineProgram,
    tm: &TimingModel,
    inputs: &[(String, Vec<Value>)],
    params: &[(String, Value)],
    max_cycles: u64,
) -> Result<RunResult, SimError> {
    let mut m = Machine::new(prog, tm)?;
    for (name, data) in inputs {
        let idx = prog
            .arrays
            .iter()
            .position(|a| &a.name == name)
            .ok_or_else(|| SimError::UnknownArray(name.clone()))?;
        let arr = &mut m.memory[idx];
        for (i, v) in data.iter().enumerate().take(arr.len()) {
            arr[i] = *v;
        }
    }
    for (name, v) in params {
        let idx = prog
            .param_by_name(name)
            .ok_or_else(|| SimError::UnknownParam(name.clone()))?;
        m.params[idx as usize] = *v;
    }
    m.boot();
    m.run_to_quiescence(max_cycles)?;
    let mut stats = m.stats;
    stats.cycles = m.cycle;
    Ok(RunResult {
        stats,
        memory: m.memory,
        sinks: m.sinks,
        oob_events: m.oob,
    })
}

impl<'p> Machine<'p> {
    fn new(prog: &'p MachineProgram, tm: &'p TimingModel) -> Result<Self, SimError> {
        let npes = prog.pe_count();
        let nmem = prog
            .nodes
            .iter()
            .filter_map(|n| match n.place {
                Placement::MemUnit { unit } => Some(unit as usize + 1),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        // Loop headers: blocks containing a Carry operator. Every header
        // block becomes a dedicated loop unit.
        let max_bb = prog.nodes.iter().map(|n| n.bb as usize + 1).max().unwrap_or(1);
        let mut header_bb = vec![false; max_bb];
        for n in &prog.nodes {
            if matches!(n.op, Op::Carry) {
                header_bb[n.bb as usize] = true;
            }
        }
        let mut header_unit = vec![usize::MAX; max_bb];
        let mut next_unit = 3 * npes + nmem;
        for (bb, is_h) in header_bb.iter().enumerate() {
            if *is_h {
                header_unit[bb] = next_unit;
                next_unit += 1;
            }
        }
        let nunits = next_unit;
        let mut port_base = Vec::with_capacity(prog.nodes.len() + 1);
        let mut total = 0usize;
        for n in &prog.nodes {
            port_base.push(total);
            total += n.srcs.len();
        }
        port_base.push(total);

        let node_unit: Vec<UnitId> = prog
            .nodes
            .iter()
            .map(|n| {
                if header_bb[n.bb as usize] && !n.op.is_memory() {
                    return UnitId(header_unit[n.bb as usize]);
                }
                match n.place {
                    Placement::Pe { pe } => UnitId(pe as usize),
                    Placement::CtrlPlane { pe } => {
                        if tm.ctrl_parallel {
                            UnitId(npes + pe as usize)
                        } else {
                            UnitId(pe as usize)
                        }
                    }
                    Placement::NetSwitch { sw } => UnitId(2 * npes + sw as usize),
                    Placement::MemUnit { unit } => UnitId(3 * npes + unit as usize),
                }
            })
            .collect();

        let mut consumers: Vec<Vec<ConsLink>> = vec![Vec::new(); prog.nodes.len()];
        for (ri, r) in prog.routes.iter().enumerate() {
            let link = if r.path.len() <= 1 {
                ConsLink::Local {
                    node: r.dst,
                    port: r.dst_port,
                }
            } else {
                ConsLink::Remote { route: ri as u32 }
            };
            consumers[r.src as usize].push(link);
        }

        let memory: Vec<Vec<Value>> = prog
            .arrays
            .iter()
            .map(|a| vec![a.elem.zero(); a.len as usize])
            .collect();

        Ok(Machine {
            prog,
            tm,
            npes,
            cols: prog.cols as usize,
            node_unit,
            header_bb,
            header_unit,
            last_fire_cycle: vec![u64::MAX; prog.nodes.len()],
            unit_free_at: vec![0; nunits],
            unit_candidates: vec![VecDeque::new(); nunits],
            in_candidates: vec![false; prog.nodes.len()],
            port_base,
            queues: vec![VecDeque::new(); total],
            reserved: vec![0; total],
            blocked_on_queue: vec![Vec::new(); total],
            consumers,
            route_inflight: vec![0; prog.routes.len()],
            blocked_on_route: vec![Vec::new(); prog.routes.len()],
            route_next_free: vec![0; prog.routes.len()],
            link_used: vec![u64::MAX; 4 * npes],
            flits: Vec::new(),
            events: BinaryHeap::new(),
            event_payload: HashMap::new(),
            ev_seq: 0,
            seq_state: vec![SeqState::Fresh; prog.nodes.len()],
            params: prog.params.iter().map(|p| p.default).collect(),
            memory,
            oob: 0,
            sinks: prog
                .nodes
                .iter()
                .filter(|n| matches!(n.op, Op::Sink))
                .map(|n| (n.label.clone().unwrap_or_default(), Vec::new()))
                .collect(),
            active_group: 0,
            switch_until: 0,
            last_active_fire: 0,
            group_inflight: {
                let ngroups = prog.nodes.iter().map(|n| n.group as usize + 1).max().unwrap_or(1);
                vec![0; ngroups]
            },
            stats: RunStats {
                pe_data: vec![UnitStats::default(); npes],
                pe_ctrl: vec![UnitStats::default(); npes],
                groups: Vec::new(),
                ..Default::default()
            },
            cycle: 0,
            progressed: false,
        })
    }

    fn boot(&mut self) {
        // Fire every Start node at cycle 0.
        for (i, n) in self.prog.nodes.iter().enumerate() {
            if matches!(n.op, Op::Start) {
                self.active_group = n.group;
                self.record_fire(i as u32, false);
                self.emit(i as u32, Value::Unit, 1);
            }
        }
    }

    fn qidx(&self, node: u32, port: u8) -> usize {
        self.port_base[node as usize] + port as usize
    }

    fn schedule(&mut self, at: u64, kind: EvKind) {
        let key = EvKey {
            at,
            seq: self.ev_seq,
        };
        self.ev_seq += 1;
        self.events.push(Reverse(key));
        self.event_payload.insert(key, kind);
    }

    fn mark_candidate(&mut self, node: u32) {
        if !self.in_candidates[node as usize] {
            self.in_candidates[node as usize] = true;
            let u = self.node_unit[node as usize];
            self.unit_candidates[u.0].push_back(node);
        }
    }

    /// Latency from fire to result availability.
    fn result_latency(&self, op: Op) -> u64 {
        match op {
            Op::Load(_) => u64::from(self.tm.mem_latency),
            o => u64::from(o.latency().max(1)),
        }
    }

    /// Emits a value to all consumers of `node`.
    fn emit(&mut self, node: u32, value: Value, lat: u64) {
        let links = self.consumers[node as usize].clone();
        let src_bb = self.prog.nodes[node as usize].bb as usize;
        let in_cluster = self.header_bb[src_bb];
        for link in links {
            // Combinational forwarding inside a loop unit: same-header
            // operators see the value in the same cycle.
            if in_cluster {
                let (dst, port) = match link {
                    ConsLink::Local { node: dst, port } => (dst, port),
                    ConsLink::Remote { route } => {
                        let r = &self.prog.routes[route as usize];
                        (r.dst, r.dst_port)
                    }
                };
                if self.prog.nodes[dst as usize].bb as usize == src_bb
                    && !self.prog.nodes[dst as usize].op.is_memory()
                {
                    let qi = self.qidx(dst, port);
                    self.queues[qi].push_back(value);
                    self.mark_candidate(dst);
                    continue;
                }
            }
            match link {
                ConsLink::Local { node: dst, port } => {
                    let qi = self.qidx(dst, port);
                    self.reserved[qi] += 1;
                    self.group_inflight[self.prog.nodes[dst as usize].group as usize] += 1;
                    self.schedule(
                        self.cycle + lat,
                        EvKind::Deliver {
                            node: dst,
                            port,
                            value,
                            route: None,
                        },
                    );
                }
                ConsLink::Remote { route } => {
                    let r = &self.prog.routes[route as usize];
                    self.route_inflight[route as usize] += 1;
                    self.group_inflight
                        [self.prog.nodes[r.dst as usize].group as usize] += 1;
                    let mut extra = 0u64;
                    if r.activation {
                        extra += u64::from(self.tm.activation_extra);
                        if r.dynamic {
                            extra += u64::from(self.tm.dyn_bound_extra);
                        }
                    }
                    let is_ctrl = r.class == RouteClass::Ctrl;
                    if is_ctrl {
                        self.stats.ctrl_tokens += 1;
                    } else {
                        self.stats.data_tokens += 1;
                    }
                    match (is_ctrl, self.tm.ctrl_transport) {
                        (true, CtrlTransport::CtrlNetwork { latency }) => {
                            // Fixed-path network: one transfer per route per
                            // cycle, single-cycle traversal.
                            let qi = self.qidx(r.dst, r.dst_port);
                            self.reserved[qi] += 1;
                            let ready = self.cycle + lat + extra;
                            let slot = ready.max(self.route_next_free[route as usize]);
                            self.route_next_free[route as usize] = slot + 1;
                            self.schedule(
                                slot + u64::from(latency),
                                EvKind::Deliver {
                                    node: r.dst,
                                    port: r.dst_port,
                                    value,
                                    route: Some(route),
                                },
                            );
                        }
                        _ => {
                            self.schedule(
                                self.cycle + lat + extra,
                                EvKind::SpawnFlit { route, value },
                            );
                        }
                    }
                }
            }
        }
    }

    fn record_fire(&mut self, node: u32, poisoned: bool) {
        let n = &self.prog.nodes[node as usize];
        self.stats.fires += 1;
        let grp = n.group as usize;
        if self.stats.groups.len() <= grp {
            self.stats.groups.resize(grp + 1, GroupStats::default());
        }
        let gs = &mut self.stats.groups[grp];
        gs.fires += 1;
        gs.busy += 1;
        if gs.first_fire.is_none() {
            gs.first_fire = Some(self.cycle);
        }
        gs.last_fire = self.cycle;
        let occ = 1 + u64::from(self.tm.per_fire_overhead);
        match n.place {
            Placement::Pe { pe } => {
                let u = &mut self.stats.pe_data[pe as usize];
                u.busy += occ;
                if poisoned {
                    u.poison_fires += 1;
                } else {
                    u.useful_fires += 1;
                }
            }
            Placement::CtrlPlane { pe } | Placement::NetSwitch { sw: pe } => {
                let u = &mut self.stats.pe_ctrl[pe as usize % self.npes];
                u.busy += occ;
                if poisoned {
                    u.poison_fires += 1;
                } else {
                    u.useful_fires += 1;
                }
            }
            Placement::MemUnit { .. } => {}
        }
        if n.group == self.active_group {
            self.last_active_fire = self.cycle;
        }
    }

    // ---------------- queue helpers -----------------------------------

    fn peek(&self, node: u32, port: u8) -> Option<Value> {
        match self.prog.nodes[node as usize].srcs[port as usize] {
            OperandSrc::Imm(v) => Some(v),
            OperandSrc::Param(p) => Some(self.params[p as usize]),
            OperandSrc::Route(_) => self.queues[self.qidx(node, port)].front().copied(),
            OperandSrc::None => None,
        }
    }

    fn avail(&self, node: u32, port: u8) -> bool {
        self.peek(node, port).is_some()
    }

    fn connected(&self, node: u32, port: u8) -> bool {
        !matches!(
            self.prog.nodes[node as usize].srcs[port as usize],
            OperandSrc::None
        )
    }

    fn pop(&mut self, node: u32, port: u8) -> Value {
        match self.prog.nodes[node as usize].srcs[port as usize] {
            OperandSrc::Imm(v) => v,
            OperandSrc::Param(p) => self.params[p as usize],
            OperandSrc::Route(_) => {
                let qi = self.qidx(node, port);
                let v = self.queues[qi].pop_front().expect("pop on empty queue");
                // The queue shrank: unblock producers waiting on it.
                let blocked = std::mem::take(&mut self.blocked_on_queue[qi]);
                for b in blocked {
                    self.mark_candidate(b);
                }
                v
            }
            OperandSrc::None => panic!("pop on unconnected port"),
        }
    }

    /// Can the node send to every consumer (queue/flight capacity)?
    fn output_ready(&mut self, node: u32) -> bool {
        let links = std::mem::take(&mut self.consumers[node as usize]);
        let ok = self.output_ready_inner(node, &links);
        self.consumers[node as usize] = links;
        ok
    }

    fn output_ready_inner(&mut self, node: u32, links: &[ConsLink]) -> bool {
        let src_bb = self.prog.nodes[node as usize].bb as usize;
        let in_cluster = self.header_bb[src_bb];
        for link in links {
            if in_cluster {
                let dst = match *link {
                    ConsLink::Local { node: dst, .. } => dst,
                    ConsLink::Remote { route } => self.prog.routes[route as usize].dst,
                };
                if self.prog.nodes[dst as usize].bb as usize == src_bb
                    && !self.prog.nodes[dst as usize].op.is_memory()
                {
                    continue; // loop-unit internal registers
                }
            }
            match *link {
                ConsLink::Local { node: dst, port } => {
                    let qi = self.qidx(dst, port);
                    if self.queues[qi].len() + self.reserved[qi] >= self.tm.queue_capacity {
                        self.blocked_on_queue[qi].push(node);
                        return false;
                    }
                }
                ConsLink::Remote { route } => {
                    if self.route_inflight[route as usize] >= self.tm.route_inflight_cap {
                        self.blocked_on_route[route as usize].push(node);
                        return false;
                    }
                    let r = &self.prog.routes[route as usize];
                    if r.class == RouteClass::Ctrl
                        && matches!(self.tm.ctrl_transport, CtrlTransport::CtrlNetwork { .. })
                    {
                        let qi = self.qidx(r.dst, r.dst_port);
                        if self.queues[qi].len() + self.reserved[qi]
                            >= self.tm.queue_capacity
                        {
                            self.blocked_on_queue[qi].push(node);
                            return false;
                        }
                    }
                }
            }
        }
        true
    }

    // ---------------- firing ------------------------------------------

    /// Attempts to fire `node`; returns true if it fired.
    fn try_fire(&mut self, node: u32) -> bool {
        let op = self.prog.nodes[node as usize].op;
        let predicated = self.tm.predicated_branches;
        macro_rules! need {
            ($($port:expr),*) => {
                if $( !self.avail(node, $port) )||* { return false; }
            };
        }
        match op {
            Op::Start => false,
            Op::Bin(b) => {
                need!(0, 1);
                if !self.output_ready(node) {
                    return false;
                }
                let x = self.pop(node, 0);
                let y = self.pop(node, 1);
                let out = b.eval(x, y);
                self.finish_fire(node, Some(out), op);
                true
            }
            Op::Un(u) => {
                need!(0);
                if !self.output_ready(node) {
                    return false;
                }
                let x = self.pop(node, 0);
                let out = u.eval(x);
                self.finish_fire(node, Some(out), op);
                true
            }
            Op::Nl(u) => {
                need!(0);
                if !self.output_ready(node) {
                    return false;
                }
                let x = self.pop(node, 0);
                let out = u.eval(x);
                self.finish_fire(node, Some(out), op);
                true
            }
            Op::Mux => {
                need!(0, 1, 2);
                if !self.output_ready(node) {
                    return false;
                }
                let p = self.pop(node, 0);
                let t = self.pop(node, 1);
                let f = self.pop(node, 2);
                let out = match p.as_bool() {
                    None => Value::Poison,
                    Some(true) => t,
                    Some(false) => f,
                };
                self.finish_fire(node, Some(out), op);
                true
            }
            Op::Load(arr) => {
                let need_dep = self.connected(node, 1);
                if !self.avail(node, 0) || (need_dep && !self.avail(node, 1)) {
                    return false;
                }
                if !self.output_ready(node) {
                    return false;
                }
                let idx = self.pop(node, 0);
                if need_dep {
                    self.pop(node, 1);
                }
                let out = if idx.is_poison() {
                    Value::Poison
                } else {
                    self.mem_load(arr.0 as usize, idx.to_i32_lossy())
                };
                self.finish_fire(node, Some(out), op);
                true
            }
            Op::Store(arr) => {
                let need_dep = self.connected(node, 2);
                if !(self.avail(node, 0) && self.avail(node, 1))
                    || (need_dep && !self.avail(node, 2))
                {
                    return false;
                }
                if !self.output_ready(node) {
                    return false;
                }
                let idx = self.pop(node, 0);
                let val = self.pop(node, 1);
                if need_dep {
                    self.pop(node, 2);
                }
                let poisoned = idx.is_poison() || val.is_poison();
                if !poisoned {
                    self.mem_store(arr.0 as usize, idx.to_i32_lossy(), val);
                }
                self.finish_fire_poison(node, Some(Value::Unit), op, poisoned);
                true
            }
            Op::Gate => {
                let val_tok = matches!(
                    self.prog.nodes[node as usize].srcs[1],
                    OperandSrc::Route(_)
                );
                if !self.avail(node, 0) || (val_tok && !self.avail(node, 1)) {
                    return false;
                }
                if !self.output_ready(node) {
                    return false;
                }
                let trig = self.pop(node, 0);
                let v = self.pop(node, 1);
                let out = if trig.is_poison() { Value::Poison } else { v };
                self.finish_fire(node, Some(out), op);
                true
            }
            Op::Steer { sense, role } => {
                need!(0, 1);
                if !self.output_ready(node) {
                    return false;
                }
                let p = self.pop(node, 0);
                let v = self.pop(node, 1);
                let pred_mode = predicated && role == SteerRole::Branch;
                if pred_mode {
                    let out = match p.as_bool() {
                        Some(b) if b == sense => v,
                        _ => Value::Poison,
                    };
                    let poisoned = out.is_poison();
                    self.finish_fire_poison(node, Some(out), op, poisoned);
                } else if p.as_bool() == Some(sense) {
                    self.finish_fire(node, Some(v), op);
                } else {
                    self.finish_fire(node, None, op);
                }
                true
            }
            Op::Merge { role } => {
                let pred_mode = predicated && role == SteerRole::Branch;
                if pred_mode {
                    need!(0, 1, 2);
                    if !self.output_ready(node) {
                        return false;
                    }
                    let p = self.pop(node, 0);
                    let t = self.pop(node, 1);
                    let f = self.pop(node, 2);
                    let out = match p.as_bool() {
                        None => Value::Poison,
                        Some(true) => t,
                        Some(false) => f,
                    };
                    self.finish_fire(node, Some(out), op);
                    true
                } else {
                    let Some(p) = self.peek(node, 0) else {
                        return false;
                    };
                    let side = if p.as_bool() == Some(true) { 1 } else { 2 };
                    if !self.avail(node, side) {
                        return false;
                    }
                    if !self.output_ready(node) {
                        return false;
                    }
                    self.pop(node, 0);
                    let v = self.pop(node, side);
                    self.finish_fire(node, Some(v), op);
                    true
                }
            }
            Op::Carry => match self.seq_state[node as usize] {
                SeqState::Fresh => {
                    if !self.avail(node, 1) {
                        return false;
                    }
                    if !self.output_ready(node) {
                        return false;
                    }
                    let init = self.pop(node, 1);
                    self.seq_state[node as usize] = SeqState::Looping;
                    self.finish_fire(node, Some(init), op);
                    true
                }
                SeqState::Looping => {
                    let Some(last) = self.peek(node, 0) else {
                        return false;
                    };
                    if !self.avail(node, 2) {
                        return false;
                    }
                    if !self.output_ready(node) {
                        return false;
                    }
                    self.pop(node, 0);
                    let next = self.pop(node, 2);
                    if last.as_bool() == Some(false) {
                        self.finish_fire(node, Some(next), op);
                    } else {
                        self.seq_state[node as usize] = SeqState::Fresh;
                        self.finish_fire(node, None, op);
                    }
                    true
                }
                SeqState::Held(_) => unreachable!("carry never holds"),
            },
            Op::Inv => match self.seq_state[node as usize] {
                SeqState::Fresh => {
                    if !self.avail(node, 0) {
                        return false;
                    }
                    if !self.output_ready(node) {
                        return false;
                    }
                    let v = self.pop(node, 0);
                    self.seq_state[node as usize] = SeqState::Held(v);
                    self.finish_fire(node, Some(v), op);
                    true
                }
                SeqState::Held(v) => {
                    if !self.avail(node, 1) {
                        return false;
                    }
                    if !self.output_ready(node) {
                        return false;
                    }
                    let last = self.pop(node, 1);
                    if last.as_bool() == Some(false) {
                        self.finish_fire(node, Some(v), op);
                    } else {
                        self.seq_state[node as usize] = SeqState::Fresh;
                        self.finish_fire(node, None, op);
                    }
                    true
                }
                SeqState::Looping => unreachable!("inv never loops"),
            },
            Op::Sink => {
                need!(0);
                let v = self.pop(node, 0);
                let label = self.prog.nodes[node as usize]
                    .label
                    .clone()
                    .unwrap_or_default();
                self.sinks.entry(label).or_default().push(v);
                self.record_fire(node, false);
                true
            }
        }
    }

    fn finish_fire(&mut self, node: u32, out: Option<Value>, op: Op) {
        let poisoned = matches!(out, Some(Value::Poison));
        self.finish_fire_poison(node, out, op, poisoned);
    }

    fn finish_fire_poison(&mut self, node: u32, out: Option<Value>, op: Op, poisoned: bool) {
        self.record_fire(node, poisoned);
        self.last_fire_cycle[node as usize] = self.cycle;
        let u = self.node_unit[node as usize];
        self.unit_free_at[u.0] = self.cycle + 1 + u64::from(self.tm.per_fire_overhead);
        if let Some(v) = out {
            let lat = self.result_latency(op);
            self.emit(node, v, lat);
        }
        // The node may be immediately ready again.
        self.mark_candidate(node);
    }

    fn mem_load(&mut self, arr: usize, idx: i32) -> Value {
        let a = &self.memory[arr];
        if idx < 0 || idx as usize >= a.len() {
            self.oob += 1;
            return Value::I32(0);
        }
        a[idx as usize]
    }

    fn mem_store(&mut self, arr: usize, idx: i32, v: Value) {
        let a = &mut self.memory[arr];
        if idx < 0 || idx as usize >= a.len() {
            self.oob += 1;
            return;
        }
        a[idx as usize] = v;
    }

    // ---------------- cycle loop ---------------------------------------

    fn process_events(&mut self) {
        while let Some(Reverse(key)) = self.events.peek().copied() {
            if key.at > self.cycle {
                break;
            }
            self.events.pop();
            let kind = self.event_payload.remove(&key).expect("payload");
            self.progressed = true;
            match kind {
                EvKind::Deliver {
                    node,
                    port,
                    value,
                    route,
                } => {
                    let qi = self.qidx(node, port);
                    debug_assert!(
                        self.queues[qi].len() < self.tm.queue_capacity,
                        "reservation guarantees space"
                    );
                    self.reserved[qi] = self.reserved[qi].saturating_sub(1);
                    let dg = self.prog.nodes[node as usize].group as usize;
                    self.group_inflight[dg] = self.group_inflight[dg].saturating_sub(1);
                    self.queues[qi].push_back(value);
                    if let Some(r) = route {
                        self.route_inflight[r as usize] -= 1;
                        let blocked = std::mem::take(&mut self.blocked_on_route[r as usize]);
                        for b in blocked {
                            self.mark_candidate(b);
                        }
                    }
                    self.mark_candidate(node);
                }
                EvKind::SpawnFlit { route, value } => {
                    self.flits.push(Flit {
                        route,
                        hop: 0,
                        value,
                        alive: true,
                        ready_at: self.cycle,
                    });
                }
            }
        }
    }

    fn link_id(&self, from: usize, to: usize) -> usize {
        let dir = if to == from + 1 {
            0 // east
        } else if to + 1 == from {
            1 // west
        } else if to == from + self.cols {
            2 // south
        } else {
            3 // north
        };
        from * 4 + dir
    }

    fn advance_flits(&mut self) {
        if self.flits.is_empty() {
            return;
        }
        for fi in 0..self.flits.len() {
            if !self.flits[fi].alive {
                continue;
            }
            let route = self.flits[fi].route as usize;
            let hop = self.flits[fi].hop;
            let r = &self.prog.routes[route];
            if hop + 1 >= r.path.len() {
                // at destination tile: deliver
                let qi = self.qidx(r.dst, r.dst_port);
                if self.queues[qi].len() < self.tm.queue_capacity {
                    let value = self.flits[fi].value;
                    let dg = self.prog.nodes[r.dst as usize].group as usize;
                    self.group_inflight[dg] = self.group_inflight[dg].saturating_sub(1);
                    self.queues[qi].push_back(value);
                    self.route_inflight[route] -= 1;
                    let dst = r.dst;
                    let blocked = std::mem::take(&mut self.blocked_on_route[route]);
                    for b in blocked {
                        self.mark_candidate(b);
                    }
                    self.mark_candidate(dst);
                    self.flits[fi].alive = false;
                    self.progressed = true;
                } else {
                    self.stats.link_stall_cycles += 1;
                }
                continue;
            }
            if self.flits[fi].ready_at > self.cycle {
                continue; // still traversing the previous link
            }
            let from = r.path[hop] as usize;
            let to = r.path[hop + 1] as usize;
            let lid = self.link_id(from, to);
            if self.link_used[lid] != self.cycle {
                self.link_used[lid] = self.cycle;
                self.flits[fi].hop += 1;
                self.flits[fi].ready_at = self.cycle + u64::from(self.tm.link_latency);
                self.stats.mesh_hops += 1;
                self.progressed = true;
            } else {
                self.stats.link_stall_cycles += 1;
            }
        }
        self.flits.retain(|f| f.alive);
    }

    fn group_logic(&mut self) {
        if !self.tm.exclusive_groups {
            return;
        }
        if self.cycle < self.switch_until {
            self.stats.switch_stall_cycles += 1;
            return;
        }
        let idle = self.cycle.saturating_sub(self.last_active_fire);
        if idle <= u64::from(self.tm.idle_switch_threshold) {
            return;
        }
        // Only switch once the active group is truly drained: no tokens in
        // flight toward it (a transient memory/route stall is not a phase
        // boundary). A long stall overrides the drain check — the pending
        // tokens may themselves depend on another group's output.
        let drained = self
            .group_inflight
            .get(self.active_group as usize)
            .copied()
            .unwrap_or(0)
            == 0;
        if !drained && idle <= u64::from(self.tm.idle_switch_threshold) + 4 {
            return;
        }
        // Active group is idle: find another group with waiting candidates.
        let mut target: Option<u16> = None;
        'outer: for (ui, cand) in self.unit_candidates.iter().enumerate() {
            let _ = ui;
            for &n in cand {
                let g = self.prog.nodes[n as usize].group;
                if g != self.active_group {
                    target = Some(g);
                    break 'outer;
                }
            }
        }
        if let Some(g) = target {
            self.active_group = g;
            self.switch_until = self.cycle + u64::from(self.tm.group_switch_cost);
            self.last_active_fire = self.switch_until;
            self.stats.group_switches += 1;
        }
    }

    fn issue(&mut self) {
        if self.tm.exclusive_groups && self.cycle < self.switch_until {
            return; // the array is stalled while configurations change
        }
        let loop_units_start = self.unit_candidates.len()
            - self.header_unit.iter().filter(|&&u| u != usize::MAX).count();
        for ui in 0..self.unit_candidates.len() {
            if self.unit_free_at[ui] > self.cycle {
                continue;
            }
            let is_loop_unit = ui >= loop_units_start;
            if is_loop_unit {
                // Loop unit: evaluate the whole header cluster to fixpoint
                // (each member at most once per cycle) — the paper's Loop
                // operator sustains one iteration per cycle.
                let mut fired_any = false;
                let mut guard = 0usize;
                loop {
                    let mut fired_round = false;
                    let len = self.unit_candidates[ui].len();
                    for _ in 0..len {
                        let Some(n) = self.unit_candidates[ui].pop_front() else {
                            break;
                        };
                        self.in_candidates[n as usize] = false;
                        if self.last_fire_cycle[n as usize] == self.cycle
                            || (self.tm.exclusive_groups
                                && self.prog.nodes[n as usize].group != self.active_group)
                        {
                            self.in_candidates[n as usize] = true;
                            self.unit_candidates[ui].push_back(n);
                            continue;
                        }
                        if self.try_fire(n) {
                            fired_round = true;
                            fired_any = true;
                        }
                    }
                    guard += 1;
                    if !fired_round || guard > 64 {
                        break;
                    }
                }
                if fired_any {
                    self.progressed = true;
                    self.unit_free_at[ui] =
                        self.cycle + 1 + u64::from(self.tm.per_fire_overhead);
                }
                continue;
            }
            // Pop candidates until one fires (or none can).
            let mut tried = 0usize;
            let max_tries = self.unit_candidates[ui].len();
            while tried < max_tries {
                let Some(n) = self.unit_candidates[ui].pop_front() else {
                    break;
                };
                self.in_candidates[n as usize] = false;
                if self.tm.exclusive_groups
                    && self.prog.nodes[n as usize].group != self.active_group
                {
                    // Wrong group: keep waiting without burning the slot.
                    self.in_candidates[n as usize] = true;
                    self.unit_candidates[ui].push_back(n);
                    tried += 1;
                    continue;
                }
                if self.try_fire(n) {
                    self.progressed = true;
                    break;
                }
                tried += 1;
            }
        }
    }

    fn pending_work(&self) -> bool {
        !self.events.is_empty()
            || !self.flits.is_empty()
            || self.unit_candidates.iter().any(|c| !c.is_empty())
    }

    fn run_to_quiescence(&mut self, max_cycles: u64) -> Result<(), SimError> {
        let mut idle_streak = 0u64;
        while self.pending_work() {
            if self.cycle >= max_cycles {
                return Err(SimError::CycleLimit { limit: max_cycles });
            }
            self.progressed = false;
            self.process_events();
            self.advance_flits();
            self.group_logic();
            self.issue();
            if self.progressed {
                idle_streak = 0;
                self.cycle += 1;
                continue;
            }
            // Nothing happened: fast-forward to the next interesting cycle.
            let mut next: Option<u64> = self.events.peek().map(|Reverse(k)| k.at);
            if !self.flits.is_empty() {
                next = Some(next.map_or(self.cycle + 1, |n| n.min(self.cycle + 1)));
            }
            if self.tm.exclusive_groups {
                if self.switch_until > self.cycle {
                    next = Some(next.map_or(self.switch_until, |n| n.min(self.switch_until)));
                } else if self
                    .unit_candidates
                    .iter()
                    .flatten()
                    .any(|&n| self.prog.nodes[n as usize].group != self.active_group)
                {
                    let t = self.last_active_fire + u64::from(self.tm.idle_switch_threshold) + 1;
                    let t = t.max(self.cycle + 1);
                    next = Some(next.map_or(t, |n| n.min(t)));
                }
            }
            // Units busy in the future holding candidates.
            for (ui, cand) in self.unit_candidates.iter().enumerate() {
                if !cand.is_empty() && self.unit_free_at[ui] > self.cycle {
                    let t = self.unit_free_at[ui];
                    next = Some(next.map_or(t, |n| n.min(t)));
                }
            }
            match next {
                Some(t) if t > self.cycle => {
                    self.cycle = t;
                    idle_streak = 0;
                }
                _ => {
                    idle_streak += 1;
                    self.cycle += 1;
                    if idle_streak > 64 {
                        let waiting: Vec<u32> = self
                            .unit_candidates
                            .iter()
                            .flatten()
                            .copied()
                            .take(8)
                            .collect();
                        return Err(SimError::Deadlock {
                            cycle: self.cycle,
                            detail: format!(
                                "{} flits, {} events, waiting nodes {:?}",
                                self.flits.len(),
                                self.events.len(),
                                waiting
                            ),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}
