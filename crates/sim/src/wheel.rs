//! A calendar-queue **event wheel**: the simulator's default event queue.
//!
//! Discrete-event simulators spend a surprising share of their time in the
//! event queue; a comparison-based heap pays `O(log n)` per operation and a
//! cache miss per sift step. The machine's schedule is overwhelmingly
//! *near-term* — a token delivery lands a handful of cycles out (operator
//! latency plus small activation extras) — so a **wheel** of
//! [`WHEEL_SLOTS`] slots indexed by `cycle & (WHEEL_SLOTS - 1)` turns both
//! push and pop into `O(1)` list splices over a dense horizon:
//!
//! - **slots**: each slot holds the events of exactly one cycle in the
//!   window `[base, base + WHEEL_SLOTS)` as an intrusive singly-linked
//!   list (head/tail, appended in insertion order). Because the window is
//!   never wider than the slot count, two different pending cycles can
//!   never share a slot.
//! - **arena**: event payloads live in one slab of nodes with a freelist,
//!   so steady-state operation performs no allocation at all.
//! - **overflow bucket**: the rare far-future event (a serialized
//!   control-network route booked many transfers ahead, a stretched flaky
//!   delivery) that lands at or beyond `base + WHEEL_SLOTS` goes to a
//!   small binary heap ordered by `(cycle, sequence)`. When `base`
//!   advances and a new cycle enters the window, due overflow entries
//!   migrate into their slot *before* any direct push can target that
//!   cycle, so slot lists always stay sorted by insertion sequence.
//!
//! ## Ordering contract
//!
//! [`EventWheel::pop_due`] yields events in exactly the total order a
//! `BinaryHeap` keyed by `(at, insertion_seq)` would: earliest cycle
//! first, FIFO within a cycle. The property tests in
//! `crates/sim/tests/wheel_props.rs` pin this against a reference heap,
//! including horizon wrap-around and overflow migration.
//!
//! Pushes must not target the past: an `at` below the wheel's current
//! base (the earliest still-poppable cycle) is clamped **up** to the
//! base. The machine schedules strictly into the future (every latency
//! is ≥ 1), so the clamp never fires there.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Number of wheel slots — the dense scheduling horizon, in cycles.
///
/// Power of two so slot lookup is a mask. 128 covers every near-term
/// latency in the timing models (operator results, memory, activation
/// and switch extras) with headroom; anything further out is rare and
/// takes the overflow path.
pub const WHEEL_SLOTS: usize = 128;

const SLOT_MASK: u64 = (WHEEL_SLOTS as u64) - 1;
const NIL: u32 = u32::MAX;

#[derive(Clone, Debug)]
struct Node<T> {
    at: u64,
    /// `None` once popped (the arena slot is then on the freelist).
    item: Option<T>,
    next: u32,
}

#[derive(Clone, Copy, Debug)]
struct Slot {
    head: u32,
    tail: u32,
}

const EMPTY_SLOT: Slot = Slot {
    head: NIL,
    tail: NIL,
};

/// A monotone-time event queue ordered by `(cycle, insertion order)`.
///
/// See the [module docs](self) for the design; see [`EventWheel::push`]
/// and [`EventWheel::pop_due`] for the operational contract.
#[derive(Clone, Debug)]
pub struct EventWheel<T> {
    /// Earliest cycle that may still hold events; slots cover
    /// `[base, base + WHEEL_SLOTS)`.
    base: u64,
    slots: Vec<Slot>,
    /// Occupancy bitmap over `slots` (bit `s` set iff slot `s` is
    /// non-empty): `next_at` finds the earliest resident cycle with one
    /// 128-bit rotate + count-trailing-zeros instead of a slot scan.
    occ: [u64; 2],
    nodes: Vec<Node<T>>,
    free: Vec<u32>,
    /// Far-future events as `(at, seq, arena index)`, min-ordered.
    overflow: BinaryHeap<Reverse<(u64, u64, u32)>>,
    /// Events currently resident in slots (excludes overflow).
    wheel_len: usize,
    /// Total pending events (slots + overflow).
    len: usize,
    /// Monotone insertion sequence, breaking same-cycle ties FIFO.
    seq: u64,
}

impl<T> Default for EventWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventWheel<T> {
    /// Creates an empty wheel with its base at cycle 0.
    pub fn new() -> Self {
        EventWheel {
            base: 0,
            slots: vec![EMPTY_SLOT; WHEEL_SLOTS],
            occ: [0; 2],
            nodes: Vec::new(),
            free: Vec::new(),
            overflow: BinaryHeap::new(),
            wheel_len: 0,
            len: 0,
            seq: 0,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `item` at cycle `at` (clamped up to the current base if
    /// it lies in the past). Ties at the same cycle pop in push order.
    pub fn push(&mut self, at: u64, item: T) {
        let at = at.max(self.base);
        let seq = self.seq;
        self.seq += 1;
        let idx = self.alloc(at, item);
        if at - self.base < WHEEL_SLOTS as u64 {
            self.slot_append((at & SLOT_MASK) as usize, idx);
            self.wheel_len += 1;
        } else {
            self.overflow.push(Reverse((at, seq, idx)));
        }
        self.len += 1;
    }

    /// Earliest pending cycle, if any.
    pub fn next_at(&self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        if self.wheel_len > 0 {
            // Nearest resident event is < WHEEL_SLOTS away, and any
            // overflow entry lies at or beyond base + WHEEL_SLOTS, so the
            // first occupied slot wins outright. Rotating the occupancy
            // bitmap so `base`'s slot becomes bit 0 turns "first non-empty
            // slot at or after base (with wrap)" into trailing_zeros.
            let bits = (u128::from(self.occ[1]) << 64) | u128::from(self.occ[0]);
            let start = (self.base & SLOT_MASK) as u32;
            let d = bits.rotate_right(start).trailing_zeros();
            debug_assert!(
                (d as usize) < WHEEL_SLOTS,
                "wheel_len > 0 implies a non-empty slot in the window"
            );
            return Some(self.base + u64::from(d));
        }
        self.overflow.peek().map(|&Reverse((at, _, _))| at)
    }

    /// Pops the earliest event if its cycle is `<= now`; otherwise
    /// returns `None` (and advances the base toward `now + 1` so later
    /// slot scans start near the horizon).
    pub fn pop_due(&mut self, now: u64) -> Option<T> {
        let next = self.next_at()?;
        if next > now {
            self.advance_to(next.min(now + 1));
            return None;
        }
        self.advance_to(next);
        let s = (next & SLOT_MASK) as usize;
        let idx = self.slots[s].head;
        debug_assert_ne!(idx, NIL, "next_at found this slot non-empty");
        let node = &mut self.nodes[idx as usize];
        debug_assert_eq!(node.at, next);
        let item = node.item.take().expect("arena node is occupied");
        self.slots[s].head = node.next;
        if self.slots[s].head == NIL {
            self.slots[s].tail = NIL;
            self.occ[s >> 6] &= !(1u64 << (s & 63));
        }
        self.free.push(idx);
        self.wheel_len -= 1;
        self.len -= 1;
        Some(item)
    }

    /// Removes all pending events and rewinds the base to cycle 0.
    pub fn clear(&mut self) {
        self.slots.fill(EMPTY_SLOT);
        self.occ = [0; 2];
        self.nodes.clear();
        self.free.clear();
        self.overflow.clear();
        self.wheel_len = 0;
        self.len = 0;
        self.base = 0;
        self.seq = 0;
    }

    fn alloc(&mut self, at: u64, item: T) -> u32 {
        if let Some(idx) = self.free.pop() {
            self.nodes[idx as usize] = Node {
                at,
                item: Some(item),
                next: NIL,
            };
            idx
        } else {
            self.nodes.push(Node {
                at,
                item: Some(item),
                next: NIL,
            });
            (self.nodes.len() - 1) as u32
        }
    }

    fn slot_append(&mut self, s: usize, idx: u32) {
        self.nodes[idx as usize].next = NIL;
        let tail = self.slots[s].tail;
        if tail == NIL {
            self.slots[s].head = idx;
            self.occ[s >> 6] |= 1u64 << (s & 63);
        } else {
            self.nodes[tail as usize].next = idx;
        }
        self.slots[s].tail = idx;
    }

    /// Advances the base to `target`. Caller guarantees no pending event
    /// lies below `target`, so the jump cannot strand slot residents:
    /// every resident sits at a cycle in `[target, base + WHEEL_SLOTS)`,
    /// which stays inside the new window. Overflow entries whose cycle
    /// just entered the window migrate immediately — *before* any direct
    /// push can target those cycles — keeping slot lists seq-sorted.
    fn advance_to(&mut self, target: u64) {
        if target <= self.base {
            return;
        }
        self.base = target;
        let bound = self.base + WHEEL_SLOTS as u64;
        while let Some(&Reverse((at, _, _))) = self.overflow.peek() {
            if at >= bound {
                break;
            }
            let Reverse((at, _, idx)) = self.overflow.pop().expect("peeked entry");
            self.slot_append((at & SLOT_MASK) as usize, idx);
            self.wheel_len += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_all(w: &mut EventWheel<u32>) -> Vec<(u64, u32)> {
        let mut out = Vec::new();
        let mut now = 0u64;
        while !w.is_empty() {
            match w.pop_due(now) {
                Some(v) => out.push((now.max(w.next_at().unwrap_or(now)), v)),
                None => now = w.next_at().expect("non-empty wheel has a next cycle"),
            }
        }
        out
    }

    #[test]
    fn fifo_within_cycle() {
        let mut w = EventWheel::new();
        w.push(3, 10u32);
        w.push(3, 11);
        w.push(1, 12);
        assert_eq!(w.len(), 3);
        assert_eq!(w.next_at(), Some(1));
        assert_eq!(w.pop_due(0), None);
        assert_eq!(w.pop_due(1), Some(12));
        assert_eq!(w.pop_due(2), None);
        assert_eq!(w.pop_due(3), Some(10));
        assert_eq!(w.pop_due(3), Some(11));
        assert_eq!(w.pop_due(3), None);
        assert!(w.is_empty());
    }

    #[test]
    fn wraps_around_the_horizon() {
        let mut w = EventWheel::new();
        // Fill several windows' worth of cycles, popping as we go so the
        // base keeps wrapping the slot array.
        let mut expect = Vec::new();
        for round in 0u64..5 {
            let at = round * (WHEEL_SLOTS as u64 - 1) + 1;
            w.push(at, round as u32);
            expect.push(round as u32);
        }
        let mut got = Vec::new();
        let mut now = 0;
        while let Some(at) = w.next_at() {
            now = now.max(at);
            got.push(w.pop_due(now).expect("due event"));
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn overflow_migrates_in_order() {
        let mut w = EventWheel::new();
        let far = WHEEL_SLOTS as u64 + 7;
        w.push(far, 1u32); // overflow
        w.push(far, 2); // overflow, same cycle: FIFO after migration
        w.push(2, 0); // direct
        assert_eq!(w.pop_due(2), Some(0));
        // Base advance exposes `far`; both entries migrate, FIFO intact.
        assert_eq!(w.next_at(), Some(far));
        assert_eq!(w.pop_due(far), Some(1));
        assert_eq!(w.pop_due(far), Some(2));
        assert!(w.is_empty());
    }

    #[test]
    fn direct_push_after_migration_keeps_order() {
        let mut w = EventWheel::new();
        let far = 3 * WHEEL_SLOTS as u64;
        w.push(far, 7u32); // overflow
        w.push(1, 0);
        assert_eq!(w.pop_due(1), Some(0));
        // Idle ticks advance the base until `far` enters the window.
        for now in 2..far {
            assert_eq!(w.pop_due(now), None);
        }
        // Now a direct push at the same far cycle must land *after* the
        // migrated entry (it has a later insertion sequence).
        w.push(far, 8);
        assert_eq!(w.pop_due(far), Some(7));
        assert_eq!(w.pop_due(far), Some(8));
    }

    #[test]
    fn clear_resets_base_and_reuses_arena() {
        let mut w = EventWheel::new();
        for i in 0..10u32 {
            w.push(1000 + u64::from(i), i);
        }
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.next_at(), None);
        w.push(1, 42u32);
        assert_eq!(w.pop_due(1), Some(42));
    }

    #[test]
    fn drain_helper_smoke() {
        let mut w = EventWheel::new();
        w.push(5, 1u32);
        w.push(2, 2);
        let vals: Vec<u32> = drain_all(&mut w).into_iter().map(|(_, v)| v).collect();
        assert_eq!(vals, vec![2, 1]);
    }
}
