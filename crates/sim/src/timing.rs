//! Timing models: the architectural execution-model parameters that
//! differentiate von Neumann, dataflow and Marionette PEs (and the SOTA
//! comparison points built on them).
//!
//! The same functional token program runs under every model; what changes
//! is *when* things happen:
//!
//! - whether configuration/tag resolution serializes with execution
//!   ([`TimingModel::per_fire_overhead`] — dataflow PEs pay one cycle per
//!   firing, Fig 2b);
//! - whether branch divergence is predicated (both sides burn issue
//!   slots, poison results discarded at merges — von Neumann PEs,
//!   Fig 3c) or steered (untaken side never fires — dataflow and
//!   Marionette);
//! - how control information travels ([`CtrlTransport`]): the dedicated
//!   one-cycle CS-Benes control network, or multi-hop shared mesh;
//! - whether loop levels execute exclusively with configuration-switch
//!   stalls ([`TimingModel::exclusive_groups`], the Fig 3d CCU pattern and
//!   the non-agile baseline of Fig 14), and what a switch costs;
//! - the CCU round-trip surcharge on dynamically-bounded loop
//!   configuration ([`TimingModel::dyn_bound_extra`], Fig 3d).

use marionette_cdfg::op::Op;

/// How control-class routes are transported.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CtrlTransport {
    /// Dedicated CS-Benes control network: fixed single-cycle paths, no
    /// arbitration (Fig 6).
    CtrlNetwork {
        /// Delivery latency in cycles (the paper: 1).
        latency: u32,
    },
    /// Control rides the data mesh: per-hop latency and link contention.
    Mesh,
}

/// Complete timing model of one architecture.
#[derive(Clone, Debug, PartialEq)]
pub struct TimingModel {
    /// Display name.
    pub name: String,
    /// Extra FU occupancy per firing (tag check + configure for dataflow
    /// PEs; 0 when configuration overlaps computation).
    pub per_fire_overhead: u32,
    /// Predicated branch execution (von Neumann): both sides fire, the
    /// untaken side produces poison.
    pub predicated_branches: bool,
    /// Control transport.
    pub ctrl_transport: CtrlTransport,
    /// One mapping group (loop level) executes at a time; others stall
    /// until a configuration switch.
    pub exclusive_groups: bool,
    /// Cycles to switch the active group (CCU round trip + configuration
    /// distribution for vN; ~proactive cost for Marionette non-agile).
    pub group_switch_cost: u32,
    /// Extra latency on activation routes of dynamically-bounded loops
    /// (the CCU round trip of Fig 3d). Zero for autonomous architectures.
    pub dyn_bound_extra: u32,
    /// Extra latency on *every* loop-activation transfer: the indirect
    /// control-through-data-path detour of dataflow PEs (Fig 3f), where
    /// loop configuration must ride the data network because control and
    /// data are spatially coupled. Zero when a direct control path exists.
    pub activation_extra: u32,
    /// Mesh per-hop latency.
    pub link_latency: u32,
    /// Load latency (optimistic scratchpad).
    pub mem_latency: u32,
    /// Control operators issue on the PE's control flow part, in parallel
    /// with the FU (Marionette's temporal decoupling).
    pub ctrl_parallel: bool,
    /// Input queue capacity per port.
    pub queue_capacity: usize,
    /// Max in-flight tokens per route (producer backpressure).
    pub route_inflight_cap: usize,
    /// Idle cycles on the active group before switching away.
    pub idle_switch_threshold: u32,
}

impl TimingModel {
    /// A neutral, optimistic model (used as a base by `marionette-arch`).
    pub fn ideal(name: impl Into<String>) -> Self {
        TimingModel {
            name: name.into(),
            per_fire_overhead: 0,
            predicated_branches: false,
            ctrl_transport: CtrlTransport::CtrlNetwork { latency: 1 },
            exclusive_groups: false,
            group_switch_cost: 0,
            dyn_bound_extra: 0,
            activation_extra: 0,
            link_latency: 1,
            mem_latency: 2,
            ctrl_parallel: true,
            queue_capacity: 8,
            route_inflight_cap: 8,
            idle_switch_threshold: 2,
        }
    }

    /// Cycles from issuing `op` to its result being available — the
    /// functional-unit pipeline depth under this model. Memory reads take
    /// [`TimingModel::mem_latency`]; every other operator takes its
    /// class latency ([`Op::latency`]), clamped to at least one cycle so
    /// no firing is free (sinks included: collecting a result still
    /// occupies the cycle it lands in).
    pub fn result_latency(&self, op: Op) -> u64 {
        match op {
            Op::Load(_) => u64::from(self.mem_latency),
            o => u64::from(o.latency().max(1)),
        }
    }

    /// Issue-slot occupancy of one firing: the single issue cycle plus
    /// the per-firing configure/tag-check overhead of dataflow-style PEs
    /// ([`TimingModel::per_fire_overhead`]).
    pub fn issue_occupancy(&self) -> u64 {
        1 + u64::from(self.per_fire_overhead)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_defaults() {
        let t = TimingModel::ideal("x");
        assert_eq!(t.per_fire_overhead, 0);
        assert!(!t.exclusive_groups);
        assert!(matches!(
            t.ctrl_transport,
            CtrlTransport::CtrlNetwork { latency: 1 }
        ));
    }
}
