//! Co-resident tenant execution over a partitioned fabric.
//!
//! [`run_tenants`] simulates every tenant of a validated
//! [`MultiTenantImage`] and composes the results into one
//! [`TenancyRun`] with per-partition cycle/stall/throughput attribution
//! and a fabric-level makespan.
//!
//! ## Why this is exact, not an approximation
//!
//! The merged image proves (by type) that partitions are disjoint
//! rectangles and that no tenant's placements or route paths leave its
//! own partition — there is no shared PE, link, control network or
//! memory port between tenants. The composed transition system of the
//! full fabric therefore **factors into the product of the per-partition
//! machines**: no event in one partition can enable, block or reorder an
//! event in another, so simulating each factor independently and taking
//! the cycle-wise union is bit-identical to stepping one monolithic
//! machine hosting all tenants. This is the same argument behind
//! [`crate::machine::run_lanes`]'s lane isolation (PR 7), applied
//! spatially instead of temporally — and it is what makes each
//! co-resident tenant *bit-identical to a solo run on an equal-sized
//! fabric*, the property the tenancy test suite pins for all presets.
//!
//! Isolation of failure follows from the same factorization: a tenant
//! that wedges (deadlock or cycle-budget exhaustion) reports its own
//! typed [`SimError`] in its [`TenantOutcome`] while its neighbours run
//! to completion unperturbed.

use crate::fault::FaultSet;
use crate::machine::{run_full, EngineKind, RunResult, SimError};
use crate::timing::TimingModel;
use marionette_cdfg::value::Value;
use marionette_isa::image::{ImageError, MultiTenantImage};
use std::fmt;

/// One tenant's workload: array contents, parameter overrides, and a
/// per-tenant cycle budget (wedge detection is per partition).
#[derive(Clone, Debug, Default)]
pub struct TenantWorkload {
    /// Array contents by name (missing arrays zero-fill).
    pub inputs: Vec<(String, Vec<Value>)>,
    /// Scalar parameter overrides by name.
    pub params: Vec<(String, Value)>,
    /// Cycle budget for this tenant alone.
    pub max_cycles: u64,
}

/// Why a tenancy run could not start.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TenancyError {
    /// The image failed re-validation (decode or containment).
    Image(ImageError),
    /// The workload count does not match the tenant count.
    WorkloadCount {
        /// Tenants in the image.
        tenants: usize,
        /// Workloads supplied.
        workloads: usize,
    },
    /// The timing-model count does not match the tenant count.
    TimingCount {
        /// Tenants in the image.
        tenants: usize,
        /// Timing models supplied.
        timings: usize,
    },
}

impl fmt::Display for TenancyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TenancyError::Image(e) => write!(f, "invalid multi-tenant image: {e}"),
            TenancyError::WorkloadCount { tenants, workloads } => write!(
                f,
                "image has {tenants} tenants but {workloads} workloads were supplied"
            ),
            TenancyError::TimingCount { tenants, timings } => write!(
                f,
                "image has {tenants} tenants but {timings} timing models were supplied"
            ),
        }
    }
}

impl std::error::Error for TenancyError {}

impl From<ImageError> for TenancyError {
    fn from(e: ImageError) -> Self {
        TenancyError::Image(e)
    }
}

/// One tenant's result inside a [`TenancyRun`].
#[derive(Clone, Debug)]
pub struct TenantOutcome {
    /// Tenant label from the image.
    pub name: String,
    /// The tenant's partition in `RxC@r,c` syntax.
    pub partition: String,
    /// Partition dims (rows, cols).
    pub dims: (u8, u8),
    /// Host-fabric origin (row0, col0).
    pub origin: (u8, u8),
    /// The tenant's own run result — a wedged tenant carries its typed
    /// [`SimError`] here without affecting its neighbours' entries.
    pub result: Result<RunResult, SimError>,
}

impl TenantOutcome {
    /// Cycles this tenant occupied its partition: run length when it
    /// completed, the wedge cycle on deadlock, the exhausted budget on
    /// cycle-limit, zero when the machine never constructed.
    pub fn occupied_cycles(&self) -> u64 {
        match &self.result {
            Ok(r) => r.stats.cycles,
            Err(SimError::Deadlock { cycle, .. }) => *cycle,
            Err(SimError::CycleLimit { limit }) => *limit,
            Err(_) => 0,
        }
    }
}

/// The composed result of running all tenants of a partitioned fabric.
#[derive(Clone, Debug)]
pub struct TenancyRun {
    /// Host-fabric rows.
    pub rows: u8,
    /// Host-fabric columns.
    pub cols: u8,
    /// Per-tenant outcomes, in image order.
    pub tenants: Vec<TenantOutcome>,
    /// Fabric makespan: the latest cycle any partition is occupied
    /// (completed tenants contribute run length; wedged tenants their
    /// wedge point / exhausted budget).
    pub makespan_cycles: u64,
    /// Node firings summed over completed tenants.
    pub total_fires: u64,
}

impl TenancyRun {
    /// Aggregate fabric throughput: completed-tenant fires per makespan
    /// cycle (zero for an all-wedged or zero-cycle run).
    pub fn throughput(&self) -> f64 {
        if self.makespan_cycles == 0 {
            0.0
        } else {
            self.total_fires as f64 / self.makespan_cycles as f64
        }
    }

    /// True when every tenant completed.
    pub fn all_completed(&self) -> bool {
        self.tenants.iter().all(|t| t.result.is_ok())
    }
}

/// Runs every tenant of a merged image and composes the outcome.
///
/// `tms[i]` is tenant *i*'s control-timing model — derived from the
/// **partition's** corner distance, not the host fabric's (see
/// `docs/PARTITIONING.md`). `loads[i]` is tenant *i*'s workload and
/// cycle budget.
///
/// Each partition is simulated as its own machine factor (see the
/// module docs for why that is exact), so a deadlocking or
/// budget-exhausting tenant reports its own [`SimError`] in its
/// [`TenantOutcome`] without poisoning neighbours.
///
/// # Errors
/// Returns [`TenancyError`] only for whole-image problems (failed
/// re-validation, count mismatches); per-tenant failures come back
/// inside [`TenancyRun::tenants`].
pub fn run_tenants(
    image: &MultiTenantImage,
    tms: &[TimingModel],
    loads: &[TenantWorkload],
    engine: EngineKind,
) -> Result<TenancyRun, TenancyError> {
    let progs = image.tenant_programs()?;
    if tms.len() != progs.len() {
        return Err(TenancyError::TimingCount {
            tenants: progs.len(),
            timings: tms.len(),
        });
    }
    if loads.len() != progs.len() {
        return Err(TenancyError::WorkloadCount {
            tenants: progs.len(),
            workloads: loads.len(),
        });
    }
    let mut tenants = Vec::with_capacity(progs.len());
    for ((prog, slot), (tm, load)) in progs
        .iter()
        .zip(image.tenants())
        .zip(tms.iter().zip(loads.iter()))
    {
        let result = run_full(
            prog,
            tm,
            &FaultSet::none(),
            engine,
            &load.inputs,
            &load.params,
            load.max_cycles,
        );
        tenants.push(TenantOutcome {
            name: slot.name.clone(),
            partition: slot.partition_spec(),
            dims: (slot.rows, slot.cols),
            origin: (slot.row0, slot.col0),
            result,
        });
    }
    let makespan_cycles = tenants
        .iter()
        .map(TenantOutcome::occupied_cycles)
        .max()
        .unwrap_or(0);
    let total_fires = tenants
        .iter()
        .filter_map(|t| t.result.as_ref().ok().map(|r| r.stats.fires))
        .sum();
    Ok(TenancyRun {
        rows: image.rows(),
        cols: image.cols(),
        tenants,
        makespan_cycles,
        total_fires,
    })
}
