//! Fault models for the fabric: dead PEs, dead mesh links and flaky
//! (slow) mesh links.
//!
//! A [`FaultSet`] is shared between the simulator and the compiler:
//!
//! - the simulator refuses to execute a bitstream that touches a dead
//!   resource — a typed [`crate::SimError::Fault`] names the resource at
//!   machine construction, before any cycle runs — and stretches
//!   traversal time on flaky links without ever changing values;
//! - the compiler takes the same set as an avoid-mask (dead PEs excluded
//!   from placement legality, dead links from route feasibility, flaky
//!   links cost-penalized), so a fault-wedged mapping can be re-placed
//!   around the faults and bit-verified against the interpreter.
//!
//! Directed links use the simulator's dense encoding, identical to
//! `marionette_net::Mesh`: `id = tile * 4 + dir` with east = 0, west = 1,
//! south = 2, north = 3.

use std::fmt;
use std::str::FromStr;

/// A tile coordinate as (row, col).
type Tile = (usize, usize);

/// One injected hardware fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultSpec {
    /// The compute tile at (row, col) is dead: nothing may execute on its
    /// data or control plane. The tile's mesh router survives (flits may
    /// still pass through), matching the usual core-vs-NoC fault domains.
    DeadPe {
        /// Tile row.
        r: usize,
        /// Tile column.
        c: usize,
    },
    /// The directed mesh link from the first tile to the (adjacent)
    /// second tile is dead: no flit may traverse it.
    DeadLink {
        /// Source tile as (row, col).
        from: (usize, usize),
        /// Destination tile as (row, col); must be a mesh neighbour.
        to: (usize, usize),
    },
    /// The directed mesh link is flaky: each traversal takes `mult` times
    /// the nominal link latency. Values are never corrupted — a flaky
    /// link only stretches cycles.
    FlakyLink {
        /// Source tile as (row, col).
        from: (usize, usize),
        /// Destination tile as (row, col); must be a mesh neighbour.
        to: (usize, usize),
        /// Latency multiplier (at least 2).
        mult: u32,
    },
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultSpec::DeadPe { r, c } => write!(f, "pe:{r},{c}"),
            FaultSpec::DeadLink { from, to } => {
                write!(f, "link:{},{}-{},{}", from.0, from.1, to.0, to.1)
            }
            FaultSpec::FlakyLink { from, to, mult } => {
                write!(f, "flaky:{},{}-{},{}@{}", from.0, from.1, to.0, to.1, mult)
            }
        }
    }
}

impl FromStr for FaultSpec {
    type Err = String;

    /// Parses the shared CLI syntax: `pe:R,C`, `link:R,C-R,C` or
    /// `flaky:R,C-R,C@MULT`.
    fn from_str(s: &str) -> Result<Self, String> {
        let usage =
            || format!("bad fault spec `{s}`: expected pe:R,C, link:R,C-R,C or flaky:R,C-R,C@MULT");
        let (kind, rest) = s.split_once(':').ok_or_else(usage)?;
        let tile = |t: &str| -> Result<(usize, usize), String> {
            let (a, b) = t
                .split_once(',')
                .ok_or_else(|| format!("bad tile `{t}` in fault spec `{s}`: expected R,C"))?;
            let r = a
                .trim()
                .parse::<usize>()
                .map_err(|_| format!("bad row `{a}` in fault spec `{s}`"))?;
            let c = b
                .trim()
                .parse::<usize>()
                .map_err(|_| format!("bad column `{b}` in fault spec `{s}`"))?;
            Ok((r, c))
        };
        let ends = |t: &str| -> Result<(Tile, Tile), String> {
            let (a, b) = t.split_once('-').ok_or_else(usage)?;
            Ok((tile(a)?, tile(b)?))
        };
        match kind {
            "pe" => {
                let (r, c) = tile(rest)?;
                Ok(FaultSpec::DeadPe { r, c })
            }
            "link" => {
                let (from, to) = ends(rest)?;
                Ok(FaultSpec::DeadLink { from, to })
            }
            "flaky" => {
                let (e, m) = rest.split_once('@').ok_or_else(usage)?;
                let mult = m
                    .trim()
                    .parse::<u32>()
                    .map_err(|_| format!("bad multiplier `{m}` in fault spec `{s}`"))?;
                if mult < 2 {
                    return Err(format!("flaky multiplier must be >= 2 in `{s}`"));
                }
                let (from, to) = ends(e)?;
                Ok(FaultSpec::FlakyLink { from, to, mult })
            }
            _ => Err(format!("unknown fault kind `{kind}` in fault spec `{s}`")),
        }
    }
}

/// A validated set of faults on one R×C fabric.
///
/// Lookups are dense (a `Vec<bool>` per resource class), so the
/// simulator's hot loop and the placer's legality checks pay one index
/// each. The empty set — [`FaultSet::none`] or a freshly constructed set
/// with no faults added — answers "healthy" for every resource and is
/// guaranteed bit-identical to the pre-fault-plane code paths.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultSet {
    rows: usize,
    cols: usize,
    dead_pe: Vec<bool>,
    dead_link: Vec<bool>,
    link_mult: Vec<u32>,
    specs: Vec<FaultSpec>,
}

impl FaultSet {
    /// The empty fault set (a healthy fabric of unspecified geometry).
    pub fn none() -> Self {
        FaultSet::default()
    }

    /// An empty fault set for an R×C fabric, ready for [`FaultSet::add`].
    pub fn new(rows: usize, cols: usize) -> Self {
        FaultSet {
            rows,
            cols,
            dead_pe: vec![false; rows * cols],
            dead_link: vec![false; 4 * rows * cols],
            link_mult: vec![1; 4 * rows * cols],
            specs: Vec::new(),
        }
    }

    /// Builds a fault set from the shared CLI surface: explicit `--fault`
    /// spec strings plus `--faults N` seeded-random faults on top.
    ///
    /// # Errors
    /// Returns a usage-style message for malformed or off-fabric specs.
    pub fn from_cli(
        rows: usize,
        cols: usize,
        specs: &[String],
        random_n: usize,
        seed: u64,
    ) -> Result<Self, String> {
        let mut fs = FaultSet::new(rows, cols);
        for s in specs {
            let spec: FaultSpec = s.parse()?;
            fs.add(spec)?;
        }
        fs.add_random(random_n, seed);
        Ok(fs)
    }

    /// `n` seeded-random faults on an R×C fabric (deterministic in
    /// `seed`; a mix of dead PEs, dead links and flaky links).
    pub fn random(rows: usize, cols: usize, n: usize, seed: u64) -> Self {
        let mut fs = FaultSet::new(rows, cols);
        fs.add_random(n, seed);
        fs
    }

    /// Adds `n` distinct seeded-random faults (deterministic in `seed`).
    /// Roughly 40% dead PEs, 40% dead links, 20% flaky links with
    /// multipliers in 2..=5. Gives up (leaving fewer than `n` faults)
    /// only if the fabric runs out of distinct resources.
    pub fn add_random(&mut self, n: usize, seed: u64) {
        let mut state = seed;
        let mut next = move || {
            // splitmix64: the container is offline, so the repo avoids a
            // real `rand` dependency in favour of this tiny generator.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let (rows, cols) = (self.rows, self.cols);
        if rows * cols == 0 {
            return;
        }
        let mut added = 0usize;
        let mut attempts = 0usize;
        while added < n && attempts < 64 * (n + 1) {
            attempts += 1;
            let r = next() as usize % rows;
            let c = next() as usize % cols;
            let spec = match next() % 5 {
                0 | 1 => FaultSpec::DeadPe { r, c },
                kind => {
                    let mut neigh: Vec<(usize, usize)> = Vec::with_capacity(4);
                    if c + 1 < cols {
                        neigh.push((r, c + 1));
                    }
                    if c > 0 {
                        neigh.push((r, c - 1));
                    }
                    if r + 1 < rows {
                        neigh.push((r + 1, c));
                    }
                    if r > 0 {
                        neigh.push((r - 1, c));
                    }
                    if neigh.is_empty() {
                        continue; // 1x1 fabric has no links
                    }
                    let to = neigh[next() as usize % neigh.len()];
                    if kind <= 3 {
                        FaultSpec::DeadLink { from: (r, c), to }
                    } else {
                        FaultSpec::FlakyLink {
                            from: (r, c),
                            to,
                            mult: 2 + (next() % 4) as u32,
                        }
                    }
                }
            };
            if self.add(spec).unwrap_or(false) {
                added += 1;
            }
        }
    }

    /// Adds one fault, validating it against the fabric geometry.
    /// Returns `Ok(false)` when the fault duplicates one already present
    /// (including a flaky spec on an already-dead link).
    ///
    /// # Errors
    /// Off-fabric tiles and non-adjacent link endpoints are rejected.
    pub fn add(&mut self, spec: FaultSpec) -> Result<bool, String> {
        let tile = |r: usize, c: usize| -> Result<usize, String> {
            if r >= self.rows || c >= self.cols {
                return Err(format!(
                    "fault `{spec}` is off the {}x{} fabric",
                    self.rows, self.cols
                ));
            }
            Ok(r * self.cols + c)
        };
        let link = |from: (usize, usize), to: (usize, usize)| -> Result<usize, String> {
            let ft = tile(from.0, from.1)?;
            tile(to.0, to.1)?;
            let dir = match (to.0 as i64 - from.0 as i64, to.1 as i64 - from.1 as i64) {
                (0, 1) => 0,  // east
                (0, -1) => 1, // west
                (1, 0) => 2,  // south
                (-1, 0) => 3, // north
                _ => {
                    return Err(format!(
                        "fault `{spec}` is not a mesh link (tiles are not adjacent)"
                    ))
                }
            };
            Ok(ft * 4 + dir)
        };
        let added = match spec {
            FaultSpec::DeadPe { r, c } => {
                let t = tile(r, c)?;
                !std::mem::replace(&mut self.dead_pe[t], true)
            }
            FaultSpec::DeadLink { from, to } => {
                let l = link(from, to)?;
                !std::mem::replace(&mut self.dead_link[l], true)
            }
            FaultSpec::FlakyLink { from, to, mult } => {
                if mult < 2 {
                    return Err(format!("flaky multiplier must be >= 2 in `{spec}`"));
                }
                let l = link(from, to)?;
                if self.dead_link[l] || self.link_mult[l] != 1 {
                    false
                } else {
                    self.link_mult[l] = mult;
                    true
                }
            }
        };
        if added {
            self.specs.push(spec);
        }
        Ok(added)
    }

    /// Fabric rows this set was built for (0 for [`FaultSet::none`]).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Fabric columns this set was built for (0 for [`FaultSet::none`]).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True when no faults are present.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The faults in insertion order.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// Is the compute tile dead? Tiles outside the set's geometry (and
    /// every tile of the empty set) are healthy.
    pub fn pe_dead(&self, tile: usize) -> bool {
        self.dead_pe.get(tile).copied().unwrap_or(false)
    }

    /// Is the directed link dead? `lid` uses the dense
    /// `tile * 4 + dir` encoding (east 0, west 1, south 2, north 3)
    /// shared with `marionette_net::Mesh` link ids.
    pub fn link_dead(&self, lid: usize) -> bool {
        self.dead_link.get(lid).copied().unwrap_or(false)
    }

    /// Latency multiplier of the directed link (1 = nominal). Same id
    /// encoding as [`FaultSet::link_dead`].
    pub fn link_mult(&self, lid: usize) -> u32 {
        self.link_mult.get(lid).copied().unwrap_or(1)
    }

    /// True when at least one flaky link is present (the simulator uses
    /// this to keep the healthy-path flit loop branch-free).
    pub fn has_flaky(&self) -> bool {
        self.specs
            .iter()
            .any(|s| matches!(s, FaultSpec::FlakyLink { .. }))
    }

    /// Number of dead PEs.
    pub fn dead_pe_count(&self) -> usize {
        self.dead_pe.iter().filter(|d| **d).count()
    }
}

impl fmt::Display for FaultSet {
    /// Comma-joined spec list (empty string for the empty set).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.specs.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for s in ["pe:1,2", "link:0,0-0,1", "flaky:2,1-1,1@3"] {
            let spec: FaultSpec = s.parse().unwrap();
            assert_eq!(spec.to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_malformed() {
        for s in [
            "pe",
            "pe:1",
            "pe:1,x",
            "link:0,0",
            "link:0,0-0",
            "flaky:0,0-0,1",
            "flaky:0,0-0,1@1",
            "flaky:0,0-0,1@x",
            "router:0,0",
            "",
        ] {
            assert!(s.parse::<FaultSpec>().is_err(), "`{s}` should not parse");
        }
    }

    #[test]
    fn add_validates_geometry() {
        let mut fs = FaultSet::new(4, 4);
        assert!(fs.add("pe:4,0".parse().unwrap()).is_err(), "row off-grid");
        assert!(fs.add("pe:0,4".parse().unwrap()).is_err(), "col off-grid");
        assert!(
            fs.add("link:0,0-1,1".parse().unwrap()).is_err(),
            "diagonal is not a link"
        );
        assert!(
            fs.add("link:0,0-0,2".parse().unwrap()).is_err(),
            "two-tile jump is not a link"
        );
        assert!(fs.is_empty());
    }

    #[test]
    fn link_encoding_matches_mesh() {
        // east 0 / west 1 / south 2 / north 3 on tile*4, like net::Mesh.
        let mut fs = FaultSet::new(4, 4);
        fs.add("link:1,1-1,2".parse().unwrap()).unwrap(); // tile 5 east
        fs.add("link:1,1-0,1".parse().unwrap()).unwrap(); // tile 5 north
        assert!(fs.link_dead(5 * 4));
        assert!(fs.link_dead(5 * 4 + 3));
        assert!(!fs.link_dead(5 * 4 + 1));
        assert!(!fs.link_dead(5 * 4 + 2));
    }

    #[test]
    fn duplicates_are_ignored() {
        let mut fs = FaultSet::new(4, 4);
        assert!(fs.add("pe:1,1".parse().unwrap()).unwrap());
        assert!(!fs.add("pe:1,1".parse().unwrap()).unwrap());
        assert!(fs.add("link:0,0-0,1".parse().unwrap()).unwrap());
        assert!(!fs.add("flaky:0,0-0,1@3".parse().unwrap()).unwrap());
        assert_eq!(fs.specs().len(), 2);
    }

    #[test]
    fn empty_set_is_healthy_everywhere() {
        let fs = FaultSet::none();
        assert!(fs.is_empty());
        assert!(!fs.has_flaky());
        for i in 0..256 {
            assert!(!fs.pe_dead(i));
            assert!(!fs.link_dead(i));
            assert_eq!(fs.link_mult(i), 1);
        }
    }

    #[test]
    fn random_is_deterministic_and_distinct() {
        let a = FaultSet::random(4, 4, 4, 7);
        let b = FaultSet::random(4, 4, 4, 7);
        assert_eq!(a, b);
        assert_eq!(a.specs().len(), 4);
        let c = FaultSet::random(4, 4, 4, 8);
        assert_ne!(a, c, "different seeds should give different sets");
        // Distinctness: re-adding every spec reports a duplicate.
        let mut d = FaultSet::new(4, 4);
        for &s in a.specs() {
            assert!(d.add(s).unwrap());
        }
        for &s in a.specs() {
            assert!(!d.add(s).unwrap());
        }
    }

    #[test]
    fn from_cli_combines_explicit_and_random() {
        let fs =
            FaultSet::from_cli(4, 4, &["pe:0,1".into(), "flaky:1,0-1,1@4".into()], 2, 42).unwrap();
        assert_eq!(fs.specs().len(), 4);
        assert!(fs.pe_dead(1));
        assert_eq!(fs.link_mult(4 * 4), 4); // tile 4 east
        assert!(FaultSet::from_cli(4, 4, &["pe:9,9".into()], 0, 0).is_err());
    }
}
