//! # marionette-sim
//!
//! Cycle-level simulator for the Marionette spatial architecture and the
//! baseline PE execution models it is evaluated against.
//!
//! The simulator executes a placed-and-routed [`marionette_isa::MachineProgram`] (produced
//! by `marionette-compiler`, loadable from an ISA bitstream) with real
//! 32-bit values — every kernel's outputs are checked against golden
//! references — while accounting cycles for:
//!
//! - PE issue bandwidth (one FU operation per cycle, plus a parallel
//!   control flow part on Marionette-style PEs);
//! - the mesh data NoC (per-link bandwidth, XY routes, contention);
//! - the CS-Benes control network (single-cycle fixed paths);
//! - configuration behaviour: per-firing configure overhead (dataflow
//!   PEs), predicated branch execution (von Neumann PEs), group-exclusive
//!   execution with configuration-switch stalls (CCU round trips), and
//!   CCU surcharges on dynamically-bounded loop activations;
//! - memory latency on an optimistic multi-ported scratchpad.
//!
//! Architectural presets live in `marionette-arch`; this crate provides
//! the neutral machine plus the [`TimingModel`] parameter space.

#![warn(missing_docs)]

pub mod fault;
pub mod machine;
pub mod stats;
pub mod timing;
pub mod trace;
pub mod wheel;

pub use fault::{FaultSet, FaultSpec};
pub use machine::{
    run, run_full, run_full_traced, run_lanes, run_lanes_full, run_with_engine, run_with_faults,
    EngineKind, LaneSpec, RunResult, SimError,
};
pub use stats::{GroupStats, RunStats, UnitStats};
pub use timing::{CtrlTransport, TimingModel};
pub use trace::{ParsedEvent, ParsedTrace, Tracer};
