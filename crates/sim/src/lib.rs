//! # marionette-sim
//!
//! Cycle-level simulator for the Marionette spatial architecture and the
//! baseline PE execution models it is evaluated against.
//!
//! The simulator executes a placed-and-routed [`marionette_isa::MachineProgram`] (produced
//! by `marionette-compiler`, loadable from an ISA bitstream) with real
//! 32-bit values — every kernel's outputs are checked against golden
//! references — while accounting cycles for:
//!
//! - PE issue bandwidth (one FU operation per cycle, plus a parallel
//!   control flow part on Marionette-style PEs);
//! - the mesh data NoC (per-link bandwidth, XY routes, contention);
//! - the CS-Benes control network (single-cycle fixed paths);
//! - configuration behaviour: per-firing configure overhead (dataflow
//!   PEs), predicated branch execution (von Neumann PEs), group-exclusive
//!   execution with configuration-switch stalls (CCU round trips), and
//!   CCU surcharges on dynamically-bounded loop activations;
//! - memory latency on an optimistic multi-ported scratchpad.
//!
//! Architectural presets live in `marionette-arch`; this crate provides
//! the neutral machine plus the [`TimingModel`] parameter space. On top
//! of the core engine sit the [`fault`] plane (dead/flaky PEs and
//! links, shared with the compiler as an avoid-mask), the [`trace`]
//! plane (opt-in Perfetto-loadable cycle traces), and the [`tenancy`]
//! runner (disjoint fabric partitions simulated as independent
//! factors).
//!
//! The pieces that don't need a compiled program are directly usable;
//! for example a [`FaultSet`] parses from the CLI fault syntax and
//! answers resource-liveness queries in the simulator's dense tile and
//! link encoding:
//!
//! ```
//! use marionette_sim::{FaultSet, FaultSpec};
//!
//! let mut faults = FaultSet::new(4, 4);
//! faults.add("pe:1,2".parse::<FaultSpec>().unwrap()).unwrap();
//! faults.add("flaky:0,0-0,1@3".parse::<FaultSpec>().unwrap()).unwrap();
//! assert!(faults.pe_dead(1 * 4 + 2)); // tile id = row * cols + col
//! assert!(faults.has_flaky());
//! assert_eq!(faults.specs().len(), 2);
//! ```

#![warn(missing_docs)]

pub mod fault;
pub mod machine;
pub mod stats;
pub mod tenancy;
pub mod timing;
pub mod trace;
pub mod wheel;

pub use fault::{FaultSet, FaultSpec};
pub use machine::{
    run, run_full, run_full_traced, run_lanes, run_lanes_full, run_with_engine, run_with_faults,
    EngineKind, LaneSpec, RunResult, SimError,
};
pub use stats::{GroupStats, RunStats, UnitStats};
pub use tenancy::{run_tenants, TenancyError, TenancyRun, TenantOutcome, TenantWorkload};
pub use timing::{CtrlTransport, TimingModel};
pub use trace::{ParsedEvent, ParsedTrace, Tracer};
