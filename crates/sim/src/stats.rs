//! Run statistics: PE utilization, group activity, firing profiles.

/// Per-execution-unit counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UnitStats {
    /// Cycles the unit was occupied.
    pub busy: u64,
    /// Firings that produced useful (non-poison) results.
    pub useful_fires: u64,
    /// Firings wasted on predicated-off work.
    pub poison_fires: u64,
}

/// Per-mapping-group activity.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GroupStats {
    /// First cycle any operator of the group fired.
    pub first_fire: Option<u64>,
    /// Last cycle any operator of the group fired.
    pub last_fire: u64,
    /// Total firings.
    pub fires: u64,
    /// Total busy-cycles accumulated by the group's operators.
    pub busy: u64,
}

/// Statistics of one simulation run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Total cycles.
    pub cycles: u64,
    /// Per-PE data-plane stats.
    pub pe_data: Vec<UnitStats>,
    /// Per-PE control-plane stats.
    pub pe_ctrl: Vec<UnitStats>,
    /// Per-group activity.
    pub groups: Vec<GroupStats>,
    /// Total node firings.
    pub fires: u64,
    /// Cycles the array spent stalled on group configuration switches.
    pub switch_stall_cycles: u64,
    /// Number of group switches.
    pub group_switches: u64,
    /// Tokens transported over the control path.
    pub ctrl_tokens: u64,
    /// Tokens transported over the data mesh.
    pub data_tokens: u64,
    /// Total flit-hops on the mesh.
    pub mesh_hops: u64,
    /// Cycles flits spent blocked on busy links (contention measure).
    pub link_stall_cycles: u64,
    /// Per-route share of [`RunStats::link_stall_cycles`], indexed by the
    /// program's route table. This is the attribution signal the mapping
    /// explorer's cost model is calibrated against: a route with a large
    /// share rode an over-subscribed link or fed a saturated input queue,
    /// exactly what the quadratic congestion term penalizes at
    /// placement time (see `marionette-compiler::cost`).
    pub link_stall_by_route: Vec<u64>,
}

impl RunStats {
    /// Mean data-plane PE utilization (busy / total cycles).
    pub fn mean_pe_utilization(&self) -> f64 {
        if self.cycles == 0 || self.pe_data.is_empty() {
            return 0.0;
        }
        let busy: u64 = self.pe_data.iter().map(|u| u.busy).sum();
        busy as f64 / (self.cycles as f64 * self.pe_data.len() as f64)
    }

    /// Utilization of one group over its active window, normalized by the
    /// PE count assigned to it.
    ///
    /// Degenerate groups are defined to have zero utilization rather than
    /// a NaN/∞ quotient: a group index past the recorded set, a group
    /// that never fired, or a `pes` of zero (a mapping group with no PEs
    /// assigned — the static PE count must not be used as a stand-in for
    /// such groups) all return `0.0`.
    pub fn group_window_utilization(&self, group: usize, pes: usize) -> f64 {
        let Some(gs) = self.groups.get(group) else {
            return 0.0;
        };
        let Some(first) = gs.first_fire else {
            return 0.0;
        };
        if pes == 0 || gs.busy == 0 {
            return 0.0;
        }
        let window = gs.last_fire.saturating_sub(first) + 1;
        gs.busy as f64 / (window as f64 * pes as f64)
    }

    /// The `k` routes with the largest link-stall attribution, as
    /// `(route id, stall cycles)` pairs sorted descending (stable by
    /// route id on ties). Routes with zero stalls are omitted.
    pub fn top_stalled_routes(&self, k: usize) -> Vec<(u32, u64)> {
        let mut v: Vec<(u32, u64)> = self
            .link_stall_by_route
            .iter()
            .enumerate()
            .filter(|(_, &s)| s > 0)
            .map(|(i, &s)| (i as u32, s))
            .collect();
        v.sort_by_key(|&(i, s)| (std::cmp::Reverse(s), i));
        v.truncate(k);
        v
    }

    /// Fraction of firings wasted on predicated-off (poison) work.
    pub fn poison_fraction(&self) -> f64 {
        let poison: u64 = self
            .pe_data
            .iter()
            .chain(self.pe_ctrl.iter())
            .map(|u| u.poison_fires)
            .sum();
        let useful: u64 = self
            .pe_data
            .iter()
            .chain(self.pe_ctrl.iter())
            .map(|u| u.useful_fires)
            .sum();
        if poison + useful == 0 {
            0.0
        } else {
            poison as f64 / (poison + useful) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_math() {
        let mut s = RunStats {
            cycles: 100,
            pe_data: vec![UnitStats::default(); 4],
            ..Default::default()
        };
        s.pe_data[0].busy = 100;
        s.pe_data[1].busy = 50;
        assert!((s.mean_pe_utilization() - 0.375).abs() < 1e-12);
        s.groups.push(GroupStats {
            first_fire: Some(10),
            last_fire: 59,
            fires: 10,
            busy: 25,
        });
        assert!((s.group_window_utilization(0, 1) - 0.5).abs() < 1e-12);
        assert_eq!(s.group_window_utilization(9, 1), 0.0);
    }

    #[test]
    fn zero_pe_group_utilization_is_zero_not_nan() {
        let mut s = RunStats {
            cycles: 100,
            ..Default::default()
        };
        s.groups.push(GroupStats {
            first_fire: Some(5),
            last_fire: 20,
            fires: 4,
            busy: 8,
        });
        // A group with zero mapped PEs must not divide by the static PE
        // count (or by zero): the defined value is 0.0.
        let u = s.group_window_utilization(0, 0);
        assert_eq!(u, 0.0);
        assert!(u.is_finite());
        // Never-fired group, any PE count.
        s.groups.push(GroupStats::default());
        assert_eq!(s.group_window_utilization(1, 16), 0.0);
        // Fired-but-zero-busy group is zero too.
        s.groups.push(GroupStats {
            first_fire: Some(1),
            last_fire: 1,
            fires: 0,
            busy: 0,
        });
        assert_eq!(s.group_window_utilization(2, 16), 0.0);
    }

    #[test]
    fn top_stalled_routes_sorted() {
        let s = RunStats {
            link_stall_by_route: vec![0, 7, 3, 7, 0, 1],
            ..Default::default()
        };
        assert_eq!(s.top_stalled_routes(3), vec![(1, 7), (3, 7), (2, 3)]);
        assert_eq!(s.top_stalled_routes(10).len(), 4);
    }

    #[test]
    fn zero_cycle_run_yields_finite_zero_ratios() {
        // A run that terminated before its first cycle (empty program,
        // immediate quiescence) must report 0.0 everywhere, never NaN.
        let s = RunStats {
            cycles: 0,
            pe_data: vec![UnitStats::default(); 4],
            ..Default::default()
        };
        assert_eq!(s.mean_pe_utilization(), 0.0);
        assert!(s.mean_pe_utilization().is_finite());
        assert_eq!(s.poison_fraction(), 0.0);
        assert!(s.top_stalled_routes(8).is_empty());
        // No PEs recorded at all is equally defined.
        let empty = RunStats::default();
        assert_eq!(empty.mean_pe_utilization(), 0.0);
    }

    #[test]
    fn all_stalled_route_attribution_is_complete() {
        // Every route stalled: nothing is omitted, the total is
        // preserved, and k truncates from the top.
        let s = RunStats {
            cycles: 10,
            link_stall_cycles: 6,
            link_stall_by_route: vec![2, 2, 2],
            ..Default::default()
        };
        let top = s.top_stalled_routes(usize::MAX);
        assert_eq!(top.len(), 3);
        assert_eq!(
            top.iter().map(|&(_, c)| c).sum::<u64>(),
            s.link_stall_cycles
        );
        assert_eq!(s.top_stalled_routes(0), vec![]);
        assert_eq!(s.top_stalled_routes(1), vec![(0, 2)]);
    }

    #[test]
    fn top_stalled_routes_ties_break_by_route_id() {
        // All-equal stalls: descending-by-count is a total tie, so the
        // order must be ascending route id — deterministically.
        let s = RunStats {
            link_stall_by_route: vec![5; 6],
            ..Default::default()
        };
        assert_eq!(
            s.top_stalled_routes(6),
            vec![(0, 5), (1, 5), (2, 5), (3, 5), (4, 5), (5, 5)]
        );
        // A tie at the truncation boundary keeps the lower route id.
        let s2 = RunStats {
            link_stall_by_route: vec![1, 9, 9, 9],
            ..Default::default()
        };
        assert_eq!(s2.top_stalled_routes(2), vec![(1, 9), (2, 9)]);
    }
}
