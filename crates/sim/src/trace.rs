//! Opt-in cycle-accurate tracing: the machine's trace plane.
//!
//! A [`Tracer`] installed via [`crate::machine::run_full_traced`] records
//! one timestamped event per architectural occurrence — PE/control/memory
//! firings, mesh link grants, arbitration and backpressure stalls,
//! control-plane configuration switches, memory accesses — plus counter
//! samples (event-queue depth, in-flight flits) and free-form markers
//! (fault remaps). Events land in a chunked arena (no reallocation moves
//! on the hot path) and export as Chrome trace-event JSON, directly
//! loadable in Perfetto (<https://ui.perfetto.dev>): one track per
//! PE data/ctrl part, per directed mesh link, per memory unit, plus the
//! CCU track and the counter tracks.
//!
//! Tracing is strictly opt-in: a machine without a tracer takes a single
//! null-pointer check per hook site, and the traced run is bit-identical
//! to the untraced one (pinned by `crates/core/tests/trace_plane.rs`).
//!
//! The exported JSON is line-oriented (one event object per line, fixed
//! key order) so [`parse`] can validate and reload it without a general
//! JSON parser; `trace_diff` and the schema tests build on that. The
//! timestamp unit is **one simulated cycle per microsecond** — Perfetto's
//! native unit — so slice widths read directly as cycle counts.

use std::collections::HashMap;
use std::fmt::Write as _;

/// Events per arena chunk: chunks never reallocate, so recording a new
/// event moves no previously recorded one.
const CHUNK: usize = 1 << 15;

/// Identity of a trace track (a Perfetto "thread"); interned to a dense
/// tid in first-use order, which makes the export deterministic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub(crate) enum TrackKey {
    /// A PE's data flow part.
    PeData(u32),
    /// A PE's control flow part.
    PeCtrl(u32),
    /// A dedicated network switch unit.
    Switch(u32),
    /// A memory stream unit.
    Mem(u32),
    /// A directed mesh link (`from_pe * 4 + dir`, E/W/S/N = 0/1/2/3).
    Link(u32),
    /// The central configuration unit (group switches).
    Ccu,
    /// Free-form markers (fault remaps, run annotations).
    Marks,
    /// Counter: pending events in the simulator queue.
    QueueDepth,
    /// Counter: flits in flight (traversing + arbitrating + parked).
    Flits,
}

#[derive(Clone, Debug)]
enum RecKind {
    Fire { node: u32, poisoned: bool },
    Grant { route: u32 },
    Stall { route: u32 },
    Park { route: u32 },
    Switch { group: u16 },
    Mem { store: bool, array: u32 },
    Counter { value: u64 },
    Mark { label: u32 },
}

#[derive(Clone, Debug)]
struct Rec {
    track: u32,
    ts: u64,
    dur: u64,
    kind: RecKind,
}

/// An arena-backed trace event recorder. See the module docs.
#[derive(Debug, Default)]
pub struct Tracer {
    cols: usize,
    tracks: Vec<String>,
    lookup: HashMap<TrackKey, u32>,
    chunks: Vec<Vec<Rec>>,
    labels: Vec<String>,
    last_queue_depth: Option<u64>,
    last_flits: Option<u64>,
}

impl Tracer {
    /// A fresh, empty tracer.
    #[must_use]
    pub fn new() -> Self {
        Tracer::default()
    }

    /// Number of recorded events (metadata lines excluded).
    #[must_use]
    pub fn len(&self) -> usize {
        self.chunks.iter().map(Vec::len).sum()
    }

    /// Whether nothing has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records a free-form instant marker (e.g. `remap after pe:0,0`)
    /// on the marks track at `cycle`.
    pub fn mark(&mut self, cycle: u64, label: &str) {
        let li = self.labels.len() as u32;
        self.labels.push(label.to_string());
        let track = self.track(TrackKey::Marks);
        self.push(Rec {
            track,
            ts: cycle,
            dur: 0,
            kind: RecKind::Mark { label: li },
        });
    }

    pub(crate) fn set_cols(&mut self, cols: usize) {
        self.cols = cols;
    }

    fn push(&mut self, rec: Rec) {
        match self.chunks.last_mut() {
            Some(c) if c.len() < CHUNK => c.push(rec),
            _ => {
                let mut c = Vec::with_capacity(CHUNK);
                c.push(rec);
                self.chunks.push(c);
            }
        }
    }

    fn track(&mut self, key: TrackKey) -> u32 {
        if let Some(&t) = self.lookup.get(&key) {
            return t;
        }
        let cols = self.cols.max(1);
        let rc = |pe: u32| (pe as usize / cols, pe as usize % cols);
        let name = match key {
            TrackKey::PeData(pe) => {
                let (r, c) = rc(pe);
                format!("pe {r},{c} data")
            }
            TrackKey::PeCtrl(pe) => {
                let (r, c) = rc(pe);
                format!("pe {r},{c} ctrl")
            }
            TrackKey::Switch(sw) => format!("switch {sw}"),
            TrackKey::Mem(u) => format!("mem {u}"),
            TrackKey::Link(lid) => {
                let (r, c) = rc(lid / 4);
                let dir = ["E", "W", "S", "N"][(lid % 4) as usize];
                format!("link {r},{c}>{dir}")
            }
            TrackKey::Ccu => "ccu".to_string(),
            TrackKey::Marks => "marks".to_string(),
            TrackKey::QueueDepth => "queue depth".to_string(),
            TrackKey::Flits => "flits in flight".to_string(),
        };
        let tid = self.tracks.len() as u32;
        self.tracks.push(name);
        self.lookup.insert(key, tid);
        tid
    }

    pub(crate) fn fire(&mut self, key: TrackKey, cycle: u64, occ: u64, node: u32, poisoned: bool) {
        let track = self.track(key);
        self.push(Rec {
            track,
            ts: cycle,
            dur: occ,
            kind: RecKind::Fire { node, poisoned },
        });
    }

    pub(crate) fn grant(&mut self, lid: u32, route: u32, cycle: u64, lat: u64) {
        let track = self.track(TrackKey::Link(lid));
        self.push(Rec {
            track,
            ts: cycle,
            dur: lat,
            kind: RecKind::Grant { route },
        });
    }

    pub(crate) fn stall(&mut self, lid: u32, route: u32, first_attempt: u64, stall: u64) {
        if stall == 0 {
            return;
        }
        let track = self.track(TrackKey::Link(lid));
        self.push(Rec {
            track,
            ts: first_attempt,
            dur: stall,
            kind: RecKind::Stall { route },
        });
    }

    pub(crate) fn park(&mut self, lid: u32, route: u32, first_attempt: u64, stall: u64) {
        if stall == 0 {
            return;
        }
        let track = self.track(TrackKey::Link(lid));
        self.push(Rec {
            track,
            ts: first_attempt,
            dur: stall,
            kind: RecKind::Park { route },
        });
    }

    pub(crate) fn switch(&mut self, cycle: u64, cost: u64, group: u16) {
        let track = self.track(TrackKey::Ccu);
        self.push(Rec {
            track,
            ts: cycle,
            dur: cost,
            kind: RecKind::Switch { group },
        });
    }

    pub(crate) fn mem(&mut self, cycle: u64, store: bool, array: u32) {
        let track = self.track(TrackKey::Mem(0));
        self.push(Rec {
            track,
            ts: cycle,
            dur: 0,
            kind: RecKind::Mem { store, array },
        });
    }

    pub(crate) fn counters(&mut self, cycle: u64, queue_depth: u64, flits: u64) {
        if self.last_queue_depth != Some(queue_depth) {
            self.last_queue_depth = Some(queue_depth);
            let track = self.track(TrackKey::QueueDepth);
            self.push(Rec {
                track,
                ts: cycle,
                dur: 0,
                kind: RecKind::Counter { value: queue_depth },
            });
        }
        if self.last_flits != Some(flits) {
            self.last_flits = Some(flits);
            let track = self.track(TrackKey::Flits);
            self.push(Rec {
                track,
                ts: cycle,
                dur: 0,
                kind: RecKind::Counter { value: flits },
            });
        }
    }

    /// Serializes the trace as Chrome trace-event JSON, one event object
    /// per line: first a `thread_name` metadata line per track (tids are
    /// dense, in first-use order), then every recorded event in record
    /// order. The output is deterministic for a deterministic run.
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        let mut s = String::with_capacity(64 + self.len() * 72);
        s.push_str("{\"traceEvents\":[\n");
        let mut first = true;
        let mut line = |s: &mut String, l: &str| {
            if first {
                first = false;
            } else {
                s.push_str(",\n");
            }
            s.push_str(l);
        };
        let mut buf = String::new();
        for (i, name) in self.tracks.iter().enumerate() {
            buf.clear();
            let _ = write!(
                buf,
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":\"{}\"}}}}",
                i + 1,
                escape(name)
            );
            line(&mut s, &buf);
        }
        for rec in self.chunks.iter().flatten() {
            buf.clear();
            let tid = rec.track + 1;
            match &rec.kind {
                RecKind::Fire { node, poisoned } => {
                    let what = if *poisoned { "poison" } else { "fire" };
                    let _ = write!(
                        buf,
                        "{{\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{},\"dur\":{},\"name\":\"{what} n{node}\"}}",
                        rec.ts, rec.dur
                    );
                }
                RecKind::Grant { route } => {
                    let _ = write!(
                        buf,
                        "{{\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{},\"dur\":{},\"name\":\"grant r{route}\"}}",
                        rec.ts, rec.dur
                    );
                }
                RecKind::Stall { route } => {
                    let _ = write!(
                        buf,
                        "{{\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{},\"dur\":{},\"name\":\"stall r{route}\"}}",
                        rec.ts, rec.dur
                    );
                }
                RecKind::Park { route } => {
                    let _ = write!(
                        buf,
                        "{{\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{},\"dur\":{},\"name\":\"park r{route}\"}}",
                        rec.ts, rec.dur
                    );
                }
                RecKind::Switch { group } => {
                    let _ = write!(
                        buf,
                        "{{\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{},\"dur\":{},\"name\":\"switch g{group}\"}}",
                        rec.ts, rec.dur
                    );
                }
                RecKind::Mem { store, array } => {
                    let what = if *store { "store" } else { "load" };
                    let _ = write!(
                        buf,
                        "{{\"ph\":\"i\",\"pid\":1,\"tid\":{tid},\"ts\":{},\"s\":\"t\",\"name\":\"{what} a{array}\"}}",
                        rec.ts
                    );
                }
                RecKind::Counter { value } => {
                    let _ = write!(
                        buf,
                        "{{\"ph\":\"C\",\"pid\":1,\"tid\":{tid},\"ts\":{},\"name\":\"{}\",\"args\":{{\"value\":{value}}}}}",
                        rec.ts,
                        escape(&self.tracks[rec.track as usize])
                    );
                }
                RecKind::Mark { label } => {
                    let _ = write!(
                        buf,
                        "{{\"ph\":\"i\",\"pid\":1,\"tid\":{tid},\"ts\":{},\"s\":\"t\",\"name\":\"{}\"}}",
                        rec.ts,
                        escape(&self.labels[*label as usize])
                    );
                }
            }
            line(&mut s, &buf);
        }
        s.push_str("\n]}\n");
        s
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

// ---------------- parsing / validation --------------------------------

/// One reloaded trace event (non-metadata).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsedEvent {
    /// Track index into [`ParsedTrace::tracks`].
    pub track: u32,
    /// Phase letter: `X` (complete), `C` (counter), `i` (instant).
    pub ph: char,
    /// Start cycle.
    pub ts: u64,
    /// Duration in cycles (0 for counters and instants).
    pub dur: u64,
    /// Event name (`fire n3`, `stall r7`, …) — track name for counters.
    pub name: String,
    /// Counter value, for `C` events.
    pub value: Option<u64>,
}

/// A reloaded, schema-validated trace.
#[derive(Clone, Debug, Default)]
pub struct ParsedTrace {
    /// Track display names, indexed by `tid - 1`.
    pub tracks: Vec<String>,
    /// Every non-metadata event, in file order.
    pub events: Vec<ParsedEvent>,
}

impl ParsedTrace {
    /// Summed stall cycles (`stall` + `park` slices) per track, in track
    /// order — the per-track attribution `trace_diff` reports deltas of.
    #[must_use]
    pub fn stall_by_track(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.tracks.len()];
        for e in &self.events {
            if e.ph == 'X' && (e.name.starts_with("stall ") || e.name.starts_with("park ")) {
                out[e.track as usize] += e.dur;
            }
        }
        out
    }

    /// Highest `ts + dur` across all events — the traced horizon.
    #[must_use]
    pub fn last_cycle(&self) -> u64 {
        self.events.iter().map(|e| e.ts + e.dur).max().unwrap_or(0)
    }
}

fn u64_field(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let i = line.find(&pat)? + pat.len();
    let rest = &line.as_bytes()[i..];
    let end = rest
        .iter()
        .position(|b| !b.is_ascii_digit())
        .unwrap_or(rest.len());
    if end == 0 {
        return None;
    }
    line[i..i + end].parse().ok()
}

fn str_field(line: &str, pat: &str) -> Option<String> {
    let i = line.find(pat)? + pat.len();
    let rest = &line[i..];
    let mut out = String::new();
    let mut chars = rest.chars();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let cp = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(cp)?);
                }
                c => out.push(c),
            },
            c => out.push(c),
        }
    }
}

/// Parses and schema-validates a trace produced by
/// [`Tracer::to_chrome_json`] (the documented subset of the Chrome
/// trace-event format: see `docs/OBSERVABILITY.md`).
///
/// # Errors
/// Returns a description of the first schema violation: bad envelope,
/// unknown phase, missing field, a counter without a value, or an event
/// referencing an undeclared track.
pub fn parse(s: &str) -> Result<ParsedTrace, String> {
    let body = s.trim();
    let body = body
        .strip_prefix("{\"traceEvents\":[")
        .ok_or("missing {\"traceEvents\":[ envelope")?;
    let body = body
        .strip_suffix("]}")
        .ok_or("missing ]} envelope terminator")?;
    let mut out = ParsedTrace::default();
    for (ln, line) in body.lines().enumerate() {
        let line = line.trim().trim_end_matches(',');
        if line.is_empty() {
            continue;
        }
        let err = |what: &str| format!("line {}: {what}: {line}", ln + 1);
        if !line.starts_with('{') || !line.ends_with('}') {
            return Err(err("event is not a one-line object"));
        }
        let ph = str_field(line, "\"ph\":\"").ok_or_else(|| err("missing ph"))?;
        if u64_field(line, "pid") != Some(1) {
            return Err(err("pid must be 1"));
        }
        let tid = u64_field(line, "tid").ok_or_else(|| err("missing tid"))?;
        match ph.as_str() {
            "M" => {
                if str_field(line, "\"name\":\"").as_deref() != Some("thread_name") {
                    return Err(err("metadata must be thread_name"));
                }
                let name = str_field(line, "\"args\":{\"name\":\"")
                    .ok_or_else(|| err("thread_name without args.name"))?;
                if tid as usize != out.tracks.len() + 1 {
                    return Err(err("metadata tids must be dense and ordered"));
                }
                out.tracks.push(name);
            }
            "X" | "C" | "i" => {
                if tid == 0 || tid as usize > out.tracks.len() {
                    return Err(err("event on an undeclared track"));
                }
                let ts = u64_field(line, "ts").ok_or_else(|| err("missing ts"))?;
                let dur = match ph.as_str() {
                    "X" => u64_field(line, "dur").ok_or_else(|| err("complete without dur"))?,
                    _ => 0,
                };
                if ph == "i" && !line.contains("\"s\":\"t\"") {
                    return Err(err("instant without thread scope"));
                }
                let name = str_field(line, "\"name\":\"").ok_or_else(|| err("missing name"))?;
                let value = match ph.as_str() {
                    "C" => {
                        Some(u64_field(line, "value").ok_or_else(|| err("counter without value"))?)
                    }
                    _ => None,
                };
                out.events.push(ParsedEvent {
                    track: (tid - 1) as u32,
                    ph: ph.as_bytes()[0] as char,
                    ts,
                    dur,
                    name,
                    value,
                });
            }
            other => return Err(err(&format!("unknown phase {other:?}"))),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_parse() {
        let mut t = Tracer::new();
        t.set_cols(4);
        t.fire(TrackKey::PeData(5), 3, 1, 7, false);
        t.fire(TrackKey::PeCtrl(5), 4, 1, 8, true);
        t.grant(21, 2, 5, 1);
        t.stall(21, 2, 5, 3);
        t.park(21, 2, 6, 2);
        t.switch(9, 4, 1);
        t.mem(10, true, 0);
        t.counters(11, 3, 2);
        t.counters(12, 3, 5); // queue depth unchanged: one event only
        t.mark(13, "remap after pe:0,0");
        let json = t.to_chrome_json();
        let p = parse(&json).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(p.tracks[0], "pe 1,1 data");
        assert_eq!(p.tracks[1], "pe 1,1 ctrl");
        assert_eq!(p.tracks[2], "link 1,1>W");
        assert_eq!(p.events.len(), 11);
        assert_eq!(p.events[0].name, "fire n7");
        assert_eq!(p.events[1].name, "poison n8");
        assert_eq!(p.events[3].name, "stall r2");
        assert_eq!(p.events[3].dur, 3);
        assert_eq!(p.events[7].value, Some(3));
        assert_eq!(p.events[9].value, Some(5));
        assert_eq!(p.events[10].name, "remap after pe:0,0");
        // Stall attribution: stall(3) + park(2) on the link track.
        assert_eq!(p.stall_by_track()[2], 5);
    }

    #[test]
    fn zero_length_stalls_are_elided() {
        let mut t = Tracer::new();
        t.stall(0, 0, 5, 0);
        t.park(0, 0, 5, 0);
        assert!(t.is_empty());
    }

    #[test]
    fn parse_rejects_schema_violations() {
        assert!(parse("[]").is_err());
        let undeclared =
            "{\"traceEvents\":[\n{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":0,\"dur\":1,\"name\":\"x\"}\n]}";
        assert!(parse(undeclared).unwrap_err().contains("undeclared"));
        let bad_pid = "{\"traceEvents\":[\n{\"ph\":\"M\",\"pid\":2,\"tid\":1,\"name\":\"thread_name\",\"args\":{\"name\":\"t\"}}\n]}";
        assert!(parse(bad_pid).unwrap_err().contains("pid"));
        let no_dur = "{\"traceEvents\":[\n{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"thread_name\",\"args\":{\"name\":\"t\"}},\n{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":0,\"name\":\"x\"}\n]}";
        assert!(parse(no_dur).unwrap_err().contains("dur"));
    }

    #[test]
    fn export_is_deterministic() {
        let mk = || {
            let mut t = Tracer::new();
            t.set_cols(2);
            t.fire(TrackKey::PeData(1), 0, 1, 3, false);
            t.grant(4, 0, 1, 1);
            t.counters(2, 1, 1);
            t.to_chrome_json()
        };
        assert_eq!(mk(), mk());
    }
}
