//! Textual disassembly of machine programs (per-PE configuration listing).

use crate::config::{CtrlMode, MachineProgram, OperandSrc, Placement};
use std::fmt::Write;

fn src_text(p: &MachineProgram, s: &OperandSrc) -> String {
    match s {
        OperandSrc::Route(r) => format!("r{r}"),
        OperandSrc::Imm(v) => format!("#{v}"),
        OperandSrc::Param(q) => format!("${}", p.params[*q as usize].name),
        OperandSrc::None => "_".into(),
    }
}

/// Renders a human-readable per-PE configuration listing: the spatial
/// analogue of `objdump -d`.
pub fn disassemble(p: &MachineProgram) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "; program {} — {}x{} fabric, {} nodes, {} routes",
        p.name,
        p.rows,
        p.cols,
        p.nodes.len(),
        p.routes.len()
    );
    for (pi, pe) in p.pes.iter().enumerate() {
        if pe.configs.is_empty() {
            continue;
        }
        let _ = writeln!(
            out,
            "pe {pi} (r{} c{}):",
            pi / p.cols as usize,
            pi % p.cols as usize
        );
        for (ci, c) in pe.configs.iter().enumerate() {
            let mode = match c.mode {
                CtrlMode::Dfg => "dfg",
                CtrlMode::Branch => "branch",
                CtrlMode::Loop => "loop",
            };
            let _ = writeln!(out, "  cfg {ci}: bb{} mode={mode}", c.bb);
            for &slot in &c.slots {
                let n = &p.nodes[slot as usize];
                let srcs: Vec<String> = n.srcs.iter().map(|s| src_text(p, s)).collect();
                let _ = writeln!(out, "    n{slot}: {} {}", n.op, srcs.join(", "));
            }
        }
    }
    // Off-fabric placements (network switches, stream units, control plane)
    let mut other = Vec::new();
    for (i, n) in p.nodes.iter().enumerate() {
        match n.place {
            Placement::NetSwitch { sw } => other.push(format!("  sw{sw}: n{i} {}", n.op)),
            Placement::MemUnit { unit } => other.push(format!("  mem{unit}: n{i} {}", n.op)),
            Placement::CtrlPlane { pe } => {
                other.push(format!("  pe{pe}.ctrl: n{i} {}", n.op));
            }
            Placement::Pe { .. } => {}
        }
    }
    if !other.is_empty() {
        let _ = writeln!(out, "off-datapath placements:");
        for l in other {
            let _ = writeln!(out, "{l}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::tests_support::sample;

    #[test]
    fn disasm_mentions_everything() {
        let text = disassemble(&sample());
        assert!(text.contains("pe 1"));
        assert!(text.contains("add"));
        assert!(text.contains("#5"));
        assert!(text.contains("pe0.ctrl"));
        assert!(text.contains("mode=dfg"));
    }
}
