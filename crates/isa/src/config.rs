//! Architectural configuration structures: the contract between the
//! compiler (producer) and the simulator (consumer).
//!
//! A [`MachineProgram`] is a fully-placed, fully-routed executable: every
//! CDFG operator carries a placement (data-plane PE slot, control flow
//! plane, network switch, or memory stream unit), every dataflow edge is a
//! [`Route`] with its physical path, and every PE has a per-basic-block
//! configuration list in the style of the paper's Control Flow Trigger
//! instruction buffer (Fig 5).

use marionette_cdfg::value::{ElemTy, Value};
use marionette_cdfg::Op;
use std::fmt;

/// Where an operator executes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Placement {
    /// Data flow part of a PE: occupies an FU issue slot.
    Pe {
        /// Linear PE index (`row * cols + col`).
        pe: u16,
    },
    /// Control flow part of a PE: issues in parallel with the FU
    /// (Marionette's temporally loosely-coupled control path).
    CtrlPlane {
        /// Linear PE index hosting the control operator.
        pe: u16,
    },
    /// A network switch control slot (RipTide-style in-network control).
    NetSwitch {
        /// Switch index.
        sw: u16,
    },
    /// A memory stream engine (Softbrain-style stream dataflow).
    MemUnit {
        /// Stream engine index.
        unit: u8,
    },
}

impl Placement {
    /// The linear fabric tile hosting this placement: PEs and network
    /// switches index the grid directly; memory stream engines sit on
    /// the top-row tiles. This is the single source of truth for route
    /// endpoints — the router, the mapping explorer's cost model and the
    /// legality tests all tile through here.
    pub fn tile(self) -> u16 {
        match self {
            Placement::Pe { pe } | Placement::CtrlPlane { pe } => pe,
            Placement::NetSwitch { sw } => sw,
            Placement::MemUnit { unit } => u16::from(unit),
        }
    }

    /// The PE index, when placed on a PE (either plane).
    pub fn pe(self) -> Option<u16> {
        match self {
            Placement::Pe { pe } | Placement::CtrlPlane { pe } => Some(pe),
            _ => None,
        }
    }
}

/// Operand source selector of a placed instruction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum OperandSrc {
    /// Input channel (route table index).
    Route(u32),
    /// Immediate literal.
    Imm(Value),
    /// Runtime scalar parameter.
    Param(u16),
    /// Unconnected optional port.
    None,
}

/// Classification of a route: which physical network carries it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteClass {
    /// Data value: travels on the mesh data network.
    Data,
    /// Control information (predicates, steering decisions, configuration
    /// addresses): travels on the control network when the architecture
    /// has one, otherwise on the data mesh or through the CCU.
    Ctrl,
}

/// A point-to-point dataflow channel between two placed operators.
#[derive(Clone, Debug, PartialEq)]
pub struct Route {
    /// Producing node (index into [`MachineProgram::nodes`]).
    pub src: u32,
    /// Consuming node.
    pub dst: u32,
    /// Consuming port.
    pub dst_port: u8,
    /// Which plane the route belongs to.
    pub class: RouteClass,
    /// True for activation-rate transfers into loop state (carry inits and
    /// invariant loads): the transfers that force CCU round-trips on
    /// centralized architectures.
    pub activation: bool,
    /// True when the transfer configures a dynamically-bounded loop.
    pub dynamic: bool,
    /// Physical path as a sequence of linear PE/router indices, inclusive
    /// of endpoints. Empty when producer and consumer share a tile.
    pub path: Vec<u16>,
}

/// Control Flow Sender operating mode of a PE configuration (Fig 7a).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CtrlMode {
    /// Current and subsequent PEs share a basic block: configuration is
    /// proactively emitted downstream.
    Dfg,
    /// The configuration resolves a branch: the next-stage address is sent
    /// only after the branch result is known.
    Branch,
    /// Loop operator: the configuration is held until loop exit.
    Loop,
}

/// One entry of a PE's instruction buffer: the configuration active while
/// the PE executes the given basic block.
#[derive(Clone, Debug, PartialEq)]
pub struct BbConfig {
    /// Basic block this configuration implements.
    pub bb: u16,
    /// Control Flow Sender mode.
    pub mode: CtrlMode,
    /// Operators resident under this configuration (node indices). Their
    /// count bounds the initiation interval the PE can sustain.
    pub slots: Vec<u32>,
}

/// Per-PE program: the instruction buffer contents.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PeConfig {
    /// Configurations, addressed by position (the paper's instruction
    /// addresses).
    pub configs: Vec<BbConfig>,
}

/// A placed-and-routed operator.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeConfig {
    /// The operator.
    pub op: Op,
    /// Operand selectors, one per input port (length == `op.input_ports()`).
    pub srcs: Vec<OperandSrc>,
    /// Where it executes.
    pub place: Placement,
    /// Basic block tag.
    pub bb: u16,
    /// Mapping group (loop level) the operator belongs to; region-exclusive
    /// architectures run one group at a time.
    pub group: u16,
    /// Sink label, for `Op::Sink`.
    pub label: Option<String>,
}

/// Array declaration carried into the executable (initial data comes from
/// the workload at run time).
#[derive(Clone, Debug, PartialEq)]
pub struct ArrayInfo {
    /// Array name.
    pub name: String,
    /// Element count.
    pub len: u32,
    /// Element type.
    pub elem: ElemTy,
    /// Checked against golden output when set.
    pub is_output: bool,
}

/// Scalar parameter declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct ParamInfo {
    /// Parameter name.
    pub name: String,
    /// Default value.
    pub default: Value,
}

/// A fully placed, routed and configured executable for a spatial fabric.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MachineProgram {
    /// Program name.
    pub name: String,
    /// Fabric rows.
    pub rows: u8,
    /// Fabric columns.
    pub cols: u8,
    /// Placed operators (dense, indexed by the original CDFG node id).
    pub nodes: Vec<NodeConfig>,
    /// Channel table.
    pub routes: Vec<Route>,
    /// Per-PE instruction buffers (length == rows*cols).
    pub pes: Vec<PeConfig>,
    /// Arrays.
    pub arrays: Vec<ArrayInfo>,
    /// Parameters.
    pub params: Vec<ParamInfo>,
}

impl MachineProgram {
    /// Number of PEs in the fabric.
    pub fn pe_count(&self) -> usize {
        self.rows as usize * self.cols as usize
    }

    /// Looks up a parameter index by name.
    pub fn param_by_name(&self, name: &str) -> Option<u16> {
        self.params
            .iter()
            .position(|p| p.name == name)
            .map(|i| i as u16)
    }

    /// Structural validation of the executable; returns problems found.
    ///
    /// Checked invariants: operand selectors reference existing routes and
    /// agree with the route table's `(dst, dst_port)`; placements are in
    /// range; PE config slots reference nodes placed on that PE; route
    /// endpoints are in range.
    pub fn validate(&self) -> Vec<String> {
        let mut errs = Vec::new();
        let npes = self.pe_count();
        for (i, n) in self.nodes.iter().enumerate() {
            if n.srcs.len() != n.op.input_ports() {
                errs.push(format!("node {i}: selector count mismatch"));
            }
            for (port, s) in n.srcs.iter().enumerate() {
                match s {
                    OperandSrc::Route(r) => match self.routes.get(*r as usize) {
                        None => errs.push(format!("node {i}: missing route {r}")),
                        Some(route) => {
                            if route.dst as usize != i || route.dst_port as usize != port {
                                errs.push(format!(
                                    "node {i} port {port}: route {r} endpoint mismatch"
                                ));
                            }
                        }
                    },
                    OperandSrc::Param(p) if *p as usize >= self.params.len() => {
                        errs.push(format!("node {i}: missing param {p}"));
                    }
                    _ => {}
                }
            }
            match n.place {
                Placement::Pe { pe } | Placement::CtrlPlane { pe } => {
                    if pe as usize >= npes {
                        errs.push(format!("node {i}: PE {pe} out of range"));
                    }
                }
                Placement::NetSwitch { .. } | Placement::MemUnit { .. } => {}
            }
        }
        for (r, route) in self.routes.iter().enumerate() {
            if route.src as usize >= self.nodes.len() || route.dst as usize >= self.nodes.len() {
                errs.push(format!("route {r}: endpoint out of range"));
            }
        }
        if self.pes.len() != npes {
            errs.push(format!(
                "pe config table has {} entries for {npes} PEs",
                self.pes.len()
            ));
        }
        for (p, pe) in self.pes.iter().enumerate() {
            for (ci, cfg) in pe.configs.iter().enumerate() {
                for &slot in &cfg.slots {
                    match self.nodes.get(slot as usize) {
                        None => errs.push(format!("pe {p} cfg {ci}: missing node {slot}")),
                        Some(n) => {
                            if n.place.pe() != Some(p as u16) {
                                errs.push(format!("pe {p} cfg {ci}: node {slot} not placed here"));
                            }
                        }
                    }
                }
            }
        }
        errs
    }
}

impl fmt::Display for MachineProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}x{} fabric, {} nodes, {} routes",
            self.name,
            self.rows,
            self.cols,
            self.nodes.len(),
            self.routes.len()
        )
    }
}

/// Test fixtures shared across the ISA test modules.
#[cfg(test)]
pub(crate) mod tests_support {
    use super::*;
    use marionette_cdfg::op::BinOp;

    /// A minimal two-node program used across the ISA tests.
    pub(crate) fn sample() -> MachineProgram {
        MachineProgram {
            name: "sample".into(),
            rows: 2,
            cols: 2,
            nodes: vec![
                NodeConfig {
                    op: Op::Start,
                    srcs: vec![],
                    place: Placement::CtrlPlane { pe: 0 },
                    bb: 0,
                    group: 0,
                    label: None,
                },
                NodeConfig {
                    op: Op::Bin(BinOp::Add),
                    srcs: vec![OperandSrc::Route(0), OperandSrc::Imm(Value::I32(5))],
                    place: Placement::Pe { pe: 1 },
                    bb: 0,
                    group: 0,
                    label: None,
                },
            ],
            routes: vec![Route {
                src: 0,
                dst: 1,
                dst_port: 0,
                class: RouteClass::Ctrl,
                activation: false,
                dynamic: false,
                path: vec![0, 1],
            }],
            pes: vec![
                PeConfig {
                    configs: vec![BbConfig {
                        bb: 0,
                        mode: CtrlMode::Dfg,
                        slots: vec![],
                    }],
                },
                PeConfig {
                    configs: vec![BbConfig {
                        bb: 0,
                        mode: CtrlMode::Dfg,
                        slots: vec![1],
                    }],
                },
                PeConfig::default(),
                PeConfig::default(),
            ],
            arrays: vec![],
            params: vec![],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::tests_support::sample;
    use super::*;

    #[test]
    fn sample_validates() {
        assert!(sample().validate().is_empty(), "{:?}", sample().validate());
    }

    #[test]
    fn detects_route_mismatch() {
        let mut p = sample();
        p.routes[0].dst_port = 1;
        assert!(!p.validate().is_empty());
    }

    #[test]
    fn detects_bad_placement() {
        let mut p = sample();
        p.nodes[1].place = Placement::Pe { pe: 99 };
        assert!(p.validate().iter().any(|e| e.contains("out of range")));
    }

    #[test]
    fn detects_slot_not_placed_here() {
        let mut p = sample();
        p.pes[0].configs[0].slots.push(1);
        assert!(p.validate().iter().any(|e| e.contains("not placed here")));
    }
}
