//! # marionette-isa
//!
//! The spatial instruction set of the Marionette reproduction: placed and
//! routed executables ([`MachineProgram`]), the operator opcode space, the
//! binary configuration bitstream, and a disassembler.
//!
//! The ISA captures the paper's decoupled planes directly:
//!
//! - data-plane instructions carry an opcode, operand selectors (input
//!   channel / immediate / parameter) and a placement on a PE's functional
//!   unit;
//! - control-plane state is expressed as per-PE configuration lists
//!   ([`config::BbConfig`]) with a Control Flow Sender mode
//!   ([`config::CtrlMode`]: DFG / Branch / Loop operator — Fig 7a) and
//!   control-class routes that ride the control network;
//! - [`bitstream`] serializes the whole configuration, mirroring the
//!   paper's bitstream generation step.
//!
//! ```
//! use marionette_isa::{bitstream, config::MachineProgram};
//!
//! let p = MachineProgram::default();
//! let bytes = bitstream::encode(&p);
//! let q = bitstream::decode(&bytes)?;
//! assert_eq!(p, q);
//! # Ok::<(), marionette_isa::bitstream::BitstreamError>(())
//! ```

#![warn(missing_docs)]

pub mod bitstream;
pub mod config;
pub mod disasm;
pub mod image;
pub mod opcode;

pub use config::{
    ArrayInfo, BbConfig, CtrlMode, MachineProgram, NodeConfig, OperandSrc, ParamInfo, PeConfig,
    Placement, Route, RouteClass,
};
pub use image::{ImageError, MultiTenantImage, TenantImage};
