//! Multi-tenant fabric images: N per-partition bitstreams merged into
//! one deployable configuration for a partitioned host fabric.
//!
//! Each tenant's bitstream is compiled on its partition's *own*
//! dimensions (partition-local tile indices), which is what makes a
//! co-resident tenant bit-identical to a solo run on an equal-sized
//! fabric. [`MultiTenantImage::merge`] embeds every tenant's footprint
//! into host-fabric coordinates and rejects, with typed
//! [`ImageError`]s, anything that would break tenant isolation:
//!
//! - a bitstream whose program dimensions disagree with its declared
//!   partition ([`ImageError::DimsMismatch`]);
//! - a partition reaching outside the host fabric
//!   ([`ImageError::OutOfFabric`]);
//! - two partitions sharing tiles ([`ImageError::Overlap`]);
//! - a node placed outside its own partition
//!   ([`ImageError::NodeOutsidePartition`]);
//! - a route whose physical path leaves its partition — a
//!   **cross-partition route** — the one channel through which one
//!   tenant could perturb another's links
//!   ([`ImageError::CrossPartitionRoute`]).
//!
//! A validated image serializes to a single byte container
//! ([`MultiTenantImage::encode`] / [`MultiTenantImage::decode`]);
//! decoding re-runs the full merge validation, so every in-memory
//! `MultiTenantImage` upholds the isolation invariants.

use crate::bitstream;
use crate::config::MachineProgram;
use std::fmt;

/// One tenant slot of a multi-tenant image: a partition-local bitstream
/// plus the rectangle of the host fabric it owns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TenantImage {
    /// Tenant label (kernel tag, program name, ...).
    pub name: String,
    /// Partition rows (must equal the bitstream program's rows).
    pub rows: u8,
    /// Partition columns (must equal the bitstream program's cols).
    pub cols: u8,
    /// Host-fabric row of the partition's top-left tile.
    pub row0: u8,
    /// Host-fabric column of the partition's top-left tile.
    pub col0: u8,
    /// The tenant's configuration bitstream, in partition-local
    /// coordinates (as produced by [`crate::bitstream::encode`]).
    pub bitstream: Vec<u8>,
}

impl TenantImage {
    /// The partition in the shared CLI syntax `RxC@r,c`.
    pub fn partition_spec(&self) -> String {
        format!("{}x{}@{},{}", self.rows, self.cols, self.row0, self.col0)
    }
}

/// Why per-partition bitstreams cannot be merged into one image.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ImageError {
    /// The image has no tenants.
    NoTenants,
    /// A tenant's bitstream does not decode.
    Decode {
        /// Tenant label.
        tenant: String,
        /// Decoder error text.
        detail: String,
    },
    /// A tenant's program was compiled for different dimensions than its
    /// declared partition.
    DimsMismatch {
        /// Tenant label.
        tenant: String,
        /// Declared partition dims (rows, cols).
        declared: (u8, u8),
        /// The bitstream program's dims (rows, cols).
        got: (u8, u8),
    },
    /// A tenant's partition reaches outside the host fabric.
    OutOfFabric {
        /// Tenant label.
        tenant: String,
        /// The partition in `RxC@r,c` syntax.
        part: String,
    },
    /// Two tenants' partitions share tiles.
    Overlap {
        /// First tenant label.
        a: String,
        /// Second tenant label.
        b: String,
    },
    /// A node's placement tile is not a tile of its own partition.
    NodeOutsidePartition {
        /// Tenant label.
        tenant: String,
        /// Node index in the tenant's program.
        node: usize,
        /// The offending partition-local tile index.
        tile: u16,
    },
    /// A route's physical path leaves the tenant's partition: the merged
    /// image would let one tenant's flits traverse another's links.
    CrossPartitionRoute {
        /// Tenant label.
        tenant: String,
        /// Route index in the tenant's program.
        route: usize,
        /// The offending partition-local path tile index.
        tile: u16,
    },
    /// The serialized container is malformed.
    Container(String),
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::NoTenants => write!(f, "multi-tenant image has no tenants"),
            ImageError::Decode { tenant, detail } => {
                write!(f, "tenant {tenant}: bitstream does not decode: {detail}")
            }
            ImageError::DimsMismatch {
                tenant,
                declared,
                got,
            } => write!(
                f,
                "tenant {tenant}: partition declared {}x{} but the bitstream targets {}x{}",
                declared.0, declared.1, got.0, got.1
            ),
            ImageError::OutOfFabric { tenant, part } => {
                write!(
                    f,
                    "tenant {tenant}: partition {part} is off the host fabric"
                )
            }
            ImageError::Overlap { a, b } => {
                write!(f, "tenants {a} and {b} have overlapping partitions")
            }
            ImageError::NodeOutsidePartition { tenant, node, tile } => write!(
                f,
                "tenant {tenant}: node {node} is placed on tile {tile}, outside its partition"
            ),
            ImageError::CrossPartitionRoute {
                tenant,
                route,
                tile,
            } => write!(
                f,
                "tenant {tenant}: route {route} crosses the partition boundary at tile {tile}"
            ),
            ImageError::Container(d) => write!(f, "malformed image container: {d}"),
        }
    }
}

impl std::error::Error for ImageError {}

/// N per-partition bitstreams merged into one validated image for an
/// R×C host fabric. Constructing one (via [`MultiTenantImage::merge`]
/// or [`MultiTenantImage::decode`]) proves the isolation invariants:
/// partitions are in-bounds and pairwise disjoint, and no tenant's
/// placements or route paths leave its own partition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MultiTenantImage {
    rows: u8,
    cols: u8,
    tenants: Vec<TenantImage>,
}

impl MultiTenantImage {
    /// Validates and merges per-partition bitstreams into one image.
    ///
    /// # Errors
    /// Returns the first [`ImageError`] violated, in tenant order.
    pub fn merge(rows: u8, cols: u8, tenants: Vec<TenantImage>) -> Result<Self, ImageError> {
        if tenants.is_empty() {
            return Err(ImageError::NoTenants);
        }
        for t in &tenants {
            if t.rows == 0
                || t.cols == 0
                || usize::from(t.row0) + usize::from(t.rows) > usize::from(rows)
                || usize::from(t.col0) + usize::from(t.cols) > usize::from(cols)
            {
                return Err(ImageError::OutOfFabric {
                    tenant: t.name.clone(),
                    part: t.partition_spec(),
                });
            }
        }
        for i in 0..tenants.len() {
            for j in i + 1..tenants.len() {
                let (a, b) = (&tenants[i], &tenants[j]);
                let overlap = a.row0 < b.row0 + b.rows
                    && b.row0 < a.row0 + a.rows
                    && a.col0 < b.col0 + b.cols
                    && b.col0 < a.col0 + a.cols;
                if overlap {
                    return Err(ImageError::Overlap {
                        a: a.name.clone(),
                        b: b.name.clone(),
                    });
                }
            }
        }
        let img = MultiTenantImage {
            rows,
            cols,
            tenants,
        };
        img.tenant_programs()?; // decode + containment screens
        Ok(img)
    }

    /// Host-fabric rows.
    pub fn rows(&self) -> u8 {
        self.rows
    }

    /// Host-fabric columns.
    pub fn cols(&self) -> u8 {
        self.cols
    }

    /// The tenant slots, in merge order.
    pub fn tenants(&self) -> &[TenantImage] {
        &self.tenants
    }

    /// Decodes every tenant's bitstream and re-checks that each program
    /// stays inside its partition (nodes *and* route paths).
    ///
    /// # Errors
    /// Returns [`ImageError::Decode`], [`ImageError::DimsMismatch`],
    /// [`ImageError::NodeOutsidePartition`] or
    /// [`ImageError::CrossPartitionRoute`].
    pub fn tenant_programs(&self) -> Result<Vec<MachineProgram>, ImageError> {
        let mut progs = Vec::with_capacity(self.tenants.len());
        for t in &self.tenants {
            let prog = bitstream::decode(&t.bitstream).map_err(|e| ImageError::Decode {
                tenant: t.name.clone(),
                detail: e.to_string(),
            })?;
            if (prog.rows, prog.cols) != (t.rows, t.cols) {
                return Err(ImageError::DimsMismatch {
                    tenant: t.name.clone(),
                    declared: (t.rows, t.cols),
                    got: (prog.rows, prog.cols),
                });
            }
            screen_containment(t, &prog)?;
            progs.push(prog);
        }
        Ok(progs)
    }

    /// Serializes the image to its byte container.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.push(self.rows);
        out.push(self.cols);
        out.extend_from_slice(&(self.tenants.len() as u16).to_le_bytes());
        for t in &self.tenants {
            out.extend_from_slice(&(t.name.len() as u16).to_le_bytes());
            out.extend_from_slice(t.name.as_bytes());
            out.extend_from_slice(&[t.rows, t.cols, t.row0, t.col0]);
            out.extend_from_slice(&(t.bitstream.len() as u32).to_le_bytes());
            out.extend_from_slice(&t.bitstream);
        }
        out
    }

    /// Parses a byte container and re-runs the full merge validation.
    ///
    /// # Errors
    /// Returns [`ImageError::Container`] for framing problems, then any
    /// [`ImageError`] the embedded tenants violate.
    pub fn decode(bytes: &[u8]) -> Result<Self, ImageError> {
        let mut at = 0usize;
        let take = |at: &mut usize, n: usize| -> Result<&[u8], ImageError> {
            let s = bytes
                .get(*at..*at + n)
                .ok_or_else(|| ImageError::Container("truncated".to_string()))?;
            *at += n;
            Ok(s)
        };
        if take(&mut at, 4)? != MAGIC {
            return Err(ImageError::Container("bad magic".to_string()));
        }
        let rows = take(&mut at, 1)?[0];
        let cols = take(&mut at, 1)?[0];
        let count = u16::from_le_bytes(take(&mut at, 2)?.try_into().unwrap());
        let mut tenants = Vec::with_capacity(usize::from(count));
        for _ in 0..count {
            let nlen = usize::from(u16::from_le_bytes(take(&mut at, 2)?.try_into().unwrap()));
            let name = String::from_utf8(take(&mut at, nlen)?.to_vec())
                .map_err(|_| ImageError::Container("tenant name is not UTF-8".to_string()))?;
            let geo = take(&mut at, 4)?;
            let (rows, cols, row0, col0) = (geo[0], geo[1], geo[2], geo[3]);
            let blen = u32::from_le_bytes(take(&mut at, 4)?.try_into().unwrap()) as usize;
            let bitstream = take(&mut at, blen)?.to_vec();
            tenants.push(TenantImage {
                name,
                rows,
                cols,
                row0,
                col0,
                bitstream,
            });
        }
        if at != bytes.len() {
            return Err(ImageError::Container(format!(
                "{} trailing bytes",
                bytes.len() - at
            )));
        }
        MultiTenantImage::merge(rows, cols, tenants)
    }
}

const MAGIC: &[u8; 4] = b"MTI1";

/// Checks that every node placement and every route-path tile of a
/// tenant's (partition-local) program indexes a tile of the partition.
fn screen_containment(t: &TenantImage, prog: &MachineProgram) -> Result<(), ImageError> {
    let pes = u16::from(t.rows) * u16::from(t.cols);
    for (i, n) in prog.nodes.iter().enumerate() {
        let tile = n.place.tile();
        if tile >= pes {
            return Err(ImageError::NodeOutsidePartition {
                tenant: t.name.clone(),
                node: i,
                tile,
            });
        }
    }
    for (i, r) in prog.routes.iter().enumerate() {
        if let Some(&tile) = r.path.iter().find(|&&p| p >= pes) {
            return Err(ImageError::CrossPartitionRoute {
                tenant: t.name.clone(),
                route: i,
                tile,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{NodeConfig, OperandSrc, Placement, Route, RouteClass};
    use marionette_cdfg::{BinOp, Op};

    /// A tiny hand-built 2x2 program: one node on tile 0, one on tile 3,
    /// one route between them through tile 1.
    fn tiny(rows: u8, cols: u8) -> MachineProgram {
        MachineProgram {
            name: "tiny".to_string(),
            rows,
            cols,
            nodes: vec![
                NodeConfig {
                    op: Op::Start,
                    srcs: vec![],
                    place: Placement::Pe { pe: 0 },
                    bb: 0,
                    group: 0,
                    label: None,
                },
                NodeConfig {
                    op: Op::Bin(BinOp::Add),
                    srcs: vec![OperandSrc::Route(0), OperandSrc::None],
                    place: Placement::Pe {
                        pe: u16::from(rows) * u16::from(cols) - 1,
                    },
                    bb: 0,
                    group: 0,
                    label: None,
                },
            ],
            routes: vec![Route {
                src: 0,
                dst: 1,
                dst_port: 0,
                class: RouteClass::Data,
                activation: false,
                dynamic: false,
                path: vec![0, 1, u16::from(rows) * u16::from(cols) - 1],
            }],
            pes: vec![],
            arrays: vec![],
            params: vec![],
        }
    }

    fn tenant(name: &str, rows: u8, cols: u8, row0: u8, col0: u8) -> TenantImage {
        TenantImage {
            name: name.to_string(),
            rows,
            cols,
            row0,
            col0,
            bitstream: bitstream::encode(&tiny(rows, cols)),
        }
    }

    #[test]
    fn merge_accepts_disjoint_tenants_and_round_trips() {
        let img =
            MultiTenantImage::merge(4, 8, vec![tenant("a", 4, 4, 0, 0), tenant("b", 4, 4, 0, 4)])
                .unwrap();
        assert_eq!(img.tenants().len(), 2);
        assert_eq!(img.tenants()[1].partition_spec(), "4x4@0,4");
        let progs = img.tenant_programs().unwrap();
        assert_eq!(progs[0].name, "tiny");
        let bytes = img.encode();
        let back = MultiTenantImage::decode(&bytes).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn merge_rejects_overlap_and_escape() {
        match MultiTenantImage::merge(4, 8, vec![tenant("a", 4, 4, 0, 0), tenant("b", 4, 4, 0, 3)])
            .unwrap_err()
        {
            ImageError::Overlap { a, b } => assert_eq!((a.as_str(), b.as_str()), ("a", "b")),
            other => panic!("expected Overlap, got {other}"),
        }
        match MultiTenantImage::merge(4, 8, vec![tenant("a", 4, 6, 0, 4)]).unwrap_err() {
            ImageError::OutOfFabric { tenant, part } => {
                assert_eq!(tenant, "a");
                assert_eq!(part, "4x6@0,4");
            }
            other => panic!("expected OutOfFabric, got {other}"),
        }
        assert_eq!(
            MultiTenantImage::merge(4, 4, vec![]).unwrap_err(),
            ImageError::NoTenants
        );
    }

    #[test]
    fn cross_partition_route_is_typed() {
        // Tamper a 2x2 program so its route detours through tile 5 —
        // outside the 4-tile partition.
        let mut p = tiny(2, 2);
        p.routes[0].path = vec![0, 1, 5, 3];
        let t = TenantImage {
            bitstream: bitstream::encode(&p),
            ..tenant("evil", 2, 2, 0, 0)
        };
        match MultiTenantImage::merge(4, 4, vec![t]).unwrap_err() {
            ImageError::CrossPartitionRoute {
                tenant,
                route,
                tile,
            } => {
                assert_eq!(tenant, "evil");
                assert_eq!(route, 0);
                assert_eq!(tile, 5);
            }
            other => panic!("expected CrossPartitionRoute, got {other}"),
        }
    }

    #[test]
    fn node_outside_partition_is_typed() {
        let mut p = tiny(2, 2);
        p.nodes[1].place = Placement::Pe { pe: 9 };
        p.routes.clear();
        let t = TenantImage {
            bitstream: bitstream::encode(&p),
            ..tenant("strays", 2, 2, 0, 0)
        };
        match MultiTenantImage::merge(4, 4, vec![t]).unwrap_err() {
            ImageError::NodeOutsidePartition { tenant, node, tile } => {
                assert_eq!(tenant, "strays");
                assert_eq!(node, 1);
                assert_eq!(tile, 9);
            }
            other => panic!("expected NodeOutsidePartition, got {other}"),
        }
    }

    #[test]
    fn dims_mismatch_is_typed() {
        let t = TenantImage {
            bitstream: bitstream::encode(&tiny(2, 2)),
            ..tenant("lied", 4, 4, 0, 0)
        };
        match MultiTenantImage::merge(4, 4, vec![t]).unwrap_err() {
            ImageError::DimsMismatch { declared, got, .. } => {
                assert_eq!(declared, (4, 4));
                assert_eq!(got, (2, 2));
            }
            other => panic!("expected DimsMismatch, got {other}"),
        }
    }

    #[test]
    fn container_framing_errors_are_typed() {
        let img = MultiTenantImage::merge(4, 4, vec![tenant("a", 2, 2, 0, 0)]).unwrap();
        let bytes = img.encode();
        assert!(matches!(
            MultiTenantImage::decode(&bytes[..bytes.len() - 1]).unwrap_err(),
            ImageError::Container(_)
        ));
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            MultiTenantImage::decode(&bad).unwrap_err(),
            ImageError::Container(_)
        ));
        let mut trailing = bytes;
        trailing.push(0);
        assert!(matches!(
            MultiTenantImage::decode(&trailing).unwrap_err(),
            ImageError::Container(_)
        ));
    }
}
