//! Binary bitstream format for [`MachineProgram`].
//!
//! The configuration bitstream is what the paper's final compilation step
//! emits ("the final bitstream generation step converts CFG and DFG into
//! configuration bitstreams according to the hardware model", §5). The
//! format is little-endian and section-based:
//!
//! ```text
//! HEADER   magic "MRNT", version u16, rows u8, cols u8
//! STRINGS  string pool: count, then (len u16, bytes)*
//! PARAMS   count, then (name_idx u32, tag u8, bits u32)*
//! ARRAYS   count, then (name_idx u32, len u32, elem u8, flags u8)*
//! NODES    count, then per node one 64-bit instruction word
//!          [ opcode:8 | aux:12 | src0:14 | src1:14 | src2:14 | flags:2 ]
//!          plus a placement word [kind:2 | idx:16 | bb:16 | label_idx:24+
//!          has_label:1] and an optional literal-pool reference
//! LITERALS value pool for immediates: count, then (tag u8, bits u32)*
//! ROUTES   count, then (src u32, dst u32, port u8, class/flags u8,
//!          path_len u16, hops u16*)
//! PES      count, then per PE: config count, per config (bb u16, mode u8,
//!          slot count u16, slots u32*)
//! ```
//!
//! Operand selectors pack as 14-bit fields: 2 tag bits (none / route /
//! literal / param) and 12 index bits; selectors whose index exceeds 12
//! bits use an escape tag in `flags` and trailing u32 extension words.
//! For simplicity and robustness this implementation always writes
//! extension words when any index exceeds the inline field; round-trip
//! equality is property-tested.

use crate::config::{
    ArrayInfo, BbConfig, CtrlMode, MachineProgram, NodeConfig, OperandSrc, ParamInfo, PeConfig,
    Placement, Route, RouteClass,
};
use crate::opcode::{decode_op, encode_op};
use marionette_cdfg::value::{ElemTy, Value};

/// Bitstream decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BitstreamError {
    /// Wrong magic bytes.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// Truncated input.
    Truncated,
    /// Malformed field contents.
    Malformed(String),
}

impl std::fmt::Display for BitstreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BitstreamError::BadMagic => write!(f, "bad magic"),
            BitstreamError::BadVersion(v) => write!(f, "unsupported version {v}"),
            BitstreamError::Truncated => write!(f, "truncated bitstream"),
            BitstreamError::Malformed(m) => write!(f, "malformed bitstream: {m}"),
        }
    }
}

impl std::error::Error for BitstreamError {}

const MAGIC: &[u8; 4] = b"MRNT";
const VERSION: u16 = 1;

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer {
            buf: Vec::with_capacity(4096),
        }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        let b = s.as_bytes();
        self.u16(b.len() as u16);
        self.buf.extend_from_slice(b);
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], BitstreamError> {
        if self.pos + n > self.buf.len() {
            return Err(BitstreamError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, BitstreamError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, BitstreamError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, BitstreamError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, BitstreamError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn str(&mut self) -> Result<String, BitstreamError> {
        let n = self.u16()? as usize;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| BitstreamError::Malformed("utf8".into()))
    }
}

fn value_tag(v: Value) -> (u8, u32) {
    match v {
        Value::I32(i) => (0, i as u32),
        Value::F32(f) => (1, f.to_bits()),
        Value::Unit => (2, 0),
        Value::Poison => (3, 0),
    }
}

fn value_untag(tag: u8, bits: u32) -> Result<Value, BitstreamError> {
    Ok(match tag {
        0 => Value::I32(bits as i32),
        1 => Value::F32(f32::from_bits(bits)),
        2 => Value::Unit,
        3 => Value::Poison,
        t => return Err(BitstreamError::Malformed(format!("value tag {t}"))),
    })
}

/// Encodes a program into its configuration bitstream.
pub fn encode(p: &MachineProgram) -> Vec<u8> {
    let mut w = Writer::new();
    w.buf.extend_from_slice(MAGIC);
    w.u16(VERSION);
    w.u8(p.rows);
    w.u8(p.cols);
    w.str(&p.name);

    // params
    w.u32(p.params.len() as u32);
    for pa in &p.params {
        w.str(&pa.name);
        let (t, b) = value_tag(pa.default);
        w.u8(t);
        w.u32(b);
    }
    // arrays
    w.u32(p.arrays.len() as u32);
    for a in &p.arrays {
        w.str(&a.name);
        w.u32(a.len);
        w.u8(match a.elem {
            ElemTy::I32 => 0,
            ElemTy::F32 => 1,
        });
        w.u8(a.is_output as u8);
    }
    // nodes: instruction word + placement word + operand extensions
    w.u32(p.nodes.len() as u32);
    for n in &p.nodes {
        let (opb, aux) = encode_op(n.op);
        // selectors: tag 0=none, 1=route, 2=literal(imm inline ext), 3=param
        let mut exts: Vec<u32> = Vec::new();
        let mut sel_field = |s: &OperandSrc| -> u16 {
            match s {
                OperandSrc::None => 0,
                OperandSrc::Route(r) => {
                    exts.push(*r);
                    1
                }
                OperandSrc::Imm(v) => {
                    let (t, b) = value_tag(*v);
                    exts.push(t as u32);
                    exts.push(b);
                    2
                }
                OperandSrc::Param(q) => {
                    exts.push(*q as u32);
                    3
                }
            }
        };
        let mut fields = [0u16; 3];
        for (i, f) in fields.iter_mut().enumerate() {
            if let Some(s) = n.srcs.get(i) {
                *f = sel_field(s);
            }
        }
        // Pack: opcode(8) aux(12) s0(2) s1(2) s2(2) nsrc(2) = 28 bits used;
        // indices live in extension words for unbounded range.
        let word: u64 = (opb as u64)
            | ((aux as u64 & 0xFFF) << 8)
            | ((fields[0] as u64) << 20)
            | ((fields[1] as u64) << 22)
            | ((fields[2] as u64) << 24)
            | ((n.srcs.len() as u64 & 0x3) << 26)
            | ((n.bb as u64) << 32)
            | ((n.group as u64) << 48);
        w.u64(word);
        let (pk, pidx) = match n.place {
            Placement::Pe { pe } => (0u8, pe),
            Placement::CtrlPlane { pe } => (1, pe),
            Placement::NetSwitch { sw } => (2, sw),
            Placement::MemUnit { unit } => (3, unit as u16),
        };
        w.u8(pk);
        w.u16(pidx);
        match &n.label {
            Some(l) => {
                w.u8(1);
                w.str(l);
            }
            None => w.u8(0),
        }
        w.u16(exts.len() as u16);
        for e in exts {
            w.u32(e);
        }
    }
    // routes
    w.u32(p.routes.len() as u32);
    for r in &p.routes {
        w.u32(r.src);
        w.u32(r.dst);
        w.u8(r.dst_port);
        let flags = (matches!(r.class, RouteClass::Ctrl) as u8)
            | ((r.activation as u8) << 1)
            | ((r.dynamic as u8) << 2);
        w.u8(flags);
        w.u16(r.path.len() as u16);
        for &h in &r.path {
            w.u16(h);
        }
    }
    // pes
    w.u32(p.pes.len() as u32);
    for pe in &p.pes {
        w.u16(pe.configs.len() as u16);
        for c in &pe.configs {
            w.u16(c.bb);
            w.u8(match c.mode {
                CtrlMode::Dfg => 0,
                CtrlMode::Branch => 1,
                CtrlMode::Loop => 2,
            });
            w.u16(c.slots.len() as u16);
            for &s in &c.slots {
                w.u32(s);
            }
        }
    }
    w.buf
}

/// Decodes a configuration bitstream.
///
/// # Errors
/// Returns [`BitstreamError`] on malformed input; a decoded program also
/// passes [`MachineProgram::validate`] if the original did.
pub fn decode(bytes: &[u8]) -> Result<MachineProgram, BitstreamError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(BitstreamError::BadMagic);
    }
    let ver = r.u16()?;
    if ver != VERSION {
        return Err(BitstreamError::BadVersion(ver));
    }
    let rows = r.u8()?;
    let cols = r.u8()?;
    let name = r.str()?;

    let nparams = r.u32()? as usize;
    let mut params = Vec::with_capacity(nparams);
    for _ in 0..nparams {
        let name = r.str()?;
        let t = r.u8()?;
        let b = r.u32()?;
        params.push(ParamInfo {
            name,
            default: value_untag(t, b)?,
        });
    }
    let narrays = r.u32()? as usize;
    let mut arrays = Vec::with_capacity(narrays);
    for _ in 0..narrays {
        let name = r.str()?;
        let len = r.u32()?;
        let elem = match r.u8()? {
            0 => ElemTy::I32,
            1 => ElemTy::F32,
            t => return Err(BitstreamError::Malformed(format!("elem {t}"))),
        };
        let is_output = r.u8()? != 0;
        arrays.push(ArrayInfo {
            name,
            len,
            elem,
            is_output,
        });
    }
    let nnodes = r.u32()? as usize;
    let mut nodes = Vec::with_capacity(nnodes);
    for i in 0..nnodes {
        let word = r.u64()?;
        let opb = (word & 0xFF) as u8;
        let aux = ((word >> 8) & 0xFFF) as u16;
        let tags = [
            ((word >> 20) & 0x3) as u8,
            ((word >> 22) & 0x3) as u8,
            ((word >> 24) & 0x3) as u8,
        ];
        let nsrc = ((word >> 26) & 0x3) as usize;
        let bb = ((word >> 32) & 0xFFFF) as u16;
        let group = ((word >> 48) & 0xFFFF) as u16;
        let op =
            decode_op(opb, aux).map_err(|e| BitstreamError::Malformed(format!("node {i}: {e}")))?;
        let pk = r.u8()?;
        let pidx = r.u16()?;
        let place = match pk {
            0 => Placement::Pe { pe: pidx },
            1 => Placement::CtrlPlane { pe: pidx },
            2 => Placement::NetSwitch { sw: pidx },
            3 => Placement::MemUnit { unit: pidx as u8 },
            t => return Err(BitstreamError::Malformed(format!("placement {t}"))),
        };
        let label = if r.u8()? != 0 { Some(r.str()?) } else { None };
        let next = r.u16()? as usize;
        let mut exts = Vec::with_capacity(next);
        for _ in 0..next {
            exts.push(r.u32()?);
        }
        let mut ei = 0usize;
        let mut srcs = Vec::with_capacity(nsrc);
        for tag in tags.iter().take(nsrc) {
            let s = match tag {
                0 => OperandSrc::None,
                1 => {
                    let v = *exts.get(ei).ok_or(BitstreamError::Truncated)?;
                    ei += 1;
                    OperandSrc::Route(v)
                }
                2 => {
                    let t = *exts.get(ei).ok_or(BitstreamError::Truncated)? as u8;
                    let b = *exts.get(ei + 1).ok_or(BitstreamError::Truncated)?;
                    ei += 2;
                    OperandSrc::Imm(value_untag(t, b)?)
                }
                3 => {
                    let v = *exts.get(ei).ok_or(BitstreamError::Truncated)?;
                    ei += 1;
                    OperandSrc::Param(v as u16)
                }
                _ => unreachable!(),
            };
            srcs.push(s);
        }
        nodes.push(NodeConfig {
            op,
            srcs,
            place,
            bb,
            group,
            label,
        });
    }
    let nroutes = r.u32()? as usize;
    let mut routes = Vec::with_capacity(nroutes);
    for _ in 0..nroutes {
        let src = r.u32()?;
        let dst = r.u32()?;
        let dst_port = r.u8()?;
        let flags = r.u8()?;
        let plen = r.u16()? as usize;
        let mut path = Vec::with_capacity(plen);
        for _ in 0..plen {
            path.push(r.u16()?);
        }
        routes.push(Route {
            src,
            dst,
            dst_port,
            class: if flags & 1 != 0 {
                RouteClass::Ctrl
            } else {
                RouteClass::Data
            },
            activation: flags & 2 != 0,
            dynamic: flags & 4 != 0,
            path,
        });
    }
    let npes = r.u32()? as usize;
    let mut pes = Vec::with_capacity(npes);
    for _ in 0..npes {
        let ncfg = r.u16()? as usize;
        let mut configs = Vec::with_capacity(ncfg);
        for _ in 0..ncfg {
            let bb = r.u16()?;
            let mode = match r.u8()? {
                0 => CtrlMode::Dfg,
                1 => CtrlMode::Branch,
                2 => CtrlMode::Loop,
                t => return Err(BitstreamError::Malformed(format!("mode {t}"))),
            };
            let nslots = r.u16()? as usize;
            let mut slots = Vec::with_capacity(nslots);
            for _ in 0..nslots {
                slots.push(r.u32()?);
            }
            configs.push(BbConfig { bb, mode, slots });
        }
        pes.push(PeConfig { configs });
    }
    Ok(MachineProgram {
        name,
        rows,
        cols,
        nodes,
        routes,
        pes,
        arrays,
        params,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::tests_support::sample;

    #[test]
    fn roundtrip_sample() {
        let p = sample();
        let bytes = encode(&p);
        let q = decode(&bytes).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn bad_magic_rejected() {
        let p = sample();
        let mut bytes = encode(&p);
        bytes[0] = b'X';
        assert_eq!(decode(&bytes).unwrap_err(), BitstreamError::BadMagic);
    }

    #[test]
    fn bad_version_rejected() {
        let p = sample();
        let mut bytes = encode(&p);
        bytes[4] = 0xFF;
        assert!(matches!(
            decode(&bytes).unwrap_err(),
            BitstreamError::BadVersion(_)
        ));
    }

    #[test]
    fn truncation_rejected() {
        let p = sample();
        let bytes = encode(&p);
        for cut in [5usize, 10, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }
}
