//! Operator ↔ opcode byte encoding.
//!
//! Every CDFG operator maps to an 8-bit opcode plus a 12-bit auxiliary
//! field (array index for memory operators; zero otherwise). The encoding
//! is dense and stable: it is part of the binary bitstream format.

use marionette_cdfg::op::{ArrayId, BinOp, NlOp, Op, SteerRole, UnOp};

/// Errors raised when decoding an opcode byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadOpcode(pub u8);

impl std::fmt::Display for BadOpcode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown opcode byte {:#04x}", self.0)
    }
}

impl std::error::Error for BadOpcode {}

const BIN_BASE: u8 = 0x00; // 0x00..=0x1F
const UN_BASE: u8 = 0x20; // 0x20..=0x2F
const NL_BASE: u8 = 0x30; // 0x30..=0x3F
const OP_MUX: u8 = 0x40;
const OP_LOAD: u8 = 0x41;
const OP_STORE: u8 = 0x42;
const OP_STEER_TB: u8 = 0x43;
const OP_STEER_FB: u8 = 0x44;
const OP_STEER_TL: u8 = 0x45;
const OP_STEER_FL: u8 = 0x46;
const OP_CARRY: u8 = 0x47;
const OP_INV: u8 = 0x48;
const OP_MERGE_B: u8 = 0x49;
const OP_MERGE_L: u8 = 0x4A;
const OP_GATE: u8 = 0x4B;
const OP_START: u8 = 0x4C;
const OP_SINK: u8 = 0x4D;

const BINOPS: [BinOp; 29] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
    BinOp::Rem,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Shl,
    BinOp::Shr,
    BinOp::AShr,
    BinOp::Min,
    BinOp::Max,
    BinOp::Lt,
    BinOp::Le,
    BinOp::Gt,
    BinOp::Ge,
    BinOp::Eq,
    BinOp::Ne,
    BinOp::FAdd,
    BinOp::FSub,
    BinOp::FMul,
    BinOp::FDiv,
    BinOp::FMin,
    BinOp::FMax,
    BinOp::FLt,
    BinOp::FLe,
    BinOp::FGt,
    BinOp::FGe,
];

const UNOPS: [UnOp; 8] = [
    UnOp::Not,
    UnOp::Neg,
    UnOp::Abs,
    UnOp::FNeg,
    UnOp::FAbs,
    UnOp::I2F,
    UnOp::F2I,
    UnOp::LNot,
];

const NLOPS: [NlOp; 6] = [
    NlOp::Sigmoid,
    NlOp::Log,
    NlOp::Exp,
    NlOp::Sqrt,
    NlOp::Recip,
    NlOp::Tanh,
];

/// Encodes an operator as `(opcode byte, aux field)`.
pub fn encode_op(op: Op) -> (u8, u16) {
    match op {
        Op::Bin(b) => {
            let i = BINOPS.iter().position(|&x| x == b).expect("binop table");
            (BIN_BASE + i as u8, 0)
        }
        Op::Un(u) => {
            let i = UNOPS.iter().position(|&x| x == u).expect("unop table");
            (UN_BASE + i as u8, 0)
        }
        Op::Nl(n) => {
            let i = NLOPS.iter().position(|&x| x == n).expect("nlop table");
            (NL_BASE + i as u8, 0)
        }
        Op::Mux => (OP_MUX, 0),
        Op::Load(a) => (OP_LOAD, a.0 as u16),
        Op::Store(a) => (OP_STORE, a.0 as u16),
        Op::Steer { sense, role } => match (sense, role) {
            (true, SteerRole::Branch) => (OP_STEER_TB, 0),
            (false, SteerRole::Branch) => (OP_STEER_FB, 0),
            (true, SteerRole::LoopCtl) => (OP_STEER_TL, 0),
            (false, SteerRole::LoopCtl) => (OP_STEER_FL, 0),
        },
        Op::Carry => (OP_CARRY, 0),
        Op::Inv => (OP_INV, 0),
        Op::Merge { role } => match role {
            SteerRole::Branch => (OP_MERGE_B, 0),
            SteerRole::LoopCtl => (OP_MERGE_L, 0),
        },
        Op::Gate => (OP_GATE, 0),
        Op::Start => (OP_START, 0),
        Op::Sink => (OP_SINK, 0),
    }
}

/// Decodes an `(opcode byte, aux field)` pair back into an operator.
///
/// # Errors
/// Returns [`BadOpcode`] for bytes outside the defined encoding space.
pub fn decode_op(byte: u8, aux: u16) -> Result<Op, BadOpcode> {
    let op = match byte {
        b if (BIN_BASE..BIN_BASE + BINOPS.len() as u8).contains(&b) => {
            Op::Bin(BINOPS[(b - BIN_BASE) as usize])
        }
        b if (UN_BASE..UN_BASE + UNOPS.len() as u8).contains(&b) => {
            Op::Un(UNOPS[(b - UN_BASE) as usize])
        }
        b if (NL_BASE..NL_BASE + NLOPS.len() as u8).contains(&b) => {
            Op::Nl(NLOPS[(b - NL_BASE) as usize])
        }
        OP_MUX => Op::Mux,
        OP_LOAD => Op::Load(ArrayId(aux as u32)),
        OP_STORE => Op::Store(ArrayId(aux as u32)),
        OP_STEER_TB => Op::Steer {
            sense: true,
            role: SteerRole::Branch,
        },
        OP_STEER_FB => Op::Steer {
            sense: false,
            role: SteerRole::Branch,
        },
        OP_STEER_TL => Op::Steer {
            sense: true,
            role: SteerRole::LoopCtl,
        },
        OP_STEER_FL => Op::Steer {
            sense: false,
            role: SteerRole::LoopCtl,
        },
        OP_CARRY => Op::Carry,
        OP_INV => Op::Inv,
        OP_MERGE_B => Op::Merge {
            role: SteerRole::Branch,
        },
        OP_MERGE_L => Op::Merge {
            role: SteerRole::LoopCtl,
        },
        OP_GATE => Op::Gate,
        OP_START => Op::Start,
        OP_SINK => Op::Sink,
        b => return Err(BadOpcode(b)),
    };
    Ok(op)
}

/// Enumerates every encodable operator (for exhaustive round-trip tests).
pub fn all_ops() -> Vec<Op> {
    let mut v: Vec<Op> = BINOPS.iter().map(|&b| Op::Bin(b)).collect();
    v.extend(UNOPS.iter().map(|&u| Op::Un(u)));
    v.extend(NLOPS.iter().map(|&n| Op::Nl(n)));
    v.extend([
        Op::Mux,
        Op::Load(ArrayId(7)),
        Op::Store(ArrayId(3)),
        Op::Steer {
            sense: true,
            role: SteerRole::Branch,
        },
        Op::Steer {
            sense: false,
            role: SteerRole::Branch,
        },
        Op::Steer {
            sense: true,
            role: SteerRole::LoopCtl,
        },
        Op::Steer {
            sense: false,
            role: SteerRole::LoopCtl,
        },
        Op::Carry,
        Op::Inv,
        Op::Merge {
            role: SteerRole::Branch,
        },
        Op::Merge {
            role: SteerRole::LoopCtl,
        },
        Op::Gate,
        Op::Start,
        Op::Sink,
    ]);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_every_op() {
        for op in all_ops() {
            let (b, aux) = encode_op(op);
            let back = decode_op(b, aux).unwrap();
            assert_eq!(op, back, "op {op} byte {b:#04x}");
        }
    }

    #[test]
    fn opcode_space_is_collision_free() {
        let mut seen = std::collections::HashSet::new();
        for op in all_ops() {
            let (b, _) = encode_op(op);
            assert!(seen.insert(b), "collision at {b:#04x} for {op}");
        }
    }

    #[test]
    fn bad_byte_rejected() {
        assert!(decode_op(0xFE, 0).is_err());
        assert_eq!(decode_op(0xFE, 0).unwrap_err(), BadOpcode(0xFE));
    }

    #[test]
    fn array_id_travels_in_aux() {
        let (b, aux) = encode_op(Op::Load(ArrayId(42)));
        assert_eq!(decode_op(b, aux).unwrap(), Op::Load(ArrayId(42)));
    }
}
