//! Multi-tenant image validation over *real* kernel configurations:
//! merge/round-trip of compiled bitstreams, typed rejection of layout
//! and containment violations (including tampered cross-partition
//! routes), and region-mask compile containment — a full-fabric-view
//! compile confined to one partition never places or routes outside it.

use marionette_arch::preset_for_partition;
use marionette_compiler::{compile_with_timing_and_region, FabricDims, Partition, PartitionMap};
use marionette_isa::bitstream::encode;
use marionette_isa::image::{ImageError, MultiTenantImage, TenantImage};
use marionette_isa::MachineProgram;
use marionette_kernels::traits::Scale;

/// Compiles `tag` for the given preset short on a `rows`x`cols` fabric.
fn compiled(tag: &str, preset: &str, rows: usize, cols: usize) -> MachineProgram {
    let k = marionette_kernels::by_short(tag).expect("kernel tag");
    let wl = k.workload(Scale::Tiny, 3);
    let g = k.build(&wl).expect("kernel builds");
    let part = Partition::new(rows, cols, 0, 0);
    let arch = preset_for_partition(&part, preset).expect("preset tag");
    let (prog, _) =
        marionette_compiler::compile_with_timing(&g, &arch.opts, &arch.tm).expect("compiles");
    prog
}

fn tenant(name: &str, prog: &MachineProgram, row0: u8, col0: u8) -> TenantImage {
    TenantImage {
        name: name.to_string(),
        rows: prog.rows,
        cols: prog.cols,
        row0,
        col0,
        bitstream: encode(prog),
    }
}

#[test]
fn real_kernel_tenants_merge_and_round_trip() {
    let crc = compiled("CRC", "M", 4, 4);
    let fft = compiled("FFT", "M", 4, 4);
    let img = MultiTenantImage::merge(
        4,
        8,
        vec![tenant("CRC", &crc, 0, 0), tenant("FFT", &fft, 0, 4)],
    )
    .expect("disjoint 4x4 tenants merge onto 4x8");
    let progs = img.tenant_programs().expect("programs decode");
    assert_eq!(progs[0], crc);
    assert_eq!(progs[1], fft);
    let back = MultiTenantImage::decode(&img.encode()).expect("container round-trips");
    assert_eq!(back, img);
}

#[test]
fn overlapping_real_tenants_are_rejected() {
    let crc = compiled("CRC", "M", 4, 4);
    let fft = compiled("FFT", "M", 4, 4);
    let e = MultiTenantImage::merge(
        4,
        8,
        vec![tenant("CRC", &crc, 0, 0), tenant("FFT", &fft, 0, 2)],
    )
    .unwrap_err();
    assert!(matches!(e, ImageError::Overlap { .. }), "got {e}");
}

#[test]
fn tampered_cross_partition_route_is_rejected() {
    let mut crc = compiled("CRC", "M", 4, 4);
    // Detour some route through tile 17 — outside a 16-tile partition.
    let r = crc
        .routes
        .iter_mut()
        .find(|r| !r.path.is_empty())
        .expect("CRC has at least one routed edge");
    let evil_tile = 17u16;
    r.path.insert(1, evil_tile);
    let e = MultiTenantImage::merge(8, 8, vec![tenant("CRC", &crc, 0, 0)]).unwrap_err();
    match e {
        ImageError::CrossPartitionRoute { tenant, tile, .. } => {
            assert_eq!(tenant, "CRC");
            assert_eq!(tile, evil_tile);
        }
        other => panic!("expected CrossPartitionRoute, got {other}"),
    }
}

#[test]
fn region_mask_compile_stays_inside_the_partition() {
    // Fabric-view compile: an 8x8 host with placement confined to the
    // top-left 4x4 quadrant via the exclusion mask. Every node tile and
    // every route-path tile must land inside the region.
    let k = marionette_kernels::by_short("CRC").expect("kernel tag");
    let wl = k.workload(Scale::Tiny, 3);
    let g = k.build(&wl).expect("kernel builds");
    let host = FabricDims::new(8, 8);
    let map = PartitionMap::new(host, vec![Partition::new(4, 4, 0, 0)]).expect("fits");
    let archs = marionette_arch::presets_by_tags_on(host, "M").expect("preset");
    let arch = &archs[0];
    let (prog, _) =
        compile_with_timing_and_region(&g, &arch.opts, &arch.tm, &map, 0).expect("compiles");
    let inside = |t: u16| (t / 8) < 4 && (t % 8) < 4;
    for (i, n) in prog.nodes.iter().enumerate() {
        assert!(
            inside(n.place.tile()),
            "node {i} placed outside the region at tile {}",
            n.place.tile()
        );
    }
    for (i, r) in prog.routes.iter().enumerate() {
        for &t in &r.path {
            assert!(
                inside(t),
                "route {i} crosses the region boundary at tile {t}"
            );
        }
    }
}
