//! Bitstream encode→decode roundtrip and disassembler smoke over *every*
//! kernel configuration: each of the 13 evaluation kernels (plus the
//! composite LDPC application) compiled under every mapping-policy family
//! the architecture presets use.

use marionette_arch::Architecture;
use marionette_compiler::compile;
use marionette_isa::bitstream::{decode, encode};
use marionette_isa::disasm::disassemble;
use marionette_kernels::traits::Scale;

/// One representative of each distinct `CompileOptions` family across the
/// nine presets (Marionette agile/non-agile, PE-slot control, net-switch
/// control, stream-unit memory, split fabric).
fn option_families() -> Vec<Architecture> {
    vec![
        marionette_arch::marionette_full(),
        marionette_arch::marionette_pe(),
        marionette_arch::von_neumann_pe(),
        marionette_arch::riptide(),
        marionette_arch::softbrain(),
        marionette_arch::revel(),
    ]
}

fn kernel_tags() -> Vec<String> {
    let mut tags: Vec<String> = marionette_kernels::all()
        .iter()
        .map(|k| k.short().to_string())
        .collect();
    tags.push("LDPC-APP".into());
    tags
}

#[test]
fn encode_decode_roundtrip_on_all_kernel_configs() {
    for tag in kernel_tags() {
        let k = marionette_kernels::by_short(&tag).expect("kernel tag");
        let wl = k.workload(Scale::Tiny, 3);
        let g = k.build(&wl).expect("kernel builds");
        for arch in option_families() {
            let (prog, _) = compile(&g, &arch.opts)
                .unwrap_or_else(|e| panic!("{tag} on {}: compile: {e}", arch.name));
            let bytes = encode(&prog);
            let back =
                decode(&bytes).unwrap_or_else(|e| panic!("{tag} on {}: decode: {e}", arch.name));
            assert_eq!(prog, back, "{tag} on {}: lossy roundtrip", arch.name);
            // A decoded program is as valid as the original.
            assert_eq!(
                prog.validate(),
                back.validate(),
                "{tag} on {}: validation drift",
                arch.name
            );
            // Re-encoding the decoded program is byte-stable.
            assert_eq!(
                bytes,
                encode(&back),
                "{tag} on {}: re-encode differs",
                arch.name
            );
        }
    }
}

#[test]
fn disasm_smoke_on_all_kernel_configs() {
    for tag in kernel_tags() {
        let k = marionette_kernels::by_short(&tag).expect("kernel tag");
        let wl = k.workload(Scale::Tiny, 3);
        let g = k.build(&wl).expect("kernel builds");
        let arch = marionette_arch::marionette_full();
        let (prog, _) = compile(&g, &arch.opts).expect("compiles");
        let text = disassemble(&prog);
        assert!(text.contains("; program"), "{tag}: missing header");
        assert!(
            text.contains("pe ") || text.contains("sw") || text.contains("mem"),
            "{tag}: no placements listed"
        );
        // Every placed node index appears somewhere in the listing.
        assert!(text.lines().count() > prog.pes.len(), "{tag}: too short");
        // Disassembly must also survive the bitstream roundtrip.
        let back = decode(&encode(&prog)).unwrap();
        assert_eq!(text, disassemble(&back), "{tag}: disasm drift");
    }
}

#[test]
fn truncated_kernel_bitstreams_never_panic() {
    // Fuzz-ish robustness: every prefix of a real kernel bitstream must
    // decode to Err, never panic.
    let k = marionette_kernels::by_short("CRC").unwrap();
    let wl = k.workload(Scale::Tiny, 3);
    let g = k.build(&wl).unwrap();
    let (prog, _) = compile(&g, &marionette_arch::marionette_full().opts).unwrap();
    let bytes = encode(&prog);
    for cut in 0..bytes.len() {
        assert!(decode(&bytes[..cut]).is_err(), "prefix {cut} decoded");
    }
}
