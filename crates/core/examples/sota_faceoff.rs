//! State-of-the-art face-off (the paper's Fig 17 in miniature): a chosen
//! kernel across Softbrain, TIA, REVEL, RipTide and Marionette.
//!
//! ```sh
//! cargo run --release --example sota_faceoff [KERNEL_TAG]
//! ```

use marionette::arch;
use marionette::kernels::traits::Scale;
use marionette::runner::run_kernel;

fn main() {
    let tag = std::env::args().nth(1).unwrap_or_else(|| "LDPC".into());
    let kernel = marionette::kernels::by_short(&tag)
        .unwrap_or_else(|| panic!("unknown kernel tag {tag} (try MS, FFT, VI, NW, HT, CRC, ADPCM, SCD, LDPC, GEMM, CO, SI, GP)"));
    println!("kernel: {} ({})\n", kernel.name(), kernel.domain());
    let mut archs = arch::all_sota();
    archs.push(arch::marionette_full());
    let mut rows = Vec::new();
    for a in &archs {
        let r =
            run_kernel(kernel.as_ref(), a, Scale::Small, 11, 2_000_000_000).expect("verified run");
        rows.push((a.name, r.cycles, r.stats.mean_pe_utilization()));
    }
    let worst = rows.iter().map(|r| r.1).max().unwrap();
    println!(
        "{:<14} {:>10} {:>9} {:>8}",
        "architecture", "cycles", "speedup", "util"
    );
    for (name, cycles, util) in rows {
        println!(
            "{name:<14} {cycles:>10} {:>8.2}x {:>7.1}%",
            worst as f64 / cycles as f64,
            100.0 * util
        );
    }
}
