//! Branch divergence case study (the paper's Fig 3a/7b): runs the Merge
//! Sort kernel on the von Neumann, dataflow and Marionette PE models and
//! shows where the cycles and the wasted (predicated-off) work go.
//!
//! ```sh
//! cargo run --release --example branch_divergence
//! ```

use marionette::arch;
use marionette::kernels::traits::Scale;
use marionette::runner::run_kernel;

fn main() {
    let kernel = marionette::kernels::by_short("MS").unwrap();
    println!(
        "kernel: {} (branch divergence in the merge comparison)\n",
        kernel.name()
    );
    println!(
        "{:<32} {:>10} {:>9} {:>10} {:>10} {:>8}",
        "architecture", "cycles", "speedup", "poisoned", "switches", "util"
    );
    let mut base = None;
    for a in [
        arch::von_neumann_pe(),
        arch::dataflow_pe(),
        arch::marionette_pe(),
        arch::marionette_cn(),
        arch::marionette_full(),
    ] {
        let r =
            run_kernel(kernel.as_ref(), &a, Scale::Small, 42, 1_000_000_000).expect("verified run");
        let baseline = *base.get_or_insert(r.cycles);
        println!(
            "{:<32} {:>10} {:>8.2}x {:>9.1}% {:>10} {:>7.1}%",
            a.name,
            r.cycles,
            baseline as f64 / r.cycles as f64,
            100.0 * r.stats.poison_fraction(),
            r.stats.group_switches,
            100.0 * r.stats.mean_pe_utilization(),
        );
    }
    println!(
        "\nPredication (von Neumann) burns issue slots on the untaken side;\n\
         Marionette steers per-iteration configuration over the control plane\n\
         instead (Proactive PE Configuration, Fig 7b)."
    );
}
