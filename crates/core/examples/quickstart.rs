//! Quickstart: build a small program with the CDFG DSL, compile it for
//! the Marionette fabric, inspect the configuration, and run it on the
//! cycle-level simulator.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use marionette::cdfg::builder::CdfgBuilder;
use marionette::compiler::compile;
use marionette::isa::disasm;
use marionette::sim::{run, TimingModel};

fn main() {
    // 1. A dot product with a data-dependent clamp — enough control flow
    //    to see the control plane do something.
    let a_data: Vec<i32> = (0..64).map(|i| (i * 13 + 5) % 41 - 20).collect();
    let b_data: Vec<i32> = (0..64).map(|i| (i * 7 + 2) % 31 - 15).collect();
    let mut b = CdfgBuilder::new("clamped-dot");
    let aa = b.array_i32("a", 64, &a_data);
    let bb = b.array_i32("b", 64, &b_data);
    let zero = b.imm(0);
    let outs = b.for_range(0, 64, &[zero], |b, i, vars| {
        let x = b.load(aa, i);
        let y = b.load(bb, i);
        let p = b.mul(x, y);
        // Branch divergence: saturate large contributions.
        let big = b.gt(p, 200.into());
        let r = b.if_else(big, |b| vec![b.imm(200)], |_| vec![p]);
        vec![b.add(vars[0], r[0])]
    });
    b.sink("dot", outs[0]);
    let g = b.finish();
    println!(
        "built CDFG: {} nodes, {} blocks, {} loops",
        g.nodes.len(),
        g.blocks.len(),
        g.loops.len()
    );

    // 2. Compile for the paper's 4x4 Marionette fabric.
    let arch = marionette::arch::marionette_full();
    let (prog, report) = compile(&g, &arch.opts).expect("fits on the fabric");
    println!(
        "compiled: {} data ops, {} control ops, {} routes ({} control-class)",
        report.data_ops, report.ctrl_ops, report.routes, report.ctrl_routes
    );
    println!("\n--- configuration listing (first 24 lines) ---");
    for line in disasm::disassemble(&prog).lines().take(24) {
        println!("{line}");
    }

    // 3. Serialize/deserialize through the configuration bitstream.
    let bytes = marionette::isa::bitstream::encode(&prog);
    println!("\nbitstream: {} bytes", bytes.len());
    let prog = marionette::isa::bitstream::decode(&bytes).unwrap();

    // 4. Simulate.
    let inputs: Vec<(String, Vec<marionette::cdfg::Value>)> = g
        .arrays
        .iter()
        .map(|a| (a.name.clone(), a.init.clone()))
        .collect();
    let tm = TimingModel::ideal("marionette");
    let r = run(&prog, &tm, &inputs, &[], 10_000_000).expect("runs");
    let expected: i64 = a_data
        .iter()
        .zip(&b_data)
        .map(|(&x, &y)| i64::from((x * y).min(200)))
        .sum();
    println!(
        "\nresult: dot = {} (expected {expected}), {} cycles, mean PE utilization {:.1}%",
        r.sinks.get("dot").unwrap()[0],
        r.stats.cycles,
        100.0 * r.stats.mean_pe_utilization()
    );
}
