//! Imperfect loop case study (the paper's Fig 3b/Fig 8): GEMM's
//! three-level nest under conventional phase scheduling vs Agile PE
//! Assignment, showing the co-resident pipeline regions and the Fig 15
//! utilization story.
//!
//! ```sh
//! cargo run --release --example imperfect_loop
//! ```

use marionette::arch;
use marionette::kernels::traits::Scale;
use marionette::runner::run_kernel;

fn main() {
    let kernel = marionette::kernels::by_short("GEMM").unwrap();
    println!("kernel: {} (imperfect nested loops)\n", kernel.name());
    for a in [arch::marionette_cn(), arch::marionette_full()] {
        let r =
            run_kernel(kernel.as_ref(), &a, Scale::Small, 7, 1_000_000_000).expect("verified run");
        println!("=== {} ===", a.name);
        println!(
            "cycles {}   switches {}   mean PE utilization {:.1}%",
            r.cycles,
            r.stats.group_switches,
            100.0 * r.stats.mean_pe_utilization()
        );
        println!("mapping groups (the Fig 8 schedule):");
        for (gi, gp) in r.report.groups.iter().enumerate() {
            if gp.pes.is_empty() {
                continue;
            }
            let kind = match (gp.loop_id, gp.innermost) {
                (None, _) => "top-level",
                (Some(_), true) => "innermost loop",
                (Some(_), false) => "outer loop",
            };
            println!(
                "  group {gi}: {kind:<15} {} PEs, II={}, PE_waste={}, ops={}",
                gp.pes.len(),
                gp.ii,
                gp.waste,
                gp.ops
            );
        }
        println!();
    }
    println!(
        "With Agile PE Assignment the loop levels hold disjoint PE regions\n\
         sized by reshape (time-extension) minimizing PE_waste, so the outer\n\
         basic blocks pipeline concurrently with the innermost loop instead\n\
         of time-multiplexing the whole array."
    );
}
