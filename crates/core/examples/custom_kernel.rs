//! Writing your own kernel: a sparse matrix-vector multiply (the paper's
//! Fig 3b motivating example) built directly against the CDFG DSL, with
//! the dynamic inner-loop bounds that make it an *imperfect loop*, then
//! raced across three architectures.
//!
//! ```sh
//! cargo run --release --example custom_kernel
//! ```

use marionette::arch;
use marionette::cdfg::builder::CdfgBuilder;
use marionette::cdfg::value::Value;
use marionette::cdfg::Cdfg;
use marionette::compiler::compile;
use marionette::sim::run;

/// CSR SPMV: `y[i] = Σ_j val[j] · vec[cols[j]]` for `j` in the row extent
/// `row_delim[i] .. row_delim[i+1]` — the exact code of the paper's
/// Fig 3(b).
fn build_spmv(n: usize, row_delim: &[i32], cols: &[i32], vals: &[i32], vecv: &[i32]) -> Cdfg {
    let mut b = CdfgBuilder::new("spmv");
    let rd = b.array_i32("row_delim", row_delim.len(), row_delim);
    let ca = b.array_i32("cols", cols.len(), cols);
    let va = b.array_i32("vals", vals.len(), vals);
    let xa = b.array_i32("vec", vecv.len(), vecv);
    let ya = b.array_i32("y", n, &[]);
    b.mark_output(ya);
    let zero = b.imm(0);
    let _ = b.for_range(0, n as i32, &[zero], |b, i, v| {
        let lo = b.load(rd, i);
        let i1 = b.add(i, 1.into());
        let hi = b.load(rd, i1);
        let z = b.imm(0);
        // Dynamic bounds: the hallmark of the imperfect loop (Fig 3b).
        let sum = b.for_range(lo, hi, &[z], |b, j, w| {
            let c = b.load(ca, j);
            let x = b.load(xa, c);
            let a = b.load(va, j);
            let p = b.mul(a, x);
            let s = b.in_loop_header(|b| b.add(w[0], p));
            vec![s]
        });
        b.store(ya, i, sum[0]);
        vec![v[0]]
    });
    b.finish()
}

fn main() {
    // A small, deterministic sparse matrix with wildly uneven rows.
    let n = 32;
    let mut row_delim = vec![0i32];
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    for i in 0..n {
        let row_len = (i * 7 + 1) % 9; // 0..8 nonzeros: empty rows included
        for k in 0..row_len {
            cols.push(((i * 5 + k * 3) % n) as i32);
            vals.push(((i + k) % 7) as i32 - 3);
        }
        row_delim.push(cols.len() as i32);
    }
    let vecv: Vec<i32> = (0..n).map(|i| (i % 11) as i32 - 5).collect();
    let g = build_spmv(n, &row_delim, &cols, &vals, &vecv);

    // Golden reference.
    let mut y = vec![0i64; n];
    for i in 0..n {
        for j in row_delim[i] as usize..row_delim[i + 1] as usize {
            y[i] += i64::from(vals[j]) * i64::from(vecv[cols[j] as usize]);
        }
    }

    println!(
        "SPMV ({n} rows, {} nonzeros, empty rows included)\n",
        cols.len()
    );
    for a in [
        arch::von_neumann_pe(),
        arch::softbrain(),
        arch::marionette_full(),
    ] {
        let (prog, _) = compile(&g, &a.opts).expect("compiles");
        let inputs: Vec<(String, Vec<Value>)> = g
            .arrays
            .iter()
            .map(|ar| (ar.name.clone(), ar.init.clone()))
            .collect();
        let r = run(&prog, &a.tm, &inputs, &[], 100_000_000).expect("runs");
        let got = r.memory[g.array_by_name("y").unwrap().0 as usize].clone();
        let ok = got
            .iter()
            .zip(&y)
            .all(|(g, &e)| i64::from(g.to_i32_lossy()) == e);
        println!(
            "{:<16} {:>8} cycles   verified: {}",
            a.name, r.stats.cycles, ok
        );
        assert!(ok, "{} produced wrong results", a.name);
    }
    println!(
        "\nThe dynamic row extents force centralized architectures through a\n\
         CCU/host round trip per row; Marionette's loop operator receives the\n\
         bounds over the control plane and keeps the pipeline full."
    );
}
