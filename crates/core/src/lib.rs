//! # marionette
//!
//! A from-scratch Rust reproduction of **"Towards Efficient Control Flow
//! Handling in Spatial Architecture via Architecting the Control Flow
//! Plane"** (MICRO 2023): the Marionette spatial architecture with a
//! decoupled, explicitly-architected control flow plane, its ISA,
//! compiler (Agile PE Assignment), CS-Benes control network, cycle-level
//! simulator, hardware models, the 13 evaluation kernels, and the
//! baseline/state-of-the-art execution models it is compared against.
//!
//! ## Quick start
//!
//! ```
//! use marionette::prelude::*;
//!
//! // Pick a kernel and an architecture, run it end to end.
//! let kernel = marionette::kernels::by_short("CRC").unwrap();
//! let arch = marionette::arch::marionette_full();
//! let run = marionette::runner::run_kernel(
//!     kernel.as_ref(),
//!     &arch,
//!     Scale::Tiny,
//!     42,
//!     100_000_000,
//! )?;
//! assert!(run.verified);
//! assert!(run.cycles > 0);
//! # Ok::<(), marionette::runner::RunnerError>(())
//! ```
//!
//! ## Layout
//!
//! | Module | Contents |
//! |---|---|
//! | [`cdfg`] | CDFG computational model, builder DSL, reference interpreter |
//! | [`isa`] | spatial ISA, configuration bitstream, disassembler |
//! | [`net`] | Benes / CS / CS-Benes control network, mesh NoC |
//! | [`kernels`] | the 13 evaluation benchmarks (golden + CDFG + workload) |
//! | [`compiler`] | placement (Fig 8 scheduling), routing, config generation |
//! | [`sim`] | cycle-level simulator with per-architecture timing models |
//! | [`arch`] | architecture presets (vN/DF/Marionette ablations/SOTA) |
//! | [`hw`] | 28 nm area/power/delay models (Tables 4 & 6, Fig 13) |
//! | [`runner`] | end-to-end compile+simulate+verify |
//! | [`experiments`] | regeneration of every evaluation figure |
//! | [`parallel`] | scoped-thread fan-out for experiment sweeps |
//! | [`report`] | shared helpers for the JSON-report binaries |

#![warn(missing_docs)]

pub use marionette_arch as arch;
pub use marionette_cdfg as cdfg;
pub use marionette_compiler as compiler;
pub use marionette_hw as hw;
pub use marionette_isa as isa;
pub use marionette_kernels as kernels;
pub use marionette_net as net;
pub use marionette_sim as sim;

pub mod experiments;
pub mod parallel;
pub mod report;
pub mod runner;

/// Convenience imports for examples and tests.
pub mod prelude {
    pub use crate::arch::Architecture;
    pub use crate::experiments::geomean;
    pub use crate::kernels::traits::{Kernel, Scale};
    pub use crate::runner::{run_kernel, KernelRun};
}
