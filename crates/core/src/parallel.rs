//! Minimal scoped-thread work-stealing-free parallel map.
//!
//! The experiment sweeps (figures 11-17, `repro_all`, `bench_sim`) run
//! hundreds of independent kernel × architecture simulations; this module
//! fans them out across OS threads with `std::thread::scope`, avoiding
//! any external dependency. Work is handed out through an atomic cursor,
//! so long-running points (e.g. GEMM on a von Neumann model) do not
//! serialize behind short ones.

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

thread_local! {
    /// True on a thread that is already executing inside a [`par_map`]
    /// worker: a nested `par_map` (e.g. the runner fanning annealing
    /// chains out from within a sweep point) runs inline instead of
    /// oversubscribing the machine with worker-per-worker threads.
    static IN_SWEEP_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Number of worker threads a sweep should use: the
/// `MARIONETTE_THREADS` environment variable when set (a value of `1`
/// forces serial execution), otherwise the machine's available
/// parallelism.
pub fn sweep_threads() -> usize {
    if let Ok(v) = std::env::var("MARIONETTE_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Applies `f` to every item on up to `threads` OS threads, preserving
/// input order in the returned vector.
///
/// Items are claimed dynamically (atomic cursor), so an uneven cost
/// distribution still load-balances. With `threads <= 1` (or a single
/// item) the map runs inline on the caller's thread, which keeps
/// deterministic single-threaded debugging trivial. A `par_map` called
/// from inside another `par_map`'s worker also runs inline: the outer
/// sweep already owns the machine's cores, and results are
/// order-preserving either way.
///
/// # Panics
/// Propagates a panic from `f` (the scope joins all workers first).
pub fn par_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 {
        // An explicitly-serial sweep must stay serial all the way down:
        // mark this thread as a worker for the duration so nested
        // par_map calls (e.g. the runner's annealing-chain fan-out)
        // cannot spawn threads behind a `threads = 1` request.
        let prev = IN_SWEEP_WORKER.with(|w| w.replace(true));
        struct Reset(bool);
        impl Drop for Reset {
            fn drop(&mut self) {
                IN_SWEEP_WORKER.with(|w| w.set(self.0));
            }
        }
        let _reset = Reset(prev);
        return items.into_iter().map(f).collect();
    }
    if n <= 1 || IN_SWEEP_WORKER.with(Cell::get) {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads.min(n) {
            s.spawn(|| {
                IN_SWEEP_WORKER.with(|w| w.set(true));
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = slots[i].lock().unwrap().take().expect("item claimed once");
                    let r = f(item);
                    *results[i].lock().unwrap() = Some(r);
                }
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("worker filled slot"))
        .collect()
}

// ---- persistent worker pool ----------------------------------------------

/// Why a job was not accepted by [`WorkerPool::try_submit`].
///
/// The rejected job rides back to the caller so nothing is silently
/// dropped — a server turns this into an admission-control response
/// (HTTP 429) instead of queueing unboundedly.
#[derive(Debug)]
pub enum SubmitError<J> {
    /// The bounded queue is at capacity; the job is returned.
    QueueFull(J),
    /// The pool is shutting down; the job is returned.
    ShuttingDown(J),
}

struct PoolState<J> {
    queue: VecDeque<J>,
    shutdown: bool,
}

struct PoolShared<J> {
    state: Mutex<PoolState<J>>,
    capacity: usize,
    wake: Condvar,
}

/// A persistent worker pool over a **bounded** job queue.
///
/// Unlike [`par_map`] — which fans a known batch out and joins — this
/// pool serves an open-ended stream of jobs (a daemon's request
/// traffic). Backpressure is explicit: [`WorkerPool::try_submit`] never
/// blocks and returns [`SubmitError::QueueFull`] once `capacity` jobs
/// are waiting, so the caller decides what rejection means (the `mard`
/// server answers HTTP 429). Workers park on a condvar between jobs and
/// exit once [`WorkerPool::shutdown`] drained the queue.
pub struct WorkerPool<J: Send + 'static> {
    shared: Arc<PoolShared<J>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl<J: Send + 'static> WorkerPool<J> {
    /// Spawns `workers` threads running `handler` on submitted jobs.
    /// `capacity` bounds the number of *waiting* jobs (in-flight jobs do
    /// not count); both are clamped to at least 1.
    ///
    /// # Panics
    /// Panics if a worker thread cannot be spawned.
    pub fn new<F>(workers: usize, capacity: usize, handler: F) -> Self
    where
        F: Fn(J) + Send + Sync + 'static,
    {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            capacity: capacity.max(1),
            wake: Condvar::new(),
        });
        let handler = Arc::new(handler);
        let workers = (0..workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                let handler = Arc::clone(&handler);
                std::thread::spawn(move || loop {
                    let job = {
                        let mut st = shared.state.lock().unwrap();
                        loop {
                            if let Some(j) = st.queue.pop_front() {
                                break j;
                            }
                            if st.shutdown {
                                return;
                            }
                            st = shared.wake.wait(st).unwrap();
                        }
                    };
                    handler(job);
                })
            })
            .collect();
        WorkerPool { shared, workers }
    }

    /// Enqueues `job` without blocking.
    ///
    /// # Errors
    /// Returns the job inside [`SubmitError::QueueFull`] when `capacity`
    /// jobs are already waiting, or [`SubmitError::ShuttingDown`] after
    /// [`WorkerPool::shutdown`] began.
    pub fn try_submit(&self, job: J) -> Result<(), SubmitError<J>> {
        let mut st = self.shared.state.lock().unwrap();
        if st.shutdown {
            return Err(SubmitError::ShuttingDown(job));
        }
        if st.queue.len() >= self.shared.capacity {
            return Err(SubmitError::QueueFull(job));
        }
        st.queue.push_back(job);
        drop(st);
        self.shared.wake.notify_one();
        Ok(())
    }

    /// Number of jobs waiting in the queue (excludes jobs already being
    /// executed by a worker).
    pub fn depth(&self) -> usize {
        self.shared.state.lock().unwrap().queue.len()
    }

    /// Drains the queue, then joins every worker. Jobs already submitted
    /// are still executed.
    ///
    /// # Panics
    /// Propagates a worker panic on join.
    pub fn shutdown(mut self) {
        self.shared.state.lock().unwrap().shutdown = true;
        self.shared.wake.notify_all();
        for w in self.workers.drain(..) {
            w.join().unwrap();
        }
    }
}

impl<J: Send + 'static> Drop for WorkerPool<J> {
    fn drop(&mut self) {
        // Best-effort shutdown for the non-explicit path: mark and wake,
        // but do not join (the explicit `shutdown` already joined, and a
        // panicking test must not deadlock in drop).
        self.shared.state.lock().unwrap().shutdown = true;
        self.shared.wake.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let xs: Vec<u64> = (0..257).collect();
        let ys = par_map(xs.clone(), 8, |x| x * 2);
        assert_eq!(ys, xs.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_path_matches_parallel() {
        let xs: Vec<u64> = (0..40).collect();
        assert_eq!(par_map(xs.clone(), 1, |x| x + 7), par_map(xs, 6, |x| x + 7));
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(par_map(Vec::<u32>::new(), 4, |x| x), Vec::<u32>::new());
        assert_eq!(par_map(vec![9u32], 4, |x| x + 1), vec![10]);
    }

    #[test]
    fn balances_uneven_work() {
        // Front-loaded costs: dynamic claiming must still complete and
        // preserve order.
        let xs: Vec<u64> = (0..64).collect();
        let ys = par_map(xs, 4, |x| {
            if x < 4 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            x
        });
        assert_eq!(ys, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn threads_env_overrides() {
        // Can't set env safely in parallel tests; just sanity-check the
        // default is at least one.
        assert!(sweep_threads() >= 1);
    }

    #[test]
    fn pool_executes_every_submitted_job() {
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        let pool = WorkerPool::new(3, 64, move |x: usize| {
            d.fetch_add(x, Ordering::SeqCst);
        });
        for i in 1..=10 {
            pool.try_submit(i).unwrap();
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 55);
    }

    #[test]
    fn pool_rejects_above_capacity_and_returns_the_job() {
        // A single worker blocked on a gate keeps the queue full, so
        // admission is deterministic: 1 in flight + 2 waiting, then full.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = Arc::clone(&gate);
        let started = Arc::new((Mutex::new(false), Condvar::new()));
        let s = Arc::clone(&started);
        let pool = WorkerPool::new(1, 2, move |_x: u32| {
            let (lk, cv) = &*s;
            *lk.lock().unwrap() = true;
            cv.notify_all();
            let (lk, cv) = &*g;
            let mut open = lk.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        });
        pool.try_submit(0).unwrap();
        // Wait until the worker holds job 0 so the queue is empty.
        {
            let (lk, cv) = &*started;
            let mut st = lk.lock().unwrap();
            while !*st {
                st = cv.wait(st).unwrap();
            }
        }
        pool.try_submit(1).unwrap();
        pool.try_submit(2).unwrap();
        assert_eq!(pool.depth(), 2);
        match pool.try_submit(7) {
            Err(SubmitError::QueueFull(j)) => assert_eq!(j, 7),
            other => panic!("expected QueueFull, got {other:?}"),
        }
        // Open the gate so shutdown can drain.
        {
            let (lk, cv) = &*gate;
            *lk.lock().unwrap() = true;
            cv.notify_all();
        }
        pool.shutdown();
    }

    #[test]
    fn pool_shutdown_drains_then_rejects() {
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        let pool = WorkerPool::new(2, 16, move |_: ()| {
            d.fetch_add(1, Ordering::SeqCst);
        });
        for _ in 0..8 {
            pool.try_submit(()).unwrap();
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn nested_par_map_runs_inline_and_preserves_results() {
        let xs: Vec<u64> = (0..16).collect();
        let ys = par_map(xs, 4, |x| {
            // Inner fan-out from a worker thread must not spawn another
            // thread layer; results are identical either way.
            let inner = par_map(vec![x, x + 1], 4, |y| y * 10);
            inner[0] + inner[1]
        });
        assert_eq!(
            ys,
            (0..16).map(|x| x * 10 + (x + 1) * 10).collect::<Vec<u64>>()
        );
    }
}
