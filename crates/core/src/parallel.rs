//! Minimal scoped-thread work-stealing-free parallel map.
//!
//! The experiment sweeps (figures 11-17, `repro_all`, `bench_sim`) run
//! hundreds of independent kernel × architecture simulations; this module
//! fans them out across OS threads with `std::thread::scope`, avoiding
//! any external dependency. Work is handed out through an atomic cursor,
//! so long-running points (e.g. GEMM on a von Neumann model) do not
//! serialize behind short ones.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// True on a thread that is already executing inside a [`par_map`]
    /// worker: a nested `par_map` (e.g. the runner fanning annealing
    /// chains out from within a sweep point) runs inline instead of
    /// oversubscribing the machine with worker-per-worker threads.
    static IN_SWEEP_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Number of worker threads a sweep should use: the
/// `MARIONETTE_THREADS` environment variable when set (a value of `1`
/// forces serial execution), otherwise the machine's available
/// parallelism.
pub fn sweep_threads() -> usize {
    if let Ok(v) = std::env::var("MARIONETTE_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Applies `f` to every item on up to `threads` OS threads, preserving
/// input order in the returned vector.
///
/// Items are claimed dynamically (atomic cursor), so an uneven cost
/// distribution still load-balances. With `threads <= 1` (or a single
/// item) the map runs inline on the caller's thread, which keeps
/// deterministic single-threaded debugging trivial. A `par_map` called
/// from inside another `par_map`'s worker also runs inline: the outer
/// sweep already owns the machine's cores, and results are
/// order-preserving either way.
///
/// # Panics
/// Propagates a panic from `f` (the scope joins all workers first).
pub fn par_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 {
        // An explicitly-serial sweep must stay serial all the way down:
        // mark this thread as a worker for the duration so nested
        // par_map calls (e.g. the runner's annealing-chain fan-out)
        // cannot spawn threads behind a `threads = 1` request.
        let prev = IN_SWEEP_WORKER.with(|w| w.replace(true));
        struct Reset(bool);
        impl Drop for Reset {
            fn drop(&mut self) {
                IN_SWEEP_WORKER.with(|w| w.set(self.0));
            }
        }
        let _reset = Reset(prev);
        return items.into_iter().map(f).collect();
    }
    if n <= 1 || IN_SWEEP_WORKER.with(Cell::get) {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads.min(n) {
            s.spawn(|| {
                IN_SWEEP_WORKER.with(|w| w.set(true));
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = slots[i].lock().unwrap().take().expect("item claimed once");
                    let r = f(item);
                    *results[i].lock().unwrap() = Some(r);
                }
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("worker filled slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let xs: Vec<u64> = (0..257).collect();
        let ys = par_map(xs.clone(), 8, |x| x * 2);
        assert_eq!(ys, xs.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_path_matches_parallel() {
        let xs: Vec<u64> = (0..40).collect();
        assert_eq!(par_map(xs.clone(), 1, |x| x + 7), par_map(xs, 6, |x| x + 7));
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(par_map(Vec::<u32>::new(), 4, |x| x), Vec::<u32>::new());
        assert_eq!(par_map(vec![9u32], 4, |x| x + 1), vec![10]);
    }

    #[test]
    fn balances_uneven_work() {
        // Front-loaded costs: dynamic claiming must still complete and
        // preserve order.
        let xs: Vec<u64> = (0..64).collect();
        let ys = par_map(xs, 4, |x| {
            if x < 4 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            x
        });
        assert_eq!(ys, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn threads_env_overrides() {
        // Can't set env safely in parallel tests; just sanity-check the
        // default is at least one.
        assert!(sweep_threads() >= 1);
    }

    #[test]
    fn nested_par_map_runs_inline_and_preserves_results() {
        let xs: Vec<u64> = (0..16).collect();
        let ys = par_map(xs, 4, |x| {
            // Inner fan-out from a worker thread must not spawn another
            // thread layer; results are identical either way.
            let inner = par_map(vec![x, x + 1], 4, |y| y * 10);
            inner[0] + inner[1]
        });
        assert_eq!(
            ys,
            (0..16).map(|x| x * 10 + (x + 1) * 10).collect::<Vec<u64>>()
        );
    }
}
