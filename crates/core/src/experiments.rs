//! Experiment harness: regenerates every figure and table of the paper's
//! evaluation (§7). Each function returns a structured result that the
//! `repro_*` binaries print in the paper's format and that tests assert
//! shape properties on.

use crate::parallel::{par_map, sweep_threads};
use crate::runner::{run_grid, run_kernel, KernelRun, RunnerError, DEFAULT_MAX_CYCLES};
use marionette_arch as arch;
use marionette_arch::Architecture;
use marionette_kernels::traits::Scale;
use marionette_kernels::{intensive, non_intensive};

/// Geometric mean of a slice (1.0 for empty input).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Cycle counts per kernel for a set of architectures.
#[derive(Clone, Debug)]
pub struct CycleMatrix {
    /// Kernel short tags in run order.
    pub kernels: Vec<String>,
    /// `(architecture short tag, cycles per kernel)` series.
    pub series: Vec<(String, Vec<u64>)>,
}

impl CycleMatrix {
    /// Speedup of architecture `num` relative to `den`, per kernel.
    pub fn speedups(&self, num: &str, den: &str) -> Vec<f64> {
        let n = &self.series.iter().find(|(a, _)| a == num).unwrap().1;
        let d = &self.series.iter().find(|(a, _)| a == den).unwrap().1;
        d.iter()
            .zip(n)
            .map(|(&dc, &nc)| dc as f64 / nc as f64)
            .collect()
    }
}

fn run_matrix(
    kernels: &[Box<dyn marionette_kernels::Kernel>],
    archs: &[Architecture],
    scale: Scale,
    seed: u64,
) -> Result<(CycleMatrix, Vec<KernelRun>), RunnerError> {
    let mut series: Vec<(String, Vec<u64>)> = archs
        .iter()
        .map(|a| (a.short.to_string(), Vec::new()))
        .collect();
    // All points run in parallel; results come back in the same row-major
    // (kernel, arch) order the old serial loop produced.
    let runs = run_grid(kernels, archs, scale, seed, DEFAULT_MAX_CYCLES)?;
    for (i, r) in runs.iter().enumerate() {
        series[i % archs.len()].1.push(r.cycles);
    }
    Ok((
        CycleMatrix {
            kernels: kernels.iter().map(|k| k.short().to_string()).collect(),
            series,
        },
        runs,
    ))
}

/// Fig 11: Marionette PE (with Proactive PE Configuration) vs the generic
/// von Neumann and dataflow PE models, plus the operators-under-branch
/// ratio.
#[derive(Clone, Debug)]
pub struct Fig11 {
    /// Cycle counts (vN, DF, M-PE).
    pub cycles: CycleMatrix,
    /// Speedup of Marionette PE over von Neumann PE, per kernel.
    pub speedup_vs_vn: Vec<f64>,
    /// Speedup of Marionette PE over dataflow PE, per kernel.
    pub speedup_vs_df: Vec<f64>,
    /// Operators under a branch, per kernel (secondary axis of Fig 11).
    pub ops_under_branch: Vec<f64>,
}

/// Runs the Fig 11 experiment.
///
/// # Errors
/// Propagates any compile/simulation/verification failure.
pub fn fig11(scale: Scale, seed: u64) -> Result<Fig11, RunnerError> {
    let kernels = intensive();
    let archs = [
        arch::von_neumann_pe(),
        arch::dataflow_pe(),
        arch::marionette_pe(),
    ];
    let (cycles, _) = run_matrix(&kernels, &archs, scale, seed)?;
    let speedup_vs_vn = cycles.speedups("M-PE", "vN");
    let speedup_vs_df = cycles.speedups("M-PE", "DF");
    let mut ops_under_branch = Vec::with_capacity(kernels.len());
    for k in &kernels {
        let wl = k.workload(Scale::Tiny, seed);
        let g = k.build(&wl)?;
        ops_under_branch.push(marionette_cdfg::analysis::ops_under_branch_ratio(&g));
    }
    Ok(Fig11 {
        cycles,
        speedup_vs_vn,
        speedup_vs_df,
        ops_under_branch,
    })
}

/// Fig 12: the dedicated control network's contribution.
#[derive(Clone, Debug)]
pub struct Fig12 {
    /// Cycle counts (M-PE, M-CN).
    pub cycles: CycleMatrix,
    /// Per-kernel speedup from the control network.
    pub speedup: Vec<f64>,
}

/// Runs the Fig 12 experiment.
///
/// # Errors
/// Propagates any compile/simulation/verification failure.
pub fn fig12(scale: Scale, seed: u64) -> Result<Fig12, RunnerError> {
    let kernels = intensive();
    let archs = [arch::marionette_pe(), arch::marionette_cn()];
    let (cycles, _) = run_matrix(&kernels, &archs, scale, seed)?;
    let speedup = cycles.speedups("M-CN", "M-PE");
    Ok(Fig12 { cycles, speedup })
}

/// Fig 14: Agile PE Assignment's contribution.
#[derive(Clone, Debug)]
pub struct Fig14 {
    /// Cycle counts (M-CN, M full).
    pub cycles: CycleMatrix,
    /// Per-kernel speedup from Agile PE Assignment.
    pub speedup: Vec<f64>,
}

/// Runs the Fig 14 experiment.
///
/// # Errors
/// Propagates any compile/simulation/verification failure.
pub fn fig14(scale: Scale, seed: u64) -> Result<Fig14, RunnerError> {
    let kernels = intensive();
    let archs = [arch::marionette_cn(), arch::marionette_full()];
    let (cycles, _) = run_matrix(&kernels, &archs, scale, seed)?;
    let speedup = cycles.speedups("M", "M-CN");
    Ok(Fig14 { cycles, speedup })
}

/// Fig 15: utilization effects of Agile PE Assignment on the nested-loop
/// benchmarks.
#[derive(Clone, Debug)]
pub struct Fig15 {
    /// Kernel tags.
    pub kernels: Vec<String>,
    /// Outer-BB PE utilization before Agile assignment.
    pub outer_util_before: Vec<f64>,
    /// Outer-BB PE utilization after Agile assignment.
    pub outer_util_after: Vec<f64>,
    /// Pipeline (whole-array) utilization before.
    pub pipe_util_before: Vec<f64>,
    /// Pipeline utilization after.
    pub pipe_util_after: Vec<f64>,
}

/// Outer-BB utilization: busy-cycles of non-innermost groups divided by
/// their PE-region × active-window product.
fn outer_bb_utilization(run: &KernelRun) -> f64 {
    let mut busy = 0u64;
    let mut denom = 0f64;
    for (gi, gp) in run.report.groups.iter().enumerate() {
        if gp.innermost || gp.pes.is_empty() || gp.loop_id.is_none() {
            continue;
        }
        if let Some(gs) = run.stats.groups.get(gi) {
            busy += gs.busy;
        }
        denom += gp.pes.len() as f64;
    }
    if denom == 0.0 || run.cycles == 0 {
        return 0.0;
    }
    busy as f64 / (denom * run.cycles as f64)
}

/// Runs the Fig 15 experiment (the multi-level nested-loop subset).
///
/// # Errors
/// Propagates any compile/simulation/verification failure.
pub fn fig15(scale: Scale, seed: u64) -> Result<Fig15, RunnerError> {
    let tags = ["FFT", "VI", "NW", "HT", "SCD", "LDPC", "GEMM"];
    let before = arch::marionette_cn();
    let after = arch::marionette_full();
    let mut out = Fig15 {
        kernels: tags.iter().map(|s| s.to_string()).collect(),
        outer_util_before: Vec::new(),
        outer_util_after: Vec::new(),
        pipe_util_before: Vec::new(),
        pipe_util_after: Vec::new(),
    };
    let points: Vec<(&str, &Architecture)> = tags
        .iter()
        .flat_map(|t| [(*t, &before), (*t, &after)])
        .collect();
    let results = par_map(points, sweep_threads(), |(t, a)| {
        let k = marionette_kernels::by_short(t).expect("kernel tag");
        run_kernel(k.as_ref(), a, scale, seed, DEFAULT_MAX_CYCLES)
    });
    let mut it = results.into_iter();
    while let (Some(rb), Some(ra)) = (it.next(), it.next()) {
        let (rb, ra) = (rb?, ra?);
        out.outer_util_before.push(outer_bb_utilization(&rb));
        out.outer_util_after.push(outer_bb_utilization(&ra));
        out.pipe_util_before.push(rb.stats.mean_pe_utilization());
        out.pipe_util_after.push(ra.stats.mean_pe_utilization());
    }
    Ok(out)
}

/// The Marionette feature ladder (M-PE → M-CN → M) evaluated in one
/// sweep: Figs 12, 14 and 16 all derive from this matrix, so a combined
/// driver (`repro_all`) simulates each point exactly once instead of
/// re-running the shared columns per figure.
#[derive(Clone, Debug)]
pub struct Ladder {
    /// Cycle counts (M-PE, M-CN, M) on the intensive kernels.
    pub cycles: CycleMatrix,
}

/// Runs the feature-ladder sweep behind Figs 12, 14 and 16.
///
/// # Errors
/// Propagates any compile/simulation/verification failure.
pub fn ladder(scale: Scale, seed: u64) -> Result<Ladder, RunnerError> {
    let kernels = intensive();
    let archs = [
        arch::marionette_pe(),
        arch::marionette_cn(),
        arch::marionette_full(),
    ];
    let (cycles, _) = run_matrix(&kernels, &archs, scale, seed)?;
    Ok(Ladder { cycles })
}

impl Ladder {
    fn slice(&self, a: &str, b: &str) -> CycleMatrix {
        let pick = |tag: &str| {
            self.cycles
                .series
                .iter()
                .find(|(t, _)| t == tag)
                .expect("ladder series")
                .clone()
        };
        CycleMatrix {
            kernels: self.cycles.kernels.clone(),
            series: vec![pick(a), pick(b)],
        }
    }

    /// The Fig 12 view (M-PE vs M-CN): identical to [`fig12`], but
    /// without re-running the shared points.
    pub fn fig12(&self) -> Fig12 {
        let cycles = self.slice("M-PE", "M-CN");
        let speedup = cycles.speedups("M-CN", "M-PE");
        Fig12 { cycles, speedup }
    }

    /// The Fig 14 view (M-CN vs M full).
    pub fn fig14(&self) -> Fig14 {
        let cycles = self.slice("M-CN", "M");
        let speedup = cycles.speedups("M", "M-CN");
        Fig14 { cycles, speedup }
    }

    /// The Fig 16 view, combining the two ablation speedups.
    pub fn fig16(&self) -> Fig16 {
        let f12 = self.fig12();
        let f14 = self.fig14();
        // Paper order: MS ADPCM CRC LDPC NW FFT VI HT SCD GEMM.
        let order = [
            "MS", "ADPCM", "CRC", "LDPC", "NW", "FFT", "VI", "HT", "SCD", "GEMM",
        ];
        let mut out = Fig16 {
            kernels: order.iter().map(|s| s.to_string()).collect(),
            cn_speedup: Vec::new(),
            agile_speedup: Vec::new(),
        };
        for t in order {
            let i = f12.cycles.kernels.iter().position(|k| k == t).unwrap();
            out.cn_speedup.push(f12.speedup[i]);
            out.agile_speedup.push(f14.speedup[i]);
        }
        out
    }
}

/// Fig 16: the speedup balance between the control network and Agile PE
/// Assignment (which kernels benefit from which feature).
#[derive(Clone, Debug)]
pub struct Fig16 {
    /// Kernels in the paper's Fig 16 order.
    pub kernels: Vec<String>,
    /// Control-network speedup per kernel (from Fig 12).
    pub cn_speedup: Vec<f64>,
    /// Agile speedup per kernel (from Fig 14).
    pub agile_speedup: Vec<f64>,
}

/// Runs the Fig 16 experiment by combining Figs 12 and 14.
///
/// # Errors
/// Propagates any compile/simulation/verification failure.
pub fn fig16(scale: Scale, seed: u64) -> Result<Fig16, RunnerError> {
    // One ladder sweep covers both ablations: 3 architectures per kernel
    // instead of the 4 a naive fig12-then-fig14 rerun would simulate.
    Ok(ladder(scale, seed)?.fig16())
}

/// Fig 17: Marionette against the state of the art on all 13 kernels.
#[derive(Clone, Debug)]
pub struct Fig17 {
    /// Intensive-kernel cycle matrix (SB, TIA, RV, RT, M).
    pub intensive: CycleMatrix,
    /// Non-intensive control group (CO, SI, GP).
    pub non_intensive: CycleMatrix,
    /// The composite full LDPC application (pre/decode/post phases).
    pub ldpc_app: CycleMatrix,
    /// Geomean speedup of Marionette over each SOTA architecture on the
    /// intensive kernels, keyed by architecture tag.
    pub geomeans: Vec<(String, f64)>,
    /// Marionette's speedup over each SOTA architecture on the full LDPC
    /// application (paper: 3.01x / 3.13x / 2.36x / 2.68x).
    pub ldpc_app_speedups: Vec<(String, f64)>,
}

/// Runs the Fig 17 experiment.
///
/// # Errors
/// Propagates any compile/simulation/verification failure.
pub fn fig17(scale: Scale, seed: u64) -> Result<Fig17, RunnerError> {
    let mut archs = arch::all_sota();
    archs.push(arch::marionette_full());
    let (intensive_m, _) = run_matrix(&intensive(), &archs, scale, seed)?;
    let (non_intensive_m, _) = run_matrix(&non_intensive(), &archs, scale, seed)?;
    let (app_m, _) = run_matrix(&[marionette_kernels::ldpc_app()], &archs, scale, seed)?;
    let geomeans = ["SB", "TIA", "RV", "RT"]
        .iter()
        .map(|a| (a.to_string(), geomean(&intensive_m.speedups("M", a))))
        .collect();
    let ldpc_app_speedups = ["SB", "TIA", "RV", "RT"]
        .iter()
        .map(|a| (a.to_string(), app_m.speedups("M", a)[0]))
        .collect();
    Ok(Fig17 {
        intensive: intensive_m,
        non_intensive: non_intensive_m,
        ldpc_app: app_m,
        geomeans,
        ldpc_app_speedups,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_math() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 1.0);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
    }
}
