//! Small helpers shared by the JSON-report-emitting binaries
//! (`bench_sim`, `map_explore`, `marc`, `fuzz_stack`), so every report
//! agrees on escaping rules.

/// Escapes a string for embedding in a JSON string literal: backslash,
/// quote, and all control characters.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials_and_controls() {
        assert_eq!(json_escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(json_escape("x\ny\t\u{1}"), "x\\ny\\t\\u0001");
        assert_eq!(json_escape("plain"), "plain");
    }
}
