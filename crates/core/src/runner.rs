//! End-to-end kernel execution: workload → CDFG → compile → bitstream
//! round-trip → cycle-level simulation → golden verification.
//!
//! Independent kernel × architecture points are embarrassingly parallel;
//! [`run_grid`] fans a whole sweep out across OS threads (see
//! [`crate::parallel`]) and is the engine behind every figure's
//! experiment and the `bench_sim` perf harness.

use crate::parallel::{par_map, sweep_threads};
use marionette_arch::Architecture;
use marionette_cdfg::value::Value;
use marionette_cdfg::Cdfg;
use marionette_compiler::{
    compile_with_timing, explore_chain, finalize_explored, select_best, CompileReport, CostModel,
    PlaceError,
};
use marionette_isa::MachineProgram;
use marionette_kernels::traits::{Kernel, KernelError, Scale};
use marionette_kernels::verify::check_vs_golden;
use marionette_sim::{run, RunStats, SimError};
use std::fmt;

/// Default cycle budget per run.
pub const DEFAULT_MAX_CYCLES: u64 = 4_000_000_000;

/// One kernel × architecture measurement.
#[derive(Clone, Debug)]
pub struct KernelRun {
    /// Architecture short tag.
    pub arch: String,
    /// Kernel short tag.
    pub kernel: String,
    /// Total cycles to completion.
    pub cycles: u64,
    /// Full run statistics.
    pub stats: RunStats,
    /// Compilation report (group decisions, route stats).
    pub report: CompileReport,
    /// Outputs matched the golden reference.
    pub verified: bool,
}

/// Runner failure.
#[derive(Debug)]
pub enum RunnerError {
    /// The kernel could not build its program or golden reference from
    /// the workload (missing size/array/output name).
    Kernel(KernelError),
    /// Compilation failed.
    Compile(PlaceError),
    /// Simulation failed.
    Sim(SimError),
    /// Outputs diverged from the golden reference.
    Verification {
        /// Which kernel/architecture failed.
        what: String,
        /// First mismatch description.
        first: String,
        /// Mismatch count (capped).
        count: usize,
    },
}

impl fmt::Display for RunnerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunnerError::Kernel(e) => write!(f, "kernel: {e}"),
            RunnerError::Compile(e) => write!(f, "compile: {e}"),
            RunnerError::Sim(e) => write!(f, "simulate: {e}"),
            RunnerError::Verification { what, first, count } => {
                write!(f, "{what}: {count} mismatches, first: {first}")
            }
        }
    }
}

impl std::error::Error for RunnerError {}

impl From<KernelError> for RunnerError {
    fn from(e: KernelError) -> Self {
        RunnerError::Kernel(e)
    }
}

impl From<PlaceError> for RunnerError {
    fn from(e: PlaceError) -> Self {
        RunnerError::Compile(e)
    }
}

impl From<SimError> for RunnerError {
    fn from(e: SimError) -> Self {
        RunnerError::Sim(e)
    }
}

/// Compiles `g` for `arch`.
///
/// With [`marionette_compiler::SearchBudget::Off`] (the default on every
/// preset) this is the legacy one-shot pipeline — bit-compatible with
/// the seed mappings. With a nonzero budget the annealing restart chains
/// of the mapping explorer are fanned out across worker threads (see
/// [`crate::parallel::par_map`]) and combined with the explorer's
/// deterministic best-of-N selection, so the result is identical to a
/// serial [`marionette_compiler::compile_with_timing`] call.
///
/// # Errors
/// Returns [`PlaceError`] when the program cannot fit on the fabric.
pub fn compile_for_arch(
    g: &Cdfg,
    arch: &Architecture,
) -> Result<(MachineProgram, CompileReport), PlaceError> {
    let seeds = arch.opts.search.chain_seeds();
    if seeds.len() <= 1 {
        return compile_with_timing(g, &arch.opts, &arch.tm);
    }
    let cm = CostModel::from_timing(&arch.tm);
    let chains = par_map(seeds, sweep_threads(), |s| {
        explore_chain(g, &arch.opts, &cm, s)
    });
    let mut ok = Vec::with_capacity(chains.len());
    for c in chains {
        ok.push(c?);
    }
    Ok(finalize_explored(g, &arch.opts, &cm, select_best(ok)))
}

/// Compiles and simulates `kernel` on `arch`, verifying outputs against
/// the golden reference. The ISA bitstream round-trip is exercised on
/// every call: the simulator runs the *decoded* program.
///
/// # Errors
/// Returns [`RunnerError`] on compile/simulation failure or output
/// mismatch.
pub fn run_kernel(
    kernel: &dyn Kernel,
    arch: &Architecture,
    scale: Scale,
    seed: u64,
    max_cycles: u64,
) -> Result<KernelRun, RunnerError> {
    let wl = kernel.workload(scale, seed);
    let golden = kernel.golden(&wl)?;
    let g = kernel.build(&wl)?;
    let (prog, report) = compile_for_arch(&g, arch)?;
    // Full-stack fidelity: serialize to the configuration bitstream and
    // run the decoded program.
    let bytes = marionette_isa::bitstream::encode(&prog);
    let prog = marionette_isa::bitstream::decode(&bytes).expect("bitstream roundtrip");
    let inputs: Vec<(String, Vec<Value>)> = g
        .arrays
        .iter()
        .map(|a| (a.name.clone(), a.init.clone()))
        .collect();
    let r = run(&prog, &arch.tm, &inputs, &[], max_cycles)?;
    let mismatches = check_vs_golden(
        &g,
        &golden,
        |arr| r.memory[arr.0 as usize].clone(),
        |name| r.sinks.get(name).cloned().unwrap_or_default(),
    )?;
    if !mismatches.is_empty() || r.oob_events > 0 {
        return Err(RunnerError::Verification {
            what: format!("{} on {}", kernel.name(), arch.name),
            first: mismatches
                .first()
                .map(|m| m.to_string())
                .unwrap_or_else(|| format!("{} out-of-bounds accesses", r.oob_events)),
            count: mismatches.len(),
        });
    }
    Ok(KernelRun {
        arch: arch.short.to_string(),
        kernel: kernel.short().to_string(),
        cycles: r.stats.cycles,
        stats: r.stats,
        report,
        verified: true,
    })
}

/// Runs every kernel × architecture point of a sweep across worker
/// threads, returning results in row-major order (for each kernel, every
/// architecture in sequence) — exactly the order a serial nested loop
/// would produce.
///
/// Thread count comes from [`sweep_threads`] (`MARIONETTE_THREADS=1`
/// forces serial execution). Each point is an independent simulation, so
/// results are identical to the serial sweep in any case; on error the
/// first failing point in row-major order is reported.
///
/// # Errors
/// Returns the first [`RunnerError`] in row-major point order.
pub fn run_grid(
    kernels: &[Box<dyn Kernel>],
    archs: &[Architecture],
    scale: Scale,
    seed: u64,
    max_cycles: u64,
) -> Result<Vec<KernelRun>, RunnerError> {
    let points: Vec<(&dyn Kernel, &Architecture)> = kernels
        .iter()
        .flat_map(|k| archs.iter().map(move |a| (k.as_ref(), a)))
        .collect();
    let results = par_map(points, sweep_threads(), |(k, a)| {
        run_kernel(k, a, scale, seed, max_cycles)
    });
    results.into_iter().collect()
}
