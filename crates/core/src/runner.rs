//! End-to-end kernel execution: workload → CDFG → compile → bitstream
//! round-trip → cycle-level simulation → golden verification.
//!
//! Independent kernel × architecture points are embarrassingly parallel;
//! [`run_grid`] fans a whole sweep out across OS threads (see
//! [`crate::parallel`]) and is the engine behind every figure's
//! experiment and the `bench_sim` perf harness.

use crate::parallel::{par_map, sweep_threads};
use marionette_arch::Architecture;
use marionette_cdfg::value::Value;
use marionette_cdfg::Cdfg;
use marionette_compiler::{
    compile_with_timing_and_faults, explore_chain_with_faults, finalize_explored_with_faults,
    select_best, CompileReport, CostModel, PartitionMap, PlaceError, SearchBudget,
};
use marionette_isa::MachineProgram;
use marionette_kernels::traits::{Golden, Kernel, KernelError, Scale};
use marionette_kernels::verify::check_vs_golden;
use marionette_sim::{
    run_full, run_full_traced, run_lanes_full, run_with_engine, EngineKind, FaultSet, LaneSpec,
    RunResult, RunStats, SimError, Tracer,
};
use std::fmt;

/// Default cycle budget per run.
pub const DEFAULT_MAX_CYCLES: u64 = 4_000_000_000;

/// One kernel × architecture measurement.
#[derive(Clone, Debug)]
pub struct KernelRun {
    /// Architecture short tag.
    pub arch: String,
    /// Kernel short tag.
    pub kernel: String,
    /// Total cycles to completion.
    pub cycles: u64,
    /// Full run statistics.
    pub stats: RunStats,
    /// Compilation report (group decisions, route stats).
    pub report: CompileReport,
    /// Outputs matched the golden reference.
    pub verified: bool,
}

/// Runner failure.
#[derive(Debug)]
pub enum RunnerError {
    /// The kernel could not build its program or golden reference from
    /// the workload (missing size/array/output name).
    Kernel(KernelError),
    /// Compilation failed.
    Compile(PlaceError),
    /// Simulation failed.
    Sim(SimError),
    /// Outputs diverged from the golden reference.
    Verification {
        /// Which kernel/architecture failed.
        what: String,
        /// First mismatch description.
        first: String,
        /// Mismatch count (capped).
        count: usize,
    },
    /// A lane's workload compiles to a different program than lane 0's,
    /// so the lanes cannot share one configuration bitstream (the kernel
    /// bakes workload-dependent constants into the fabric).
    NotBatchable {
        /// Which kernel/architecture refused batching.
        what: String,
        /// First lane whose program diverged from lane 0's.
        lane: usize,
    },
}

impl fmt::Display for RunnerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunnerError::Kernel(e) => write!(f, "kernel: {e}"),
            RunnerError::Compile(e) => write!(f, "compile: {e}"),
            RunnerError::Sim(e) => write!(f, "simulate: {e}"),
            RunnerError::Verification { what, first, count } => {
                write!(f, "{what}: {count} mismatches, first: {first}")
            }
            RunnerError::NotBatchable { what, lane } => {
                write!(
                    f,
                    "{what}: lane {lane} compiles to a different program than \
                     lane 0 (workload-dependent constants); not lane-batchable"
                )
            }
        }
    }
}

impl std::error::Error for RunnerError {}

impl From<KernelError> for RunnerError {
    fn from(e: KernelError) -> Self {
        RunnerError::Kernel(e)
    }
}

impl From<PlaceError> for RunnerError {
    fn from(e: PlaceError) -> Self {
        RunnerError::Compile(e)
    }
}

impl From<SimError> for RunnerError {
    fn from(e: SimError) -> Self {
        RunnerError::Sim(e)
    }
}

/// Compiles `g` for `arch`.
///
/// With [`marionette_compiler::SearchBudget::Off`] (the default on every
/// preset) this is the legacy one-shot pipeline — bit-compatible with
/// the seed mappings. With a nonzero budget the annealing restart chains
/// of the mapping explorer are fanned out across worker threads (see
/// [`crate::parallel::par_map`]) and combined with the explorer's
/// deterministic best-of-N selection, so the result is identical to a
/// serial [`marionette_compiler::compile_with_timing`] call.
///
/// # Errors
/// Returns [`PlaceError`] when the program cannot fit on the fabric.
pub fn compile_for_arch(
    g: &Cdfg,
    arch: &Architecture,
) -> Result<(MachineProgram, CompileReport), PlaceError> {
    compile_for_arch_with_faults(g, arch, &FaultSet::none())
}

/// Fault-aware variant of [`compile_for_arch`]: dead PEs are masked out
/// of placement, dead links out of routing, and flaky links are
/// cost-penalized by the explorer and the rip-up router. An empty fault
/// set is bit-identical to [`compile_for_arch`].
///
/// # Errors
/// Returns [`PlaceError`] when the program cannot fit on, or be routed
/// across, the live fabric.
pub fn compile_for_arch_with_faults(
    g: &Cdfg,
    arch: &Architecture,
    faults: &FaultSet,
) -> Result<(MachineProgram, CompileReport), PlaceError> {
    let seeds = arch.opts.search.chain_seeds();
    if seeds.len() <= 1 {
        return compile_with_timing_and_faults(g, &arch.opts, &arch.tm, faults);
    }
    let cm = CostModel::from_timing(&arch.tm);
    let chains = par_map(seeds, sweep_threads(), |s| {
        explore_chain_with_faults(g, &arch.opts, &cm, s, faults)
    });
    let mut ok = Vec::with_capacity(chains.len());
    for c in chains {
        ok.push(c?);
    }
    finalize_explored_with_faults(g, &arch.opts, &cm, select_best(ok), faults)
}

/// Region-scoped variant of [`compile_for_arch`]: placement and routing
/// are confined to partition `idx` of `map`, with the rest of the host
/// fabric rendered as an exclusion mask over the fault-avoidance
/// machinery ([`PartitionMap::exclusion_mask`]) — the explorer's
/// legality caps and the rip-up router treat out-of-region tiles and
/// boundary-crossing links exactly like dead resources. `arch` must be
/// instantiated on the **host** fabric dims (this is the fabric-view
/// compile path; tenancy's solo-equivalent path instead compiles on the
/// partition's own dims, see `marionette_lang`'s tenancy driver).
///
/// # Errors
/// Returns [`PlaceError`] when the program cannot fit inside, or be
/// routed within, the region.
pub fn compile_for_arch_in_region(
    g: &Cdfg,
    arch: &Architecture,
    map: &PartitionMap,
    idx: usize,
) -> Result<(MachineProgram, CompileReport), PlaceError> {
    compile_for_arch_with_faults(g, arch, &map.exclusion_mask(idx))
}

/// Compiles and simulates `kernel` on `arch`, verifying outputs against
/// the golden reference. The ISA bitstream round-trip is exercised on
/// every call: the simulator runs the *decoded* program.
///
/// # Errors
/// Returns [`RunnerError`] on compile/simulation failure or output
/// mismatch.
pub fn run_kernel(
    kernel: &dyn Kernel,
    arch: &Architecture,
    scale: Scale,
    seed: u64,
    max_cycles: u64,
) -> Result<KernelRun, RunnerError> {
    run_kernel_with_engine(kernel, arch, scale, seed, max_cycles, EngineKind::default())
}

/// [`run_kernel`] with an explicit simulator [`EngineKind`]. Both
/// engines are bit-identical (pinned by
/// `crates/core/tests/engine_equivalence.rs`); the selector exists so
/// differential harnesses and the `--engine` CLI axes can pin either
/// core explicitly.
///
/// # Errors
/// Returns [`RunnerError`] on compile/simulation failure or output
/// mismatch.
pub fn run_kernel_with_engine(
    kernel: &dyn Kernel,
    arch: &Architecture,
    scale: Scale,
    seed: u64,
    max_cycles: u64,
    engine: EngineKind,
) -> Result<KernelRun, RunnerError> {
    let wl = kernel.workload(scale, seed);
    let golden = kernel.golden(&wl)?;
    let g = kernel.build(&wl)?;
    let (prog, report) = compile_for_arch(&g, arch)?;
    // Full-stack fidelity: serialize to the configuration bitstream and
    // run the decoded program.
    let bytes = marionette_isa::bitstream::encode(&prog);
    let prog = marionette_isa::bitstream::decode(&bytes).expect("bitstream roundtrip");
    let inputs: Vec<(String, Vec<Value>)> = g
        .arrays
        .iter()
        .map(|a| (a.name.clone(), a.init.clone()))
        .collect();
    let r = run_with_engine(&prog, &arch.tm, engine, &inputs, &[], max_cycles)?;
    verify_golden(kernel, arch, &g, &golden, &r)?;
    Ok(KernelRun {
        arch: arch.short.to_string(),
        kernel: kernel.short().to_string(),
        cycles: r.stats.cycles,
        stats: r.stats,
        report,
        verified: true,
    })
}

/// [`run_kernel_with_engine`] with a [`Tracer`] recording the
/// cycle-accurate event stream ([`marionette_sim::trace`]). The traced
/// run is bit-identical to the untraced one — same cycles, same stats,
/// same outputs — which `crates/core/tests/trace_plane.rs` pins.
///
/// # Errors
/// Returns [`RunnerError`] on compile/simulation failure or output
/// mismatch.
#[allow(clippy::too_many_arguments)]
pub fn run_kernel_traced(
    kernel: &dyn Kernel,
    arch: &Architecture,
    scale: Scale,
    seed: u64,
    max_cycles: u64,
    engine: EngineKind,
    tracer: &mut Tracer,
) -> Result<KernelRun, RunnerError> {
    let wl = kernel.workload(scale, seed);
    let golden = kernel.golden(&wl)?;
    let g = kernel.build(&wl)?;
    let (prog, report) = compile_for_arch(&g, arch)?;
    let bytes = marionette_isa::bitstream::encode(&prog);
    let prog = marionette_isa::bitstream::decode(&bytes).expect("bitstream roundtrip");
    let inputs: Vec<(String, Vec<Value>)> = g
        .arrays
        .iter()
        .map(|a| (a.name.clone(), a.init.clone()))
        .collect();
    let r = run_full_traced(
        &prog,
        &arch.tm,
        &FaultSet::none(),
        engine,
        &inputs,
        &[],
        max_cycles,
        tracer,
    )?;
    verify_golden(kernel, arch, &g, &golden, &r)?;
    Ok(KernelRun {
        arch: arch.short.to_string(),
        kernel: kernel.short().to_string(),
        cycles: r.stats.cycles,
        stats: r.stats,
        report,
        verified: true,
    })
}

/// Compiles `kernel` **once** and simulates one lane per seed in a
/// single batched pass ([`marionette_sim::run_lanes`]): the machine
/// skeleton and the mapping are shared, only each lane's workload
/// (arrays seeded per lane) differs. Every lane is verified against its
/// own golden reference, so the result vector is bit-identical to
/// calling [`run_kernel`] once per seed — the per-seed graphs of every
/// shipped kernel differ only in array contents at a fixed scale, which
/// is exactly what a lane carries. A lane that deadlocks or exhausts the
/// budget reports its own `Err` without poisoning its neighbours.
///
/// # Errors
/// The outer `Err` covers the shared stages (workload/golden
/// construction, the one compile, the bitstream round-trip); per-lane
/// simulation/verification failures come back in the inner results.
pub fn run_kernel_lanes(
    kernel: &dyn Kernel,
    arch: &Architecture,
    scale: Scale,
    seeds: &[u64],
    max_cycles: u64,
) -> Result<Vec<Result<KernelRun, RunnerError>>, RunnerError> {
    run_kernel_lanes_with_engine(
        kernel,
        arch,
        scale,
        seeds,
        max_cycles,
        EngineKind::default(),
    )
}

/// [`run_kernel_lanes`] with an explicit simulator [`EngineKind`].
///
/// # Errors
/// As [`run_kernel_lanes`]: outer `Err` for the shared stages, inner
/// per-lane errors otherwise.
pub fn run_kernel_lanes_with_engine(
    kernel: &dyn Kernel,
    arch: &Architecture,
    scale: Scale,
    seeds: &[u64],
    max_cycles: u64,
    engine: EngineKind,
) -> Result<Vec<Result<KernelRun, RunnerError>>, RunnerError> {
    if seeds.is_empty() {
        return Ok(Vec::new());
    }
    let mut per_seed = Vec::with_capacity(seeds.len());
    for &seed in seeds {
        let wl = kernel.workload(scale, seed);
        let golden = kernel.golden(&wl)?;
        let g = kernel.build(&wl)?;
        per_seed.push((g, golden));
    }
    let (prog, report) = compile_for_arch(&per_seed[0].0, arch)?;
    let bytes = marionette_isa::bitstream::encode(&prog);
    // All lanes execute lane 0's bitstream, so every other lane's graph
    // must compile to the very same bytes. Kernels that unroll workload
    // values into immediates (e.g. Conv-1d's filter taps) fail this for
    // differing seeds and are rejected up front rather than silently
    // running lane 0's constants against lane i's golden.
    for (lane, (g, _)) in per_seed.iter().enumerate().skip(1) {
        if seeds[lane] == seeds[0] {
            continue; // identical workload, identical program
        }
        let (pi, _) = compile_for_arch(g, arch)?;
        if marionette_isa::bitstream::encode(&pi) != bytes {
            return Err(RunnerError::NotBatchable {
                what: format!("{} on {}", kernel.name(), arch.name),
                lane,
            });
        }
    }
    let prog = marionette_isa::bitstream::decode(&bytes).expect("bitstream roundtrip");
    let lanes: Vec<LaneSpec> = per_seed
        .iter()
        .map(|(g, _)| LaneSpec {
            inputs: g
                .arrays
                .iter()
                .map(|a| (a.name.clone(), a.init.clone()))
                .collect(),
            params: Vec::new(),
        })
        .collect();
    let results = run_lanes_full(
        &prog,
        &arch.tm,
        &FaultSet::none(),
        engine,
        &lanes,
        max_cycles,
    )?;
    Ok(results
        .into_iter()
        .zip(&per_seed)
        .map(|(r, (g, golden))| {
            let r = r?;
            verify_golden(kernel, arch, g, golden, &r)?;
            Ok(KernelRun {
                arch: arch.short.to_string(),
                kernel: kernel.short().to_string(),
                cycles: r.stats.cycles,
                stats: r.stats,
                report: report.clone(),
                verified: true,
            })
        })
        .collect())
}

/// Bit-compares one run against the kernel's golden reference (arrays,
/// sink streams, and the out-of-bounds event count).
fn verify_golden(
    kernel: &dyn Kernel,
    arch: &Architecture,
    g: &Cdfg,
    golden: &Golden,
    r: &RunResult,
) -> Result<(), RunnerError> {
    let mismatches = check_vs_golden(
        g,
        golden,
        |arr| r.memory[arr.0 as usize].clone(),
        |name| r.sinks.get(name).cloned().unwrap_or_default(),
    )?;
    if !mismatches.is_empty() || r.oob_events > 0 {
        return Err(RunnerError::Verification {
            what: format!("{} on {}", kernel.name(), arch.name),
            first: mismatches
                .first()
                .map(|m| m.to_string())
                .unwrap_or_else(|| format!("{} out-of-bounds accesses", r.oob_events)),
            count: mismatches.len(),
        });
    }
    Ok(())
}

/// One kernel × architecture measurement on a faulted fabric.
#[derive(Clone, Debug)]
pub struct FaultKernelRun {
    /// The faulted resource (fault-spec syntax, e.g. `pe:1,2`) that
    /// wedged the fault-oblivious bitstream, when one did.
    pub wedged: Option<String>,
    /// Whether the measurement comes from a fault-aware remap rather
    /// than the original mapping.
    pub remapped: bool,
    /// The verified measurement.
    pub run: KernelRun,
}

/// Runs `kernel` on `arch` with `faults` injected, self-healing by remap
/// when the fault-oblivious bitstream touches a dead resource:
///
/// 1. compile normally and simulate with the faults injected;
/// 2. on a typed [`SimError::Fault`], recompile with the faulty
///    resources masked (forcing the annealing explorer on, so operators
///    can move off dead tiles) and simulate the remap;
/// 3. either way, bit-verify the surviving run against the golden
///    reference — the same oracle [`run_kernel`] applies.
///
/// With an empty `faults` this is bit-identical to [`run_kernel`]. A
/// remap that still cannot fit surfaces as [`RunnerError::Compile`] —
/// the typed "remap infeasible" outcome degradation sweeps count as a
/// failure (the healthy compile of every shipped kernel × preset
/// succeeds, so a compile error here always means the remap).
///
/// # Errors
/// Returns [`RunnerError`] on compile/simulation failure (of whichever
/// pipeline survives fault screening) or output mismatch.
pub fn run_kernel_faulted(
    kernel: &dyn Kernel,
    arch: &Architecture,
    scale: Scale,
    seed: u64,
    max_cycles: u64,
    faults: &FaultSet,
) -> Result<FaultKernelRun, RunnerError> {
    run_kernel_faulted_with_engine(
        kernel,
        arch,
        scale,
        seed,
        max_cycles,
        faults,
        EngineKind::default(),
    )
}

/// [`run_kernel_faulted`] with an explicit simulator [`EngineKind`] —
/// fault delivery (dead-resource screening, flaky-link stretches, the
/// self-healing remap) is engine-independent, and this selector lets the
/// fault harnesses pin either core.
///
/// # Errors
/// As [`run_kernel_faulted`].
pub fn run_kernel_faulted_with_engine(
    kernel: &dyn Kernel,
    arch: &Architecture,
    scale: Scale,
    seed: u64,
    max_cycles: u64,
    faults: &FaultSet,
    engine: EngineKind,
) -> Result<FaultKernelRun, RunnerError> {
    let wl = kernel.workload(scale, seed);
    let golden = kernel.golden(&wl)?;
    let g = kernel.build(&wl)?;
    let (prog, report) = compile_for_arch(&g, arch)?;
    let bytes = marionette_isa::bitstream::encode(&prog);
    let prog = marionette_isa::bitstream::decode(&bytes).expect("bitstream roundtrip");
    let inputs: Vec<(String, Vec<Value>)> = g
        .arrays
        .iter()
        .map(|a| (a.name.clone(), a.init.clone()))
        .collect();
    let wedged = match run_full(&prog, &arch.tm, faults, engine, &inputs, &[], max_cycles) {
        Ok(r) => {
            verify_golden(kernel, arch, &g, &golden, &r)?;
            return Ok(FaultKernelRun {
                wedged: None,
                remapped: false,
                run: KernelRun {
                    arch: arch.short.to_string(),
                    kernel: kernel.short().to_string(),
                    cycles: r.stats.cycles,
                    stats: r.stats,
                    report,
                    verified: true,
                },
            });
        }
        Err(SimError::Fault { what, .. }) => what,
        Err(e) => return Err(RunnerError::Sim(e)),
    };
    // Self-heal: recompile with the faulty resources masked. Presets
    // that compile one-shot get the default annealing budget — the
    // greedy placer alone cannot rebalance around arbitrary dead tiles.
    let mut healed = arch.clone();
    if !healed.opts.search.is_on() {
        healed.opts.search = SearchBudget::default_on();
    }
    let (prog, report) = compile_for_arch_with_faults(&g, &healed, faults)?;
    let bytes = marionette_isa::bitstream::encode(&prog);
    let prog = marionette_isa::bitstream::decode(&bytes).expect("bitstream roundtrip");
    let r = run_full(&prog, &arch.tm, faults, engine, &inputs, &[], max_cycles)?;
    verify_golden(kernel, arch, &g, &golden, &r)?;
    Ok(FaultKernelRun {
        wedged: Some(wedged),
        remapped: true,
        run: KernelRun {
            arch: arch.short.to_string(),
            kernel: kernel.short().to_string(),
            cycles: r.stats.cycles,
            stats: r.stats,
            report,
            verified: true,
        },
    })
}

/// [`run_kernel_faulted_with_engine`] with a [`Tracer`]: the surviving
/// pipeline (original or self-healed remap) is simulated traced, and a
/// wedged bitstream leaves a `remap after <resource>` marker on the
/// trace's marks track, so a healthy-vs-remapped `trace_diff` can anchor
/// on the heal point.
///
/// # Errors
/// As [`run_kernel_faulted_with_engine`].
#[allow(clippy::too_many_arguments)]
pub fn run_kernel_faulted_traced(
    kernel: &dyn Kernel,
    arch: &Architecture,
    scale: Scale,
    seed: u64,
    max_cycles: u64,
    faults: &FaultSet,
    engine: EngineKind,
    tracer: &mut Tracer,
) -> Result<FaultKernelRun, RunnerError> {
    let wl = kernel.workload(scale, seed);
    let golden = kernel.golden(&wl)?;
    let g = kernel.build(&wl)?;
    let (prog, report) = compile_for_arch(&g, arch)?;
    let bytes = marionette_isa::bitstream::encode(&prog);
    let prog = marionette_isa::bitstream::decode(&bytes).expect("bitstream roundtrip");
    let inputs: Vec<(String, Vec<Value>)> = g
        .arrays
        .iter()
        .map(|a| (a.name.clone(), a.init.clone()))
        .collect();
    let wedged = match run_full_traced(
        &prog,
        &arch.tm,
        faults,
        engine,
        &inputs,
        &[],
        max_cycles,
        tracer,
    ) {
        Ok(r) => {
            verify_golden(kernel, arch, &g, &golden, &r)?;
            return Ok(FaultKernelRun {
                wedged: None,
                remapped: false,
                run: KernelRun {
                    arch: arch.short.to_string(),
                    kernel: kernel.short().to_string(),
                    cycles: r.stats.cycles,
                    stats: r.stats,
                    report,
                    verified: true,
                },
            });
        }
        Err(SimError::Fault { what, .. }) => what,
        Err(e) => return Err(RunnerError::Sim(e)),
    };
    tracer.mark(0, &format!("remap after {wedged}"));
    let mut healed = arch.clone();
    if !healed.opts.search.is_on() {
        healed.opts.search = SearchBudget::default_on();
    }
    let (prog, report) = compile_for_arch_with_faults(&g, &healed, faults)?;
    let bytes = marionette_isa::bitstream::encode(&prog);
    let prog = marionette_isa::bitstream::decode(&bytes).expect("bitstream roundtrip");
    let r = run_full_traced(
        &prog,
        &arch.tm,
        faults,
        engine,
        &inputs,
        &[],
        max_cycles,
        tracer,
    )?;
    verify_golden(kernel, arch, &g, &golden, &r)?;
    Ok(FaultKernelRun {
        wedged: Some(wedged),
        remapped: true,
        run: KernelRun {
            arch: arch.short.to_string(),
            kernel: kernel.short().to_string(),
            cycles: r.stats.cycles,
            stats: r.stats,
            report,
            verified: true,
        },
    })
}

/// Runs every kernel × architecture point of a sweep across worker
/// threads, returning results in row-major order (for each kernel, every
/// architecture in sequence) — exactly the order a serial nested loop
/// would produce.
///
/// Thread count comes from [`sweep_threads`] (`MARIONETTE_THREADS=1`
/// forces serial execution). Each point is an independent simulation, so
/// results are identical to the serial sweep in any case; on error the
/// first failing point in row-major order is reported.
///
/// # Errors
/// Returns the first [`RunnerError`] in row-major point order.
pub fn run_grid(
    kernels: &[Box<dyn Kernel>],
    archs: &[Architecture],
    scale: Scale,
    seed: u64,
    max_cycles: u64,
) -> Result<Vec<KernelRun>, RunnerError> {
    let points: Vec<(&dyn Kernel, &Architecture)> = kernels
        .iter()
        .flat_map(|k| archs.iter().map(move |a| (k.as_ref(), a)))
        .collect();
    let results = par_map(points, sweep_threads(), |(k, a)| {
        run_kernel(k, a, scale, seed, max_cycles)
    });
    results.into_iter().collect()
}
