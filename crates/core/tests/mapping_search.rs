//! Mapping-explorer integration tests: determinism, legality of explored
//! placements on every preset, and a regression pin of the legacy greedy
//! pipeline.

use marionette::arch::{all_presets, Architecture};
use marionette::compiler::{compile, compile_with_timing, SearchBudget};
use marionette::kernels::traits::Scale;
use marionette::net::Mesh;
use marionette::runner::compile_for_arch;

fn build(tag: &str, scale: Scale) -> marionette::cdfg::Cdfg {
    let k = marionette::kernels::by_short(tag).expect("kernel tag");
    let wl = k.workload(scale, 1);
    k.build(&wl).expect("suite kernels build")
}

fn searched(mut a: Architecture, moves: u32, restarts: u32) -> Architecture {
    a.opts.search = SearchBudget::Anneal {
        moves,
        restarts,
        base_seed: 0xA11E,
    };
    a
}

/// FNV-1a over the canonical bitstream serialization: placements, routes
/// (including every path tile) and configs all land in the hash.
fn mapping_hash(prog: &marionette::isa::MachineProgram) -> u64 {
    let bytes = marionette::isa::bitstream::encode(prog);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[test]
fn same_seed_and_budget_give_identical_placement() {
    for tag in ["CRC", "FFT"] {
        let g = build(tag, Scale::Tiny);
        let arch = searched(marionette::arch::marionette_full(), 400, 2);
        let (p1, r1) = compile_for_arch(&g, &arch).unwrap();
        let (p2, r2) = compile_for_arch(&g, &arch).unwrap();
        assert_eq!(p1, p2, "{tag}: search must be deterministic");
        let (s1, s2) = (r1.search.unwrap(), r2.search.unwrap());
        assert_eq!(s1.seed, s2.seed);
        assert_eq!(s1.best_total, s2.best_total);
        assert_eq!(s1.accepted, s2.accepted);
        // The runner's fanned-out chains and the serial pipeline must
        // pick the same winner.
        let (p3, _) = compile_with_timing(&g, &arch.opts, &arch.tm).unwrap();
        assert_eq!(p1, p3, "{tag}: parallel and serial search disagree");
    }
}

#[test]
fn explored_placements_are_legal_on_all_presets() {
    for arch in all_presets() {
        let arch = searched(arch, 300, 1);
        for tag in ["CRC", "MS", "FFT"] {
            let g = build(tag, Scale::Tiny);
            let (prog, report) = compile_for_arch(&g, &arch).unwrap();
            let what = format!("{tag} on {}", arch.short);
            assert!(prog.validate().is_empty(), "{what}: {:?}", prog.validate());
            assert!(report.search.is_some(), "{what}: search report missing");
            // Every route is a legal mesh walk whose endpoints sit on the
            // producing and consuming tiles.
            let mesh = Mesh::new(prog.rows as usize, prog.cols as usize);
            for (ri, r) in prog.routes.iter().enumerate() {
                assert!(!r.path.is_empty(), "{what}: route {ri} empty path");
                assert_eq!(
                    r.path[0],
                    prog.nodes[r.src as usize].place.tile(),
                    "{what}: route {ri} src tile"
                );
                assert_eq!(
                    *r.path.last().unwrap(),
                    prog.nodes[r.dst as usize].place.tile(),
                    "{what}: route {ri} dst tile"
                );
                assert!(
                    mesh.links_of_path(&r.path).is_some(),
                    "{what}: route {ri} path {:?} is not a legal mesh walk",
                    r.path
                );
            }
        }
    }
}

#[test]
fn searched_mappings_stay_bit_equivalent_to_golden() {
    // The acceptance bar of the explorer: searched placements and
    // rerouted paths change timing only — kernel outputs must still
    // verify bit-for-bit against the golden reference on every preset.
    use marionette::runner::run_kernel;
    for arch in all_presets() {
        let arch = searched(arch, 400, 1);
        for tag in ["CRC", "FFT", "MS"] {
            let k = marionette::kernels::by_short(tag).unwrap();
            let r = run_kernel(k.as_ref(), &arch, Scale::Tiny, 1, 100_000_000)
                .unwrap_or_else(|e| panic!("{tag} on {}: {e}", arch.short));
            assert!(r.verified, "{tag} on {}", arch.short);
            assert!(r.report.search.is_some());
        }
    }
}

#[test]
fn greedy_path_is_pinned_bit_identical() {
    // The legacy pipeline (search off) must reproduce the seed mappings
    // bit for bit: these hashes pin the full bitstream (placements,
    // route paths, configs). If a change to place/route is intentional,
    // regenerate with `cargo test -p marionette greedy_path -- --nocapture`
    // after inspecting the diff.
    let pins: &[(&str, &str, u64)] = &[
        ("CRC", "M", PIN_CRC_M),
        ("CRC", "vN", PIN_CRC_VN),
        ("MS", "M", PIN_MS_M),
        ("MS", "DF", PIN_MS_DF),
        ("GEMM", "M", PIN_GEMM_M),
        ("FFT", "M", PIN_FFT_M),
        ("LDPC", "RT", PIN_LDPC_RT),
        ("ADPCM", "SB", PIN_ADPCM_SB),
    ];
    for &(tag, arch_tag, want) in pins {
        let arch = all_presets()
            .into_iter()
            .find(|a| a.short == arch_tag)
            .unwrap();
        let g = build(tag, Scale::Tiny);
        assert_eq!(
            arch.opts.search,
            SearchBudget::Off,
            "presets must default to the legacy pipeline"
        );
        let (prog, report) = compile(&g, &arch.opts).unwrap();
        assert!(report.search.is_none());
        let h = mapping_hash(&prog);
        println!("pin {tag} {arch_tag}: {h:#018x}");
        assert_eq!(h, want, "{tag} on {arch_tag}: greedy mapping drifted");
    }
}

const PIN_CRC_M: u64 = 0x06979dad232abb5e;
const PIN_CRC_VN: u64 = 0x5cb12b061672aff2;
const PIN_MS_M: u64 = 0xa2234e3ca5494e8f;
const PIN_MS_DF: u64 = 0x282ab479afba381e;
const PIN_GEMM_M: u64 = 0x0b19d9e4158c3fc1;
const PIN_FFT_M: u64 = 0x57121eb24e70a3e8;
const PIN_LDPC_RT: u64 = 0x0bd38adf00ba9bf1;
const PIN_ADPCM_SB: u64 = 0xf5cddd6a1d917c45;
