//! The batched-lane bar: `run_lanes_full` executes N workloads on one
//! machine with a `reset()` between lanes, and every lane must be
//! **bit-identical** to a standalone single-lane run of the same
//! workload — including lanes that follow a lane that busted its cycle
//! budget mid-flight. Any state leaking across a reset shows up here.

use marionette::cdfg::builder::CdfgBuilder;
use marionette::cdfg::value::Value;
use marionette::compiler::compile;
use marionette::kernels::traits::Scale;
use marionette::runner::{run_kernel, run_kernel_lanes, RunnerError};
use marionette::sim::{
    run_full, run_lanes_full, EngineKind, FaultSet, LaneSpec, RunResult, SimError,
};

const MAX_CYCLES: u64 = 500_000_000;

fn assert_runs_identical(tag: &str, a: &RunResult, b: &RunResult) {
    assert_eq!(a.stats, b.stats, "{tag}: stats diverge");
    assert_eq!(a.oob_events, b.oob_events, "{tag}: oob diverges");
    assert_eq!(a.memory.len(), b.memory.len(), "{tag}: array count");
    for (ai, (x, y)) in a.memory.iter().zip(&b.memory).enumerate() {
        assert_eq!(x.len(), y.len(), "{tag}: array #{ai} length");
        for (i, (xv, yv)) in x.iter().zip(y).enumerate() {
            assert!(xv.bit_eq(*yv), "{tag}: array #{ai}[{i}]: {xv} vs {yv}");
        }
    }
    assert_eq!(a.sinks.len(), b.sinks.len(), "{tag}: sink count");
    for (label, x) in &a.sinks {
        let y = &b.sinks[label];
        assert_eq!(x.len(), y.len(), "{tag}: sink {label} length");
        for (i, (xv, yv)) in x.iter().zip(y).enumerate() {
            assert!(xv.bit_eq(*yv), "{tag}: sink {label}[{i}]: {xv} vs {yv}");
        }
    }
}

/// Kernel-level batching: N distinct seeds through `run_kernel_lanes`
/// must reproduce N standalone `run_kernel` calls exactly, for every
/// batch width the bench exposes.
fn assert_kernel_lanes_match_serial(tag: &str, widths: &[usize]) {
    let k = marionette::kernels::by_short(tag).expect("kernel tag");
    let arch = marionette::arch::marionette_full();
    for &n in widths {
        let seeds: Vec<u64> = (40..40 + n as u64).collect();
        let batched = run_kernel_lanes(k.as_ref(), &arch, Scale::Tiny, &seeds, MAX_CYCLES)
            .unwrap_or_else(|e| panic!("{tag} x{n}: batch: {e}"));
        assert_eq!(batched.len(), n);
        for (li, (lane, &seed)) in batched.into_iter().zip(&seeds).enumerate() {
            let lane = lane.unwrap_or_else(|e| panic!("{tag} lane {li}: {e}"));
            let solo = run_kernel(k.as_ref(), &arch, Scale::Tiny, seed, MAX_CYCLES)
                .unwrap_or_else(|e| panic!("{tag} seed {seed}: {e}"));
            assert_eq!(lane.cycles, solo.cycles, "{tag} lane {li}: cycles");
            assert_eq!(lane.stats, solo.stats, "{tag} lane {li}: stats");
            assert!(lane.verified && solo.verified);
        }
    }
}

#[test]
fn mergesort_lanes_match_serial_runs() {
    assert_kernel_lanes_match_serial("MS", &[1, 2, 8]);
}

#[test]
fn crc_lanes_match_serial_runs() {
    assert_kernel_lanes_match_serial("CRC", &[1, 2, 8]);
}

/// Conv-1d unrolls its filter taps into immediates, so two seeds
/// compile to two different programs — batching them must be refused
/// with the typed error, not silently run lane 0's weights.
#[test]
fn immediates_baking_kernel_refuses_cross_seed_batching() {
    let k = marionette::kernels::by_short("CO").expect("kernel tag");
    let arch = marionette::arch::marionette_full();
    let err = run_kernel_lanes(k.as_ref(), &arch, Scale::Tiny, &[1, 2], MAX_CYCLES)
        .expect_err("distinct Conv-1d seeds must not share a bitstream");
    match err {
        RunnerError::NotBatchable { lane, .. } => assert_eq!(lane, 1),
        other => panic!("expected NotBatchable, got {other}"),
    }
    // Identical seeds share one program trivially and must still work.
    let ok = run_kernel_lanes(k.as_ref(), &arch, Scale::Tiny, &[1, 1], MAX_CYCLES).unwrap();
    assert_eq!(ok.len(), 2);
    for lane in ok {
        assert!(lane.unwrap().verified);
    }
}

/// A parameterized sum: `sum = Σ_{i<n} a[i]` with `n` a runtime
/// parameter, so lanes can drive the loop's trip count — including to
/// zero — without recompiling.
fn param_sum_prog() -> (
    marionette::isa::config::MachineProgram,
    marionette::arch::Architecture,
    Vec<(String, Vec<Value>)>,
) {
    let mut b = CdfgBuilder::new("lane_param_sum");
    let data: Vec<i32> = (0..16).map(|i| 3 * i - 7).collect();
    let a = b.array_i32("a", data.len(), &data);
    let n = b.param("n", 4);
    let zero = b.imm(0);
    let out = b.for_range(0, n, &[zero], |b, i, v| {
        let x = b.load(a, i);
        vec![b.add(v[0], x)]
    });
    b.sink("sum", out[0]);
    let g = b.finish();
    let arch = marionette::arch::marionette_full();
    let (prog, _) = compile(&g, &arch.opts).expect("param sum compiles");
    let inputs = vec![(
        "a".to_string(),
        data.iter().map(|&v| Value::I32(v)).collect(),
    )];
    (prog, arch, inputs)
}

fn lane(inputs: &[(String, Vec<Value>)], n: i32) -> LaneSpec {
    LaneSpec {
        inputs: inputs.to_vec(),
        params: vec![("n".to_string(), Value::I32(n))],
    }
}

/// Per-lane parameter overrides, including a zero-trip loop, must match
/// standalone runs bit for bit on both engines.
#[test]
fn param_lanes_including_zero_trip_match_serial() {
    let (prog, arch, inputs) = param_sum_prog();
    let trips = [4i32, 0, 16, 1, 0, 9];
    let lanes: Vec<LaneSpec> = trips.iter().map(|&n| lane(&inputs, n)).collect();
    for engine in [EngineKind::Wheel, EngineKind::Heap] {
        let batched = run_lanes_full(
            &prog,
            &arch.tm,
            &FaultSet::none(),
            engine,
            &lanes,
            MAX_CYCLES,
        )
        .expect("machine constructs");
        for (li, (r, spec)) in batched.iter().zip(&lanes).enumerate() {
            let r = r.as_ref().unwrap_or_else(|e| panic!("lane {li}: {e}"));
            let solo = run_full(
                &prog,
                &arch.tm,
                &FaultSet::none(),
                engine,
                &spec.inputs,
                &spec.params,
                MAX_CYCLES,
            )
            .unwrap_or_else(|e| panic!("solo n={}: {e}", trips[li]));
            assert_runs_identical(&format!("{engine} lane {li} (n={})", trips[li]), r, &solo);
            // The zero-trip lanes really must sum nothing.
            if trips[li] == 0 {
                assert!(
                    r.sinks["sum"].iter().all(|v| v.bit_eq(Value::I32(0))),
                    "zero-trip lane {li} produced a nonzero sum"
                );
            }
        }
    }
}

/// A lane that busts its cycle budget mid-flight leaves arbitrary
/// in-flight state behind; the reset before the next lane must scrub
/// all of it. The wedged lane reports its typed error, neighbours stay
/// bit-identical to standalone runs.
#[test]
fn wedged_lane_does_not_poison_its_neighbours() {
    let (prog, arch, inputs) = param_sum_prog();
    // Find a budget that lets n=4 finish but wedges n=16 mid-run.
    let short = run_full(
        &prog,
        &arch.tm,
        &FaultSet::none(),
        EngineKind::Wheel,
        &inputs,
        &[("n".to_string(), Value::I32(4))],
        MAX_CYCLES,
    )
    .expect("n=4 runs")
    .stats
    .cycles;
    let budget = short + 2; // enough for n=4, nowhere near n=16
    let lanes = [lane(&inputs, 4), lane(&inputs, 16), lane(&inputs, 4)];
    for engine in [EngineKind::Wheel, EngineKind::Heap] {
        let batched = run_lanes_full(&prog, &arch.tm, &FaultSet::none(), engine, &lanes, budget)
            .expect("machine constructs");
        assert_eq!(batched.len(), 3);
        assert_eq!(
            batched[1].as_ref().err(),
            Some(&SimError::CycleLimit { limit: budget }),
            "{engine}: the oversize lane must bust its budget"
        );
        let solo = run_full(
            &prog,
            &arch.tm,
            &FaultSet::none(),
            engine,
            &inputs,
            &[("n".to_string(), Value::I32(4))],
            budget,
        )
        .expect("n=4 fits the budget");
        for li in [0usize, 2] {
            let r = batched[li]
                .as_ref()
                .unwrap_or_else(|e| panic!("{engine} lane {li}: {e}"));
            assert_runs_identical(&format!("{engine} lane {li} after wedge"), r, &solo);
        }
    }
}

/// Fault screening happens at machine construction, before any lane
/// runs: a dead resource under the mapping is one outer error, not N
/// per-lane copies.
#[test]
fn dead_resource_is_an_outer_error_for_the_whole_batch() {
    let (prog, arch, inputs) = param_sum_prog();
    let mut faults = FaultSet::new(arch.opts.rows, arch.opts.cols);
    faults.add("pe:0,0".parse().unwrap()).unwrap();
    let lanes = [lane(&inputs, 4), lane(&inputs, 2)];
    let err = run_lanes_full(
        &prog,
        &arch.tm,
        &faults,
        EngineKind::Wheel,
        &lanes,
        MAX_CYCLES,
    )
    .expect_err("anchored program must wedge on the dead anchor tile");
    match err {
        SimError::Fault { what, .. } => assert_eq!(what, "pe:0,0"),
        other => panic!("expected a typed fault, got {other}"),
    }
}
