//! The trace plane's contract: tracing is an observer, never an actor.
//!
//! A traced run must be bit-identical to the untraced run it observes
//! (same cycles, same full stats), the exported Chrome trace JSON must
//! be byte-for-byte deterministic for a fixed seed + engine, both event
//! cores must emit the same trace, and the committed example trace in
//! `examples/traces/` must validate against the schema documented in
//! `docs/OBSERVABILITY.md`.

use marionette::arch::marionette_full;
use marionette::kernels::by_short;
use marionette::kernels::traits::Scale;
use marionette::runner::{run_kernel_traced, run_kernel_with_engine};
use marionette::sim::{trace, EngineKind, Tracer};

const MAX_CYCLES: u64 = 500_000_000;

/// Tracing must not perturb the simulation: the traced run reports the
/// same cycles and the same full stats (every per-PE, per-group, and
/// per-route counter) as the untraced run.
#[test]
fn traced_run_is_bit_identical_to_untraced() {
    let k = by_short("CRC").expect("kernel tag");
    let arch = marionette_full();
    for engine in [EngineKind::Wheel, EngineKind::Heap] {
        let plain = run_kernel_with_engine(k.as_ref(), &arch, Scale::Tiny, 7, MAX_CYCLES, engine)
            .expect("untraced run");
        let mut tracer = Tracer::new();
        let traced = run_kernel_traced(
            k.as_ref(),
            &arch,
            Scale::Tiny,
            7,
            MAX_CYCLES,
            engine,
            &mut tracer,
        )
        .expect("traced run");
        assert_eq!(plain.cycles, traced.cycles, "{engine}: cycles diverge");
        assert_eq!(plain.stats, traced.stats, "{engine}: stats diverge");
        assert!(traced.verified, "{engine}: traced run must still verify");
        assert!(!tracer.is_empty(), "{engine}: tracer saw no events");
    }
}

/// Same kernel, seed, and engine ⇒ byte-identical trace JSON. The trace
/// is evidence; it must not wobble between runs.
#[test]
fn trace_json_is_deterministic() {
    let k = by_short("CRC").expect("kernel tag");
    let arch = marionette_full();
    let dump = || {
        let mut tracer = Tracer::new();
        run_kernel_traced(
            k.as_ref(),
            &arch,
            Scale::Tiny,
            7,
            MAX_CYCLES,
            EngineKind::Wheel,
            &mut tracer,
        )
        .expect("traced run");
        tracer.to_chrome_json()
    };
    let (a, b) = (dump(), dump());
    assert_eq!(a, b, "same seed + engine must produce identical bytes");
}

/// The two event cores are observationally identical, so they must emit
/// the same trace — the cycle-level schedule, not just the end state.
#[test]
fn heap_and_wheel_traces_are_identical() {
    let k = by_short("CRC").expect("kernel tag");
    let arch = marionette_full();
    let dump = |engine| {
        let mut tracer = Tracer::new();
        run_kernel_traced(
            k.as_ref(),
            &arch,
            Scale::Tiny,
            7,
            MAX_CYCLES,
            engine,
            &mut tracer,
        )
        .expect("traced run");
        tracer.to_chrome_json()
    };
    assert_eq!(
        dump(EngineKind::Wheel),
        dump(EngineKind::Heap),
        "engines must trace identically"
    );
}

/// A fresh trace must round-trip through the parser the trace tooling
/// uses, with every track and event intact.
#[test]
fn fresh_trace_parses_and_attributes_stalls() {
    let k = by_short("MS").expect("kernel tag");
    let arch = marionette_full();
    let mut tracer = Tracer::new();
    run_kernel_traced(
        k.as_ref(),
        &arch,
        Scale::Tiny,
        7,
        MAX_CYCLES,
        EngineKind::Wheel,
        &mut tracer,
    )
    .expect("traced run");
    let parsed = trace::parse(&tracer.to_chrome_json()).expect("fresh trace parses");
    assert_eq!(parsed.events.len(), tracer.len());
    assert!(parsed.last_cycle() > 0);
    let uniq: std::collections::HashSet<&String> = parsed.tracks.iter().collect();
    assert_eq!(uniq.len(), parsed.tracks.len(), "duplicate track names");
    assert_eq!(parsed.stall_by_track().len(), parsed.tracks.len());
}

/// The committed example trace (the `crc` example program on the 4×4 M
/// preset, regenerated via `marc examples/crc.mar --presets M --fabric
/// 4x4 --trace ...`) must validate against the documented schema: the
/// envelope, the metadata/track discipline, and the event grammar are
/// all enforced by [`trace::parse`].
#[test]
fn committed_example_trace_validates_against_schema() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/traces/crc_M_4x4.trace.json"
    );
    let text = std::fs::read_to_string(path).expect("committed example trace exists");
    let parsed = trace::parse(&text).unwrap_or_else(|e| panic!("example trace invalid: {e}"));
    assert!(!parsed.events.is_empty(), "example trace has no events");
    // The documented track families a healthy M-preset run exercises
    // must all be present (tracks materialize on first use, so a run
    // with no group switches or remap marks has no ccu/marks track).
    for needle in ["pe 0,0 data", "pe 0,0 ctrl", "link ", "mem "] {
        assert!(
            parsed.tracks.iter().any(|t| t.contains(needle)),
            "no `{needle}` track in {:?}",
            parsed.tracks
        );
    }
    for counter in ["queue depth", "flits in flight"] {
        assert!(
            parsed.tracks.iter().any(|t| t == counter),
            "missing counter track `{counter}`"
        );
    }
    // Every event cites a real track, and time never runs backwards
    // past the recorded end of the run.
    let last = parsed.last_cycle();
    for e in &parsed.events {
        assert!((e.track as usize) < parsed.tracks.len());
        assert!(e.ts + e.dur <= last);
    }
}
