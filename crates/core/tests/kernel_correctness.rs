//! Every kernel on every architecture must produce golden-identical
//! outputs: the architectures differ in *timing*, never in *function*.

use marionette::arch;
use marionette::kernels::traits::Scale;
use marionette::runner::run_kernel;

const MAX: u64 = 500_000_000;

fn all_archs() -> Vec<marionette::arch::Architecture> {
    arch::all_presets()
}

fn check_all(tag: &str, scale: Scale, seed: u64) {
    let k = marionette::kernels::by_short(tag).expect("kernel");
    for a in all_archs() {
        let r = run_kernel(k.as_ref(), &a, scale, seed, MAX)
            .unwrap_or_else(|e| panic!("{tag} on {}: {e}", a.name));
        assert!(r.verified);
        assert!(r.cycles > 0);
    }
}

#[test]
fn merge_sort_everywhere() {
    check_all("MS", Scale::Small, 101);
}

#[test]
fn fft_everywhere() {
    check_all("FFT", Scale::Small, 102);
}

#[test]
fn viterbi_everywhere() {
    check_all("VI", Scale::Small, 103);
}

#[test]
fn nw_everywhere() {
    check_all("NW", Scale::Small, 104);
}

#[test]
fn hough_everywhere() {
    check_all("HT", Scale::Small, 105);
}

#[test]
fn crc_everywhere() {
    check_all("CRC", Scale::Small, 106);
}

#[test]
fn adpcm_everywhere() {
    check_all("ADPCM", Scale::Small, 107);
}

#[test]
fn scd_everywhere() {
    check_all("SCD", Scale::Small, 108);
}

#[test]
fn ldpc_everywhere() {
    check_all("LDPC", Scale::Small, 109);
}

#[test]
fn gemm_everywhere() {
    check_all("GEMM", Scale::Small, 110);
}

#[test]
fn conv1d_everywhere() {
    check_all("CO", Scale::Small, 111);
}

#[test]
fn sigmoid_everywhere() {
    check_all("SI", Scale::Small, 112);
}

#[test]
fn gray_everywhere() {
    check_all("GP", Scale::Small, 113);
}

#[test]
fn seeds_change_workloads_not_correctness() {
    let k = marionette::kernels::by_short("CRC").unwrap();
    let a = arch::marionette_full();
    let r1 = run_kernel(k.as_ref(), &a, Scale::Tiny, 1, MAX).unwrap();
    let r2 = run_kernel(k.as_ref(), &a, Scale::Tiny, 2, MAX).unwrap();
    assert!(r1.verified && r2.verified);
}
