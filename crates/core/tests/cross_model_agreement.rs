//! Cross-model agreement on randomly generated structured programs: the
//! sequential reference interpreter (both steering modes) and the
//! cycle-level simulator (several timing models) must compute identical
//! results — the strongest end-to-end check of the shared operator
//! semantics.

use marionette::cdfg::builder::CdfgBuilder;
use marionette::cdfg::interp::{interpret, ExecMode};
use marionette::cdfg::value::Value;
use marionette::cdfg::Cdfg;
use marionette::compiler::{compile, CompileOptions, CtrlPlacement};
use marionette::sim::{run, TimingModel};
use proptest::prelude::*;

/// A tiny deterministic program generator: nested counted loops with
/// branches, accumulators and array traffic, driven by a shape vector.
fn gen_program(shape: &[u8]) -> Cdfg {
    let mut b = CdfgBuilder::new("rand");
    let n = 4 + (shape.first().copied().unwrap_or(0) % 5) as i32; // 4..8
    let arr_init: Vec<i32> = (0..16).map(|i| (i * 7 + 3) % 23 - 11).collect();
    let a = b.array_i32("a", 16, &arr_init);
    let out = b.array_i32("out", 16, &[]);
    b.mark_output(out);
    let s0 = shape.get(1).copied().unwrap_or(0);
    let s1 = shape.get(2).copied().unwrap_or(0);
    let s2 = shape.get(3).copied().unwrap_or(0);
    let zero = b.imm(0);
    let outer = b.for_range(0, n, &[zero], |b, i, v| {
        let x = b.load(a, i);
        // optional inner loop
        let acc = if s0 % 2 == 0 {
            let inner = b.for_range(0, (s1 % 3) as i32 + 1, &[v[0]], |b, j, w| {
                let t = b.mul(x, j);
                vec![b.add(w[0], t)]
            });
            inner[0]
        } else {
            b.add(v[0], x)
        };
        // optional branch
        let res = if s1 % 2 == 0 {
            let c = b.gt(x, (s2 as i32 % 7 - 3).into());
            let r = b.if_else(
                c,
                |b| vec![b.add(acc, 1.into())],
                |b| vec![b.sub(acc, 2.into())],
            );
            r[0]
        } else {
            acc
        };
        b.store(out, i, res);
        vec![res]
    });
    b.sink("total", outer[0]);
    b.finish()
}

fn run_sim(g: &Cdfg, tm: &TimingModel, opts: &CompileOptions) -> (Vec<Value>, Value) {
    let (prog, _) = compile(g, opts).expect("compiles");
    let inputs: Vec<(String, Vec<Value>)> = g
        .arrays
        .iter()
        .map(|a| (a.name.clone(), a.init.clone()))
        .collect();
    let r = run(&prog, tm, &inputs, &[], 50_000_000).expect("simulates");
    let out_idx = prog.arrays.iter().position(|a| a.name == "out").unwrap();
    (r.memory[out_idx].clone(), r.sinks.get("total").unwrap()[0])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn interpreter_and_simulator_agree(shape in proptest::collection::vec(any::<u8>(), 4)) {
        let g = gen_program(&shape);
        let di = interpret(&g, ExecMode::Dropping, &[]).expect("dropping");
        let pi = interpret(&g, ExecMode::Predicated, &[]).expect("predicated");
        let out_id = g.array_by_name("out").unwrap();
        prop_assert_eq!(di.memory.array(out_id), pi.memory.array(out_id));
        prop_assert_eq!(di.scalar("total").unwrap(), pi.scalar("total").unwrap());

        // Marionette timing model (dropping semantics).
        let tm = TimingModel::ideal("m");
        let (mem_m, total_m) = run_sim(&g, &tm, &CompileOptions::marionette_4x4());
        prop_assert_eq!(&mem_m[..], di.memory.array(out_id));
        prop_assert!(total_m.bit_eq(di.scalar("total").unwrap()));

        // Predicated, exclusive von-Neumann-style model.
        let mut tv = TimingModel::ideal("vn");
        tv.predicated_branches = true;
        tv.exclusive_groups = true;
        tv.group_switch_cost = 8;
        tv.ctrl_parallel = false;
        let mut opts = CompileOptions::marionette_4x4();
        opts.ctrl = CtrlPlacement::PeSlots;
        opts.agile = false;
        let (mem_v, total_v) = run_sim(&g, &tv, &opts);
        prop_assert_eq!(&mem_v[..], di.memory.array(out_id));
        prop_assert!(total_v.bit_eq(di.scalar("total").unwrap()));
    }
}

#[test]
fn zero_trip_and_single_trip_edges() {
    // Loop bounds of 0 and 1 exercise the guard/bypass machinery.
    for n in [0i32, 1, 2] {
        let mut b = CdfgBuilder::new("edge");
        let zero = b.imm(0);
        let o = b.for_range(0, n, &[zero], |b, i, v| vec![b.add(v[0], i)]);
        b.sink("s", o[0]);
        let g = b.finish();
        let di = interpret(&g, ExecMode::Dropping, &[]).unwrap();
        let tm = TimingModel::ideal("m");
        let (prog, _) = compile(&g, &CompileOptions::marionette_4x4()).unwrap();
        let r = run(&prog, &tm, &[], &[], 1_000_000).unwrap();
        assert_eq!(
            r.sinks.get("s").unwrap()[0],
            di.scalar("s").unwrap(),
            "n={n}"
        );
    }
}
