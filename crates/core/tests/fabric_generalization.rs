//! Fabric-geometry generalization tests: the R×C stack at 4×4 must be
//! bit-identical to the legacy 4×4-pinned path, the geometry-derived
//! timing must reproduce the paper's constants, and kernel mappings must
//! stay legal and verified on fabrics larger than the paper's.

use marionette::arch::{self, FabricDims};
use marionette::compiler::{compile, CompileOptions};
use marionette::kernels::traits::Scale;
use marionette::runner::run_kernel;

fn build(tag: &str, scale: Scale) -> marionette::cdfg::Cdfg {
    let k = marionette::kernels::by_short(tag).expect("kernel tag");
    let wl = k.workload(scale, 1);
    k.build(&wl).expect("suite kernels build")
}

#[test]
fn rxc_4x4_compiles_bit_identically_to_legacy_on_all_presets() {
    // The regression bar of the generalization: `marionette_rxc(4, 4)`
    // presets must produce byte-identical bitstreams to the legacy
    // `marionette_4x4` constructors on every preset.
    assert_eq!(
        CompileOptions::marionette_rxc(4, 4),
        CompileOptions::marionette_4x4()
    );
    let legacy = arch::all_presets();
    let rxc = arch::all_presets_on(FabricDims::new(4, 4));
    assert_eq!(legacy.len(), 9);
    let g = build("CRC", Scale::Tiny);
    for (a, b) in legacy.iter().zip(&rxc) {
        assert_eq!(a.short, b.short);
        assert_eq!(a.opts, b.opts, "{}: mapping policy drifted", a.short);
        assert_eq!(a.tm, b.tm, "{}: timing model drifted", a.short);
        let (pa, _) = compile(&g, &a.opts).unwrap();
        let (pb, _) = compile(&g, &b.opts).unwrap();
        assert_eq!(
            marionette::isa::bitstream::encode(&pa),
            marionette::isa::bitstream::encode(&pb),
            "{}: bitstream drifted between legacy and rxc(4,4)",
            a.short
        );
    }
}

#[test]
fn derived_timing_reproduces_the_paper_at_4x4_and_scales_beyond() {
    let d4 = FabricDims::paper();
    assert_eq!(arch::ccu_switch_cycles(d4), 12, "the historical CCU_SWITCH");
    assert_eq!(arch::ccu_dyn_cycles(d4), 10, "the historical CCU_DYN");
    assert_eq!(arch::activation_detour_cycles(d4), 6);
    // Centralized round trips scale with the corner distance; Marionette's
    // proactive switch and the host round trip do not.
    for (dims, switch) in [
        (FabricDims::new(6, 6), 20),
        (FabricDims::new(8, 8), 28),
        (FabricDims::new(4, 6), 16),
    ] {
        assert_eq!(arch::ccu_switch_cycles(dims), switch, "{dims}");
        assert_eq!(
            arch::von_neumann_pe_on(dims).tm.group_switch_cost,
            switch,
            "{dims}"
        );
        assert_eq!(arch::marionette_pe_on(dims).tm.group_switch_cost, 1);
        assert_eq!(arch::softbrain_on(dims).tm.group_switch_cost, 30);
    }
}

#[test]
fn kernel_mappings_verify_on_larger_and_nonsquare_fabrics() {
    // Kernels are written against no particular fabric: any geometry at
    // least as large as the paper's 4×4 must place, route, simulate and
    // bit-verify against the golden reference.
    for dims in [
        FabricDims::new(6, 6),
        FabricDims::new(4, 6),
        FabricDims::new(8, 8),
    ] {
        for arch in [
            arch::marionette_full_on(dims),
            arch::von_neumann_pe_on(dims),
        ] {
            for tag in ["CRC", "MS"] {
                let k = marionette::kernels::by_short(tag).unwrap();
                let r = run_kernel(k.as_ref(), &arch, Scale::Tiny, 1, 100_000_000)
                    .unwrap_or_else(|e| panic!("{tag} on {} at {dims}: {e}", arch.short));
                assert!(r.verified, "{tag} on {} at {dims}", arch.short);
            }
        }
    }
}

#[test]
fn routes_stay_inside_the_declared_fabric_on_nonsquare_meshes() {
    // Placement and routing must respect non-square bounds: every route
    // of a 4×6-compiled program is a legal walk of the 4×6 mesh (indices
    // that would be legal on 6×4 but not 4×6 get caught here).
    let g = build("GEMM", Scale::Tiny);
    for dims in [FabricDims::new(4, 6), FabricDims::new(6, 4)] {
        let arch = arch::marionette_full_on(dims);
        let (prog, _) = compile(&g, &arch.opts).unwrap();
        assert_eq!(
            (prog.rows as usize, prog.cols as usize),
            (dims.rows, dims.cols)
        );
        let mesh = marionette::net::Mesh::new(dims.rows, dims.cols);
        for (ri, r) in prog.routes.iter().enumerate() {
            assert!(
                mesh.links_of_path(&r.path).is_some(),
                "{dims}: route {ri} path {:?} is not a legal walk",
                r.path
            );
            for &t in &r.path {
                assert!((t as usize) < dims.pe_count(), "{dims}: tile {t} off-grid");
            }
        }
    }
}

#[test]
fn revel_split_and_ctrl_net_scale_with_the_fabric() {
    let r = arch::revel_on(FabricDims::new(6, 6));
    let s = r.opts.split.unwrap();
    assert_eq!((s.systolic_pes, s.dataflow_pes), (35, 1));
    // CS-Benes sizing derives from the fabric width: 4 lines per PE
    // endpoint, next power of two.
    let net4 = marionette::net::CsBenesNetwork::for_fabric(16);
    assert_eq!(net4.lines(), 64, "the paper's 4x4 instance");
    let net6 = marionette::net::CsBenesNetwork::for_fabric(36);
    assert_eq!(net6.lines(), 256);
    assert!(net6.switch_count() > net4.switch_count());
}

#[test]
fn searched_mappings_verify_on_a_larger_fabric() {
    // The annealing explorer must stay legal off the 4×4 fabric too.
    use marionette::compiler::SearchBudget;
    let mut arch = arch::marionette_full_on(FabricDims::new(6, 6));
    arch.opts.search = SearchBudget::Anneal {
        moves: 200,
        restarts: 1,
        base_seed: 0xA11E,
    };
    let k = marionette::kernels::by_short("CRC").unwrap();
    let r = run_kernel(k.as_ref(), &arch, Scale::Tiny, 1, 100_000_000).unwrap();
    assert!(r.verified);
    assert!(r.report.search.is_some());
}
