//! Directional claims of the paper hold across the feature ladder and the
//! baselines: each Marionette feature may only help on intensive control
//! flow (in geomean), and the full system beats every baseline.

use marionette::arch;
use marionette::experiments::geomean;
use marionette::kernels::traits::Scale;
use marionette::runner::run_kernel;

const MAX: u64 = 500_000_000;

fn cycles(tag: &str, a: &marionette::arch::Architecture, seed: u64) -> u64 {
    let k = marionette::kernels::by_short(tag).unwrap();
    run_kernel(k.as_ref(), a, Scale::Small, seed, MAX)
        .unwrap_or_else(|e| panic!("{tag} on {}: {e}", a.name))
        .cycles
}

const INTENSIVE: [&str; 10] = [
    "MS", "FFT", "VI", "NW", "HT", "CRC", "ADPCM", "SCD", "LDPC", "GEMM",
];

#[test]
fn control_network_helps_in_geomean() {
    let base = arch::marionette_pe();
    let plus = arch::marionette_cn();
    let speedups: Vec<f64> = INTENSIVE
        .iter()
        .map(|t| cycles(t, &base, 7) as f64 / cycles(t, &plus, 7) as f64)
        .collect();
    let gm = geomean(&speedups);
    assert!(gm > 1.0, "control network geomean {gm:.3}");
}

#[test]
fn agile_assignment_helps_in_geomean() {
    let base = arch::marionette_cn();
    let plus = arch::marionette_full();
    let speedups: Vec<f64> = INTENSIVE
        .iter()
        .map(|t| cycles(t, &base, 7) as f64 / cycles(t, &plus, 7) as f64)
        .collect();
    let gm = geomean(&speedups);
    assert!(gm > 1.0, "agile geomean {gm:.3}");
}

#[test]
fn full_marionette_beats_every_baseline_in_geomean() {
    let m = arch::marionette_full();
    for baseline in [
        arch::von_neumann_pe(),
        arch::dataflow_pe(),
        arch::softbrain(),
        arch::tia(),
        arch::revel(),
        arch::riptide(),
    ] {
        let speedups: Vec<f64> = INTENSIVE
            .iter()
            .map(|t| cycles(t, &baseline, 3) as f64 / cycles(t, &m, 3) as f64)
            .collect();
        let gm = geomean(&speedups);
        assert!(gm > 1.0, "Marionette vs {}: geomean {gm:.3}", baseline.name);
    }
}

#[test]
fn non_intensive_kernels_not_degraded() {
    // Fig 17: "the innovative features of the Marionette do not
    // deteriorate performance for non-intensive control flow applications".
    let m = arch::marionette_full();
    let mpe = arch::marionette_pe();
    for t in ["CO", "SI", "GP"] {
        let full = cycles(t, &m, 5);
        let base = cycles(t, &mpe, 5);
        assert!(
            (full as f64) < 1.25 * base as f64,
            "{t}: full {full} vs base {base}"
        );
    }
}

#[test]
fn predication_wastes_fires_on_branchy_code() {
    // von Neumann predication must show real poisoned work on the most
    // divergent kernel (Merge Sort), and Marionette must show none.
    let k = marionette::kernels::by_short("MS").unwrap();
    let vn = run_kernel(k.as_ref(), &arch::von_neumann_pe(), Scale::Small, 9, MAX).unwrap();
    let m = run_kernel(k.as_ref(), &arch::marionette_full(), Scale::Small, 9, MAX).unwrap();
    assert!(
        vn.stats.poison_fraction() > 0.02,
        "vN poison fraction {:.4}",
        vn.stats.poison_fraction()
    );
    assert_eq!(
        m.stats.poison_fraction(),
        0.0,
        "Marionette steers, never predicates"
    );
}

#[test]
fn ccu_switches_only_on_centralized_architectures() {
    let k = marionette::kernels::by_short("GEMM").unwrap();
    let vn = run_kernel(k.as_ref(), &arch::von_neumann_pe(), Scale::Tiny, 9, MAX).unwrap();
    let m = run_kernel(k.as_ref(), &arch::marionette_full(), Scale::Tiny, 9, MAX).unwrap();
    assert!(
        vn.stats.group_switches > 0,
        "vN time-multiplexes loop levels"
    );
    assert!(vn.stats.switch_stall_cycles > 0, "CCU stalls the array");
    assert_eq!(
        m.stats.group_switches, 0,
        "agile co-residency never switches"
    );
}
