//! The engine differential bar: the calendar-wheel event core must be
//! observationally indistinguishable from the binary-heap reference
//! core. Every kernel × preset pair, healthy and faulted, must produce
//! **bit-identical** [`RunResult`]s — cycles, firing counts, final
//! memory, sink streams, out-of-bounds counts, and the per-route stall
//! attribution the mapping explorer's cost model is calibrated against.
//!
//! The heap core exists only to be compared against; if these tests
//! pass, nothing downstream can tell which engine ran.

use marionette::compiler::compile;
use marionette::kernels::traits::Scale;
use marionette::runner::run_kernel_faulted_with_engine;
use marionette::sim::{run_full, run_with_engine, EngineKind, FaultSet, RunResult, SimError};

const MAX_CYCLES: u64 = 500_000_000;

/// Full bit-compare of two runs: stats (including every per-PE,
/// per-group, and per-route counter), memory, sinks, and OOB events.
fn assert_runs_identical(tag: &str, arch: &str, wheel: &RunResult, heap: &RunResult) {
    assert_eq!(
        wheel.stats, heap.stats,
        "{tag} on {arch}: stats diverge between engines"
    );
    assert_eq!(
        wheel.oob_events, heap.oob_events,
        "{tag} on {arch}: oob counts diverge"
    );
    assert_eq!(
        wheel.memory.len(),
        heap.memory.len(),
        "{tag} on {arch}: array counts diverge"
    );
    for (ai, (w, h)) in wheel.memory.iter().zip(&heap.memory).enumerate() {
        assert_eq!(w.len(), h.len(), "{tag} on {arch}: array #{ai} length");
        for (i, (wv, hv)) in w.iter().zip(h).enumerate() {
            assert!(
                wv.bit_eq(*hv),
                "{tag} on {arch}: array #{ai}[{i}]: wheel {wv}, heap {hv}"
            );
        }
    }
    let mut wk: Vec<&String> = wheel.sinks.keys().collect();
    let mut hk: Vec<&String> = heap.sinks.keys().collect();
    wk.sort();
    hk.sort();
    assert_eq!(wk, hk, "{tag} on {arch}: sink label sets diverge");
    for (label, w) in &wheel.sinks {
        let h = &heap.sinks[label];
        assert_eq!(w.len(), h.len(), "{tag} on {arch}: sink {label} length");
        for (i, (wv, hv)) in w.iter().zip(h).enumerate() {
            assert!(
                wv.bit_eq(*hv),
                "{tag} on {arch}: sink {label}[{i}]: wheel {wv}, heap {hv}"
            );
        }
    }
}

/// Compiles `tag` once per preset and runs the same decoded bitstream
/// under both engines, demanding identical results.
fn assert_engine_identical(tag: &str, seed: u64, scale: Scale) {
    let k = marionette::kernels::by_short(tag).expect("kernel tag");
    let wl = k.workload(scale, seed);
    let g = k.build(&wl).expect("kernel builds");
    let inputs: Vec<(String, Vec<marionette::cdfg::value::Value>)> = g
        .arrays
        .iter()
        .map(|a| (a.name.clone(), a.init.clone()))
        .collect();
    for arch in marionette::arch::all_presets() {
        let (prog, _) = compile(&g, &arch.opts)
            .unwrap_or_else(|e| panic!("{tag} on {}: compile: {e}", arch.name));
        let bytes = marionette::isa::bitstream::encode(&prog);
        let prog = marionette::isa::bitstream::decode(&bytes).expect("bitstream roundtrip");
        let run = |engine| {
            run_with_engine(&prog, &arch.tm, engine, &inputs, &[], MAX_CYCLES)
                .unwrap_or_else(|e| panic!("{tag} on {} ({engine}): {e}", arch.name))
        };
        let wheel = run(EngineKind::Wheel);
        let heap = run(EngineKind::Heap);
        assert_runs_identical(tag, arch.name, &wheel, &heap);
    }
}

/// The full matrix: every registered kernel on every architecture
/// preset, both engines, one compile each.
#[test]
fn every_kernel_on_every_preset_is_engine_identical() {
    for k in marionette::kernels::all() {
        assert_engine_identical(k.short(), 7, Scale::Tiny);
    }
}

/// Longer runs exercise the wheel's horizon wrap-around (a Tiny run can
/// finish inside the first lap); two representative kernels at Small.
#[test]
fn crc_small_is_engine_identical() {
    assert_engine_identical("CRC", 21, Scale::Small);
}

#[test]
fn mergesort_small_is_engine_identical() {
    assert_engine_identical("MS", 22, Scale::Small);
}

/// Faulted differential: the same fault set must produce the same
/// outcome under both engines — the same typed wedge on dead resources,
/// or bit-identical (stretched) runs on flaky links.
fn assert_faulted_engine_identical(tag: &str, specs: &[&str]) {
    let k = marionette::kernels::by_short(tag).expect("kernel tag");
    let wl = k.workload(Scale::Tiny, 7);
    let g = k.build(&wl).expect("kernel builds");
    let inputs: Vec<(String, Vec<marionette::cdfg::value::Value>)> = g
        .arrays
        .iter()
        .map(|a| (a.name.clone(), a.init.clone()))
        .collect();
    for arch in marionette::arch::all_presets() {
        let mut faults = FaultSet::new(arch.opts.rows, arch.opts.cols);
        for s in specs {
            faults
                .add(s.parse().expect("fault spec"))
                .expect("in range");
        }
        let (prog, _) = compile(&g, &arch.opts)
            .unwrap_or_else(|e| panic!("{tag} on {}: compile: {e}", arch.name));
        let run = |engine| run_full(&prog, &arch.tm, &faults, engine, &inputs, &[], MAX_CYCLES);
        match (run(EngineKind::Wheel), run(EngineKind::Heap)) {
            (Ok(w), Ok(h)) => assert_runs_identical(tag, arch.name, &w, &h),
            (Err(w), Err(h)) => assert_eq!(
                w, h,
                "{tag} on {} [{specs:?}]: engines wedge differently",
                arch.name
            ),
            (w, h) => panic!(
                "{tag} on {} [{specs:?}]: wheel {:?} but heap {:?}",
                arch.name,
                w.map(|r| r.stats.cycles),
                h.map(|r| r.stats.cycles)
            ),
        }
    }
}

#[test]
fn dead_pe_wedges_identically_on_both_engines() {
    assert_faulted_engine_identical("CRC", &["pe:0,0"]);
}

#[test]
fn dead_link_wedges_identically_on_both_engines() {
    assert_faulted_engine_identical("MS", &["link:0,0-0,1"]);
}

#[test]
fn flaky_link_mult2_is_engine_identical() {
    assert_faulted_engine_identical("CRC", &["flaky:0,0-0,1@2"]);
}

#[test]
fn flaky_link_mult7_is_engine_identical() {
    assert_faulted_engine_identical("GP", &["flaky:1,0-1,1@7"]);
}

/// The whole self-healing pipeline (wedge → fault-aware remap →
/// re-verify) must land on the same remapped measurement under either
/// engine: same wedge diagnosis, same remap decision, same cycles and
/// full stats on the healed bitstream.
#[test]
fn self_heal_remap_is_engine_identical() {
    let k = marionette::kernels::by_short("CRC").expect("kernel tag");
    let arch = marionette::arch::marionette_full();
    let mut faults = FaultSet::new(arch.opts.rows, arch.opts.cols);
    faults.add("pe:0,0".parse().unwrap()).unwrap();
    let run = |engine| {
        run_kernel_faulted_with_engine(
            k.as_ref(),
            &arch,
            Scale::Tiny,
            7,
            MAX_CYCLES,
            &faults,
            engine,
        )
        .unwrap_or_else(|e| panic!("faulted run ({engine}): {e}"))
    };
    let wheel = run(EngineKind::Wheel);
    let heap = run(EngineKind::Heap);
    assert_eq!(wheel.wedged, heap.wedged, "wedge diagnosis diverges");
    assert_eq!(wheel.remapped, heap.remapped, "remap decision diverges");
    assert_eq!(wheel.run.cycles, heap.run.cycles, "healed cycles diverge");
    assert_eq!(wheel.run.stats, heap.run.stats, "healed stats diverge");
    assert!(wheel.run.verified && heap.run.verified);
}

/// A cycle-budget bust must be the same typed error at the same point
/// under both engines.
#[test]
fn cycle_limit_is_engine_identical() {
    let k = marionette::kernels::by_short("CRC").expect("kernel tag");
    let wl = k.workload(Scale::Tiny, 7);
    let g = k.build(&wl).expect("kernel builds");
    let inputs: Vec<(String, Vec<marionette::cdfg::value::Value>)> = g
        .arrays
        .iter()
        .map(|a| (a.name.clone(), a.init.clone()))
        .collect();
    let arch = marionette::arch::marionette_full();
    let (prog, _) = compile(&g, &arch.opts).expect("compiles");
    for budget in [1u64, 16, 100] {
        let run = |engine| run_with_engine(&prog, &arch.tm, engine, &inputs, &[], budget);
        let (w, h) = (run(EngineKind::Wheel), run(EngineKind::Heap));
        assert_eq!(
            w.clone().err(),
            h.err(),
            "budget {budget}: engines bust differently"
        );
        assert_eq!(
            w.err(),
            Some(SimError::CycleLimit { limit: budget }),
            "budget {budget} should bust"
        );
    }
}
