//! Full-stack fidelity: kernels compile to configuration bitstreams that
//! decode back to identical executables, disassemble cleanly, and the
//! control network statically routes the control multicast sets.

use marionette::compiler::{compile, CompileOptions};
use marionette::isa::bitstream;
use marionette::kernels::traits::Scale;

#[test]
fn every_kernel_roundtrips_through_the_bitstream() {
    for k in marionette::kernels::all() {
        let wl = k.workload(Scale::Tiny, 0);
        let g = k.build(&wl).expect("kernel builds");
        let (prog, _) = compile(&g, &CompileOptions::marionette_4x4())
            .unwrap_or_else(|e| panic!("{}: {e}", k.name()));
        assert!(
            prog.validate().is_empty(),
            "{}: {:?}",
            k.name(),
            prog.validate()
        );
        let bytes = bitstream::encode(&prog);
        let back = bitstream::decode(&bytes).unwrap();
        assert_eq!(prog, back, "{} bitstream roundtrip", k.name());
    }
}

#[test]
fn every_kernel_disassembles() {
    for k in marionette::kernels::all() {
        let wl = k.workload(Scale::Tiny, 0);
        let g = k.build(&wl).expect("kernel builds");
        let (prog, _) = compile(&g, &CompileOptions::marionette_4x4()).unwrap();
        let text = marionette::isa::disasm::disassemble(&prog);
        assert!(text.contains("pe "), "{}: disasm has PE sections", k.name());
        assert!(
            text.lines().count() > prog.pes.len(),
            "{}: non-trivial listing",
            k.name()
        );
    }
}

#[test]
fn control_multicasts_fit_the_cs_benes_network() {
    // The paper's static no-arbitration configuration must be feasible
    // for the evaluation kernels on the 4x4 fabric. SC Decode is the one
    // exception: its visit-table dispatch exceeds the 64 internal lines,
    // so the controller time-shares the Benes configuration between
    // phases — the compiler must report the overflow rather than hide it.
    for k in marionette::kernels::all() {
        let wl = k.workload(Scale::Tiny, 0);
        let g = k.build(&wl).expect("kernel builds");
        let (_, report) = compile(&g, &CompileOptions::marionette_4x4()).unwrap();
        if k.short() == "SCD" {
            assert!(
                !report.ctrl_net_fits && report.ctrl_fanout > 64,
                "SCD is expected to overflow the static configuration"
            );
        } else {
            assert!(
                report.ctrl_net_fits,
                "{}: control fanout {} exceeds the network",
                k.name(),
                report.ctrl_fanout
            );
        }
    }
}

#[test]
fn compile_reports_are_consistent() {
    for k in marionette::kernels::all() {
        let wl = k.workload(Scale::Tiny, 0);
        let g = k.build(&wl).expect("kernel builds");
        let (prog, report) = compile(&g, &CompileOptions::marionette_4x4()).unwrap();
        assert_eq!(
            report.routes,
            prog.routes.len(),
            "{}: route count",
            k.name()
        );
        assert!(report.ctrl_routes <= report.routes);
        assert!(report.data_ops > 0, "{}: has compute", k.name());
        // Groups with assigned PEs never overlap in agile mode.
        let mut seen = std::collections::HashSet::new();
        for gp in &report.groups {
            for &pe in &gp.pes {
                // Sharing is allowed only as an explicit fallback; the
                // Tiny-scale kernels fit disjointly.
                assert!(
                    seen.insert(pe),
                    "{}: PE {pe} assigned to two groups",
                    k.name()
                );
            }
        }
    }
}

#[test]
fn loop_waste_is_nonnegative_for_all_kernels() {
    for k in marionette::kernels::all() {
        let wl = k.workload(Scale::Tiny, 0);
        let g = k.build(&wl).expect("kernel builds");
        let (_, report) = compile(&g, &CompileOptions::marionette_4x4()).unwrap();
        for gp in &report.groups {
            assert!(gp.waste >= 0, "{}: PE_waste {}", k.name(), gp.waste);
            if !gp.pes.is_empty() {
                assert!(gp.ii >= 1);
            }
        }
    }
}
