//! The simulator equivalence bar: on every architecture preset, the
//! cycle-level simulator must produce outputs **bit-identical** to the
//! sequential reference interpreter (`marionette-cdfg::interp`) — final
//! array memory and every sink stream. This is the contract the
//! event-driven core refactor is held to.

use marionette::cdfg::interp::{interpret, ExecMode};
use marionette::cdfg::value::Value;
use marionette::compiler::compile;
use marionette::kernels::traits::Scale;
use marionette::sim::run;

const MAX_CYCLES: u64 = 500_000_000;

fn assert_bit_identical(tag: &str, seed: u64, scale: Scale) {
    let k = marionette::kernels::by_short(tag).expect("kernel tag");
    let wl = k.workload(scale, seed);
    let g = k.build(&wl).expect("kernel builds");
    let reference = interpret(&g, ExecMode::Dropping, &[]).expect("interpreter runs");
    let inputs: Vec<(String, Vec<Value>)> = g
        .arrays
        .iter()
        .map(|a| (a.name.clone(), a.init.clone()))
        .collect();
    for arch in marionette::arch::all_presets() {
        let (prog, _) = compile(&g, &arch.opts)
            .unwrap_or_else(|e| panic!("{tag} on {}: compile: {e}", arch.name));
        // Exercise the bitstream round trip like the runner does.
        let bytes = marionette::isa::bitstream::encode(&prog);
        let prog = marionette::isa::bitstream::decode(&bytes).expect("bitstream roundtrip");
        let r = run(&prog, &arch.tm, &inputs, &[], MAX_CYCLES)
            .unwrap_or_else(|e| panic!("{tag} on {}: sim: {e}", arch.name));
        // Every declared array must match the interpreter bit for bit.
        for (ai, arr) in g.arrays.iter().enumerate() {
            let id = g.array_by_name(&arr.name).expect("declared array");
            let expect = reference.memory.array(id);
            let got = r
                .array(&prog, &arr.name)
                .unwrap_or_else(|| panic!("{tag} on {}: array {} missing", arch.name, arr.name));
            assert_eq!(
                expect.len(),
                got.len(),
                "{tag} on {}: array {} length",
                arch.name,
                arr.name
            );
            for (i, (e, a)) in expect.iter().zip(got).enumerate() {
                assert!(
                    e.bit_eq(*a),
                    "{tag} on {}: array {}[{i}] (decl #{ai}): interp {e}, sim {a}",
                    arch.name,
                    arr.name
                );
            }
        }
        // Every sink stream must match in content and arrival order.
        assert_eq!(
            {
                let mut ks: Vec<&String> = reference.sinks.keys().collect();
                ks.sort();
                ks
            },
            {
                let mut ks: Vec<&String> = r.sinks.keys().collect();
                ks.sort();
                ks
            },
            "{tag} on {}: sink label sets differ",
            arch.name
        );
        for (label, expect) in &reference.sinks {
            let got = &r.sinks[label];
            assert_eq!(
                expect.len(),
                got.len(),
                "{tag} on {}: sink {label} length",
                arch.name
            );
            for (i, (e, a)) in expect.iter().zip(got).enumerate() {
                assert!(
                    e.bit_eq(*a),
                    "{tag} on {}: sink {label}[{i}]: interp {e}, sim {a}",
                    arch.name
                );
            }
        }
    }
}

#[test]
fn mergesort_bit_identical_on_all_presets() {
    assert_bit_identical("MS", 11, Scale::Small);
}

#[test]
fn crc_bit_identical_on_all_presets() {
    assert_bit_identical("CRC", 12, Scale::Small);
}

#[test]
fn gemm_bit_identical_on_all_presets() {
    assert_bit_identical("GEMM", 13, Scale::Small);
}

#[test]
fn ldpc_bit_identical_on_all_presets() {
    assert_bit_identical("LDPC", 14, Scale::Small);
}

#[test]
fn gray_bit_identical_on_all_presets() {
    assert_bit_identical("GP", 15, Scale::Small);
}

#[test]
fn adpcm_bit_identical_on_all_presets_tiny() {
    assert_bit_identical("ADPCM", 16, Scale::Tiny);
}
