//! Smoke tests of the experiment harness at small scale: every figure's
//! experiment must run end-to-end, verify outputs, and reproduce the
//! paper's *directional* findings (who wins).

use marionette::experiments::{self, geomean};
use marionette::kernels::traits::Scale;

#[test]
fn fig11_shape() {
    let f = experiments::fig11(Scale::Small, 1).expect("fig11 runs");
    let gm_vn = geomean(&f.speedup_vs_vn);
    let gm_df = geomean(&f.speedup_vs_df);
    println!("fig11 geomeans: vs vN {gm_vn:.3} (paper 1.18), vs DF {gm_df:.3} (paper 1.33)");
    for (k, (svn, sdf)) in f
        .cycles
        .kernels
        .iter()
        .zip(f.speedup_vs_vn.iter().zip(&f.speedup_vs_df))
    {
        println!("  {k:6} vs-vN {svn:.3} vs-DF {sdf:.3}");
    }
    assert!(
        gm_vn > 1.0,
        "Marionette PE must beat von Neumann PE (got {gm_vn:.3})"
    );
    assert!(
        gm_df > 1.0,
        "Marionette PE must beat dataflow PE (got {gm_df:.3})"
    );
}

#[test]
fn fig12_shape() {
    let f = experiments::fig12(Scale::Small, 1).expect("fig12 runs");
    let gm = geomean(&f.speedup);
    println!("fig12 geomean: {gm:.3} (paper 1.14)");
    for (k, s) in f.cycles.kernels.iter().zip(&f.speedup) {
        println!("  {k:6} {s:.3}");
    }
    assert!(gm >= 1.0, "the control network must not hurt (got {gm:.3})");
}

#[test]
fn fig14_shape() {
    let f = experiments::fig14(Scale::Small, 1).expect("fig14 runs");
    let gm = geomean(&f.speedup);
    println!("fig14 geomean: {gm:.3} (paper 2.03)");
    for (k, s) in f.cycles.kernels.iter().zip(&f.speedup) {
        println!("  {k:6} {s:.3}");
    }
    assert!(
        gm > 1.0,
        "Agile PE Assignment must win overall (got {gm:.3})"
    );
}

#[test]
fn fig15_shape() {
    let f = experiments::fig15(Scale::Small, 1).expect("fig15 runs");
    for i in 0..f.kernels.len() {
        println!(
            "  {:6} outer {:.3} -> {:.3}   pipe {:.3} -> {:.3}",
            f.kernels[i],
            f.outer_util_before[i],
            f.outer_util_after[i],
            f.pipe_util_before[i],
            f.pipe_util_after[i]
        );
    }
    // Outer-BB PEs must be busier after Agile assignment on average.
    let before: f64 = f.outer_util_before.iter().sum();
    let after: f64 = f.outer_util_after.iter().sum();
    assert!(
        after > before,
        "outer-BB utilization must rise: {before:.3} -> {after:.3}"
    );
}

#[test]
fn fig17_shape() {
    let f = experiments::fig17(Scale::Small, 1).expect("fig17 runs");
    for (a, gm) in &f.geomeans {
        println!("fig17 geomean vs {a}: {gm:.3}");
    }
    for (a, gm) in &f.geomeans {
        assert!(
            *gm > 1.0,
            "Marionette must beat {a} on intensive kernels (got {gm:.3})"
        );
    }
    // Non-intensive kernels must not regress dramatically vs any SOTA.
    let m = &f
        .non_intensive
        .series
        .iter()
        .find(|(a, _)| a == "M")
        .unwrap()
        .1;
    for (a, cyc) in &f.non_intensive.series {
        if a == "M" {
            continue;
        }
        for (i, (&mc, &oc)) in m.iter().zip(cyc).enumerate() {
            assert!(
                (mc as f64) < 1.5 * oc as f64,
                "non-intensive {} on M ({mc}) should not be >1.5x slower than {a} ({oc})",
                f.non_intensive.kernels[i]
            );
        }
    }
}
