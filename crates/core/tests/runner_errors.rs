//! Typed kernel failures must surface through the runner as
//! `RunnerError::Kernel`, not panics: a workload missing a size or array
//! (the fuzzing / external-workload case) fails gracefully.

use marionette::cdfg::Cdfg;
use marionette::kernels::traits::{Golden, Kernel, KernelError, Scale, Workload};
use marionette::runner::{run_kernel, RunnerError};

/// A kernel whose workload generator "forgets" entries, simulating an
/// externally-supplied (fuzzed) workload.
struct Amnesiac {
    drop_size: bool,
}

impl Kernel for Amnesiac {
    fn name(&self) -> &'static str {
        "Amnesiac"
    }
    fn short(&self) -> &'static str {
        "AMN"
    }
    fn domain(&self) -> &'static str {
        "test"
    }
    fn workload(&self, _scale: Scale, _seed: u64) -> Workload {
        let mut wl = Workload {
            arrays: vec![],
            sizes: vec![("n".into(), 4)],
        };
        if self.drop_size {
            wl.sizes.clear();
        }
        wl
    }
    fn build(&self, wl: &Workload) -> Result<Cdfg, KernelError> {
        let n = wl.size("n")? as i32;
        let mut b = marionette::cdfg::builder::CdfgBuilder::new("amnesiac");
        let zero = b.imm(0);
        let outs = b.for_range(0, n, &[zero], |b, i, v| vec![b.add(v[0], i)]);
        b.sink("s", outs[0]);
        Ok(b.finish())
    }
    fn golden(&self, wl: &Workload) -> Result<Golden, KernelError> {
        let n = wl.size("n")?;
        let sum: i32 = (0..n as i32).sum();
        Ok(Golden {
            arrays: vec![],
            sinks: vec![("s".into(), vec![marionette::cdfg::value::Value::I32(sum)])],
        })
    }
}

#[test]
fn missing_size_surfaces_as_runner_error() {
    let arch = marionette::arch::marionette_full();
    let err = run_kernel(
        &Amnesiac { drop_size: true },
        &arch,
        Scale::Tiny,
        0,
        1_000_000,
    )
    .expect_err("must fail");
    match &err {
        RunnerError::Kernel(KernelError::MissingSize(n)) => assert_eq!(n, "n"),
        other => panic!("expected RunnerError::Kernel(MissingSize), got {other}"),
    }
    assert!(err.to_string().contains("missing size"));
}

#[test]
fn intact_workload_runs_end_to_end() {
    let arch = marionette::arch::marionette_full();
    let run = run_kernel(
        &Amnesiac { drop_size: false },
        &arch,
        Scale::Tiny,
        0,
        1_000_000,
    )
    .expect("runs");
    assert!(run.verified);
}
