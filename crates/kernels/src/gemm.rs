//! GEMM: dense matrix multiply. An *imperfect nested loop* — the paper's
//! showcase for Agile PE Assignment (its outer-BB PE utilization rises
//! 134× in Fig 15) — with no branch divergence (Table 1).

use crate::traits::{Golden, Kernel, KernelError, Scale, Workload};
use crate::workload;
use marionette_cdfg::builder::CdfgBuilder;
use marionette_cdfg::value::Value;
use marionette_cdfg::Cdfg;

/// GEMM kernel: `c = a · b` over i32.
#[derive(Debug, Default, Clone, Copy)]
pub struct Gemm;

fn n_of(scale: Scale) -> usize {
    match scale {
        Scale::Paper => 64,
        Scale::Small => 8,
        Scale::Tiny => 3,
    }
}

impl Kernel for Gemm {
    fn name(&self) -> &'static str {
        "GEMM"
    }

    fn short(&self) -> &'static str {
        "GEMM"
    }

    fn domain(&self) -> &'static str {
        "General purpose"
    }

    fn workload(&self, scale: Scale, seed: u64) -> Workload {
        let n = n_of(scale);
        let mut r = workload::rng(seed);
        Workload {
            arrays: vec![
                ("a".into(), workload::i32_vec(&mut r, n * n, -16, 16)),
                ("b".into(), workload::i32_vec(&mut r, n * n, -16, 16)),
            ],
            sizes: vec![("n".into(), n as i64)],
        }
    }

    fn build(&self, wl: &Workload) -> Result<Cdfg, KernelError> {
        let n = wl.size("n")? as i32;
        let mut b = CdfgBuilder::new("gemm");
        let av = wl.array_i32("a")?;
        let bv = wl.array_i32("b")?;
        let aa = b.array_i32("a", av.len(), &av);
        let ba = b.array_i32("b", bv.len(), &bv);
        let ca = b.array_i32("c", (n * n) as usize, &[]);
        b.mark_output(ca);
        let zero = b.imm(0);
        let _ = b.for_range(0, n, &[zero], |b, i, v| {
            let row = b.mul(i, n.into()); // outer-BB compute
            let inner = b.for_range(0, n, &[v[0]], |b, j, w| {
                let zero_acc = b.imm(0);
                let kk = b.for_range(0, n, &[zero_acc], |b, k, acc| {
                    let ai = b.add(row, k);
                    let bi = b.mul(k, n.into());
                    let bi = b.add(bi, j);
                    let x = b.load(aa, ai);
                    let y = b.load(ba, bi);
                    let p = b.mul(x, y);
                    // Accumulate on the loop unit (dedicated reduction
                    // register, as in Softbrain/REVEL accumulators).
                    let acc2 = b.in_loop_header(|b| b.add(acc[0], p));
                    vec![acc2]
                });
                let ci = b.add(row, j);
                b.store(ca, ci, kk[0]);
                vec![w[0]]
            });
            vec![inner[0]]
        });
        Ok(b.finish())
    }

    fn golden(&self, wl: &Workload) -> Result<Golden, KernelError> {
        let n = wl.size("n")? as usize;
        let a = wl.array_i32("a")?;
        let bm = wl.array_i32("b")?;
        let mut c = vec![0i32; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0i32;
                for k in 0..n {
                    acc = acc.wrapping_add(a[i * n + k].wrapping_mul(bm[k * n + j]));
                }
                c[i * n + j] = acc;
            }
        }
        Ok(Golden {
            arrays: vec![("c".into(), c.into_iter().map(Value::I32).collect())],
            sinks: vec![],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::interp_check_both;

    #[test]
    fn matches_golden() {
        interp_check_both(&Gemm, Scale::Small, 4).unwrap();
    }

    #[test]
    fn profile_is_imperfect_nested_no_branch() {
        let k = Gemm;
        let wl = k.workload(Scale::Tiny, 0);
        let g = k.build(&wl).unwrap();
        let p = marionette_cdfg::analysis::profile(&g);
        assert!(p.loops.imperfect);
        assert_eq!(p.branches.count, 0);
        assert_eq!(p.loops.max_depth, 3);
    }
}
