//! Viterbi (VI): hidden-Markov decoding. Triple-nested DP with an
//! argmax branch in the innermost loop (Table 1: innermost branch,
//! imperfect nest).

use crate::traits::{Golden, Kernel, KernelError, Scale, Workload};
use crate::workload;
use marionette_cdfg::builder::CdfgBuilder;
use marionette_cdfg::value::Value;
use marionette_cdfg::Cdfg;

/// Viterbi decoder kernel (additive costs; max-sum recursion).
#[derive(Debug, Default, Clone, Copy)]
pub struct Viterbi;

/// `(states, observations, alphabet)` per scale.
fn dims(scale: Scale) -> (usize, usize, usize) {
    match scale {
        Scale::Paper => (64, 140, 64),
        Scale::Small => (8, 12, 8),
        Scale::Tiny => (3, 4, 3),
    }
}

/// Scalar reference: returns `(backpointers, final_scores)`.
pub fn viterbi_reference(
    s: usize,
    t_len: usize,
    trans: &[i32],
    emit: &[i32],
    obs: &[i32],
) -> (Vec<i32>, Vec<i32>) {
    let m = emit.len() / s;
    let mut prev = vec![0i32; s];
    let mut cur = vec![0i32; s];
    let mut bp = vec![0i32; t_len * s];
    for st in 0..s {
        prev[st] = emit[st * m + obs[0] as usize];
    }
    for t in 1..t_len {
        let o = obs[t] as usize;
        for st in 0..s {
            let mut best = i32::MIN / 2;
            let mut bestp = 0i32;
            for p in 0..s {
                let cand = prev[p] + trans[p * s + st];
                if cand > best {
                    best = cand;
                    bestp = p as i32;
                }
            }
            cur[st] = best + emit[st * m + o];
            bp[t * s + st] = bestp;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    (bp, prev)
}

impl Kernel for Viterbi {
    fn name(&self) -> &'static str {
        "Viterbi"
    }

    fn short(&self) -> &'static str {
        "VI"
    }

    fn domain(&self) -> &'static str {
        "General purpose"
    }

    fn workload(&self, scale: Scale, seed: u64) -> Workload {
        let (s, t, m) = dims(scale);
        let mut r = workload::rng(seed);
        Workload {
            arrays: vec![
                ("trans".into(), workload::i32_vec(&mut r, s * s, -50, 0)),
                ("emit".into(), workload::i32_vec(&mut r, s * m, -50, 0)),
                ("obs".into(), workload::i32_vec(&mut r, t, 0, m as i32)),
            ],
            sizes: vec![
                ("s".into(), s as i64),
                ("t".into(), t as i64),
                ("m".into(), m as i64),
            ],
        }
    }

    fn build(&self, wl: &Workload) -> Result<Cdfg, KernelError> {
        let s = wl.size("s")? as i32;
        let t_len = wl.size("t")? as i32;
        let m = wl.size("m")? as i32;
        let mut b = CdfgBuilder::new("viterbi");
        let tv = wl.array_i32("trans")?;
        let ev = wl.array_i32("emit")?;
        let ov = wl.array_i32("obs")?;
        let trans = b.array_i32("trans", tv.len(), &tv);
        let emit = b.array_i32("emit", ev.len(), &ev);
        let obs = b.array_i32("obs", ov.len(), &ov);
        // Two score rows (ping-pong by t parity) in one array.
        let score = b.array_i32("score", 2 * s as usize, &[]);
        let bp = b.array_i32("bp", (t_len * s) as usize, &[]);
        b.mark_output(bp);
        let final_s = b.array_i32("final", s as usize, &[]);
        b.mark_output(final_s);
        let start = b.start_token();

        // t = 0 initialization.
        let o0 = b.load(obs, 0.into());
        let init = b.for_range(0, s, &[start], |b, st, v| {
            let ei = b.mul(st, m.into());
            let ei = b.add(ei, o0);
            let e = b.load(emit, ei);
            let tok = b.store_dep(score, st, e, v[0]);
            vec![tok]
        });
        let fence0 = init[0];

        // Main recursion over observations.
        let neg_inf = b.imm(i32::MIN / 2);
        let outer = b.for_range(1, t_len, &[fence0], |b, t, v| {
            let fence = v[0];
            let o = b.load(obs, t);
            let par = b.and_(t, 1.into());
            let curbase = b.mul(par, s.into());
            let one = b.imm(1);
            let prevpar = b.sub(one, par);
            let prevbase = b.mul(prevpar, s.into());
            let trow = b.mul(t, s.into());
            let states = b.for_range(0, s, &[fence], |b, st, w| {
                let stok = w[0];
                let zero_arg = b.imm(0);
                let best = b.for_range(0, s, &[neg_inf, zero_arg], |b, p, acc| {
                    let pi = b.add(prevbase, p);
                    let sc = b.load_dep(score, pi, stok);
                    let ti = b.mul(p, s.into());
                    let ti = b.add(ti, st);
                    let tr = b.load(trans, ti);
                    let cand = b.add(sc, tr);
                    let better = b.gt(cand, acc[0]);
                    let r = b.if_else(better, |_| vec![cand, p], |_| vec![acc[0], acc[1]]);
                    vec![r[0], r[1]]
                });
                let ei = b.mul(st, m.into());
                let ei = b.add(ei, o);
                let e = b.load(emit, ei);
                let sc = b.add(best[0], e);
                let ci = b.add(curbase, st);
                let tok1 = b.store_dep(score, ci, sc, stok);
                let bi = b.add(trow, st);
                let tok2 = b.store_dep(bp, bi, best[1], tok1);
                vec![tok2]
            });
            vec![states[0]]
        });

        // Copy out the final row for checking.
        let lastpar = (t_len - 1) & 1;
        let _ = b.for_range(0, s, &[outer[0]], |b, st, v| {
            let idx = b.add(st, (lastpar * s).into());
            let sc = b.load_dep(score, idx, v[0]);
            let tok = b.store_dep(final_s, st, sc, v[0]);
            vec![tok]
        });
        Ok(b.finish())
    }

    fn golden(&self, wl: &Workload) -> Result<Golden, KernelError> {
        let s = wl.size("s")? as usize;
        let t = wl.size("t")? as usize;
        let (bp, fin) = viterbi_reference(
            s,
            t,
            &wl.array_i32("trans")?,
            &wl.array_i32("emit")?,
            &wl.array_i32("obs")?,
        );
        Ok(Golden {
            arrays: vec![
                ("bp".into(), bp.into_iter().map(Value::I32).collect()),
                ("final".into(), fin.into_iter().map(Value::I32).collect()),
            ],
            sinks: vec![],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::interp_check_both;

    #[test]
    fn matches_golden() {
        interp_check_both(&Viterbi, Scale::Small, 8).unwrap();
    }

    #[test]
    fn profile_shape() {
        let k = Viterbi;
        let wl = k.workload(Scale::Tiny, 0);
        let g = k.build(&wl).unwrap();
        let p = marionette_cdfg::analysis::profile(&g);
        assert!(p.branches.innermost);
        assert!(p.loops.imperfect);
        assert_eq!(p.loops.max_depth, 3);
    }
}
