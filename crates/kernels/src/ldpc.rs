//! LDPC Decode: iterative min-sum decoding of a regular (3,6) code.
//! Nested branches in the check-node minimum search, serial inner loops,
//! and an imperfect three-deep nest (Table 1's most control-heavy row).

use crate::traits::{Golden, Kernel, KernelError, Scale, Workload};
use crate::workload;
use marionette_cdfg::builder::CdfgBuilder;
use marionette_cdfg::value::Value;
use marionette_cdfg::Cdfg;
use rand::seq::SliceRandom;

/// Check node degree of the regular code.
pub const CHECK_DEG: usize = 6;
/// Variable node degree of the regular code.
pub const VAR_DEG: usize = 3;

/// LDPC min-sum decoder kernel.
#[derive(Debug, Default, Clone, Copy)]
pub struct LdpcDecode;

/// `(code length n, iterations)` per scale.
fn dims(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Paper => (128, 20),
        Scale::Small => (32, 4),
        Scale::Tiny => (8, 2),
    }
}

/// Deterministically generates the regular Tanner graph: returns
/// `cnbr[m*6]` (variable index per check edge).
pub fn gen_graph(n: usize, seed: u64) -> Vec<i32> {
    let mut slots: Vec<i32> = (0..n as i32)
        .flat_map(|v| std::iter::repeat_n(v, VAR_DEG))
        .collect();
    let mut r = workload::rng(seed ^ 0xC0DE);
    slots.shuffle(&mut r);
    slots
}

/// Builds the variable→edge adjacency from the check adjacency.
pub fn var_edges(n: usize, cnbr: &[i32]) -> Vec<i32> {
    let mut vedge = vec![Vec::new(); n];
    for (e, &v) in cnbr.iter().enumerate() {
        vedge[v as usize].push(e as i32);
    }
    vedge
        .into_iter()
        .flat_map(|es| {
            debug_assert_eq!(es.len(), VAR_DEG);
            es
        })
        .collect()
}

/// Scalar min-sum reference: returns `(final var LLRs, hard bits)`.
pub fn ldpc_reference(
    n: usize,
    iters: usize,
    cnbr: &[i32],
    llr_in: &[i32],
) -> (Vec<i32>, Vec<i32>) {
    let m = n * VAR_DEG / CHECK_DEG;
    let vedge = var_edges(n, cnbr);
    let mut vllr: Vec<i32> = llr_in.to_vec();
    let mut msg = vec![0i32; m * CHECK_DEG];
    for _ in 0..iters {
        // check pass
        for c in 0..m {
            let mut min1 = i32::MAX / 2;
            let mut min2 = i32::MAX / 2;
            let mut arg = 0i32;
            let mut sgn = 0i32;
            for e in 0..CHECK_DEG {
                let idx = c * CHECK_DEG + e;
                let val = vllr[cnbr[idx] as usize] - msg[idx];
                let a = val.abs();
                let s = (val < 0) as i32;
                if a < min1 {
                    min2 = min1;
                    min1 = a;
                    arg = e as i32;
                } else if a < min2 {
                    min2 = a;
                }
                sgn ^= s;
            }
            for e in 0..CHECK_DEG {
                let idx = c * CHECK_DEG + e;
                let val = vllr[cnbr[idx] as usize] - msg[idx];
                let se = (val < 0) as i32;
                let mag = if e as i32 == arg { min2 } else { min1 };
                let newm = if (sgn ^ se) != 0 { -mag } else { mag };
                msg[idx] = newm;
            }
        }
        // var pass
        for v in 0..n {
            let mut acc = llr_in[v];
            for d in 0..VAR_DEG {
                acc += msg[vedge[v * VAR_DEG + d] as usize];
            }
            vllr[v] = acc;
        }
    }
    let hard: Vec<i32> = vllr.iter().map(|&x| (x < 0) as i32).collect();
    (vllr, hard)
}

impl Kernel for LdpcDecode {
    fn name(&self) -> &'static str {
        "LDPC Decode"
    }

    fn short(&self) -> &'static str {
        "LDPC"
    }

    fn domain(&self) -> &'static str {
        "Mobile Communication"
    }

    fn workload(&self, scale: Scale, seed: u64) -> Workload {
        let (n, iters) = dims(scale);
        let mut r = workload::rng(seed);
        let cnbr = gen_graph(n, seed);
        Workload {
            arrays: vec![
                ("llr_in".into(), workload::i32_vec(&mut r, n, -31, 32)),
                ("cnbr".into(), cnbr.into_iter().map(Value::I32).collect()),
            ],
            sizes: vec![("n".into(), n as i64), ("iters".into(), iters as i64)],
        }
    }

    fn build(&self, wl: &Workload) -> Result<Cdfg, KernelError> {
        let n = wl.size("n")? as i32;
        let iters = wl.size("iters")? as i32;
        let m = n * VAR_DEG as i32 / CHECK_DEG as i32;
        let cnbr_v = wl.array_i32("cnbr")?;
        let vedge_v = var_edges(n as usize, &cnbr_v);
        let llr_v = wl.array_i32("llr_in")?;

        let mut b = CdfgBuilder::new("ldpc");
        let llr_in = b.array_i32("llr_in", llr_v.len(), &llr_v);
        let cnbr = b.array_i32("cnbr", cnbr_v.len(), &cnbr_v);
        let vedge = b.array_i32("vedge", vedge_v.len(), &vedge_v);
        let vllr = b.array_i32("vllr", n as usize, &[]);
        let msg = b.array_i32("msg", (m * CHECK_DEG as i32) as usize, &[]);
        let hard = b.array_i32("hard", n as usize, &[]);
        b.mark_output(vllr);
        b.mark_output(hard);
        let start = b.start_token();

        // init vllr = llr_in
        let init = b.for_range(0, n, &[start], |b, v, t| {
            let x = b.load(llr_in, v);
            let tok = b.store_dep(vllr, v, x, t[0]);
            vec![tok]
        });
        let decoded = decoder_core(&mut b, llr_in, cnbr, vedge, vllr, msg, n, iters, init[0]);

        // hard decision
        let _ = b.for_range(0, n, &[decoded], |b, v, t| {
            let x = b.load_dep(vllr, v, t[0]);
            let h = b.lt(x, 0.into());
            let tok = b.store_dep(hard, v, h, t[0]);
            vec![tok]
        });
        Ok(b.finish())
    }

    fn golden(&self, wl: &Workload) -> Result<Golden, KernelError> {
        let n = wl.size("n")? as usize;
        let iters = wl.size("iters")? as usize;
        let (vllr, hard) =
            ldpc_reference(n, iters, &wl.array_i32("cnbr")?, &wl.array_i32("llr_in")?);
        Ok(Golden {
            arrays: vec![
                ("vllr".into(), vllr.into_iter().map(Value::I32).collect()),
                ("hard".into(), hard.into_iter().map(Value::I32).collect()),
            ],
            sinks: vec![],
        })
    }
}

/// The min-sum decoding iterations, shared between [`LdpcDecode`] and the
/// full-application composite (`crate::ldpc_app`). `fence` orders the
/// first iteration after `vllr` initialization; returns the fence after
/// the last iteration.
#[allow(clippy::too_many_arguments)] // mirrors the decoder's dataflow interface
pub(crate) fn decoder_core(
    b: &mut CdfgBuilder,
    llr_in: marionette_cdfg::ArrayId,
    cnbr: marionette_cdfg::ArrayId,
    vedge: marionette_cdfg::ArrayId,
    vllr: marionette_cdfg::ArrayId,
    msg: marionette_cdfg::ArrayId,
    n: i32,
    iters: i32,
    fence: marionette_cdfg::V,
) -> marionette_cdfg::V {
    let m = n * VAR_DEG as i32 / CHECK_DEG as i32;
    let big = b.imm(i32::MAX / 2);
    let iter_out = b.for_range(0, iters, &[fence], |b, _it, itv| {
        let fence_in = itv[0];
        // ---- check pass ----
        let checks = b.for_range(0, m, &[fence_in], |b, c, cv| {
            let cfence = cv[0];
            let base = b.mul(c, (CHECK_DEG as i32).into());
            // serial inner loop 1: minimum search
            let zero = b.imm(0);
            let mins = b.for_range(0, CHECK_DEG as i32, &[big, big, zero, zero], |b, e, st| {
                let (min1, min2, arg, sgn) = (st[0], st[1], st[2], st[3]);
                let idx = b.add(base, e);
                let vi = b.load(cnbr, idx);
                let lv = b.load_dep(vllr, vi, cfence);
                let mv = b.load_dep(msg, idx, cfence);
                let val = b.sub(lv, mv);
                let a = b.abs(val);
                let s = b.lt(val, 0.into());
                let c1 = b.lt(a, min1);
                // nested branch: two-minimum tracking
                let r = b.if_else(
                    c1,
                    |_| vec![a, min1, e],
                    |b| {
                        let c2 = b.lt(a, min2);
                        let rr = b.if_else(c2, |_| vec![a], |_| vec![min2]);
                        vec![min1, rr[0], arg]
                    },
                );
                let sgn2 = b.xor(sgn, s);
                vec![r[0], r[1], r[2], sgn2]
            });
            let (min1, min2, arg, sgn) = (mins[0], mins[1], mins[2], mins[3]);
            // serial inner loop 2: message update
            let upd = b.for_range(0, CHECK_DEG as i32, &[cfence], |b, e, uv| {
                let idx = b.add(base, e);
                let vi = b.load(cnbr, idx);
                let lv = b.load_dep(vllr, vi, uv[0]);
                let mv = b.load_dep(msg, idx, uv[0]);
                let val = b.sub(lv, mv);
                let se = b.lt(val, 0.into());
                let ise = b.eq(e, arg);
                let mag = b.mux(ise, min2, min1);
                let flip = b.xor(sgn, se);
                let nmag = b.neg(mag);
                let nm = b.mux(flip, nmag, mag);
                let tok = b.store(msg, idx, nm);
                vec![tok]
            });
            vec![upd[0]]
        });
        // ---- var pass ----
        let vars = b.for_range(0, n, &[checks[0]], |b, v, vv| {
            let vfence = vv[0];
            // llr_in may be produced by an upstream phase (the full
            // LDPC application), so order the read behind the fence.
            let x0 = b.load_dep(llr_in, v, vfence);
            let vb = b.mul(v, (VAR_DEG as i32).into());
            let acc = b.for_range(0, VAR_DEG as i32, &[x0], |b, d, av| {
                let ei = b.add(vb, d);
                let e = b.load(vedge, ei);
                let mv = b.load_dep(msg, e, vfence);
                vec![b.add(av[0], mv)]
            });
            let tok = b.store_dep(vllr, v, acc[0], vfence);
            vec![tok]
        });
        vec![vars[0]]
    });
    iter_out[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::interp_check_both;

    #[test]
    fn graph_is_regular() {
        let cnbr = gen_graph(32, 0);
        assert_eq!(cnbr.len(), 32 * VAR_DEG);
        let ve = var_edges(32, &cnbr);
        assert_eq!(ve.len(), 32 * VAR_DEG);
    }

    #[test]
    fn matches_golden() {
        interp_check_both(&LdpcDecode, Scale::Small, 10).unwrap();
    }

    #[test]
    fn profile_shape() {
        let k = LdpcDecode;
        let wl = k.workload(Scale::Tiny, 0);
        let g = k.build(&wl).unwrap();
        let p = marionette_cdfg::analysis::profile(&g);
        assert!(p.branches.nested);
        assert!(p.loops.serial);
        assert!(p.loops.imperfect);
        assert_eq!(p.loops.max_depth, 3);
    }
}
