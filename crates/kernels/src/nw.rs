//! NW (Needleman-Wunsch): sequence-alignment dynamic programming with
//! nested branch divergence in the innermost loop and a loop-carried
//! memory recurrence across rows (Table 1's bioinformatics row).

use crate::traits::{Golden, Kernel, KernelError, Scale, Workload};
use crate::workload;
use marionette_cdfg::builder::CdfgBuilder;
use marionette_cdfg::value::Value;
use marionette_cdfg::Cdfg;

/// Match reward.
pub const MATCH: i32 = 1;
/// Mismatch penalty.
pub const MISMATCH: i32 = -1;
/// Gap penalty.
pub const GAP: i32 = -1;

/// Needleman-Wunsch kernel: fills the `(n+1)²` score table.
#[derive(Debug, Default, Clone, Copy)]
pub struct Nw;

fn n_of(scale: Scale) -> usize {
    match scale {
        Scale::Paper => 128,
        Scale::Small => 16,
        Scale::Tiny => 5,
    }
}

/// Scalar reference (shared with tests).
pub fn nw_reference(a: &[i32], b: &[i32]) -> Vec<i32> {
    let n = a.len();
    let w = n + 1;
    let mut t = vec![0i32; w * w];
    for (j, slot) in t.iter_mut().enumerate().take(n + 1) {
        *slot = j as i32 * GAP;
    }
    for i in 1..=n {
        t[i * w] = i as i32 * GAP;
        for j in 1..=n {
            let m = if a[i - 1] == b[j - 1] {
                MATCH
            } else {
                MISMATCH
            };
            let s1 = t[(i - 1) * w + j - 1] + m;
            let s2 = t[(i - 1) * w + j] + GAP;
            let s3 = t[i * w + j - 1] + GAP;
            let best = if s1 >= s2 {
                if s1 >= s3 {
                    s1
                } else {
                    s3
                }
            } else if s2 >= s3 {
                s2
            } else {
                s3
            };
            t[i * w + j] = best;
        }
    }
    t
}

impl Kernel for Nw {
    fn name(&self) -> &'static str {
        "NW"
    }

    fn short(&self) -> &'static str {
        "NW"
    }

    fn domain(&self) -> &'static str {
        "Bioinformatics"
    }

    fn workload(&self, scale: Scale, seed: u64) -> Workload {
        let n = n_of(scale);
        let mut r = workload::rng(seed);
        Workload {
            arrays: vec![
                ("a".into(), workload::i32_vec(&mut r, n, 0, 4)),
                ("b".into(), workload::i32_vec(&mut r, n, 0, 4)),
            ],
            sizes: vec![("n".into(), n as i64)],
        }
    }

    fn build(&self, wl: &Workload) -> Result<Cdfg, KernelError> {
        let n = wl.size("n")? as i32;
        let w = n + 1;
        let mut b = CdfgBuilder::new("nw");
        let av = wl.array_i32("a")?;
        let bv = wl.array_i32("b")?;
        let aa = b.array_i32("a", av.len(), &av);
        let ba = b.array_i32("b", bv.len(), &bv);
        let table = b.array_i32("table", (w * w) as usize, &[]);
        b.mark_output(table);
        let start = b.start_token();

        // Row 0 initialization: table[j] = j * GAP. The chained store token
        // becomes the first row fence.
        let init = b.for_range(0, w, &[start], |b, j, v| {
            let val = b.mul(j, GAP.into());
            let tok = b.store_dep(table, j, val, v[0]);
            vec![tok]
        });
        let fence0 = init[0];

        // Main doubly-nested DP. The outer loop carries the row fence:
        // loads of row i-1 wait on the previous row's final store.
        let _ = b.for_range(1, w, &[fence0], |b, i, v| {
            let fence = v[0];
            let ai = b.sub(i, 1.into());
            let achr = b.load(aa, ai);
            let rowbase = b.mul(i, w.into());
            let prevbase = b.sub(rowbase, w.into());
            let left0 = b.mul(i, GAP.into());
            let tok0 = b.store_dep(table, rowbase, left0, fence);
            let inner = b.for_range(1, w, &[left0, tok0], |b, j, vars| {
                let (left, tok) = (vars[0], vars[1]);
                let up_i = b.add(prevbase, j);
                let diag_i = b.sub(up_i, 1.into());
                let up = b.load_dep(table, up_i, fence);
                let diag = b.load_dep(table, diag_i, fence);
                let bj = b.sub(j, 1.into());
                let bchr = b.load(ba, bj);
                let is_match = b.eq(achr, bchr);
                let m = b.mux(is_match, MATCH.into(), MISMATCH.into());
                let s1 = b.add(diag, m);
                let s2 = b.add(up, GAP.into());
                let s3 = b.add(left, GAP.into());
                // nested branch divergence: 3-way max
                let c1 = b.ge(s1, s2);
                let best = b.if_else(
                    c1,
                    |b| {
                        let c = b.ge(s1, s3);
                        let r = b.if_else(c, |_| vec![s1], |_| vec![s3]);
                        vec![r[0]]
                    },
                    |b| {
                        let c = b.ge(s2, s3);
                        let r = b.if_else(c, |_| vec![s2], |_| vec![s3]);
                        vec![r[0]]
                    },
                );
                let idx = b.add(rowbase, j);
                let tok2 = b.store_dep(table, idx, best[0], tok);
                vec![best[0], tok2]
            });
            vec![inner[1]]
        });
        Ok(b.finish())
    }

    fn golden(&self, wl: &Workload) -> Result<Golden, KernelError> {
        let t = nw_reference(&wl.array_i32("a")?, &wl.array_i32("b")?);
        Ok(Golden {
            arrays: vec![("table".into(), t.into_iter().map(Value::I32).collect())],
            sinks: vec![],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::interp_check_both;

    #[test]
    fn matches_golden() {
        interp_check_both(&Nw, Scale::Small, 7).unwrap();
    }

    #[test]
    fn profile_has_nested_branches() {
        let k = Nw;
        let wl = k.workload(Scale::Tiny, 0);
        let g = k.build(&wl).unwrap();
        let p = marionette_cdfg::analysis::profile(&g);
        assert!(p.branches.nested);
        assert!(p.branches.innermost);
        assert!(p.loops.nested);
    }
}
