//! Hough Transform (HT): line detection by accumulator voting. Control
//! above the inner loop decides whether a pixel votes at all (the paper's
//! "sub-inner" branch): we express it as a data-dependent inner-loop
//! bound, so non-edge pixels skip the θ sweep entirely — exactly the
//! zero-trip control that centralized architectures pay CCU round-trips
//! for. The accumulator read-modify-write chain is a loop-carried memory
//! recurrence.

use crate::traits::{Golden, Kernel, KernelError, Scale, Workload};
use crate::workload;
use marionette_cdfg::builder::CdfgBuilder;
use marionette_cdfg::value::Value;
use marionette_cdfg::Cdfg;

/// Fixed-point scale for the trig tables (2^10).
pub const FP_SHIFT: i32 = 10;

/// Hough transform kernel.
#[derive(Debug, Default, Clone, Copy)]
pub struct Hough;

/// `(height, width, theta-count)` per scale.
fn dims(scale: Scale) -> (usize, usize, usize) {
    match scale {
        Scale::Paper => (120, 180, 90),
        Scale::Small => (12, 18, 12),
        Scale::Tiny => (4, 6, 4),
    }
}

fn trig_tables(ntheta: usize) -> (Vec<i32>, Vec<i32>) {
    let scale = (1 << FP_SHIFT) as f64;
    let mut cos_t = Vec::with_capacity(ntheta);
    let mut sin_t = Vec::with_capacity(ntheta);
    for t in 0..ntheta {
        let th = std::f64::consts::PI * t as f64 / ntheta as f64;
        cos_t.push((th.cos() * scale).round() as i32);
        sin_t.push((th.sin() * scale).round() as i32);
    }
    (cos_t, sin_t)
}

fn nrho(h: usize, w: usize) -> usize {
    let diag = ((h * h + w * w) as f64).sqrt().ceil() as usize;
    2 * diag + 1
}

/// Scalar reference accumulator.
pub fn hough_reference(h: usize, w: usize, ntheta: usize, img: &[i32]) -> Vec<i32> {
    let (cos_t, sin_t) = trig_tables(ntheta);
    let nr = nrho(h, w);
    let half = (nr / 2) as i32;
    let mut acc = vec![0i32; ntheta * nr];
    for y in 0..h {
        for x in 0..w {
            if img[y * w + x] != 0 {
                for t in 0..ntheta {
                    let rho = (x as i32 * cos_t[t] + y as i32 * sin_t[t]) >> FP_SHIFT;
                    let idx = t * nr + (rho + half) as usize;
                    acc[idx] += 1;
                }
            }
        }
    }
    acc
}

impl Kernel for Hough {
    fn name(&self) -> &'static str {
        "Hough Transform"
    }

    fn short(&self) -> &'static str {
        "HT"
    }

    fn domain(&self) -> &'static str {
        "Computer Vision"
    }

    fn workload(&self, scale: Scale, seed: u64) -> Workload {
        let (h, w, nt) = dims(scale);
        let mut r = workload::rng(seed);
        Workload {
            arrays: vec![("img".into(), workload::binary_vec(&mut r, h * w, 12))],
            sizes: vec![
                ("h".into(), h as i64),
                ("w".into(), w as i64),
                ("nt".into(), nt as i64),
            ],
        }
    }

    fn build(&self, wl: &Workload) -> Result<Cdfg, KernelError> {
        let h = wl.size("h")? as i32;
        let w = wl.size("w")? as i32;
        let nt = wl.size("nt")? as i32;
        let nr = nrho(h as usize, w as usize) as i32;
        let half = nr / 2;
        let (cos_v, sin_v) = trig_tables(nt as usize);
        let mut b = CdfgBuilder::new("hough");
        let iv = wl.array_i32("img")?;
        let img = b.array_i32("img", iv.len(), &iv);
        let cos_t = b.array_i32("cos", cos_v.len(), &cos_v);
        let sin_t = b.array_i32("sin", sin_v.len(), &sin_v);
        let acc = b.array_i32("acc", (nt * nr) as usize, &[]);
        b.mark_output(acc);
        let start = b.start_token();

        let _ = b.for_range(0, h, &[start], |b, y, vy| {
            let rowbase = b.mul(y, w.into());
            let xs = b.for_range(0, w, &[vy[0]], |b, x, vx| {
                let pi = b.add(rowbase, x);
                let px = b.load(img, pi);
                let edge = b.ne(px, 0.into());
                // Sub-inner control: the θ loop runs 0 or nt times.
                let bound = b.mux(edge, nt.into(), 0.into());
                let th = b.for_range(0, bound, &[vx[0]], |b, t, vt| {
                    let c = b.load(cos_t, t);
                    let s = b.load(sin_t, t);
                    let xc = b.mul(x, c);
                    let ys = b.mul(y, s);
                    let sum = b.add(xc, ys);
                    let rho = b.ashr(sum, FP_SHIFT.into());
                    let ri = b.add(rho, half.into());
                    let ti = b.mul(t, nr.into());
                    let idx = b.add(ti, ri);
                    // RMW with a carried dependence token.
                    let cur = b.load_dep(acc, idx, vt[0]);
                    let inc = b.add(cur, 1.into());
                    let tok = b.store(acc, idx, inc);
                    vec![tok]
                });
                vec![th[0]]
            });
            vec![xs[0]]
        });
        Ok(b.finish())
    }

    fn golden(&self, wl: &Workload) -> Result<Golden, KernelError> {
        let h = wl.size("h")? as usize;
        let w = wl.size("w")? as usize;
        let nt = wl.size("nt")? as usize;
        let acc = hough_reference(h, w, nt, &wl.array_i32("img")?);
        Ok(Golden {
            arrays: vec![("acc".into(), acc.into_iter().map(Value::I32).collect())],
            sinks: vec![],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::interp_check_both;

    #[test]
    fn matches_golden() {
        interp_check_both(&Hough, Scale::Small, 9).unwrap();
    }

    #[test]
    fn profile_is_deep_dynamic_nest() {
        let k = Hough;
        let wl = k.workload(Scale::Tiny, 0);
        let g = k.build(&wl).unwrap();
        let p = marionette_cdfg::analysis::profile(&g);
        assert_eq!(p.loops.max_depth, 3);
        assert!(p.loops.dynamic_bounds, "θ bound is data-dependent");
        assert!(p.loops.imperfect);
    }
}
