//! Merge Sort (MS): bottom-up merge sort. The paper's flagship branch
//! divergence kernel (Fig 3a): the merge comparison forks the data flow
//! every iteration, so branch-target PEs see per-iteration configuration
//! switches — the case Proactive PE Configuration wins the most (Fig 11:
//! up to 1.45×).
//!
//! All three loop levels are `while` loops with data-dependent bounds
//! (runs shrink and widths double), and the pass structure writes through
//! a scratch buffer with a copy-back loop, mirroring how a CGRA actually
//! stages the passes.

use crate::traits::{Golden, Kernel, KernelError, Scale, Workload};
use crate::workload;
use marionette_cdfg::builder::CdfgBuilder;
use marionette_cdfg::value::Value;
use marionette_cdfg::Cdfg;

/// Merge sort kernel.
#[derive(Debug, Default, Clone, Copy)]
pub struct MergeSort;

fn n_of(scale: Scale) -> usize {
    match scale {
        Scale::Paper => 1024,
        Scale::Small => 64,
        Scale::Tiny => 8,
    }
}

impl Kernel for MergeSort {
    fn name(&self) -> &'static str {
        "Merge Sort"
    }

    fn short(&self) -> &'static str {
        "MS"
    }

    fn domain(&self) -> &'static str {
        "General purpose"
    }

    fn workload(&self, scale: Scale, seed: u64) -> Workload {
        let n = n_of(scale);
        let mut r = workload::rng(seed);
        Workload {
            arrays: vec![("data".into(), workload::i32_vec(&mut r, n, -1000, 1000))],
            sizes: vec![("n".into(), n as i64)],
        }
    }

    fn build(&self, wl: &Workload) -> Result<Cdfg, KernelError> {
        let n = wl.size("n")? as i32;
        let mut b = CdfgBuilder::new("mergesort");
        let dv = wl.array_i32("data")?;
        let a = b.array_i32("data", dv.len(), &dv);
        let tmp = b.array_i32("tmp", dv.len(), &[]);
        b.mark_output(a);
        let start = b.start_token();

        // Pass loop: width = 1, 2, 4, ... while width < n.
        let one = b.imm(1);
        let _ = b.loop_while(
            &[one, start],
            |b, vals| b.lt(vals[0], n.into()),
            |b, vals| {
                let (width, fence) = (vals[0], vals[1]);
                let two_w = b.shl(width, 1.into());
                // Run loop: merge [lo, lo+width) and [lo+width, lo+2w).
                let zero = b.imm(0);
                let runs = b.loop_while(
                    &[zero, fence],
                    |b, rv| b.lt(rv[0], n.into()),
                    |b, rv| {
                        let (lo, rfence) = (rv[0], rv[1]);
                        let mid0 = b.add(lo, width);
                        let mid = b.min(mid0, n.into());
                        let hi0 = b.add(lo, two_w);
                        let hi = b.min(hi0, n.into());
                        // Main merge: while i < mid && j < hi.
                        let merged = b.loop_while(
                            &[lo, mid, lo, rfence],
                            |b, mv| {
                                let c1 = b.lt(mv[0], mid);
                                let c2 = b.lt(mv[1], hi);
                                b.and_(c1, c2)
                            },
                            |b, mv| {
                                let (i, j, k, tok) = (mv[0], mv[1], mv[2], mv[3]);
                                let av = b.load_dep(a, i, tok);
                                let bv = b.load_dep(a, j, tok);
                                let take_a = b.le(av, bv);
                                // The branch divergence of Fig 3(a).
                                let r = b.if_else(
                                    take_a,
                                    |b| {
                                        let t = b.store(tmp, k, av);
                                        let i2 = b.add(i, 1.into());
                                        vec![i2, j, t]
                                    },
                                    |b| {
                                        let t = b.store(tmp, k, bv);
                                        let j2 = b.add(j, 1.into());
                                        vec![i, j2, t]
                                    },
                                );
                                let k2 = b.add(k, 1.into());
                                vec![r[0], r[1], k2, r[2]]
                            },
                        );
                        // Drain left run.
                        let d1 = b.loop_while(
                            &[merged[0], merged[2], merged[3]],
                            |b, dv| b.lt(dv[0], mid),
                            |b, dv| {
                                let x = b.load_dep(a, dv[0], dv[2]);
                                let t = b.store(tmp, dv[1], x);
                                let i2 = b.add(dv[0], 1.into());
                                let k2 = b.add(dv[1], 1.into());
                                vec![i2, k2, t]
                            },
                        );
                        // Drain right run.
                        let d2 = b.loop_while(
                            &[merged[1], d1[1], d1[2]],
                            |b, dv| b.lt(dv[0], hi),
                            |b, dv| {
                                let x = b.load_dep(a, dv[0], dv[2]);
                                let t = b.store(tmp, dv[1], x);
                                let j2 = b.add(dv[0], 1.into());
                                let k2 = b.add(dv[1], 1.into());
                                vec![j2, k2, t]
                            },
                        );
                        let lo2 = b.add(lo, two_w);
                        vec![lo2, d2[2]]
                    },
                );
                // Copy back tmp -> data for the next pass.
                let zero2 = b.imm(0);
                let copy = b.for_range(0, n, &[runs[1], zero2], |b, t, cv| {
                    let x = b.load_dep(tmp, t, cv[0]);
                    let tok = b.store(a, t, x);
                    vec![tok, cv[1]]
                });
                vec![two_w, copy[0]]
            },
        );
        Ok(b.finish())
    }

    fn golden(&self, wl: &Workload) -> Result<Golden, KernelError> {
        let mut data = wl.array_i32("data")?;
        data.sort();
        Ok(Golden {
            arrays: vec![("data".into(), data.into_iter().map(Value::I32).collect())],
            sinks: vec![],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::interp_check_both;

    #[test]
    fn matches_golden() {
        interp_check_both(&MergeSort, Scale::Small, 11).unwrap();
    }

    #[test]
    fn tiny_matches() {
        interp_check_both(&MergeSort, Scale::Tiny, 12).unwrap();
    }

    #[test]
    fn profile_has_innermost_branch_under_deep_nest() {
        let k = MergeSort;
        let wl = k.workload(Scale::Tiny, 0);
        let g = k.build(&wl).unwrap();
        let p = marionette_cdfg::analysis::profile(&g);
        assert!(p.branches.innermost);
        assert!(p.loops.serial, "merge + drains + copy are serial loops");
        assert!(p.loops.dynamic_bounds);
        assert!(p.ops_under_branch > 0.05);
    }
}
