//! The full LDPC application of Fig 17's closing claim: a non-intensive
//! front end (channel LLR conditioning), the intensive min-sum decode,
//! and a non-intensive back end (hard decision + error statistics) in a
//! single program — "containing both intensive control flow and
//! non-intensive control flow kernels".

use crate::ldpc::{decoder_core, gen_graph, var_edges, CHECK_DEG, VAR_DEG};
use crate::traits::{Golden, Kernel, KernelError, Scale, Workload};
use crate::workload;
use marionette_cdfg::builder::CdfgBuilder;
use marionette_cdfg::value::Value;
use marionette_cdfg::Cdfg;

/// The composite LDPC application kernel.
#[derive(Debug, Default, Clone, Copy)]
pub struct LdpcApp;

fn dims(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Paper => (128, 20),
        Scale::Small => (32, 4),
        Scale::Tiny => (8, 2),
    }
}

/// LLR conditioning: scale raw 8-bit channel samples into the decoder's
/// saturated 6-bit LLR range.
fn condition(raw: i32) -> i32 {
    (raw >> 2).clamp(-31, 31)
}

/// Scalar reference for the whole application: returns
/// `(vllr, hard, one_count)`.
pub fn app_reference(
    n: usize,
    iters: usize,
    cnbr: &[i32],
    raw: &[i32],
) -> (Vec<i32>, Vec<i32>, i32) {
    let llr: Vec<i32> = raw.iter().map(|&r| condition(r)).collect();
    let (vllr, hard) = crate::ldpc::ldpc_reference(n, iters, cnbr, &llr);
    let ones = hard.iter().sum();
    (vllr, hard, ones)
}

impl Kernel for LdpcApp {
    fn name(&self) -> &'static str {
        "LDPC Application"
    }

    fn short(&self) -> &'static str {
        "LDPC-APP"
    }

    fn domain(&self) -> &'static str {
        "Mobile Communication"
    }

    fn workload(&self, scale: Scale, seed: u64) -> Workload {
        let (n, iters) = dims(scale);
        let mut r = workload::rng(seed);
        let cnbr = gen_graph(n, seed);
        Workload {
            arrays: vec![
                ("raw".into(), workload::i32_vec(&mut r, n, -128, 128)),
                ("cnbr".into(), cnbr.into_iter().map(Value::I32).collect()),
            ],
            sizes: vec![("n".into(), n as i64), ("iters".into(), iters as i64)],
        }
    }

    fn build(&self, wl: &Workload) -> Result<Cdfg, KernelError> {
        let n = wl.size("n")? as i32;
        let iters = wl.size("iters")? as i32;
        let m = n * VAR_DEG as i32 / CHECK_DEG as i32;
        let cnbr_v = wl.array_i32("cnbr")?;
        let vedge_v = var_edges(n as usize, &cnbr_v);
        let raw_v = wl.array_i32("raw")?;

        let mut b = CdfgBuilder::new("ldpc_app");
        let raw = b.array_i32("raw", raw_v.len(), &raw_v);
        let llr_in = b.array_i32("llr_in", n as usize, &[]);
        let cnbr = b.array_i32("cnbr", cnbr_v.len(), &cnbr_v);
        let vedge = b.array_i32("vedge", vedge_v.len(), &vedge_v);
        let vllr = b.array_i32("vllr", n as usize, &[]);
        let msg = b.array_i32("msg", (m * CHECK_DEG as i32) as usize, &[]);
        let hard = b.array_i32("hard", n as usize, &[]);
        b.mark_output(vllr);
        b.mark_output(hard);
        let start = b.start_token();

        // Phase 1 (non-intensive): condition raw channel samples and seed
        // the working LLRs.
        let pre = b.for_range(0, n, &[start], |b, v, t| {
            let x = b.load(raw, v);
            let s = b.ashr(x, 2.into());
            let lo = b.imm(-31);
            let hi = b.imm(31);
            let c1 = b.max(s, lo);
            let c = b.min(c1, hi);
            let t1 = b.store_dep(llr_in, v, c, t[0]);
            let t2 = b.store_dep(vllr, v, c, t1);
            vec![t2]
        });

        // Phase 2 (intensive): min-sum decoding iterations.
        let decoded = decoder_core(&mut b, llr_in, cnbr, vedge, vllr, msg, n, iters, pre[0]);

        // Phase 3 (non-intensive): hard decisions + popcount.
        let zero = b.imm(0);
        let post = b.for_range(0, n, &[decoded, zero], |b, v, t| {
            let x = b.load_dep(vllr, v, t[0]);
            let h = b.lt(x, 0.into());
            let tok = b.store_dep(hard, v, h, t[0]);
            let ones = b.in_loop_header(|b| b.add(t[1], h));
            vec![tok, ones]
        });
        b.sink("ones", post[1]);
        Ok(b.finish())
    }

    fn golden(&self, wl: &Workload) -> Result<Golden, KernelError> {
        let n = wl.size("n")? as usize;
        let iters = wl.size("iters")? as usize;
        let (vllr, hard, ones) =
            app_reference(n, iters, &wl.array_i32("cnbr")?, &wl.array_i32("raw")?);
        Ok(Golden {
            arrays: vec![
                ("vllr".into(), vllr.into_iter().map(Value::I32).collect()),
                ("hard".into(), hard.into_iter().map(Value::I32).collect()),
            ],
            sinks: vec![("ones".into(), vec![Value::I32(ones)])],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::interp_check_both;

    #[test]
    fn matches_golden() {
        interp_check_both(&LdpcApp, Scale::Small, 21).unwrap();
    }

    #[test]
    fn conditioning_saturates() {
        assert_eq!(condition(127), 31);
        assert_eq!(condition(-128), -31);
        assert_eq!(condition(12), 3);
    }

    #[test]
    fn mixes_intensive_and_non_intensive_phases() {
        let k = LdpcApp;
        let wl = k.workload(Scale::Tiny, 0);
        let g = k.build(&wl).unwrap();
        let p = marionette_cdfg::analysis::profile(&g);
        assert!(p.branches.nested, "decoder's min-search branches");
        assert!(p.loops.serial, "pre / decode / post phases");
    }
}
