//! ADPCM Encode (IMA): a serial-branch chain inside a single sample loop —
//! Table 1's "Serial branches" row. Every branch feeds the next through
//! loop-carried predictor state, so control latency sits on the critical
//! path (only partially pipelinable; Fig 16 puts ADPCM on the
//! control-network side of the speedup balance).

use crate::traits::{Golden, Kernel, KernelError, Scale, Workload};
use crate::workload;
use marionette_cdfg::builder::CdfgBuilder;
use marionette_cdfg::value::Value;
use marionette_cdfg::Cdfg;

/// IMA ADPCM step-size table.
pub const STEP_TABLE: [i32; 89] = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37, 41, 45, 50, 55, 60, 66,
    73, 80, 88, 97, 107, 118, 130, 143, 157, 173, 190, 209, 230, 253, 279, 307, 337, 371, 408, 449,
    494, 544, 598, 658, 724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066, 2272,
    2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894, 6484, 7132, 7845, 8630, 9493,
    10442, 11487, 12635, 13899, 15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
];

/// IMA ADPCM index adjustment table (4-bit codes, magnitude part).
pub const INDEX_ADJ: [i32; 8] = [-1, -1, -1, -1, 2, 4, 6, 8];

/// ADPCM encoder kernel.
#[derive(Debug, Default, Clone, Copy)]
pub struct AdpcmEncode;

fn n_of(scale: Scale) -> usize {
    match scale {
        Scale::Paper => 2000,
        Scale::Small => 128,
        Scale::Tiny => 12,
    }
}

/// Scalar reference encoder (shared with the golden model and tests).
pub fn encode_reference(samples: &[i32]) -> Vec<i32> {
    let mut valpred = 0i32;
    let mut index = 0i32;
    let mut out = Vec::with_capacity(samples.len());
    for &sample in samples {
        let mut diff = sample - valpred;
        let sign = if diff < 0 { 8 } else { 0 };
        if sign != 0 {
            diff = -diff;
        }
        let mut step = STEP_TABLE[index as usize];
        let mut vpdiff = step >> 3;
        let mut delta = 0i32;
        if diff >= step {
            delta = 4;
            diff -= step;
            vpdiff += step;
        }
        step >>= 1;
        if diff >= step {
            delta |= 2;
            diff -= step;
            vpdiff += step;
        }
        step >>= 1;
        if diff >= step {
            delta |= 1;
            vpdiff += step;
        }
        if sign != 0 {
            valpred -= vpdiff;
        } else {
            valpred += vpdiff;
        }
        valpred = valpred.clamp(-32768, 32767);
        delta |= sign;
        index += INDEX_ADJ[(delta & 7) as usize];
        index = index.clamp(0, 88);
        out.push(delta);
    }
    out
}

impl Kernel for AdpcmEncode {
    fn name(&self) -> &'static str {
        "ADPCM Encode"
    }

    fn short(&self) -> &'static str {
        "ADPCM"
    }

    fn domain(&self) -> &'static str {
        "Mobile Communication"
    }

    fn workload(&self, scale: Scale, seed: u64) -> Workload {
        let n = n_of(scale);
        let mut r = workload::rng(seed);
        Workload {
            arrays: vec![("pcm".into(), workload::i32_vec(&mut r, n, -20000, 20000))],
            sizes: vec![("n".into(), n as i64)],
        }
    }

    fn build(&self, wl: &Workload) -> Result<Cdfg, KernelError> {
        let n = wl.size("n")? as i32;
        let mut b = CdfgBuilder::new("adpcm");
        let pv = wl.array_i32("pcm")?;
        let pcm = b.array_i32("pcm", pv.len(), &pv);
        let steps = b.array_i32("steps", STEP_TABLE.len(), &STEP_TABLE);
        let iadj = b.array_i32("iadj", INDEX_ADJ.len(), &INDEX_ADJ);
        let out = b.array_i32("code", n as usize, &[]);
        b.mark_output(out);

        let valpred0 = b.imm(0);
        let index0 = b.imm(0);
        let _ = b.for_range(0, n, &[valpred0, index0], |b, i, v| {
            let (valpred, index) = (v[0], v[1]);
            let sample = b.load(pcm, i);
            let diff0 = b.sub(sample, valpred);
            let neg = b.lt(diff0, 0.into());
            // branch 1: sign extraction
            let r1 = b.if_else(
                neg,
                |b| vec![b.imm(8), b.neg(diff0)],
                |b| {
                    let z = b.imm(0);
                    vec![z, diff0]
                },
            );
            let (sign, diff1) = (r1[0], r1[1]);
            let step0 = b.load(steps, index);
            let vpdiff0 = b.shr(step0, 3.into());
            // branch 2: bit 2
            let c2 = b.ge(diff1, step0);
            let r2 = b.if_else(
                c2,
                |b| {
                    let d = b.imm(4);
                    let diff = b.sub(diff1, step0);
                    let vp = b.add(vpdiff0, step0);
                    vec![d, diff, vp]
                },
                |b| {
                    let z = b.imm(0);
                    vec![z, diff1, vpdiff0]
                },
            );
            let step1 = b.shr(step0, 1.into());
            // branch 3: bit 1
            let c3 = b.ge(r2[1], step1);
            let r3 = b.if_else(
                c3,
                |b| {
                    let d = b.or_(r2[0], 2.into());
                    let diff = b.sub(r2[1], step1);
                    let vp = b.add(r2[2], step1);
                    vec![d, diff, vp]
                },
                |_| vec![r2[0], r2[1], r2[2]],
            );
            let step2 = b.shr(step1, 1.into());
            // branch 4: bit 0
            let c4 = b.ge(r3[1], step2);
            let r4 = b.if_else(
                c4,
                |b| {
                    let d = b.or_(r3[0], 1.into());
                    let vp = b.add(r3[2], step2);
                    vec![d, vp]
                },
                |_| vec![r3[0], r3[2]],
            );
            let (delta_mag, vpdiff) = (r4[0], r4[1]);
            // branch 5: predictor update direction
            let r5 = b.if_else(
                sign,
                |b| vec![b.sub(valpred, vpdiff)],
                |b| vec![b.add(valpred, vpdiff)],
            );
            let lo = b.imm(-32768);
            let hi = b.imm(32767);
            let vp1 = b.max(r5[0], lo);
            let valpred_next = b.min(vp1, hi);
            let delta = b.or_(delta_mag, sign);
            let sel = b.and_(delta, 7.into());
            let adj = b.load(iadj, sel);
            let idx1 = b.add(index, adj);
            let zero = b.imm(0);
            let idx2 = b.max(idx1, zero);
            let index_next = b.min(idx2, 88.into());
            b.store(out, i, delta);
            vec![valpred_next, index_next]
        });
        Ok(b.finish())
    }

    fn golden(&self, wl: &Workload) -> Result<Golden, KernelError> {
        let code = encode_reference(&wl.array_i32("pcm")?);
        Ok(Golden {
            arrays: vec![("code".into(), code.into_iter().map(Value::I32).collect())],
            sinks: vec![],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::interp_check_both;

    #[test]
    fn matches_golden() {
        interp_check_both(&AdpcmEncode, Scale::Small, 6).unwrap();
    }

    #[test]
    fn profile_has_serial_branches() {
        let k = AdpcmEncode;
        let wl = k.workload(Scale::Tiny, 0);
        let g = k.build(&wl).unwrap();
        let p = marionette_cdfg::analysis::profile(&g);
        assert!(p.branches.serial);
        assert!(p.branches.innermost);
        assert!(p.ops_under_branch > 0.2);
    }
}
