//! CRC (CRC-32, bitwise): innermost branch divergence inside an imperfect
//! nest, plus a serial preprocessing loop (Table 1's MiBench row). The
//! control-network feature shows its largest win here (Fig 12: 1.36×).

use crate::traits::{Golden, Kernel, KernelError, Scale, Workload};
use crate::workload;
use marionette_cdfg::builder::CdfgBuilder;
use marionette_cdfg::value::Value;
use marionette_cdfg::Cdfg;

/// CRC-32 polynomial (reflected).
pub const POLY: i32 = 0xEDB8_8320u32 as i32;

/// CRC kernel: bitwise CRC-32 over a byte message.
#[derive(Debug, Default, Clone, Copy)]
pub struct Crc;

fn n_of(scale: Scale) -> usize {
    match scale {
        Scale::Paper => 64,
        Scale::Small => 16,
        Scale::Tiny => 4,
    }
}

/// Bitwise CRC-32 reference (shared with tests).
pub fn crc32_reference(bytes: &[i32]) -> i32 {
    let mut crc: i32 = -1; // 0xFFFFFFFF
    for &b in bytes {
        crc ^= b & 0xFF;
        for _ in 0..8 {
            if crc & 1 != 0 {
                crc = ((crc as u32) >> 1) as i32 ^ POLY;
            } else {
                crc = ((crc as u32) >> 1) as i32;
            }
        }
    }
    !crc
}

impl Kernel for Crc {
    fn name(&self) -> &'static str {
        "CRC"
    }

    fn short(&self) -> &'static str {
        "CRC"
    }

    fn domain(&self) -> &'static str {
        "Mobile Communication"
    }

    fn workload(&self, scale: Scale, seed: u64) -> Workload {
        let n = n_of(scale);
        let mut r = workload::rng(seed);
        Workload {
            arrays: vec![("msg".into(), workload::i32_vec(&mut r, n, 0, 256))],
            sizes: vec![("n".into(), n as i64)],
        }
    }

    fn build(&self, wl: &Workload) -> Result<Cdfg, KernelError> {
        let n = wl.size("n")? as i32;
        let mut b = CdfgBuilder::new("crc");
        let mv = wl.array_i32("msg")?;
        let msg = b.array_i32("msg", mv.len(), &mv);
        let work = b.array_i32("work", mv.len(), &[]);
        let start = b.start_token();

        // Serial loop 1: byte preprocessing (mask to 8 bits into `work`).
        let zero = b.imm(0);
        let prep = b.for_range(0, n, &[start, zero], |b, i, v| {
            let x = b.load(msg, i);
            let m = b.and_(x, 0xFF.into());
            let tok = b.store(work, i, m);
            vec![tok, v[1]]
        });
        let fence = prep[0];

        // Serial loop 2: the bitwise CRC (imperfect nest: byte xor at the
        // outer level, bit loop inner, branch innermost).
        let minus1 = b.imm(-1);
        let out = b.for_range(0, n, &[minus1, fence], |b, i, v| {
            let byte = b.load_dep(work, i, v[1]);
            let crc_in = b.xor(v[0], byte);
            let bits = b.for_range(0, 8, &[crc_in], |b, _bit, w| {
                let lsb = b.and_(w[0], 1.into());
                let sh = b.shr(w[0], 1.into());
                let r = b.if_else(
                    lsb,
                    |b| vec![b.xor(sh, POLY.into())],
                    |b| {
                        let _ = b;
                        vec![sh]
                    },
                );
                vec![r[0]]
            });
            vec![bits[0], v[1]]
        });
        let inv = b.not_(out[0]);
        b.sink("crc", inv);
        Ok(b.finish())
    }

    fn golden(&self, wl: &Workload) -> Result<Golden, KernelError> {
        let msg = wl.array_i32("msg")?;
        Ok(Golden {
            arrays: vec![],
            sinks: vec![("crc".into(), vec![Value::I32(crc32_reference(&msg))])],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::interp_check_both;

    #[test]
    fn matches_golden() {
        interp_check_both(&Crc, Scale::Small, 5).unwrap();
    }

    #[test]
    fn reference_known_vector() {
        // CRC-32 of "123456789" is 0xCBF43926.
        let bytes: Vec<i32> = b"123456789".iter().map(|&b| b as i32).collect();
        assert_eq!(crc32_reference(&bytes) as u32, 0xCBF4_3926);
    }

    #[test]
    fn profile_has_innermost_branch_and_serial_loops() {
        let k = Crc;
        let wl = k.workload(Scale::Tiny, 0);
        let g = k.build(&wl).unwrap();
        let p = marionette_cdfg::analysis::profile(&g);
        assert!(p.branches.innermost);
        assert!(p.loops.serial);
        assert!(p.loops.nested);
    }
}
