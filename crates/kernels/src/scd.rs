//! SC Decode (SCD): successive-cancellation decoding of a polar code.
//!
//! The decoder follows the fast-SSC formulation: the static DFS schedule
//! over the code tree (f-messages down the left edges, g-messages after
//! left decisions, partial-sum combines on the way up, frozen/information
//! decisions at the leaves) is precomputed at build time into *visit
//! tables* — exactly how vectorized/spatial SC decoders are deployed —
//! and the kernel executes the schedule with data-dependent inner-loop
//! extents, min-sign branches in `f`, and sign-select branches in `g`.
//! This gives Table 1's SCD shape: innermost branches, an imperfect nest
//! and serial (phase-alternating) loops.

use crate::traits::{Golden, Kernel, KernelError, Scale, Workload};
use crate::workload;
use marionette_cdfg::builder::CdfgBuilder;
use marionette_cdfg::value::Value;
use marionette_cdfg::Cdfg;

/// SC polar decoder kernel.
#[derive(Debug, Default, Clone, Copy)]
pub struct ScDecode;

fn n_of(scale: Scale) -> usize {
    match scale {
        Scale::Paper => 2048,
        Scale::Small => 64,
        Scale::Tiny => 8,
    }
}

/// Visit opcodes of the static SC schedule.
const OP_F: i32 = 0;
const OP_G: i32 = 1;
const OP_COMBINE: i32 = 2;
const OP_LEAF: i32 = 3;

/// One visit: `(op, size, llr_src, llr_dst, bit_a, bit_b)` — offsets into
/// the LLR workspace / bit workspace.
#[derive(Clone, Copy, Debug)]
pub struct Visit {
    op: i32,
    size: i32,
    src: i32,
    dst: i32,
    ba: i32,
    bb: i32,
}

/// Builds the DFS schedule for a length-`n` code.
///
/// Workspace layout: LLR level `l` (node size `n >> l`) lives at offset
/// `2n - (n >> (l-1))`... simplified: each tree level gets a contiguous
/// region; left/right children share their parent's level slot since SC
/// visits them sequentially.
pub fn schedule(n: usize) -> Vec<Visit> {
    let levels = n.trailing_zeros() as usize;
    // LLR workspace: level l (sizes n/2^l) at offset off[l].
    let mut off = vec![0i32; levels + 1];
    for l in 1..=levels {
        off[l] = off[l - 1] + (n >> (l - 1)) as i32;
    }
    let mut visits = Vec::new();
    // Bits workspace mirrors the leaf order: bit region per node = its
    // span in natural order.
    fn rec(
        visits: &mut Vec<Visit>,
        off: &[i32],
        level: usize,
        pos: usize, // leaf span start
        size: usize,
    ) {
        if size == 1 {
            visits.push(Visit {
                op: OP_LEAF,
                size: 1,
                src: off[level],
                dst: pos as i32,
                ba: pos as i32,
                bb: 0,
            });
            return;
        }
        let half = size / 2;
        // f: child LLRs from this node's LLRs
        visits.push(Visit {
            op: OP_F,
            size: half as i32,
            src: off[level],
            dst: off[level + 1],
            ba: 0,
            bb: 0,
        });
        rec(visits, off, level + 1, pos, half);
        // g: right child LLRs use left decisions
        visits.push(Visit {
            op: OP_G,
            size: half as i32,
            src: off[level],
            dst: off[level + 1],
            ba: pos as i32,
            bb: 0,
        });
        rec(visits, off, level + 1, pos + half, half);
        // combine partial sums: u_left ^= u_right
        visits.push(Visit {
            op: OP_COMBINE,
            size: half as i32,
            src: 0,
            dst: pos as i32,
            ba: pos as i32,
            bb: (pos + half) as i32,
        });
    }
    rec(&mut visits, &off, 0, 0, n);
    visits
}

/// Total LLR workspace size for a length-`n` code.
pub fn workspace_len(n: usize) -> usize {
    2 * n // sum over levels of n/2^l < 2n
}

/// Scalar reference: executes the same schedule.
pub fn scd_reference(n: usize, llr: &[i32], frozen: &[i32]) -> Vec<i32> {
    let mut w = vec![0i32; workspace_len(n)];
    let mut u = vec![0i32; n];
    w[..n].copy_from_slice(llr);
    for v in schedule(n) {
        let sz = v.size as usize;
        match v.op {
            OP_F => {
                for i in 0..sz {
                    let a = w[v.src as usize + i];
                    let b = w[v.src as usize + sz + i];
                    let mag = a.abs().min(b.abs());
                    let s = (a < 0) ^ (b < 0);
                    w[v.dst as usize + i] = if s { -mag } else { mag };
                }
            }
            OP_G => {
                for i in 0..sz {
                    let a = w[v.src as usize + i];
                    let b = w[v.src as usize + sz + i];
                    let ub = u[v.ba as usize + i];
                    w[v.dst as usize + i] = if ub != 0 { b - a } else { b + a };
                }
            }
            OP_COMBINE => {
                for i in 0..sz {
                    u[v.ba as usize + i] ^= u[v.bb as usize + i];
                }
            }
            OP_LEAF => {
                let bit = if frozen[v.ba as usize] != 0 {
                    0
                } else {
                    (w[v.src as usize] < 0) as i32
                };
                u[v.ba as usize] = bit;
            }
            _ => unreachable!(),
        }
    }
    u
}

impl Kernel for ScDecode {
    fn name(&self) -> &'static str {
        "SC Decode"
    }

    fn short(&self) -> &'static str {
        "SCD"
    }

    fn domain(&self) -> &'static str {
        "Mobile Communication"
    }

    fn workload(&self, scale: Scale, seed: u64) -> Workload {
        let n = n_of(scale);
        let mut r = workload::rng(seed);
        Workload {
            arrays: vec![
                ("llr".into(), workload::i32_vec(&mut r, n, -31, 32)),
                ("frozen".into(), workload::binary_vec(&mut r, n, 50)),
            ],
            sizes: vec![("n".into(), n as i64)],
        }
    }

    fn build(&self, wl: &Workload) -> Result<Cdfg, KernelError> {
        let n = wl.size("n")? as i32;
        let sched = schedule(n as usize);
        let nv = sched.len() as i32;
        // Flatten the schedule into parallel visit tables.
        let vop: Vec<i32> = sched.iter().map(|v| v.op).collect();
        let vsize: Vec<i32> = sched.iter().map(|v| v.size).collect();
        let vsrc: Vec<i32> = sched.iter().map(|v| v.src).collect();
        let vdst: Vec<i32> = sched.iter().map(|v| v.dst).collect();
        let vba: Vec<i32> = sched.iter().map(|v| v.ba).collect();
        let vbb: Vec<i32> = sched.iter().map(|v| v.bb).collect();

        let llr_v = wl.array_i32("llr")?;
        let frz_v = wl.array_i32("frozen")?;
        let mut b = CdfgBuilder::new("scd");
        let llr = b.array_i32("llr", llr_v.len(), &llr_v);
        let frz = b.array_i32("frozen", frz_v.len(), &frz_v);
        let top = b.array_i32("op_t", vop.len(), &vop);
        let tsz = b.array_i32("sz_t", vsize.len(), &vsize);
        let tsrc = b.array_i32("src_t", vsrc.len(), &vsrc);
        let tdst = b.array_i32("dst_t", vdst.len(), &vdst);
        let tba = b.array_i32("ba_t", vba.len(), &vba);
        let tbb = b.array_i32("bb_t", vbb.len(), &vbb);
        let w = b.array_i32("w", workspace_len(n as usize), &[]);
        let u = b.array_i32("u", n as usize, &[]);
        b.mark_output(u);
        let start = b.start_token();

        // Load channel LLRs into the workspace root level.
        let init = b.for_range(0, n, &[start], |b, i, t| {
            let x = b.load(llr, i);
            let tok = b.store_dep(w, i, x, t[0]);
            vec![tok]
        });

        // Execute the static schedule.
        let _ = b.for_range(0, nv, &[init[0]], |b, vi, fv| {
            let fence = fv[0];
            let op = b.load(top, vi);
            let sz = b.load(tsz, vi);
            let src = b.load(tsrc, vi);
            let dst = b.load(tdst, vi);
            let ba = b.load(tba, vi);
            let bb = b.load(tbb, vi);
            let elems = b.for_range(0, sz, &[fence], |b, i, ev| {
                let tok = ev[0];
                let si = b.add(src, i);
                let sj = b.add(si, sz);
                let isf = b.eq(op, OP_F.into());
                let isg = b.eq(op, OP_G.into());
                let isc = b.eq(op, OP_COMBINE.into());
                // Nested dispatch: f / g / combine / leaf.
                let res = b.if_else(
                    isf,
                    |b| {
                        let a = b.load_dep(w, si, tok);
                        let x = b.load_dep(w, sj, tok);
                        let aa = b.abs(a);
                        let ax = b.abs(x);
                        let mag = b.min(aa, ax);
                        let sa = b.lt(a, 0.into());
                        let sx = b.lt(x, 0.into());
                        let s = b.xor(sa, sx);
                        let nm = b.neg(mag);
                        let val = b.mux(s, nm, mag);
                        let di = b.add(dst, i);
                        let t = b.store(w, di, val);
                        vec![t]
                    },
                    |b| {
                        let inner = b.if_else(
                            isg,
                            |b| {
                                let a = b.load_dep(w, si, tok);
                                let x = b.load_dep(w, sj, tok);
                                let ui = b.add(ba, i);
                                let ub = b.load_dep(u, ui, tok);
                                let sum = b.add(x, a);
                                let dif = b.sub(x, a);
                                let val = b.mux(ub, dif, sum);
                                let di = b.add(dst, i);
                                let t = b.store(w, di, val);
                                vec![t]
                            },
                            |b| {
                                let third = b.if_else(
                                    isc,
                                    |b| {
                                        let ai = b.add(ba, i);
                                        let bi = b.add(bb, i);
                                        let ua = b.load_dep(u, ai, tok);
                                        let ubv = b.load_dep(u, bi, tok);
                                        let x = b.xor(ua, ubv);
                                        let t = b.store(u, ai, x);
                                        vec![t]
                                    },
                                    |b| {
                                        // leaf decision
                                        let f = b.load_dep(frz, ba, tok);
                                        let lv = b.load_dep(w, src, tok);
                                        let neg = b.lt(lv, 0.into());
                                        let zero = b.imm(0);
                                        let bit = b.mux(f, zero, neg);
                                        let t = b.store(u, ba, bit);
                                        vec![t]
                                    },
                                );
                                vec![third[0]]
                            },
                        );
                        vec![inner[0]]
                    },
                );
                vec![res[0]]
            });
            vec![elems[0]]
        });
        Ok(b.finish())
    }

    fn golden(&self, wl: &Workload) -> Result<Golden, KernelError> {
        let n = wl.size("n")? as usize;
        let u = scd_reference(n, &wl.array_i32("llr")?, &wl.array_i32("frozen")?);
        Ok(Golden {
            arrays: vec![("u".into(), u.into_iter().map(Value::I32).collect())],
            sinks: vec![],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::interp_check_both;

    #[test]
    fn schedule_covers_tree() {
        let s = schedule(8);
        // 2N-1 nodes; internal nodes contribute f+g+combine, leaves one.
        let leaves = s.iter().filter(|v| v.op == OP_LEAF).count();
        assert_eq!(leaves, 8);
        let fs = s.iter().filter(|v| v.op == OP_F).count();
        assert_eq!(fs, 7);
    }

    #[test]
    fn all_frozen_decodes_zero() {
        let n = 16;
        let llr: Vec<i32> = (0..n as i32).map(|i| i - 8).collect();
        let frozen = vec![1i32; n];
        assert_eq!(scd_reference(n, &llr, &frozen), vec![0i32; n]);
    }

    #[test]
    fn matches_golden() {
        interp_check_both(&ScDecode, Scale::Small, 14).unwrap();
    }

    #[test]
    fn profile_shape() {
        let k = ScDecode;
        let wl = k.workload(Scale::Tiny, 0);
        let g = k.build(&wl).unwrap();
        let p = marionette_cdfg::analysis::profile(&g);
        assert!(p.branches.nested);
        assert!(p.branches.innermost);
        assert!(p.loops.dynamic_bounds);
    }
}
