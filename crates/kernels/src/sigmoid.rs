//! Sigmoid (SI): elementwise logistic activation on the nonlinear-fitting
//! PEs. Non-intensive single-loop kernel (Fig 17 control group).

use crate::traits::{Golden, Kernel, KernelError, Scale, Workload};
use crate::workload;
use marionette_cdfg::builder::CdfgBuilder;
use marionette_cdfg::op::NlOp;
use marionette_cdfg::value::Value;
use marionette_cdfg::Cdfg;

/// Sigmoid kernel: `out[i] = 1 / (1 + exp(-x[i]))`.
#[derive(Debug, Default, Clone, Copy)]
pub struct Sigmoid;

fn n_of(scale: Scale) -> usize {
    match scale {
        Scale::Paper => 2048,
        Scale::Small => 128,
        Scale::Tiny => 8,
    }
}

impl Kernel for Sigmoid {
    fn name(&self) -> &'static str {
        "Sigmoid"
    }

    fn short(&self) -> &'static str {
        "SI"
    }

    fn domain(&self) -> &'static str {
        "AI"
    }

    fn intensive(&self) -> bool {
        false
    }

    fn workload(&self, scale: Scale, seed: u64) -> Workload {
        let n = n_of(scale);
        let mut r = workload::rng(seed);
        Workload {
            arrays: vec![("x".into(), workload::f32_vec(&mut r, n, -4.0, 4.0))],
            sizes: vec![("n".into(), n as i64)],
        }
    }

    fn build(&self, wl: &Workload) -> Result<Cdfg, KernelError> {
        let n = wl.size("n")? as i32;
        let mut b = CdfgBuilder::new("sigmoid");
        let xv = wl.array_f32("x")?;
        let xa = b.array_f32("x", n as usize, &xv);
        let out = b.array_f32("y", n as usize, &[]);
        b.mark_output(out);
        let zero = b.imm(0);
        let _ = b.for_range(0, n, &[zero], |b, i, v| {
            let x = b.load(xa, i);
            let y = b.sigmoid(x);
            b.store(out, i, y);
            vec![v[0]]
        });
        Ok(b.finish())
    }

    fn golden(&self, wl: &Workload) -> Result<Golden, KernelError> {
        // Uses the exact same nonlinear unit model as the simulator.
        let y: Vec<Value> = wl
            .array("x")?
            .iter()
            .map(|&x| NlOp::Sigmoid.eval(x))
            .collect();
        Ok(Golden {
            arrays: vec![("y".into(), y)],
            sinks: vec![],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::interp_check_both;

    #[test]
    fn matches_golden() {
        interp_check_both(&Sigmoid, Scale::Small, 2).unwrap();
    }
}
