//! Kernel abstraction: each evaluation benchmark provides a workload
//! generator, a golden scalar reference, and a CDFG program.

use marionette_cdfg::value::Value;
use marionette_cdfg::Cdfg;
use std::fmt;

/// Problem size selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// The paper's Table 5 data sizes.
    Paper,
    /// Reduced sizes for fast unit/integration testing.
    Small,
    /// Very small sizes for property tests and smoke tests.
    Tiny,
}

/// Typed failure of a kernel build/golden/verification step.
///
/// Historically these conditions were `panic!`s deep inside `Workload`
/// accessors and the golden comparison; surfacing them as values lets
/// fuzzed or externally-supplied workloads fail gracefully (the runner
/// wraps them in `RunnerError` and reports them like any other stage
/// failure).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// The workload does not define the named scalar size.
    MissingSize(String),
    /// The workload does not define the named input array.
    MissingArray(String),
    /// A golden reference names an output array the CDFG never declared.
    UndeclaredOutput(String),
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::MissingSize(n) => write!(f, "workload missing size {n}"),
            KernelError::MissingArray(n) => write!(f, "workload missing array {n}"),
            KernelError::UndeclaredOutput(n) => {
                write!(f, "golden output array {n} not declared by the program")
            }
        }
    }
}

impl std::error::Error for KernelError {}

/// Input data for one kernel run.
#[derive(Clone, Debug, Default)]
pub struct Workload {
    /// Named input arrays (must match the CDFG's array declarations).
    pub arrays: Vec<(String, Vec<Value>)>,
    /// Scalar sizes and constants the kernel builder needs.
    pub sizes: Vec<(String, i64)>,
}

impl Workload {
    /// Looks up a size by name.
    ///
    /// # Errors
    /// Returns [`KernelError::MissingSize`] if the size is missing.
    pub fn size(&self, name: &str) -> Result<i64, KernelError> {
        self.sizes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .ok_or_else(|| KernelError::MissingSize(name.into()))
    }

    /// Looks up an input array by name.
    ///
    /// # Errors
    /// Returns [`KernelError::MissingArray`] if the array is missing.
    pub fn array(&self, name: &str) -> Result<&[Value], KernelError> {
        self.arrays
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_slice())
            .ok_or_else(|| KernelError::MissingArray(name.into()))
    }

    /// Integer view of an input array.
    ///
    /// # Errors
    /// Returns [`KernelError::MissingArray`] if the array is missing.
    pub fn array_i32(&self, name: &str) -> Result<Vec<i32>, KernelError> {
        Ok(self.array(name)?.iter().map(|v| v.to_i32_lossy()).collect())
    }

    /// Float view of an input array.
    ///
    /// # Errors
    /// Returns [`KernelError::MissingArray`] if the array is missing.
    pub fn array_f32(&self, name: &str) -> Result<Vec<f32>, KernelError> {
        Ok(self
            .array(name)?
            .iter()
            .map(|v| v.as_f32().unwrap_or(0.0))
            .collect())
    }
}

/// Expected results of one kernel run.
#[derive(Clone, Debug, Default)]
pub struct Golden {
    /// Expected final contents of each output array.
    pub arrays: Vec<(String, Vec<Value>)>,
    /// Expected sink values (in arrival order).
    pub sinks: Vec<(String, Vec<Value>)>,
}

/// Mismatch found by [`check_outputs`].
#[derive(Clone, Debug)]
pub struct Mismatch {
    /// Where the mismatch is (`array name[index]` or `sink name[k]`).
    pub site: String,
    /// Expected value.
    pub expected: Value,
    /// Actual value.
    pub actual: Value,
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: expected {}, got {}",
            self.site, self.expected, self.actual
        )
    }
}

/// Relative float tolerance used by output comparison.
pub const FLOAT_TOL: f32 = 1e-3;

/// Compares produced outputs against the golden reference.
///
/// `get_array` fetches the final memory contents of a named output array;
/// `get_sink` fetches the values a named sink collected. Returns all
/// mismatches (empty = pass); at most 16 are reported.
pub fn check_outputs(
    golden: &Golden,
    mut get_array: impl FnMut(&str) -> Vec<Value>,
    mut get_sink: impl FnMut(&str) -> Vec<Value>,
) -> Vec<Mismatch> {
    let mut out = Vec::new();
    for (name, expect) in &golden.arrays {
        let actual = get_array(name);
        if actual.len() != expect.len() {
            out.push(Mismatch {
                site: format!("{name}.len"),
                expected: Value::I32(expect.len() as i32),
                actual: Value::I32(actual.len() as i32),
            });
            continue;
        }
        for (i, (e, a)) in expect.iter().zip(&actual).enumerate() {
            if !e.approx_eq(*a, FLOAT_TOL) {
                out.push(Mismatch {
                    site: format!("{name}[{i}]"),
                    expected: *e,
                    actual: *a,
                });
                if out.len() >= 16 {
                    return out;
                }
            }
        }
    }
    for (name, expect) in &golden.sinks {
        let actual = get_sink(name);
        if actual.len() != expect.len() {
            out.push(Mismatch {
                site: format!("sink {name}.len"),
                expected: Value::I32(expect.len() as i32),
                actual: Value::I32(actual.len() as i32),
            });
            continue;
        }
        for (i, (e, a)) in expect.iter().zip(&actual).enumerate() {
            if !e.approx_eq(*a, FLOAT_TOL) {
                out.push(Mismatch {
                    site: format!("sink {name}[{i}]"),
                    expected: *e,
                    actual: *a,
                });
                if out.len() >= 16 {
                    return out;
                }
            }
        }
    }
    out
}

/// An evaluation benchmark.
pub trait Kernel: Send + Sync {
    /// Full benchmark name (e.g. `"Merge Sort"`).
    fn name(&self) -> &'static str;

    /// Short tag used in figures (e.g. `"MS"`).
    fn short(&self) -> &'static str;

    /// Application domain (Table 1 grouping).
    fn domain(&self) -> &'static str;

    /// Whether the paper classes it as control-flow intensive.
    fn intensive(&self) -> bool {
        true
    }

    /// Generates a deterministic workload at the given scale.
    fn workload(&self, scale: Scale, seed: u64) -> Workload;

    /// Builds the CDFG program for a workload.
    ///
    /// # Errors
    /// Returns [`KernelError`] when the workload lacks a size or array the
    /// kernel needs.
    fn build(&self, wl: &Workload) -> Result<Cdfg, KernelError>;

    /// Computes the expected outputs for a workload.
    ///
    /// # Errors
    /// Returns [`KernelError`] when the workload lacks a size or array the
    /// kernel needs.
    fn golden(&self, wl: &Workload) -> Result<Golden, KernelError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_size_is_typed() {
        let wl = Workload::default();
        assert_eq!(wl.size("n"), Err(KernelError::MissingSize("n".into())));
    }

    #[test]
    fn missing_array_is_typed() {
        let wl = Workload {
            arrays: vec![("a".into(), vec![Value::I32(1)])],
            sizes: vec![("n".into(), 1)],
        };
        assert_eq!(wl.size("n"), Ok(1));
        assert_eq!(wl.array_i32("a"), Ok(vec![1]));
        assert_eq!(
            wl.array("b").unwrap_err(),
            KernelError::MissingArray("b".into())
        );
        assert_eq!(
            wl.array_f32("b").unwrap_err(),
            KernelError::MissingArray("b".into())
        );
    }
}
