//! Kernel verification helpers: run a kernel's CDFG through the reference
//! interpreter (both execution modes) and compare against its golden
//! reference.

use crate::traits::{check_outputs, Golden, Kernel, KernelError, Scale};
use marionette_cdfg::interp::{interpret, ExecMode};
use marionette_cdfg::value::Value;
use marionette_cdfg::Cdfg;

/// Runs the kernel at `scale` through the interpreter in the given mode
/// and returns an error string describing any mismatch.
///
/// # Errors
/// Returns a human-readable report when the build fails, interpretation
/// fails, or outputs diverge from the golden reference.
pub fn interp_check(k: &dyn Kernel, scale: Scale, seed: u64, mode: ExecMode) -> Result<(), String> {
    let wl = k.workload(scale, seed);
    let golden = k
        .golden(&wl)
        .map_err(|e| format!("{}: golden: {e}", k.name()))?;
    let g = k
        .build(&wl)
        .map_err(|e| format!("{}: build: {e}", k.name()))?;
    let r = interpret(&g, mode, &[])
        .map_err(|e| format!("{} ({mode:?}): interpreter error: {e}", k.name()))?;
    if r.memory.oob_events() > 0 {
        return Err(format!(
            "{} ({mode:?}): {} out-of-bounds accesses",
            k.name(),
            r.memory.oob_events()
        ));
    }
    let mismatches = check_vs_golden(
        &g,
        &golden,
        |arr| r.memory.array(arr).to_vec(),
        |name| r.sinks.get(name).cloned().unwrap_or_default(),
    )
    .map_err(|e| format!("{} ({mode:?}): {e}", k.name()))?;
    if mismatches.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "{} ({mode:?}): {} mismatches, first: {}",
            k.name(),
            mismatches.len(),
            mismatches[0]
        ))
    }
}

/// Compares any executor's outputs against a golden reference, resolving
/// output array names through the CDFG declarations.
///
/// # Errors
/// Returns [`KernelError::UndeclaredOutput`] when the golden reference
/// names an array the program never declared.
pub fn check_vs_golden(
    g: &Cdfg,
    golden: &Golden,
    mut array_contents: impl FnMut(marionette_cdfg::ArrayId) -> Vec<Value>,
    get_sink: impl FnMut(&str) -> Vec<Value>,
) -> Result<Vec<crate::traits::Mismatch>, KernelError> {
    // Resolve every golden array name first so a bad name is a typed
    // error, not a mid-comparison panic.
    for (name, _) in &golden.arrays {
        if g.array_by_name(name).is_none() {
            return Err(KernelError::UndeclaredOutput(name.clone()));
        }
    }
    Ok(check_outputs(
        golden,
        |name| {
            let id = g.array_by_name(name).expect("checked above");
            array_contents(id)
        },
        get_sink,
    ))
}

/// Convenience: check both interpreter modes at once.
///
/// # Errors
/// Propagates the first failing mode's report.
pub fn interp_check_both(k: &dyn Kernel, scale: Scale, seed: u64) -> Result<(), String> {
    interp_check(k, scale, seed, ExecMode::Dropping)?;
    interp_check(k, scale, seed, ExecMode::Predicated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use marionette_cdfg::builder::CdfgBuilder;

    #[test]
    fn undeclared_output_is_typed_error() {
        let mut b = CdfgBuilder::new("t");
        let s = b.add(1.into(), 2.into());
        b.sink("s", s);
        let g = b.finish();
        let golden = Golden {
            arrays: vec![("ghost".into(), vec![Value::I32(0)])],
            sinks: vec![],
        };
        let err = check_vs_golden(&g, &golden, |_| vec![], |_| vec![]).unwrap_err();
        assert_eq!(err, KernelError::UndeclaredOutput("ghost".into()));
    }

    #[test]
    fn declared_outputs_compare_fine() {
        let mut b = CdfgBuilder::new("t");
        let a = b.array_i32("a", 2, &[7, 9]);
        b.mark_output(a);
        let s = b.add(1.into(), 2.into());
        b.sink("s", s);
        let g = b.finish();
        let golden = Golden {
            arrays: vec![("a".into(), vec![Value::I32(7), Value::I32(9)])],
            sinks: vec![("s".into(), vec![Value::I32(3)])],
        };
        let mismatches = check_vs_golden(
            &g,
            &golden,
            |_| vec![Value::I32(7), Value::I32(9)],
            |_| vec![Value::I32(3)],
        )
        .unwrap();
        assert!(mismatches.is_empty());
    }
}
