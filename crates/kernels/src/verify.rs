//! Kernel verification helpers: run a kernel's CDFG through the reference
//! interpreter (both execution modes) and compare against its golden
//! reference.

use crate::traits::{check_outputs, Golden, Kernel, Scale};
use marionette_cdfg::interp::{interpret, ExecMode};
use marionette_cdfg::value::Value;
use marionette_cdfg::Cdfg;

/// Runs the kernel at `scale` through the interpreter in the given mode
/// and returns an error string describing any mismatch.
///
/// # Errors
/// Returns a human-readable report when interpretation fails or outputs
/// diverge from the golden reference.
pub fn interp_check(k: &dyn Kernel, scale: Scale, seed: u64, mode: ExecMode) -> Result<(), String> {
    let wl = k.workload(scale, seed);
    let golden = k.golden(&wl);
    let g = k.build(&wl);
    let r = interpret(&g, mode, &[])
        .map_err(|e| format!("{} ({mode:?}): interpreter error: {e}", k.name()))?;
    if r.memory.oob_events() > 0 {
        return Err(format!(
            "{} ({mode:?}): {} out-of-bounds accesses",
            k.name(),
            r.memory.oob_events()
        ));
    }
    let mismatches = check_vs_golden(
        &g,
        &golden,
        |arr| r.memory.array(arr).to_vec(),
        |name| r.sinks.get(name).cloned().unwrap_or_default(),
    );
    if mismatches.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "{} ({mode:?}): {} mismatches, first: {}",
            k.name(),
            mismatches.len(),
            mismatches[0]
        ))
    }
}

/// Compares any executor's outputs against a golden reference, resolving
/// output array names through the CDFG declarations.
pub fn check_vs_golden(
    g: &Cdfg,
    golden: &Golden,
    mut array_contents: impl FnMut(marionette_cdfg::ArrayId) -> Vec<Value>,
    get_sink: impl FnMut(&str) -> Vec<Value>,
) -> Vec<crate::traits::Mismatch> {
    check_outputs(
        golden,
        |name| {
            let id = g
                .array_by_name(name)
                .unwrap_or_else(|| panic!("output array {name} not declared"));
            array_contents(id)
        },
        get_sink,
    )
}

/// Convenience: check both interpreter modes at once.
///
/// # Errors
/// Propagates the first failing mode's report.
pub fn interp_check_both(k: &dyn Kernel, scale: Scale, seed: u64) -> Result<(), String> {
    interp_check(k, scale, seed, ExecMode::Dropping)?;
    interp_check(k, scale, seed, ExecMode::Predicated)
}
