//! Gray Processing (GP): RGB→luma conversion. A non-intensive single-loop
//! streaming kernel used by Fig 17 to show Marionette does not degrade
//! plain data-parallel pipelines.

use crate::traits::{Golden, Kernel, KernelError, Scale, Workload};
use crate::workload;
use marionette_cdfg::builder::CdfgBuilder;
use marionette_cdfg::value::Value;
use marionette_cdfg::Cdfg;

/// Gray Processing kernel (`gray = (77·r + 150·g + 29·b) >> 8`).
#[derive(Debug, Default, Clone, Copy)]
pub struct GrayProcessing;

fn n_of(scale: Scale) -> usize {
    match scale {
        Scale::Paper => 16384,
        Scale::Small => 256,
        Scale::Tiny => 16,
    }
}

impl Kernel for GrayProcessing {
    fn name(&self) -> &'static str {
        "Gray Processing"
    }

    fn short(&self) -> &'static str {
        "GP"
    }

    fn domain(&self) -> &'static str {
        "Image Processing"
    }

    fn intensive(&self) -> bool {
        false
    }

    fn workload(&self, scale: Scale, seed: u64) -> Workload {
        let n = n_of(scale);
        let mut r = workload::rng(seed);
        Workload {
            arrays: vec![
                ("r".into(), workload::i32_vec(&mut r, n, 0, 256)),
                ("g".into(), workload::i32_vec(&mut r, n, 0, 256)),
                ("b".into(), workload::i32_vec(&mut r, n, 0, 256)),
            ],
            sizes: vec![("n".into(), n as i64)],
        }
    }

    fn build(&self, wl: &Workload) -> Result<Cdfg, KernelError> {
        let n = wl.size("n")? as i32;
        let mut b = CdfgBuilder::new("gray");
        let rv: Vec<i32> = wl.array_i32("r")?;
        let gv: Vec<i32> = wl.array_i32("g")?;
        let bv: Vec<i32> = wl.array_i32("b")?;
        let ra = b.array_i32("r", n as usize, &rv);
        let ga = b.array_i32("g", n as usize, &gv);
        let ba = b.array_i32("b", n as usize, &bv);
        let out = b.array_i32("gray", n as usize, &[]);
        b.mark_output(out);
        let zero = b.imm(0);
        let _ = b.for_range(0, n, &[zero], |b, i, v| {
            let r = b.load(ra, i);
            let g = b.load(ga, i);
            let bl = b.load(ba, i);
            let tr = b.mul(r, 77.into());
            let tg = b.mul(g, 150.into());
            let tb = b.mul(bl, 29.into());
            let s1 = b.add(tr, tg);
            let s2 = b.add(s1, tb);
            let y = b.shr(s2, 8.into());
            b.store(out, i, y);
            vec![v[0]]
        });
        Ok(b.finish())
    }

    fn golden(&self, wl: &Workload) -> Result<Golden, KernelError> {
        let r = wl.array_i32("r")?;
        let g = wl.array_i32("g")?;
        let b = wl.array_i32("b")?;
        let gray: Vec<Value> = r
            .iter()
            .zip(&g)
            .zip(&b)
            .map(|((&r, &g), &b)| Value::I32((77 * r + 150 * g + 29 * b) >> 8))
            .collect();
        Ok(Golden {
            arrays: vec![("gray".into(), gray)],
            sinks: vec![],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::interp_check_both;

    #[test]
    fn matches_golden() {
        interp_check_both(&GrayProcessing, Scale::Small, 1).unwrap();
    }
}
