//! Conv-1d (CO): 8-tap 1-D convolution, taps unrolled at build time.
//! Non-intensive single-loop kernel (Fig 17 control group).

use crate::traits::{Golden, Kernel, KernelError, Scale, Workload};
use crate::workload;
use marionette_cdfg::builder::CdfgBuilder;
use marionette_cdfg::value::Value;
use marionette_cdfg::Cdfg;

/// Number of filter taps (build-time unrolled).
pub const TAPS: usize = 8;

/// Conv-1d kernel: `out[i] = Σ_t x[i+t] · w[t]`.
#[derive(Debug, Default, Clone, Copy)]
pub struct Conv1d;

fn n_of(scale: Scale) -> usize {
    match scale {
        Scale::Paper => 16384,
        Scale::Small => 256,
        Scale::Tiny => 16,
    }
}

impl Kernel for Conv1d {
    fn name(&self) -> &'static str {
        "Conv-1d"
    }

    fn short(&self) -> &'static str {
        "CO"
    }

    fn domain(&self) -> &'static str {
        "Signal Processing"
    }

    fn intensive(&self) -> bool {
        false
    }

    fn workload(&self, scale: Scale, seed: u64) -> Workload {
        let n = n_of(scale);
        let mut r = workload::rng(seed);
        Workload {
            arrays: vec![
                ("x".into(), workload::i32_vec(&mut r, n + TAPS, -64, 64)),
                ("w".into(), workload::i32_vec(&mut r, TAPS, -8, 8)),
            ],
            sizes: vec![("n".into(), n as i64)],
        }
    }

    fn build(&self, wl: &Workload) -> Result<Cdfg, KernelError> {
        let n = wl.size("n")? as i32;
        let mut b = CdfgBuilder::new("conv1d");
        let xv = wl.array_i32("x")?;
        let wv = wl.array_i32("w")?;
        let xa = b.array_i32("x", xv.len(), &xv);
        let out = b.array_i32("y", n as usize, &[]);
        b.mark_output(out);
        let zero = b.imm(0);
        let _ = b.for_range(0, n, &[zero], |b, i, v| {
            // Taps unrolled: weights become immediates, like a real CGRA
            // mapping of a small FIR.
            let mut acc = b.imm(0);
            for (t, &w) in wv.iter().enumerate() {
                let idx = b.add(i, (t as i32).into());
                let x = b.load(xa, idx);
                let p = b.mul(x, w.into());
                acc = b.add(acc, p);
            }
            b.store(out, i, acc);
            vec![v[0]]
        });
        Ok(b.finish())
    }

    fn golden(&self, wl: &Workload) -> Result<Golden, KernelError> {
        let n = wl.size("n")? as usize;
        let x = wl.array_i32("x")?;
        let w = wl.array_i32("w")?;
        let y: Vec<Value> = (0..n)
            .map(|i| {
                let mut acc = 0i32;
                for t in 0..TAPS {
                    acc = acc.wrapping_add(x[i + t].wrapping_mul(w[t]));
                }
                Value::I32(acc)
            })
            .collect();
        Ok(Golden {
            arrays: vec![("y".into(), y)],
            sinks: vec![],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::interp_check_both;

    #[test]
    fn matches_golden() {
        interp_check_both(&Conv1d, Scale::Small, 3).unwrap();
    }
}
