//! FFT: iterative radix-2 decimation-in-time over f32, with an in-place
//! bit-reversal permutation (whose swap guard is the innermost branch of
//! Table 1's FFT row) and a stage nest whose inner extents depend on the
//! stage — an imperfect nest with cross-stage memory recurrences.

use crate::traits::{Golden, Kernel, KernelError, Scale, Workload};
use crate::workload;
use marionette_cdfg::builder::CdfgBuilder;
use marionette_cdfg::value::Value;
use marionette_cdfg::Cdfg;

/// Radix-2 FFT kernel.
#[derive(Debug, Default, Clone, Copy)]
pub struct Fft;

fn n_of(scale: Scale) -> usize {
    match scale {
        Scale::Paper => 1024,
        Scale::Small => 64,
        Scale::Tiny => 8,
    }
}

fn bitrev_table(n: usize) -> Vec<i32> {
    let bits = n.trailing_zeros();
    (0..n)
        .map(|i| (i.reverse_bits() >> (usize::BITS - bits)) as i32)
        .collect()
}

fn twiddles(n: usize) -> (Vec<f32>, Vec<f32>) {
    let mut wr = Vec::with_capacity(n / 2);
    let mut wi = Vec::with_capacity(n / 2);
    for k in 0..n / 2 {
        let ang = -2.0 * std::f64::consts::PI * k as f64 / n as f64;
        wr.push(ang.cos() as f32);
        wi.push(ang.sin() as f32);
    }
    (wr, wi)
}

/// Scalar reference FFT, bit-identical to the CDFG op ordering.
pub fn fft_reference(re: &mut [f32], im: &mut [f32]) {
    let n = re.len();
    let brt = bitrev_table(n);
    let (wr, wi) = twiddles(n);
    for (i, &rv) in brt.iter().enumerate().take(n) {
        let r = rv as usize;
        if i < r {
            re.swap(i, r);
            im.swap(i, r);
        }
    }
    let stages = n.trailing_zeros();
    for s in 0..stages {
        let len = 1usize << s;
        let full = len << 1;
        let tw_step = n >> (s + 1);
        let mut base = 0usize;
        while base < n {
            for k in 0..len {
                let ti = k * tw_step;
                let (cr, ci) = (wr[ti], wi[ti]);
                let (ar, ai) = (re[base + k], im[base + k]);
                let (br, bi) = (re[base + k + len], im[base + k + len]);
                let tr = cr * br - ci * bi;
                let tim = cr * bi + ci * br;
                re[base + k] = ar + tr;
                im[base + k] = ai + tim;
                re[base + k + len] = ar - tr;
                im[base + k + len] = ai - tim;
            }
            base += full;
        }
    }
}

impl Kernel for Fft {
    fn name(&self) -> &'static str {
        "FFT"
    }

    fn short(&self) -> &'static str {
        "FFT"
    }

    fn domain(&self) -> &'static str {
        "General purpose"
    }

    fn workload(&self, scale: Scale, seed: u64) -> Workload {
        let n = n_of(scale);
        let mut r = workload::rng(seed);
        Workload {
            arrays: vec![
                ("re".into(), workload::f32_vec(&mut r, n, -1.0, 1.0)),
                ("im".into(), workload::f32_vec(&mut r, n, -1.0, 1.0)),
            ],
            sizes: vec![("n".into(), n as i64)],
        }
    }

    fn build(&self, wl: &Workload) -> Result<Cdfg, KernelError> {
        let n = wl.size("n")? as i32;
        let stages = (n as u32).trailing_zeros() as i32;
        let rev = bitrev_table(n as usize);
        let (twr, twi) = twiddles(n as usize);
        let mut b = CdfgBuilder::new("fft");
        let rv = wl.array_f32("re")?;
        let iv = wl.array_f32("im")?;
        let re = b.array_f32("re", rv.len(), &rv);
        let im = b.array_f32("im", iv.len(), &iv);
        b.mark_output(re);
        b.mark_output(im);
        let brt = b.array_i32("brt", rev.len(), &rev);
        let wra = b.array_f32("wr", twr.len(), &twr);
        let wia = b.array_f32("wi", twi.len(), &twi);
        let start = b.start_token();

        // Bit-reversal permutation with the swap guard branch.
        let brev = b.for_range(0, n, &[start], |b, i, v| {
            let r = b.load(brt, i);
            let swap = b.lt(i, r);
            let ar = b.load_dep(re, i, v[0]);
            let ai = b.load_dep(im, i, v[0]);
            let br = b.load_dep(re, r, v[0]);
            let bi = b.load_dep(im, r, v[0]);
            // Each store carries an anti-dependence token covering the
            // load that reads the address it overwrites: `re[i] = br`
            // has no *data* dependence on `ar = re[i]`, so without the
            // token the swap is a WAR race that any timing change (a
            // different placement, a rerouted path) can flip. `t3`/`t4`
            // inherit their anti-dependences through `t1`/`t2`, whose
            // data inputs are exactly the loads of the addresses they
            // overwrite.
            let res = b.if_else(
                swap,
                |b| {
                    let t1 = b.store_dep(re, i, br, ar);
                    let t2 = b.store_dep(im, i, bi, ai);
                    let t3 = b.store_dep(re, r, ar, t1);
                    let t4 = b.store_dep(im, r, ai, t2);
                    vec![b.add(t3, t4)]
                },
                |_| vec![v[0]],
            );
            vec![res[0]]
        });

        // Stage nest. Loop bounds depend on the stage (imperfect nest).
        // Butterflies within a stage touch disjoint pairs, so loads only
        // wait on the *previous stage's* fence; stores chain per array to
        // materialize the next fence without serializing the butterflies.
        let _ = b.for_range(0, stages, &[brev[0]], |b, s, sv| {
            let fence = sv[0];
            let one = b.imm(1);
            let len = b.shl(one, s);
            let full = b.shl(len, 1.into());
            let s1 = b.add(s, 1.into());
            let tw_step = b.shr(n.into(), s1);
            // Block loop: base = 0, full, 2*full, ...
            let zero = b.imm(0);
            let blocks = b.loop_while(
                &[zero, fence, fence],
                |b, bv| b.lt(bv[0], n.into()),
                |b, bv| {
                    let (base, tok_re, tok_im) = (bv[0], bv[1], bv[2]);
                    let inner = b.for_range(0, len, &[tok_re, tok_im], |b, k, kv| {
                        let ti = b.mul(k, tw_step);
                        let cr = b.load(wra, ti);
                        let ci = b.load(wia, ti);
                        let ia = b.add(base, k);
                        let ib = b.add(ia, len);
                        let ar = b.load_dep(re, ia, fence);
                        let ai = b.load_dep(im, ia, fence);
                        let br = b.load_dep(re, ib, fence);
                        let bi = b.load_dep(im, ib, fence);
                        let m1 = b.fmul(cr, br);
                        let m2 = b.fmul(ci, bi);
                        let tr = b.fsub(m1, m2);
                        let m3 = b.fmul(cr, bi);
                        let m4 = b.fmul(ci, br);
                        let tim = b.fadd(m3, m4);
                        let or0 = b.fadd(ar, tr);
                        let oi0 = b.fadd(ai, tim);
                        let or1 = b.fsub(ar, tr);
                        let oi1 = b.fsub(ai, tim);
                        let t1 = b.store_dep(re, ia, or0, kv[0]);
                        let t2 = b.store_dep(re, ib, or1, t1);
                        let u1 = b.store_dep(im, ia, oi0, kv[1]);
                        let u2 = b.store_dep(im, ib, oi1, u1);
                        vec![t2, u2]
                    });
                    let base2 = b.add(base, full);
                    vec![base2, inner[0], inner[1]]
                },
            );
            // Join the two chains into the next stage's fence.
            let joined = b.add(blocks[1], blocks[2]);
            vec![joined]
        });
        Ok(b.finish())
    }

    fn golden(&self, wl: &Workload) -> Result<Golden, KernelError> {
        let mut re = wl.array_f32("re")?;
        let mut im = wl.array_f32("im")?;
        fft_reference(&mut re, &mut im);
        Ok(Golden {
            arrays: vec![
                ("re".into(), re.into_iter().map(Value::F32).collect()),
                ("im".into(), im.into_iter().map(Value::F32).collect()),
            ],
            sinks: vec![],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::interp_check_both;

    #[test]
    fn matches_golden() {
        interp_check_both(&Fft, Scale::Small, 13).unwrap();
    }

    #[test]
    fn reference_parseval_sanity() {
        // FFT of an impulse is flat ones.
        let n = 16;
        let mut re = vec![0.0f32; n];
        let mut im = vec![0.0f32; n];
        re[0] = 1.0;
        fft_reference(&mut re, &mut im);
        for k in 0..n {
            assert!((re[k] - 1.0).abs() < 1e-5 && im[k].abs() < 1e-5);
        }
    }

    #[test]
    fn profile_shape() {
        let k = Fft;
        let wl = k.workload(Scale::Tiny, 0);
        let g = k.build(&wl).unwrap();
        let p = marionette_cdfg::analysis::profile(&g);
        assert!(p.branches.innermost, "bit-reversal swap guard");
        assert!(p.loops.imperfect);
        assert!(p.loops.serial, "bit-reversal then stage nest");
        assert_eq!(p.loops.max_depth, 3);
    }
}
