//! Kernel registry: the paper's benchmark suite (Table 5).

use crate::adpcm::AdpcmEncode;
use crate::conv1d::Conv1d;
use crate::crc::Crc;
use crate::fft::Fft;
use crate::gemm::Gemm;
use crate::gray::GrayProcessing;
use crate::hough::Hough;
use crate::ldpc::LdpcDecode;
use crate::mergesort::MergeSort;
use crate::nw::Nw;
use crate::scd::ScDecode;
use crate::sigmoid::Sigmoid;
use crate::traits::Kernel;
use crate::viterbi::Viterbi;

/// All 13 evaluation kernels in the paper's figure order
/// (MS, FFT, VI, NW, HT, CRC, ADPCM, SCD, LDPC, GEMM, CO, SI, GP).
pub fn all() -> Vec<Box<dyn Kernel>> {
    vec![
        Box::new(MergeSort),
        Box::new(Fft),
        Box::new(Viterbi),
        Box::new(Nw),
        Box::new(Hough),
        Box::new(Crc),
        Box::new(AdpcmEncode),
        Box::new(ScDecode),
        Box::new(LdpcDecode),
        Box::new(Gemm),
        Box::new(Conv1d),
        Box::new(Sigmoid),
        Box::new(GrayProcessing),
    ]
}

/// The ten control-flow-intensive kernels (Figs 11-16).
pub fn intensive() -> Vec<Box<dyn Kernel>> {
    all().into_iter().filter(|k| k.intensive()).collect()
}

/// The non-intensive control group of Fig 17 (CO, SI, GP).
pub fn non_intensive() -> Vec<Box<dyn Kernel>> {
    all().into_iter().filter(|k| !k.intensive()).collect()
}

/// The full LDPC application (Fig 17's composite case study): not part of
/// the 13-kernel suite, evaluated separately.
pub fn ldpc_app() -> Box<dyn Kernel> {
    Box::new(crate::ldpc_app::LdpcApp)
}

/// Finds a kernel by its short tag (e.g. `"MS"`); includes the composite
/// `"LDPC-APP"`.
pub fn by_short(short: &str) -> Option<Box<dyn Kernel>> {
    if short == "LDPC-APP" {
        return Some(ldpc_app());
    }
    all().into_iter().find(|k| k.short() == short)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts() {
        assert_eq!(all().len(), 13);
        assert_eq!(intensive().len(), 10);
        assert_eq!(non_intensive().len(), 3);
    }

    #[test]
    fn shorts_unique() {
        let mut seen = std::collections::HashSet::new();
        for k in all() {
            assert!(seen.insert(k.short().to_string()), "dup {}", k.short());
        }
    }

    #[test]
    fn lookup() {
        assert_eq!(by_short("GEMM").unwrap().name(), "GEMM");
        assert!(by_short("nope").is_none());
    }
}
