//! # marionette-kernels
//!
//! The 13 evaluation benchmarks of the Marionette paper (Table 5), each
//! implemented three ways from one seeded workload:
//!
//! 1. a **golden** scalar Rust reference;
//! 2. a **CDFG program** written against `marionette-cdfg`'s structured
//!    builder (the object the compiler maps and the simulator runs);
//! 3. a deterministic **workload generator**.
//!
//! Control-flow shape follows Table 1: branch divergence in Merge Sort /
//! NW / CRC / ADPCM / LDPC / SCD, imperfect nests in GEMM / FFT / SPMV-like
//! sweeps, serial loops in CRC / LDPC / FFT, and plain streaming loops in
//! the non-intensive control group (Conv-1d, Sigmoid, Gray).

#![warn(missing_docs)]

pub mod adpcm;
pub mod conv1d;
pub mod crc;
pub mod fft;
pub mod gemm;
pub mod gray;
pub mod hough;
pub mod ldpc;
pub mod ldpc_app;
pub mod mergesort;
pub mod nw;
pub mod registry;
pub mod scd;
pub mod sigmoid;
pub mod traits;
pub mod verify;
pub mod viterbi;
pub mod workload;

pub use registry::{all, by_short, intensive, ldpc_app, non_intensive};
pub use traits::{check_outputs, Golden, Kernel, Mismatch, Scale, Workload};
