//! Deterministic workload generation helpers (seeded).

use marionette_cdfg::value::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded RNG for workload generation.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed ^ 0x4D61_7269_6F6E_6574) // "Marionet"
}

/// Random i32 vector in `lo..hi`.
pub fn i32_vec(r: &mut StdRng, n: usize, lo: i32, hi: i32) -> Vec<Value> {
    (0..n).map(|_| Value::I32(r.gen_range(lo..hi))).collect()
}

/// Random f32 vector in `lo..hi`.
pub fn f32_vec(r: &mut StdRng, n: usize, lo: f32, hi: f32) -> Vec<Value> {
    (0..n).map(|_| Value::F32(r.gen_range(lo..hi))).collect()
}

/// Random sparse binary vector with the given one-density (percent).
pub fn binary_vec(r: &mut StdRng, n: usize, density_pct: u32) -> Vec<Value> {
    (0..n)
        .map(|_| Value::I32((r.gen_range(0u32..100) < density_pct) as i32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = i32_vec(&mut rng(7), 16, 0, 100);
        let b = i32_vec(&mut rng(7), 16, 0, 100);
        let c = i32_vec(&mut rng(8), 16, 0, 100);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_respected() {
        let v = i32_vec(&mut rng(1), 256, -5, 5);
        assert!(v.iter().all(|x| (-5..5).contains(&x.to_i32_lossy())));
        let f = f32_vec(&mut rng(2), 64, 0.5, 1.5);
        assert!(f.iter().all(|x| {
            let v = x.as_f32().unwrap();
            (0.5..1.5).contains(&v)
        }));
        let b = binary_vec(&mut rng(3), 100, 30);
        assert!(b.iter().all(|x| matches!(x.to_i32_lossy(), 0 | 1)));
    }
}
