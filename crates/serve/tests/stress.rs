//! Concurrency and admission control: mixed traffic against a small
//! worker pool, structural 429 shedding when the queue is full, and a
//! wedging program timing out with a typed error while its neighbours
//! complete.

mod common;

use common::{http, read_response, run, CLIENT_TIMEOUT};
use marionette_serve::{ServeConfig, Server};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

const GOOD: &str = "\
program acc;
param n: i32 = 6;
let s = for i in 0..8 with a = 0 {
  yield a + i * n;
};
sink s = s;
";

/// `x` starts at 1 and only grows: the loop never exits. The reference
/// interpreter's firing budget is the typed timeout that catches it.
const WEDGE: &str = "\
program wedge;
param n: i32 = 1;
let z = while x > 0 with (x = n) {
  yield x + 1;
};
sink z = z;
";

#[test]
fn mixed_corpus_under_concurrency_all_complete() {
    let s = Server::start(ServeConfig {
        workers: 2,
        queue_cap: 64, // roomy: this test is about completion, not shedding
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = s.addr();
    let threads: Vec<_> = (0..8)
        .map(|t| {
            std::thread::spawn(move || {
                let mut statuses = Vec::new();
                for r in 0..4 {
                    let (status, _) = match (t + r) % 4 {
                        0 => run(addr, "preset=M", GOOD),
                        1 => run(addr, "preset=TIA", GOOD),
                        2 => run(addr, "preset=NOPE", GOOD),
                        _ => run(addr, "", "program broken;\nnot mar\n"),
                    };
                    statuses.push(status);
                }
                statuses
            })
        })
        .collect();
    let mut ok = 0u64;
    let mut client_errors = 0u64;
    for t in threads {
        for status in t.join().expect("client thread panicked") {
            match status {
                200 => ok += 1,
                400 => client_errors += 1,
                other => panic!("unexpected status {other}"),
            }
        }
    }
    assert_eq!(ok, 16, "every well-formed request must succeed");
    assert_eq!(client_errors, 16);
    // Server-side accounting agrees with the client side.
    let (_, stats) = http(addr, "GET", "/stats", b"");
    assert!(stats.contains("\"ok\": 16"), "{stats}");
    assert!(stats.contains("\"client_errors\": 16"), "{stats}");
    assert!(stats.contains("\"server_errors\": 0"), "{stats}");
    s.stop();
}

/// Holds a worker deterministically: a POST that declares a body and
/// then withholds it keeps the worker in its (bounded) read until we
/// either send the rest or the io timeout fires.
fn stalled_connection(addr: std::net::SocketAddr) -> TcpStream {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.write_all(b"POST /run HTTP/1.1\r\nHost: t\r\nContent-Length: 10\r\n\r\n")
        .expect("send head");
    s
}

#[test]
fn queue_full_returns_429_and_never_hangs() {
    let s = Server::start(ServeConfig {
        workers: 1,
        queue_cap: 1,
        io_timeout: Some(Duration::from_secs(10)),
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = s.addr();

    // One stalled connection occupies the single worker; a second fills
    // the single queue slot. The sleep between them lets the worker
    // dequeue the first, so the second provably lands in the queue and
    // the probe provably overflows it.
    let mut held_a = stalled_connection(addr);
    std::thread::sleep(Duration::from_millis(200));
    let mut held_b = stalled_connection(addr);
    std::thread::sleep(Duration::from_millis(200));

    let probe = std::time::Instant::now();
    let (status, body) = http(addr, "GET", "/healthz", b"");
    assert_eq!(status, 429, "expected shed load, got {status}: {body}");
    assert!(body.contains("\"kind\": \"queue_full\""), "{body}");
    assert!(
        probe.elapsed() < CLIENT_TIMEOUT / 4,
        "a 429 must come from the acceptor immediately, not after a queue wait"
    );

    // Release the held connections: both must be answered normally.
    held_a.write_all(b"0123456789").expect("finish a");
    held_b.write_all(b"0123456789").expect("finish b");
    let (status_a, _) = read_response(&mut held_a);
    let (status_b, _) = read_response(&mut held_b);
    // "0123456789" is not a .mar program: parse error, but an answer.
    assert_eq!(status_a, 400);
    assert_eq!(status_b, 400);

    // The freed server accepts again.
    let (status, _) = http(addr, "GET", "/healthz", b"");
    assert_eq!(status, 200);
    let (_, stats) = http(addr, "GET", "/stats", b"");
    assert!(stats.contains("\"rejected_429\": 1"), "{stats}");
    s.stop();
}

#[test]
fn wedging_program_times_out_typed_while_neighbours_complete() {
    let s = Server::start(ServeConfig {
        workers: 2,
        // Small firing budget: the wedge trips it fast even in debug.
        interp_budget: 100_000,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = s.addr();

    let wedge = std::thread::spawn(move || run(addr, "preset=M", WEDGE));
    let good = std::thread::spawn(move || run(addr, "preset=M", GOOD));

    let (status, body) = wedge.join().expect("wedge client");
    assert_eq!(status, 422, "{body}");
    assert!(body.contains("\"kind\": \"interp_budget\""), "{body}");
    assert!(body.contains("100000-firing budget"), "{body}");

    let (status, body) = good.join().expect("good client");
    assert_eq!(status, 200, "a neighbour must complete: {body}");
    assert!(body.contains("\"sinks\": {\"s\": [168]}"), "{body}");
    s.stop();
}

#[test]
fn stop_drains_in_flight_work() {
    let s = Server::start(ServeConfig::default()).expect("bind");
    let addr = s.addr();
    let inflight = std::thread::spawn(move || run(addr, "preset=M", GOOD));
    std::thread::sleep(Duration::from_millis(50));
    // stop() must wait for the in-flight request, and the client must
    // still get its full response.
    let (status, body) = inflight.join().expect("in-flight client");
    s.stop();
    assert_eq!(status, 200, "{body}");
}
