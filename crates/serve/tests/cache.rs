//! Cache determinism: the content-addressed key must be insensitive to
//! formatting and sim-time inputs, sensitive to everything that changes
//! a bitstream, and a cached serve must be bit-identical to a cold one.

mod common;

use common::{http, result_line, run};
use marionette_serve::{ServeConfig, Server};

const BASE: &str = "\
program acc;
param n: i32 = 6;
let s = for i in 0..8 with a = 0 {
  yield a + i * n;
};
sink s = s;
";

/// Same program, different whitespace, comments, and spacing — the
/// canonical pretty-print (parse→print fixed point) must erase all of it.
const RESTYLED: &str = "\
// A differently-formatted copy of `acc`: comments added, indentation
// mangled, blank lines inserted. Same program.
program acc;

param n : i32 = 6;   // the scale factor

let s = for i in 0..8 with a = 0 {
      yield a + i*n;  // accumulate
};

sink s = s;
";

fn extract_address(body: &str) -> &str {
    let marker = "\"address\": \"";
    let at = body.find(marker).expect("cache address in body") + marker.len();
    &body[at..at + 16]
}

#[test]
fn whitespace_and_comment_changes_hit_the_same_entry() {
    let s = Server::start(ServeConfig::default()).expect("bind");
    let (status, cold) = run(s.addr(), "preset=M", BASE);
    assert_eq!(status, 200, "{cold}");
    assert!(cold.contains("\"outcome\": \"miss\""), "{cold}");
    let (status, warm) = run(s.addr(), "preset=M", RESTYLED);
    assert_eq!(status, 200, "{warm}");
    assert!(
        warm.contains("\"outcome\": \"hit\""),
        "restyled source must hit the canonical-key entry: {warm}"
    );
    assert_eq!(extract_address(&cold), extract_address(&warm));
    assert_eq!(result_line(&cold), result_line(&warm));
    s.stop();
}

#[test]
fn different_params_and_engine_share_the_bitstream() {
    let s = Server::start(ServeConfig::default()).expect("bind");
    let (_, cold) = run(s.addr(), "preset=M", BASE);
    assert!(cold.contains("\"outcome\": \"miss\""), "{cold}");
    // Fresh parameters and a different engine are sim-time inputs: the
    // compile must be reused (hit), while the result reflects the new n.
    let (status, warm) = run(s.addr(), "preset=M&param=n%3D7&engine=heap", BASE);
    assert_eq!(status, 200, "{warm}");
    assert!(warm.contains("\"outcome\": \"hit\""), "{warm}");
    assert!(warm.contains("\"sinks\": {\"s\": [196]}"), "{warm}");
    assert_eq!(extract_address(&cold), extract_address(&warm));
    s.stop();
}

#[test]
fn cached_serve_is_bit_identical_to_cold_on_every_preset() {
    let s = Server::start(ServeConfig::default()).expect("bind");
    let mut addresses = std::collections::HashSet::new();
    for arch in marionette_arch::all_presets() {
        let q = format!("preset={}", arch.short);
        let (status, cold) = run(s.addr(), &q, BASE);
        assert_eq!(status, 200, "cold {}: {cold}", arch.short);
        assert!(cold.contains("\"outcome\": \"miss\""), "{cold}");
        let (status, warm) = run(s.addr(), &q, BASE);
        assert_eq!(status, 200, "warm {}: {warm}", arch.short);
        assert!(warm.contains("\"outcome\": \"hit\""), "{warm}");
        assert_eq!(
            result_line(&cold),
            result_line(&warm),
            "cached result differs from cold on {}",
            arch.short
        );
        // Every preset is a distinct cache entry.
        assert!(
            addresses.insert(extract_address(&cold).to_string()),
            "address collision between presets at {}",
            arch.short
        );
    }
    s.stop();
}

#[test]
fn lru_bound_evicts_and_counts() {
    let s = Server::start(ServeConfig {
        cache_cap: 2,
        ..ServeConfig::default()
    })
    .expect("bind");
    // Three distinct programs through a 2-entry cache.
    for tag in 1..=3 {
        let src = BASE.replace("i * n", &format!("i * n * {tag}"));
        let (status, body) = run(s.addr(), "preset=M", &src);
        assert_eq!(status, 200, "{body}");
    }
    let (_, stats) = http(s.addr(), "GET", "/stats", b"");
    assert!(stats.contains("\"inserts\": 3"), "{stats}");
    assert!(stats.contains("\"evictions\": 1"), "{stats}");
    assert!(stats.contains("\"entries\": 2"), "{stats}");
    s.stop();
}

#[test]
fn fault_sets_key_separately_and_replay_reports_remap() {
    let s = Server::start(ServeConfig::default()).expect("bind");
    let (_, healthy) = run(s.addr(), "preset=M", BASE);
    // A faulted request is a different artifact (possibly remapped) —
    // it must not share the healthy entry.
    let (status, faulted) = run(s.addr(), "preset=M&fault=pe:1,1", BASE);
    assert_eq!(status, 200, "{faulted}");
    assert!(faulted.contains("\"outcome\": \"miss\""), "{faulted}");
    assert_ne!(extract_address(&healthy), extract_address(&faulted));
    // Replay: the cached artifact carries its wedged/remapped metadata.
    let (status, replay) = run(s.addr(), "preset=M&fault=pe:1,1", BASE);
    assert_eq!(status, 200, "{replay}");
    assert!(replay.contains("\"outcome\": \"hit\""), "{replay}");
    let meta = |b: &str| {
        (
            b.lines()
                .find(|l| l.trim_start().starts_with("\"wedged\":"))
                .map(str::to_string),
            b.contains("\"remapped\": true"),
        )
    };
    assert_eq!(meta(&faulted), meta(&replay));
    assert_eq!(result_line(&faulted), result_line(&replay));
    s.stop();
}
