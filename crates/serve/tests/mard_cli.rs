//! Usage-error conformance for the `mard` binary itself: bad command
//! lines exit 2 with the usage text, `--help` exits 0.

use std::process::Command;

const MARD: &str = env!("CARGO_BIN_EXE_mard");

fn run(args: &[&str]) -> std::process::Output {
    Command::new(MARD).args(args).output().expect("spawn mard")
}

#[test]
fn help_exits_zero_with_usage() {
    let out = run(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("POST /run"), "{stdout}");
}

#[test]
fn unknown_flag_exits_two() {
    let out = run(&["--nope"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag `--nope`"));
}

#[test]
fn duplicate_flag_exits_two() {
    let out = run(&["--workers", "2", "--workers", "4"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("duplicate flag `--workers`"));
}

#[test]
fn zero_workers_and_zero_queue_exit_two() {
    let out = run(&["--workers", "0"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--workers"));
    let out = run(&["--queue", "0"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--queue"));
}

#[test]
fn non_numeric_value_exits_two() {
    let out = run(&["--max-cycles", "lots"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("not a number"));
}

#[test]
fn missing_value_exits_two() {
    let out = run(&["--addr"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("needs a value"));
}
