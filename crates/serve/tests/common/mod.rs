//! Shared HTTP test client for the `mard` integration suites: a
//! deliberately independent implementation (raw `TcpStream` writes), so
//! the tests exercise the server's wire behaviour rather than its own
//! parser.

// Each test binary compiles this module afresh; not all of them use
// every helper.
#![allow(dead_code)]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Response read deadline: generous (debug-mode compiles are slow), but
/// finite so a hang fails the test instead of wedging CI.
pub const CLIENT_TIMEOUT: Duration = Duration::from_secs(120);

/// Sends one request, returns `(status, body)`.
pub fn http(addr: SocketAddr, method: &str, target: &str, body: &[u8]) -> (u16, String) {
    let (status, _, body) = http_full(addr, method, target, body);
    (status, body)
}

/// Sends one request, returns `(status, response head, body)` — for
/// tests that pin response headers (Content-Type, X-Request-Id).
pub fn http_full(
    addr: SocketAddr,
    method: &str,
    target: &str,
    body: &[u8],
) -> (u16, String, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(CLIENT_TIMEOUT)).unwrap();
    s.set_write_timeout(Some(CLIENT_TIMEOUT)).unwrap();
    let head = format!(
        "{method} {target} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    s.write_all(head.as_bytes()).expect("write head");
    s.write_all(body).expect("write body");
    let mut buf = Vec::new();
    s.read_to_end(&mut buf).expect("read response");
    let text = String::from_utf8_lossy(&buf).into_owned();
    let (head, body) = text
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("no header/body split in `{text}`"));
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|c| c.parse().ok())
        .unwrap_or_else(|| panic!("bad status line in `{head}`"));
    (status, head.to_string(), body.to_string())
}

/// Sends raw bytes (for malformed-request tests), returns `(status, body)`.
pub fn raw(addr: SocketAddr, bytes: &[u8]) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(CLIENT_TIMEOUT)).unwrap();
    s.write_all(bytes).expect("write raw");
    read_response(&mut s)
}

/// Reads to EOF (the server always closes) and splits the response.
pub fn read_response(s: &mut TcpStream) -> (u16, String) {
    let mut buf = Vec::new();
    s.read_to_end(&mut buf).expect("read response");
    let text = String::from_utf8_lossy(&buf).into_owned();
    let (head, body) = text
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("no header/body split in `{text}`"));
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|c| c.parse().ok())
        .unwrap_or_else(|| panic!("bad status line in `{head}`"));
    (status, body.to_string())
}

/// POSTs `src` to `/run` with the given query string.
pub fn run(addr: SocketAddr, query: &str, src: &str) -> (u16, String) {
    let target = if query.is_empty() {
        "/run".to_string()
    } else {
        format!("/run?{query}")
    };
    http(addr, "POST", &target, src.as_bytes())
}

/// Extracts the `"result": {...}` line of a 200 `/run` body — the
/// payload that must be bit-identical between a cold and a cached serve.
pub fn result_line(body: &str) -> &str {
    body.lines()
        .find(|l| l.trim_start().starts_with("\"result\":"))
        .unwrap_or_else(|| panic!("no result line in `{body}`"))
}
