//! Protocol conformance: an in-process `mard` on an ephemeral port,
//! with the status codes, JSON shapes, and error bodies pinned for
//! every request class a client can produce.

mod common;

use common::{http, raw, run};
use marionette_serve::{ServeConfig, Server};

/// A small program with a computable sink: `s = Σ_{i<8} i·n = 28n`.
const GOOD: &str = "\
program acc;
param n: i32 = 6;
let s = for i in 0..8 with a = 0 {
  yield a + i * n;
};
sink s = s;
";

fn server() -> Server {
    Server::start(ServeConfig::default()).expect("bind ephemeral")
}

#[test]
fn healthz_and_stats_respond() {
    let s = server();
    let (status, body) = http(s.addr(), "GET", "/healthz", b"");
    assert_eq!(status, 200);
    assert!(body.contains("\"ok\": true"), "{body}");
    let (status, body) = http(s.addr(), "GET", "/stats", b"");
    assert_eq!(status, 200);
    for key in ["\"requests\":", "\"cache\":", "\"queue\":", "\"limits\":"] {
        assert!(body.contains(key), "missing {key} in {body}");
    }
    s.stop();
}

#[test]
fn good_source_serves_a_verified_result() {
    let s = server();
    let (status, body) = run(s.addr(), "preset=M", GOOD);
    assert_eq!(status, 200, "{body}");
    assert!(
        body.contains("\"schema\": \"marionette.mard/v1\""),
        "{body}"
    );
    assert!(body.contains("\"endpoint\": \"run\""), "{body}");
    assert!(body.contains("\"program\": \"acc\""), "{body}");
    assert!(body.contains("\"preset\": \"M\""), "{body}");
    assert!(body.contains("\"cache\": {\"outcome\": \"miss\""), "{body}");
    assert!(body.contains("\"verified\": true"), "{body}");
    // 28 · 6 = 168: the sink value is the semantics, pinned.
    assert!(body.contains("\"sinks\": {\"s\": [168]}"), "{body}");
    s.stop();
}

#[test]
fn parse_error_is_400_with_caret_diagnostics_verbatim() {
    let s = server();
    let src = "program broken;\nthis is not mar\n";
    let (status, body) = run(s.addr(), "", src);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("\"kind\": \"parse_error\""), "{body}");
    // The diagnostics field carries the same render the offline driver
    // prints: file:line:col, the offending line, and the caret.
    let expected = marionette_lang::parse(src)
        .expect_err("source must not parse")
        .render("<request>", src);
    let escaped = marionette::report::json_escape(&expected);
    assert!(
        body.contains(&escaped),
        "diagnostics not verbatim:\nwant {escaped}\nin {body}"
    );
    s.stop();
}

#[test]
fn sema_error_is_400_with_diagnostics() {
    let s = server();
    let src = "program bad;\nsink x = undeclared_name;\n";
    let (status, body) = run(s.addr(), "", src);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("\"kind\": \"sema_error\""), "{body}");
    assert!(body.contains("\"diagnostics\":"), "{body}");
    assert!(body.contains("<request>"), "{body}");
    s.stop();
}

#[test]
fn unknown_preset_and_fabric_and_engine_are_400() {
    let s = server();
    let (status, body) = run(s.addr(), "preset=NOPE", GOOD);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("\"kind\": \"unknown_preset\""), "{body}");
    // The detail lists the valid tags so the client can self-correct.
    assert!(body.contains("M"), "{body}");

    let (status, body) = run(s.addr(), "fabric=potato", GOOD);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("\"kind\": \"bad_fabric\""), "{body}");

    let (status, body) = run(s.addr(), "engine=quantum", GOOD);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("\"kind\": \"bad_engine\""), "{body}");
    s.stop();
}

#[test]
fn unknown_param_is_400() {
    let s = server();
    let (status, body) = run(s.addr(), "param=zz%3D4", GOOD);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("\"kind\": \"unknown_param\""), "{body}");
    s.stop();
}

#[test]
fn oversized_body_is_413_before_reading() {
    let s = Server::start(ServeConfig {
        max_body: 64,
        ..ServeConfig::default()
    })
    .expect("bind");
    let (status, body) = run(s.addr(), "", GOOD);
    assert_eq!(status, 413, "{body}");
    assert!(body.contains("\"kind\": \"body_too_large\""), "{body}");
    s.stop();
}

#[test]
fn malformed_http_is_400_not_a_hang() {
    let s = server();
    let (status, body) = raw(s.addr(), b"GARBAGE\r\n\r\n");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("\"kind\": \"malformed_request\""), "{body}");
    let (status, _) = raw(s.addr(), b"GET /x SPDY/9\r\nHost: h\r\n\r\n");
    assert_eq!(status, 400);
    s.stop();
}

#[test]
fn post_without_content_length_is_411() {
    let s = server();
    let (status, body) = raw(s.addr(), b"POST /run HTTP/1.1\r\nHost: h\r\n\r\n");
    assert_eq!(status, 411, "{body}");
    assert!(body.contains("\"kind\": \"length_required\""), "{body}");
    s.stop();
}

#[test]
fn unknown_path_is_404_and_wrong_method_is_405() {
    let s = server();
    let (status, body) = http(s.addr(), "GET", "/nonsense", b"");
    assert_eq!(status, 404, "{body}");
    assert!(body.contains("\"kind\": \"not_found\""), "{body}");
    let (status, body) = http(s.addr(), "GET", "/run", b"");
    assert_eq!(status, 405, "{body}");
    assert!(body.contains("\"kind\": \"method_not_allowed\""), "{body}");
    let (status, _) = http(s.addr(), "DELETE", "/healthz", b"");
    assert_eq!(status, 405);
    s.stop();
}

#[test]
fn batch_runs_lanes_and_isolates_lane_errors() {
    let s = server();
    let query = "preset=M&lane=n%3D1&lane=n%3Dbroken&lane=n%3D10";
    let (status, body) = http(
        s.addr(),
        "POST",
        &format!("/batch?{query}"),
        GOOD.as_bytes(),
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"endpoint\": \"batch\""), "{body}");
    assert!(body.contains("\"lane_errors\": 1"), "{body}");
    // Lane 0 (n=1 → 28) and lane 2 (n=10 → 280) complete around the
    // broken middle lane.
    assert!(body.contains("\"sinks\": {\"s\": [28]}"), "{body}");
    assert!(body.contains("\"sinks\": {\"s\": [280]}"), "{body}");
    assert!(body.contains("\"ok\": false"), "{body}");
    assert!(body.contains("\"kind\": \"bad_param\""), "{body}");
    s.stop();
}

#[test]
fn batch_without_lanes_and_run_with_lanes_are_400() {
    let s = server();
    let (status, body) = http(s.addr(), "POST", "/batch?preset=M", GOOD.as_bytes());
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("\"kind\": \"bad_lane\""), "{body}");
    let (status, body) = run(s.addr(), "lane=n%3D4", GOOD);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("\"kind\": \"bad_lane\""), "{body}");
    s.stop();
}

#[test]
fn counters_track_response_classes() {
    let s = server();
    let _ = run(s.addr(), "preset=M", GOOD); // 200
    let _ = run(s.addr(), "preset=NOPE", GOOD); // 400
    let (_, stats) = http(s.addr(), "GET", "/stats", b"");
    assert!(stats.contains("\"ok\": 1"), "{stats}");
    assert!(stats.contains("\"client_errors\": 1"), "{stats}");
    s.stop();
}
