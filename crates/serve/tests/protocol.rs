//! Protocol conformance: an in-process `mard` on an ephemeral port,
//! with the status codes, JSON shapes, and error bodies pinned for
//! every request class a client can produce.

mod common;

use common::{http, raw, run};
use marionette_serve::{ServeConfig, Server};

/// A small program with a computable sink: `s = Σ_{i<8} i·n = 28n`.
const GOOD: &str = "\
program acc;
param n: i32 = 6;
let s = for i in 0..8 with a = 0 {
  yield a + i * n;
};
sink s = s;
";

fn server() -> Server {
    Server::start(ServeConfig::default()).expect("bind ephemeral")
}

#[test]
fn healthz_and_stats_respond() {
    let s = server();
    let (status, body) = http(s.addr(), "GET", "/healthz", b"");
    assert_eq!(status, 200);
    assert!(body.contains("\"ok\": true"), "{body}");
    let (status, body) = http(s.addr(), "GET", "/stats", b"");
    assert_eq!(status, 200);
    for key in ["\"requests\":", "\"cache\":", "\"queue\":", "\"limits\":"] {
        assert!(body.contains(key), "missing {key} in {body}");
    }
    s.stop();
}

#[test]
fn good_source_serves_a_verified_result() {
    let s = server();
    let (status, body) = run(s.addr(), "preset=M", GOOD);
    assert_eq!(status, 200, "{body}");
    assert!(
        body.contains("\"schema\": \"marionette.mard/v1\""),
        "{body}"
    );
    assert!(body.contains("\"endpoint\": \"run\""), "{body}");
    assert!(body.contains("\"program\": \"acc\""), "{body}");
    assert!(body.contains("\"preset\": \"M\""), "{body}");
    assert!(body.contains("\"cache\": {\"outcome\": \"miss\""), "{body}");
    assert!(body.contains("\"verified\": true"), "{body}");
    // 28 · 6 = 168: the sink value is the semantics, pinned.
    assert!(body.contains("\"sinks\": {\"s\": [168]}"), "{body}");
    s.stop();
}

#[test]
fn parse_error_is_400_with_caret_diagnostics_verbatim() {
    let s = server();
    let src = "program broken;\nthis is not mar\n";
    let (status, body) = run(s.addr(), "", src);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("\"kind\": \"parse_error\""), "{body}");
    // The diagnostics field carries the same render the offline driver
    // prints: file:line:col, the offending line, and the caret.
    let expected = marionette_lang::parse(src)
        .expect_err("source must not parse")
        .render("<request>", src);
    let escaped = marionette::report::json_escape(&expected);
    assert!(
        body.contains(&escaped),
        "diagnostics not verbatim:\nwant {escaped}\nin {body}"
    );
    s.stop();
}

#[test]
fn sema_error_is_400_with_diagnostics() {
    let s = server();
    let src = "program bad;\nsink x = undeclared_name;\n";
    let (status, body) = run(s.addr(), "", src);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("\"kind\": \"sema_error\""), "{body}");
    assert!(body.contains("\"diagnostics\":"), "{body}");
    assert!(body.contains("<request>"), "{body}");
    s.stop();
}

#[test]
fn unknown_preset_and_fabric_and_engine_are_400() {
    let s = server();
    let (status, body) = run(s.addr(), "preset=NOPE", GOOD);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("\"kind\": \"unknown_preset\""), "{body}");
    // The detail lists the valid tags so the client can self-correct.
    assert!(body.contains("M"), "{body}");

    let (status, body) = run(s.addr(), "fabric=potato", GOOD);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("\"kind\": \"bad_fabric\""), "{body}");

    let (status, body) = run(s.addr(), "engine=quantum", GOOD);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("\"kind\": \"bad_engine\""), "{body}");
    s.stop();
}

#[test]
fn unknown_param_is_400() {
    let s = server();
    let (status, body) = run(s.addr(), "param=zz%3D4", GOOD);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("\"kind\": \"unknown_param\""), "{body}");
    s.stop();
}

#[test]
fn oversized_body_is_413_before_reading() {
    let s = Server::start(ServeConfig {
        max_body: 64,
        ..ServeConfig::default()
    })
    .expect("bind");
    let (status, body) = run(s.addr(), "", GOOD);
    assert_eq!(status, 413, "{body}");
    assert!(body.contains("\"kind\": \"body_too_large\""), "{body}");
    s.stop();
}

#[test]
fn malformed_http_is_400_not_a_hang() {
    let s = server();
    let (status, body) = raw(s.addr(), b"GARBAGE\r\n\r\n");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("\"kind\": \"malformed_request\""), "{body}");
    let (status, _) = raw(s.addr(), b"GET /x SPDY/9\r\nHost: h\r\n\r\n");
    assert_eq!(status, 400);
    s.stop();
}

#[test]
fn post_without_content_length_is_411() {
    let s = server();
    let (status, body) = raw(s.addr(), b"POST /run HTTP/1.1\r\nHost: h\r\n\r\n");
    assert_eq!(status, 411, "{body}");
    assert!(body.contains("\"kind\": \"length_required\""), "{body}");
    s.stop();
}

#[test]
fn unknown_path_is_404_and_wrong_method_is_405() {
    let s = server();
    let (status, body) = http(s.addr(), "GET", "/nonsense", b"");
    assert_eq!(status, 404, "{body}");
    assert!(body.contains("\"kind\": \"not_found\""), "{body}");
    let (status, body) = http(s.addr(), "GET", "/run", b"");
    assert_eq!(status, 405, "{body}");
    assert!(body.contains("\"kind\": \"method_not_allowed\""), "{body}");
    let (status, _) = http(s.addr(), "DELETE", "/healthz", b"");
    assert_eq!(status, 405);
    s.stop();
}

#[test]
fn batch_runs_lanes_and_isolates_lane_errors() {
    let s = server();
    let query = "preset=M&lane=n%3D1&lane=n%3Dbroken&lane=n%3D10";
    let (status, body) = http(
        s.addr(),
        "POST",
        &format!("/batch?{query}"),
        GOOD.as_bytes(),
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"endpoint\": \"batch\""), "{body}");
    assert!(body.contains("\"lane_errors\": 1"), "{body}");
    // Lane 0 (n=1 → 28) and lane 2 (n=10 → 280) complete around the
    // broken middle lane.
    assert!(body.contains("\"sinks\": {\"s\": [28]}"), "{body}");
    assert!(body.contains("\"sinks\": {\"s\": [280]}"), "{body}");
    assert!(body.contains("\"ok\": false"), "{body}");
    assert!(body.contains("\"kind\": \"bad_param\""), "{body}");
    s.stop();
}

#[test]
fn batch_without_lanes_and_run_with_lanes_are_400() {
    let s = server();
    let (status, body) = http(s.addr(), "POST", "/batch?preset=M", GOOD.as_bytes());
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("\"kind\": \"bad_lane\""), "{body}");
    let (status, body) = run(s.addr(), "lane=n%3D4", GOOD);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("\"kind\": \"bad_lane\""), "{body}");
    s.stop();
}

#[test]
fn counters_track_response_classes() {
    let s = server();
    let _ = run(s.addr(), "preset=M", GOOD); // 200
    let _ = run(s.addr(), "preset=NOPE", GOOD); // 400
    let (_, stats) = http(s.addr(), "GET", "/stats", b"");
    assert!(stats.contains("\"ok\": 1"), "{stats}");
    assert!(stats.contains("\"client_errors\": 1"), "{stats}");
    s.stop();
}

#[test]
fn stats_reports_uptime_and_per_endpoint_counts() {
    let s = server();
    let _ = http(s.addr(), "GET", "/healthz", b"");
    let _ = run(s.addr(), "preset=M", GOOD);
    let (status, stats) = http(s.addr(), "GET", "/stats", b"");
    assert_eq!(status, 200);
    assert!(stats.contains("\"uptime_secs\": "), "{stats}");
    assert!(stats.contains("\"endpoints\": {"), "{stats}");
    assert!(stats.contains("\"healthz\": 1"), "{stats}");
    assert!(stats.contains("\"run\": 1"), "{stats}");
    // The /stats request itself has not been recorded yet when its own
    // body is rendered, so the earlier traffic pins exact counts.
    assert!(stats.contains("\"batch\": 0"), "{stats}");
    s.stop();
}

#[test]
fn metrics_expose_prometheus_text_that_parses() {
    let s = server();
    let _ = run(s.addr(), "preset=M", GOOD); // move the counters first
    let (status, head, body) = common::http_full(s.addr(), "GET", "/metrics", b"");
    assert_eq!(status, 200, "{body}");
    assert!(head.contains("Content-Type: text/plain"), "{head}");

    // Every line must be a comment or `name[{labels}] value` with a
    // numeric value — the Prometheus text exposition grammar.
    for line in body.lines().filter(|l| !l.trim().is_empty()) {
        if let Some(comment) = line.strip_prefix('#') {
            let word = comment.trim_start().split(' ').next().unwrap_or("");
            assert!(
                word == "HELP" || word == "TYPE",
                "bad comment line `{line}`"
            );
            continue;
        }
        let (name_part, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("sample line `{line}` has no value");
        });
        assert!(
            value.parse::<f64>().is_ok(),
            "value `{value}` in `{line}` is not numeric"
        );
        let name = name_part.split('{').next().unwrap();
        assert!(
            !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name in `{line}`"
        );
        if let Some(rest) = name_part.split_once('{').map(|(_, r)| r) {
            assert!(rest.ends_with('}'), "unterminated labels in `{line}`");
        }
    }

    // The /run above must be visible in the counters and the histogram.
    assert!(
        body.contains("mard_requests_total{endpoint=\"run\",status=\"200\"} 1"),
        "{body}"
    );
    assert!(body.contains("mard_cache_misses_total 1"), "{body}");
    assert!(
        body.contains("mard_request_latency_seconds_bucket{le=\"+Inf\"} 1"),
        "{body}"
    );
    assert!(
        body.contains("mard_request_latency_seconds_count 1"),
        "{body}"
    );
    assert!(body.contains("mard_workers "), "{body}");
    assert!(body.contains("mard_uptime_seconds "), "{body}");
    s.stop();
}

#[test]
fn responses_echo_a_request_id() {
    let s = server();
    let (_, head1, _) = common::http_full(s.addr(), "GET", "/healthz", b"");
    let (_, head2, _) = common::http_full(s.addr(), "GET", "/healthz", b"");
    let id_of = |head: &str| -> u64 {
        head.lines()
            .find_map(|l| l.strip_prefix("X-Request-Id: "))
            .unwrap_or_else(|| panic!("no X-Request-Id in `{head}`"))
            .trim()
            .parse()
            .expect("numeric request id")
    };
    let (id1, id2) = (id_of(&head1), id_of(&head2));
    assert_ne!(id1, id2, "request ids must be distinct");
    assert!(id2 > id1, "request ids must be monotonic");
    s.stop();
}
