//! Minimal HTTP/1.1 request parsing and response writing over
//! `std::io` streams.
//!
//! `mard` is std-only (the container has no registry access), so the
//! slice of HTTP it needs is implemented here: request line + headers +
//! `Content-Length` bodies in, status + headers + body out, one request
//! per connection (`Connection: close` on every response). Everything a
//! client can get wrong is a typed [`HttpError`] that maps onto a 4xx
//! status — a malformed request must never take a worker down or hang
//! it.

use std::io::{BufRead, BufReader, Read, Write};

/// Upper bound on the request line + headers, independent of the body
/// limit: nothing legitimate needs more, and an unbounded header read
/// would let a client wedge a worker.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed HTTP request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Request method, upper-cased by the client (`GET`, `POST`, ...).
    pub method: String,
    /// Decoded path component (before `?`), e.g. `/run`.
    pub path: String,
    /// Percent-decoded query pairs in request order; keys may repeat.
    pub query: Vec<(String, String)>,
    /// Header `(name, value)` pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First query value for `key`, if any.
    pub fn query_first(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Every query value for `key`, in order.
    pub fn query_all(&self, key: &str) -> Vec<&str> {
        self.query
            .iter()
            .filter(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .collect()
    }
}

/// A request that could not be read; each variant maps to one status.
#[derive(Debug)]
pub enum HttpError {
    /// Not parseable as HTTP/1.x (status 400).
    Malformed(String),
    /// A body was declared without a numeric `Content-Length` (400).
    LengthRequired,
    /// The declared body exceeds the server's limit (413).
    TooLarge {
        /// Declared `Content-Length`.
        declared: usize,
        /// Server limit.
        limit: usize,
    },
    /// The socket failed or timed out mid-request (connection dropped).
    Io(std::io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(d) => write!(f, "malformed request: {d}"),
            HttpError::LengthRequired => write!(f, "missing or invalid Content-Length"),
            HttpError::TooLarge { declared, limit } => {
                write!(f, "body of {declared} bytes exceeds the {limit}-byte limit")
            }
            HttpError::Io(e) => write!(f, "i/o: {e}"),
        }
    }
}

/// Decodes `%XX` escapes and `+` (as space) in a query component.
/// Invalid escapes pass through literally rather than erroring: the
/// query grammar downstream rejects anything that matters.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Splits a raw query string into decoded `(key, value)` pairs.
fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|p| !p.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(pair), String::new()),
        })
        .collect()
}

/// Reads one request from `stream`.
///
/// # Errors
/// Returns the typed [`HttpError`] for anything short of a complete,
/// in-limits request.
pub fn read_request<S: Read>(stream: S, max_body: usize) -> Result<Request, HttpError> {
    let mut reader = BufReader::new(stream);
    let mut head = 0usize;
    let mut line = String::new();
    let mut read_line =
        |reader: &mut BufReader<S>, head: &mut usize| -> Result<String, HttpError> {
            line.clear();
            let n = reader.read_line(&mut line).map_err(HttpError::Io)?;
            if n == 0 {
                return Err(HttpError::Malformed("connection closed mid-request".into()));
            }
            *head += n;
            if *head > MAX_HEAD_BYTES {
                return Err(HttpError::Malformed("request head too large".into()));
            }
            Ok(line.trim_end_matches(['\r', '\n']).to_string())
        };

    let request_line = read_line(&mut reader, &mut head)?;
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(HttpError::Malformed(format!(
                "bad request line `{request_line}`"
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::Malformed(format!("bad version `{version}`")));
    }
    if !method.chars().all(|c| c.is_ascii_uppercase()) {
        return Err(HttpError::Malformed(format!("bad method `{method}`")));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), parse_query(q)),
        None => (target.to_string(), Vec::new()),
    };

    let mut headers = Vec::new();
    loop {
        let h = read_line(&mut reader, &mut head)?;
        if h.is_empty() {
            break;
        }
        let Some((name, value)) = h.split_once(':') else {
            return Err(HttpError::Malformed(format!("bad header line `{h}`")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers.iter().find(|(n, _)| n == "content-length");
    let body = match content_length {
        None => {
            // A POST with no Content-Length cannot be framed (chunked
            // encoding is deliberately unsupported).
            if method == "POST" || method == "PUT" {
                return Err(HttpError::LengthRequired);
            }
            Vec::new()
        }
        Some((_, v)) => {
            let declared: usize = v.parse().map_err(|_| HttpError::LengthRequired)?;
            if declared > max_body {
                return Err(HttpError::TooLarge {
                    declared,
                    limit: max_body,
                });
            }
            let mut body = vec![0u8; declared];
            reader.read_exact(&mut body).map_err(HttpError::Io)?;
            body
        }
    };

    Ok(Request {
        method: method.to_string(),
        path,
        query,
        headers,
        body,
    })
}

/// Reason phrase for the handful of statuses `mard` emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        411 => "Length Required",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Writes a complete JSON response and flushes. Every response closes
/// the connection (`Connection: close`) — `mard` is one-shot per
/// connection by design.
///
/// # Errors
/// Returns the underlying I/O error (the connection is dropped anyway).
pub fn write_response<S: Write>(stream: S, status: u16, body: &str) -> std::io::Result<()> {
    write_response_ext(stream, status, "application/json", &[], body)
}

/// [`write_response`] with an explicit `Content-Type` and extra headers
/// (`/metrics` answers Prometheus text; every routed response carries
/// `X-Request-Id`).
///
/// # Errors
/// Returns the underlying I/O error (the connection is dropped anyway).
pub fn write_response_ext<S: Write>(
    mut stream: S,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n",
        reason(status),
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("Connection: close\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        read_request(raw.as_bytes(), 1024)
    }

    #[test]
    fn parses_get_with_query() {
        let r = parse("GET /run?preset=M&param=n%3D4&x=a+b HTTP/1.1\r\nHost: h\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/run");
        assert_eq!(r.query_first("preset"), Some("M"));
        assert_eq!(r.query_first("param"), Some("n=4"));
        assert_eq!(r.query_first("x"), Some("a b"));
    }

    #[test]
    fn parses_post_body() {
        let r = parse("POST /run HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello").unwrap();
        assert_eq!(r.body, b"hello");
    }

    #[test]
    fn post_without_length_is_typed() {
        assert!(matches!(
            parse("POST /run HTTP/1.1\r\n\r\n"),
            Err(HttpError::LengthRequired)
        ));
    }

    #[test]
    fn oversized_body_is_typed_before_reading() {
        match parse("POST /run HTTP/1.1\r\nContent-Length: 9999\r\n\r\n") {
            Err(HttpError::TooLarge { declared, limit }) => {
                assert_eq!(declared, 9999);
                assert_eq!(limit, 1024);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn garbage_is_malformed() {
        assert!(matches!(
            parse("GARBAGE\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET /x SPDY/9\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn repeated_query_keys_collect_in_order() {
        let r = parse("GET /b?lane=n%3D1&lane=n%3D2 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(r.query_all("lane"), vec!["n=1", "n=2"]);
    }
}
