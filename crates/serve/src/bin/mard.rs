//! `mard` — the marionette-as-a-service daemon.
//!
//! Binds a TCP listener, serves `.mar` compilation + simulation over
//! HTTP/1.1 (see `docs/SERVING.md`), and runs until killed.
//!
//! ```text
//! mard [--addr HOST:PORT] [--workers N] [--queue N] [--cache N]
//!      [--max-body BYTES] [--max-cycles N] [--interp-budget N]
//! ```
//!
//! Usage errors (unknown flags, bad values, duplicate flags) exit 2;
//! bind failures exit 1.

use marionette_serve::{ServeConfig, Server};
use std::collections::HashSet;
use std::process::ExitCode;

const USAGE: &str = "\
mard: marionette-as-a-service daemon

USAGE:
  mard [OPTIONS]

OPTIONS:
  --addr HOST:PORT     bind address            [default: 127.0.0.1:8431]
  --workers N          worker threads          [default: 2]
  --queue N            admission queue depth   [default: 8]
  --cache N            compile-cache entries   [default: 64]
  --max-body BYTES     request body limit      [default: 262144]
  --max-cycles N       per-job sim cycle cap   [default: 10000000]
  --interp-budget N    reference firing budget [default: 20000000]
  --help               print this help

ENDPOINTS:
  GET  /healthz   liveness probe
  GET  /stats     counters (requests, cache, queue, uptime, endpoints)
  GET  /metrics   Prometheus text exposition
  POST /run       compile + simulate one .mar body
  POST /batch     one compile, N parameter lanes

One structured access-log line (JSON) per request goes to stderr;
every response carries an X-Request-Id header matching its log line.
";

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("mard: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ServeConfig {
        addr: "127.0.0.1:8431".to_string(),
        // The daemon always writes access logs; only in-process tests
        // (which build ServeConfig directly) run quiet.
        access_log: true,
        ..ServeConfig::default()
    };
    // Every mard flag takes exactly one value and may appear once; a
    // repeated flag is a typo'd command line, not an intent.
    let mut seen: HashSet<&'static str> = HashSet::new();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--help" || flag == "-h" {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        let canon: &'static str = match flag {
            "--addr" => "--addr",
            "--workers" => "--workers",
            "--queue" => "--queue",
            "--cache" => "--cache",
            "--max-body" => "--max-body",
            "--max-cycles" => "--max-cycles",
            "--interp-budget" => "--interp-budget",
            other => return usage_error(&format!("unknown flag `{other}`")),
        };
        if !seen.insert(canon) {
            return usage_error(&format!("duplicate flag `{canon}`"));
        }
        let Some(value) = args.get(i + 1) else {
            return usage_error(&format!("`{canon}` needs a value"));
        };
        macro_rules! num {
            ($t:ty) => {
                match value.parse::<$t>() {
                    Ok(v) => v,
                    Err(_) => return usage_error(&format!("`{canon}`: `{value}` is not a number")),
                }
            };
        }
        match canon {
            "--addr" => cfg.addr = value.clone(),
            "--workers" => cfg.workers = num!(usize),
            "--queue" => cfg.queue_cap = num!(usize),
            "--cache" => cfg.cache_cap = num!(usize),
            "--max-body" => cfg.max_body = num!(usize),
            "--max-cycles" => cfg.max_cycles = num!(u64),
            "--interp-budget" => cfg.interp_budget = num!(u64),
            _ => unreachable!(),
        }
        if cfg.workers == 0 && canon == "--workers" {
            return usage_error("`--workers` must be at least 1");
        }
        if cfg.queue_cap == 0 && canon == "--queue" {
            return usage_error("`--queue` must be at least 1");
        }
        i += 2;
    }

    match Server::start(cfg) {
        Ok(server) => {
            println!("mard listening on http://{}", server.addr());
            server.join();
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("mard: bind failed: {e}");
            ExitCode::FAILURE
        }
    }
}
