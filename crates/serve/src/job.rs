//! Request decoding and the compile-cache-aware execution pipeline
//! behind `/run` and `/batch`.
//!
//! Every served result goes through the same oracle the offline `marc`
//! driver applies: the simulation is bit-verified against the reference
//! interpreter (arrays, sink streams, out-of-bounds counts, firing
//! totals) before a 200 leaves the socket. A cache hit skips the
//! *compile*, never the verification.

use crate::cache::{CacheKey, CachedArtifact};
use crate::http::Request;
use crate::{RouteMeta, ServerState};
use marionette::cdfg::value::Value;
use marionette::compiler::SearchBudget;
use marionette::report::json_escape;
use marionette::sim::{EngineKind, FaultSet, SimError};
use marionette_arch::{Architecture, FabricDims};
use marionette_lang::driver::{
    compile_preset, compile_preset_faulted, frontend, reference, simulate_compiled,
    simulate_compiled_lanes, DriverError, PresetRun, Reference,
};
use marionette_lang::{ast, print};
use std::fmt::Write as _;
use std::sync::Arc;

/// Name under which request source is rendered in caret diagnostics.
const REQUEST_FILE: &str = "<request>";

/// Elapsed microseconds since `t`, saturating.
fn micros_since(t: std::time::Instant) -> u64 {
    u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// A typed request-processing failure: one status, one machine-readable
/// kind, human detail, and (for front-end failures) the rendered caret
/// diagnostics verbatim.
#[derive(Debug)]
pub struct ApiError {
    /// HTTP status to answer with.
    pub status: u16,
    /// Stable machine-readable kind tag.
    pub kind: &'static str,
    /// Human-readable detail.
    pub detail: String,
    /// Rendered caret diagnostics (parse/sema failures only).
    pub diagnostics: Option<String>,
}

impl ApiError {
    fn bad(kind: &'static str, detail: impl Into<String>) -> Self {
        ApiError {
            status: 400,
            kind,
            detail: detail.into(),
            diagnostics: None,
        }
    }

    fn unprocessable(kind: &'static str, detail: impl Into<String>) -> Self {
        ApiError {
            status: 422,
            kind,
            detail: detail.into(),
            diagnostics: None,
        }
    }

    /// Serializes the error body.
    pub fn to_json(&self) -> String {
        let mut j = String::new();
        j.push_str("{\n  \"schema\": \"marionette.mard/v1\",\n");
        let _ = write!(
            j,
            "  \"error\": {{\"kind\": \"{}\", \"detail\": \"{}\"",
            json_escape(self.kind),
            json_escape(&self.detail)
        );
        if let Some(d) = &self.diagnostics {
            let _ = write!(j, ", \"diagnostics\": \"{}\"", json_escape(d));
        }
        j.push_str("}\n}\n");
        j
    }
}

/// Maps a pipeline failure onto a status + kind. 4xx are the client's
/// fault, 422 is a program that cannot be served (including the typed
/// wedge outcomes: interpreter budget, cycle limit, deadlock), 500 marks
/// conditions that indicate a server-side bug (verification mismatch).
fn map_driver_error(e: DriverError, src: &str, under_faults: bool) -> ApiError {
    match e {
        DriverError::Parse(d) => ApiError {
            status: 400,
            kind: "parse_error",
            detail: d.message.clone(),
            diagnostics: Some(d.render(REQUEST_FILE, src)),
        },
        DriverError::Sema(ds) => ApiError {
            status: 400,
            kind: "sema_error",
            detail: format!("{} semantic error(s)", ds.len()),
            diagnostics: Some(
                ds.iter()
                    .map(|d| d.render(REQUEST_FILE, src))
                    .collect::<Vec<_>>()
                    .join("\n"),
            ),
        },
        DriverError::Interp(marionette::cdfg::interp::InterpError::FiringBudgetExceeded {
            budget,
        }) => ApiError::unprocessable(
            "interp_budget",
            format!("reference interpretation exceeded the {budget}-firing budget (wedged or unbounded program)"),
        ),
        DriverError::Interp(marionette::cdfg::interp::InterpError::UnknownParam { name }) => {
            ApiError::bad("unknown_param", format!("parameter `{name}` is not declared"))
        }
        DriverError::Interp(e) => ApiError::unprocessable("interp_error", e.to_string()),
        DriverError::Modes(d) => ApiError {
            status: 500,
            kind: "modes_disagree",
            detail: d,
            diagnostics: None,
        },
        DriverError::Compile { preset, e } => ApiError::unprocessable(
            if under_faults {
                "remap_infeasible"
            } else {
                "compile_error"
            },
            format!("compile on {preset}: {e}"),
        ),
        DriverError::Bitstream { preset, detail } => ApiError {
            status: 500,
            kind: "bitstream_error",
            detail: format!("bitstream round-trip on {preset}: {detail}"),
            diagnostics: None,
        },
        DriverError::Sim { preset, e } => match e {
            SimError::CycleLimit { limit } => ApiError::unprocessable(
                "cycle_limit",
                format!("simulation on {preset} exceeded the {limit}-cycle budget"),
            ),
            SimError::Deadlock { cycle, detail } => ApiError::unprocessable(
                "deadlock",
                format!("simulation on {preset} deadlocked at cycle {cycle}: {detail}"),
            ),
            SimError::Fault { what, detail } => ApiError::unprocessable(
                "fault",
                format!("bitstream touches faulted resource {what} on {preset}: {detail}"),
            ),
            SimError::UnknownParam(n) => {
                ApiError::bad("unknown_param", format!("parameter `{n}` is not declared"))
            }
            SimError::UnknownArray(n) => {
                ApiError::bad("unknown_array", format!("array `{n}` is not declared"))
            }
        },
        DriverError::Mismatch { preset, detail } => ApiError {
            status: 500,
            kind: "verify_mismatch",
            detail: format!("served result diverged from the reference on {preset}: {detail}"),
            diagnostics: None,
        },
        // Tenancy is driven by the batch CLI, not the server, so these
        // reaching a request handler indicates a server-side bug.
        DriverError::Partition(e) => ApiError {
            status: 500,
            kind: "partition_error",
            detail: e.to_string(),
            diagnostics: None,
        },
        DriverError::Image(e) => ApiError {
            status: 500,
            kind: "image_error",
            detail: e.to_string(),
            diagnostics: None,
        },
    }
}

/// Everything `/run` and `/batch` share, decoded from the query string.
pub struct RunOptions {
    /// Selected preset.
    pub arch: Architecture,
    /// Fabric geometry the preset was instantiated on.
    pub fabric: FabricDims,
    /// Injected fault set (empty for healthy runs).
    pub faults: FaultSet,
    /// Simulator engine.
    pub engine: EngineKind,
    /// Cycle budget, already clamped to the server cap.
    pub max_cycles: u64,
    /// Raw single-run `param` overrides.
    pub params: Vec<(String, String)>,
    /// Raw per-lane override lists (batch endpoint only).
    pub lanes: Vec<Vec<(String, String)>>,
}

/// Splits a lane value (`"n=4,m=2"` or empty) into raw overrides.
fn parse_lane(spec: &str) -> Result<Vec<(String, String)>, ApiError> {
    let mut out = Vec::new();
    for part in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let (name, val) = part.split_once('=').ok_or_else(|| {
            ApiError::bad("bad_lane", format!("lane entry `{part}` is not NAME=VALUE"))
        })?;
        out.push((name.to_string(), val.to_string()));
    }
    Ok(out)
}

/// Decodes and validates the query string against the server limits.
///
/// # Errors
/// Returns a 400 [`ApiError`] naming the offending option.
pub fn decode_options(state: &ServerState, req: &Request) -> Result<RunOptions, ApiError> {
    let fabric: FabricDims = match req.query_first("fabric") {
        None => FabricDims::paper(),
        Some(v) => v
            .parse()
            .map_err(|e| ApiError::bad("bad_fabric", format!("fabric `{v}`: {e}")))?,
    };
    let tag = req.query_first("preset").unwrap_or("M");
    let mut arch = marionette_arch::presets_by_tags_on(fabric, tag)
        .ok()
        .and_then(|v| v.into_iter().next())
        .ok_or_else(|| {
            let known: Vec<&str> = marionette_arch::all_presets()
                .iter()
                .map(|a| a.short)
                .collect();
            ApiError::bad(
                "unknown_preset",
                format!("preset `{tag}` is not one of {}", known.join(", ")),
            )
        })?;
    if tag.contains(',') {
        return Err(ApiError::bad(
            "unknown_preset",
            "one preset per request (fold variants into separate requests)",
        ));
    }
    if let Some(spec) = req.query_first("search") {
        let mut parts = spec.split(',').map(str::trim);
        let moves: u32 = parts.next().and_then(|v| v.parse().ok()).ok_or_else(|| {
            ApiError::bad(
                "bad_search",
                format!("search `{spec}` is not MOVES[,RESTARTS]"),
            )
        })?;
        let restarts: u32 = match parts.next() {
            None => 1,
            Some(v) => v.parse().map_err(|_| {
                ApiError::bad(
                    "bad_search",
                    format!("search restarts `{v}` is not numeric"),
                )
            })?,
        };
        arch.opts.search = SearchBudget::Anneal {
            moves,
            restarts,
            base_seed: 0xA11E,
        };
    }
    let fault_specs: Vec<String> = req
        .query_all("fault")
        .iter()
        .map(|s| s.to_string())
        .collect();
    let faults_n = match req.query_first("faults") {
        None => 0usize,
        Some(v) => v
            .parse()
            .map_err(|_| ApiError::bad("bad_faults", format!("faults `{v}` is not a count")))?,
    };
    let fault_seed = match req.query_first("fault-seed") {
        None => 1u64,
        Some(v) => v
            .parse()
            .map_err(|_| ApiError::bad("bad_faults", format!("fault-seed `{v}` is not numeric")))?,
    };
    let faults = FaultSet::from_cli(fabric.rows, fabric.cols, &fault_specs, faults_n, fault_seed)
        .map_err(|e| ApiError::bad("bad_fault", e))?;
    let engine = match req.query_first("engine") {
        None => EngineKind::default(),
        Some(v) => v
            .parse()
            .map_err(|e| ApiError::bad("bad_engine", format!("engine `{v}`: {e}")))?,
    };
    let max_cycles = match req.query_first("max-cycles") {
        None => state.cfg.max_cycles,
        Some(v) => {
            let n: u64 = v.parse().map_err(|_| {
                ApiError::bad("bad_max_cycles", format!("max-cycles `{v}` is not numeric"))
            })?;
            // Admission-side timeout control: a request may lower the
            // budget but never raise it past the server cap.
            n.min(state.cfg.max_cycles)
        }
    };
    let mut params = Vec::new();
    for spec in req.query_all("param") {
        let (name, val) = spec.split_once('=').ok_or_else(|| {
            ApiError::bad("bad_param", format!("param `{spec}` is not NAME=VALUE"))
        })?;
        params.push((name.to_string(), val.to_string()));
    }
    let mut lanes = Vec::new();
    for spec in req.query_all("lane") {
        lanes.push(parse_lane(spec)?);
    }
    Ok(RunOptions {
        arch,
        fabric,
        faults,
        engine,
        max_cycles,
        params,
        lanes,
    })
}

/// Types raw `NAME=VALUE` overrides from the program's declarations;
/// undeclared names are passed through by value shape so the reference
/// interpreter reports the typed `UnknownParam`.
fn typed_overrides(
    ast: &ast::Program,
    raw: &[(String, String)],
) -> Result<Vec<(String, Value)>, ApiError> {
    let mut out = Vec::new();
    for (name, val) in raw {
        let decl = ast.params.iter().find(|p| &p.name.name == name);
        let v = match decl.map(|d| d.ty) {
            Some(ast::Ty::F32) => Value::F32(val.parse::<f32>().map_err(|_| {
                ApiError::bad("bad_param", format!("param {name}: `{val}` is not an f32"))
            })?),
            Some(ast::Ty::I32) => Value::I32(val.parse::<i32>().map_err(|_| {
                ApiError::bad("bad_param", format!("param {name}: `{val}` is not an i32"))
            })?),
            None => match (val.parse::<i32>(), val.parse::<f32>()) {
                (Ok(v), _) => Value::I32(v),
                (_, Ok(v)) => Value::F32(v),
                _ => {
                    return Err(ApiError::bad(
                        "bad_param",
                        format!("param {name}: `{val}` is not a number"),
                    ))
                }
            },
        };
        out.push((name.clone(), v));
    }
    Ok(out)
}

fn json_value(v: &Value) -> String {
    match v {
        Value::I32(x) => x.to_string(),
        Value::F32(x) if x.is_finite() => format!("{x:?}"),
        Value::F32(x) => format!("\"{x}\""),
        Value::Unit => "\"unit\"".to_string(),
        Value::Poison => "\"poison\"".to_string(),
    }
}

fn json_sinks(sinks: &std::collections::HashMap<String, Vec<Value>>) -> String {
    let mut labels: Vec<&String> = sinks.keys().collect();
    labels.sort();
    let mut j = String::from("{");
    for (i, l) in labels.iter().enumerate() {
        let vals: Vec<String> = sinks[*l].iter().map(json_value).collect();
        let _ = write!(
            j,
            "{}\"{}\": [{}]",
            if i == 0 { "" } else { ", " },
            json_escape(l),
            vals.join(", ")
        );
    }
    j.push('}');
    j
}

fn json_result(run: &PresetRun, sinks: &std::collections::HashMap<String, Vec<Value>>) -> String {
    format!(
        "{{\"cycles\": {}, \"fires\": {}, \"link_stall_cycles\": {}, \
         \"switch_stall_cycles\": {}, \"group_switches\": {}, \"routes\": {}, \
         \"mean_data_hops\": {:.3}, \"verified\": true, \"sinks\": {}}}",
        run.cycles,
        run.fires,
        run.link_stall_cycles,
        run.switch_stall_cycles,
        run.group_switches,
        run.routes,
        run.mean_data_hops,
        json_sinks(sinks)
    )
}

/// Compile-or-reuse: resolves the request's artifact through the
/// content-addressed cache. On a miss with faults injected, the cold
/// path probes for a wedge and self-heals exactly like
/// `run_preset_faulted` — and the *surviving* artifact (original or
/// remap) is what gets cached, together with its fault outcome.
///
/// Returns `(run, artifact, hit)` so callers report cache outcome and
/// remap metadata without re-deriving them.
#[allow(clippy::type_complexity, clippy::too_many_arguments)]
fn run_via_cache(
    state: &ServerState,
    g: &marionette::cdfg::Cdfg,
    reference: &Reference,
    opts: &RunOptions,
    overrides: &[(String, Value)],
    key: &CacheKey,
    src: &str,
    meta: &mut RouteMeta,
) -> Result<(PresetRun, Arc<CachedArtifact>, bool), ApiError> {
    let under_faults = !opts.faults.is_empty();
    if let Some(artifact) = state.cache.lookup(key) {
        let t = std::time::Instant::now();
        let run = simulate_compiled(
            g,
            reference,
            &opts.arch,
            &artifact.compiled,
            overrides,
            opts.max_cycles,
            &opts.faults,
            opts.engine,
        )
        .map_err(|e| map_driver_error(e, src, under_faults))?;
        meta.sim_us += micros_since(t);
        return Ok((run, artifact, true));
    }
    let t = std::time::Instant::now();
    let compiled =
        compile_preset(g, &opts.arch).map_err(|e| map_driver_error(e, src, under_faults))?;
    meta.compile_us += micros_since(t);
    let t = std::time::Instant::now();
    let first = simulate_compiled(
        g,
        reference,
        &opts.arch,
        &compiled,
        overrides,
        opts.max_cycles,
        &opts.faults,
        opts.engine,
    );
    meta.sim_us += micros_since(t);
    match first {
        Ok(run) => {
            let artifact = CachedArtifact {
                compiled,
                wedged: None,
                remapped: false,
            };
            state.cache.insert(key, artifact.clone());
            Ok((run, Arc::new(artifact), false))
        }
        Err(DriverError::Sim {
            e: SimError::Fault { what, .. },
            ..
        }) if under_faults => {
            // Self-heal: recompile with the faulty resources masked.
            let t = std::time::Instant::now();
            let healed = compile_preset_faulted(g, &opts.arch, &opts.faults)
                .map_err(|e| map_driver_error(e, src, true))?;
            meta.compile_us += micros_since(t);
            let t = std::time::Instant::now();
            let run = simulate_compiled(
                g,
                reference,
                &opts.arch,
                &healed,
                overrides,
                opts.max_cycles,
                &opts.faults,
                opts.engine,
            )
            .map_err(|e| map_driver_error(e, src, true))?;
            meta.sim_us += micros_since(t);
            let artifact = CachedArtifact {
                compiled: healed,
                wedged: Some(what),
                remapped: true,
            };
            state.cache.insert(key, artifact.clone());
            Ok((run, Arc::new(artifact), false))
        }
        Err(e) => Err(map_driver_error(e, src, under_faults)),
    }
}

fn response_head(
    j: &mut String,
    endpoint: &str,
    program: &str,
    opts: &RunOptions,
    key: &CacheKey,
    hit: bool,
    artifact: &CachedArtifact,
) {
    j.push_str("{\n  \"schema\": \"marionette.mard/v1\",\n");
    let _ = writeln!(j, "  \"endpoint\": \"{}\",", json_escape(endpoint));
    let _ = writeln!(j, "  \"program\": \"{}\",", json_escape(program));
    let _ = writeln!(j, "  \"preset\": \"{}\",", json_escape(opts.arch.short));
    let _ = writeln!(j, "  \"fabric\": \"{}\",", opts.fabric);
    let _ = writeln!(
        j,
        "  \"cache\": {{\"outcome\": \"{}\", \"address\": \"{}\"}},",
        if hit { "hit" } else { "miss" },
        key.address
    );
    match &artifact.wedged {
        Some(w) => {
            let _ = writeln!(j, "  \"wedged\": \"{}\",", json_escape(w));
        }
        None => j.push_str("  \"wedged\": null,\n"),
    }
    let _ = writeln!(j, "  \"remapped\": {},", artifact.remapped);
}

/// Handles `POST /run`: one source, one preset, one verified result.
///
/// # Errors
/// Returns the typed [`ApiError`] for every failure class (bad query,
/// front-end diagnostics, wedged/unservable programs).
pub fn handle_run(
    state: &ServerState,
    req: &Request,
    meta: &mut RouteMeta,
) -> Result<String, ApiError> {
    let opts = decode_options(state, req)?;
    if !opts.lanes.is_empty() {
        return Err(ApiError::bad(
            "bad_lane",
            "lane= is the /batch endpoint's option",
        ));
    }
    let src = String::from_utf8_lossy(&req.body).into_owned();
    let (ast, g) = frontend(&src).map_err(|e| map_driver_error(e, &src, false))?;
    let canonical = print(&ast);
    let overrides = typed_overrides(&ast, &opts.params)?;
    let reference = reference(&g, &overrides, state.cfg.interp_budget)
        .map_err(|e| map_driver_error(e, &src, false))?;
    let key = CacheKey::derive(&canonical, &opts.arch, &opts.faults);
    let (run, artifact, hit) =
        run_via_cache(state, &g, &reference, &opts, &overrides, &key, &src, meta)?;
    meta.cache_hit = Some(hit);
    let mut j = String::new();
    response_head(&mut j, "run", &ast.name.name, &opts, &key, hit, &artifact);
    let _ = writeln!(
        j,
        "  \"result\": {}",
        json_result(&run, &reference.dropping.sinks)
    );
    j.push_str("}\n");
    Ok(j)
}

/// Handles `POST /batch`: N parameter lanes of one source folded into a
/// single compile (cache-shared) and one batched simulation pass. Lane
/// failures are per-lane entries, not request failures — a wedging lane
/// reports its typed error while its neighbours complete.
///
/// # Errors
/// Returns [`ApiError`] for request-level failures (bad query, parse
/// errors, compile failures); per-lane errors are embedded in the 200
/// body.
pub fn handle_batch(
    state: &ServerState,
    req: &Request,
    meta: &mut RouteMeta,
) -> Result<String, ApiError> {
    let opts = decode_options(state, req)?;
    if opts.lanes.is_empty() {
        return Err(ApiError::bad(
            "bad_lane",
            "batch needs at least one lane= option",
        ));
    }
    if !opts.faults.is_empty() {
        return Err(ApiError::bad(
            "bad_lane",
            "fault injection combines with /run only, not /batch",
        ));
    }
    if !opts.params.is_empty() {
        return Err(ApiError::bad(
            "bad_param",
            "use lane= (not param=) to pass per-lane overrides to /batch",
        ));
    }
    let src = String::from_utf8_lossy(&req.body).into_owned();
    let (ast, g) = frontend(&src).map_err(|e| map_driver_error(e, &src, false))?;
    let canonical = print(&ast);

    // Per-lane references; a lane whose overrides or interpretation fail
    // becomes a per-lane error without sinking the batch.
    type LanePrep = Result<(Vec<(String, Value)>, Reference), ApiError>;
    let mut lane_refs: Vec<LanePrep> = Vec::new();
    for raw in &opts.lanes {
        lane_refs.push(typed_overrides(&ast, raw).and_then(|ovr| {
            reference(&g, &ovr, state.cfg.interp_budget)
                .map(|r| (ovr, r))
                .map_err(|e| map_driver_error(e, &src, false))
        }));
    }

    let key = CacheKey::derive(&canonical, &opts.arch, &opts.faults);
    let (artifact, hit) = match state.cache.lookup(&key) {
        Some(a) => (a, true),
        None => {
            let t = std::time::Instant::now();
            let compiled =
                compile_preset(&g, &opts.arch).map_err(|e| map_driver_error(e, &src, false))?;
            meta.compile_us += micros_since(t);
            let artifact = CachedArtifact {
                compiled,
                wedged: None,
                remapped: false,
            };
            state.cache.insert(&key, artifact.clone());
            (Arc::new(artifact), false)
        }
    };
    meta.cache_hit = Some(hit);

    // One batched pass over the lanes whose reference survived.
    let good: Vec<usize> = (0..lane_refs.len())
        .filter(|&i| lane_refs[i].is_ok())
        .collect();
    let t_sim = std::time::Instant::now();
    let sim_results = if good.is_empty() {
        Vec::new()
    } else {
        let refs: Vec<Reference> = good
            .iter()
            .map(|&i| {
                let (_, r) = lane_refs[i].as_ref().unwrap();
                Reference {
                    dropping: r.dropping.clone(),
                    predicated: r.predicated.clone(),
                }
            })
            .collect();
        let ovrs: Vec<Vec<(String, Value)>> = good
            .iter()
            .map(|&i| lane_refs[i].as_ref().unwrap().0.clone())
            .collect();
        simulate_compiled_lanes(
            &g,
            &refs,
            &opts.arch,
            &artifact.compiled,
            &ovrs,
            opts.max_cycles,
            opts.engine,
        )
        .map_err(|e| map_driver_error(e, &src, false))?
    };
    meta.sim_us += micros_since(t_sim);

    let mut lane_json: Vec<String> = Vec::with_capacity(lane_refs.len());
    let mut errors = 0usize;
    let mut sim_iter = sim_results.into_iter();
    for lr in &lane_refs {
        match lr {
            Err(e) => {
                errors += 1;
                lane_json.push(format!(
                    "{{\"ok\": false, \"error\": {{\"kind\": \"{}\", \"detail\": \"{}\"}}}}",
                    json_escape(e.kind),
                    json_escape(&e.detail)
                ));
            }
            Ok((_, r)) => match sim_iter.next().expect("one sim result per good lane") {
                Ok(run) => lane_json.push(format!(
                    "{{\"ok\": true, \"result\": {}}}",
                    json_result(&run, &r.dropping.sinks)
                )),
                Err(e) => {
                    errors += 1;
                    let e = map_driver_error(e, &src, false);
                    lane_json.push(format!(
                        "{{\"ok\": false, \"error\": {{\"kind\": \"{}\", \"detail\": \"{}\"}}}}",
                        json_escape(e.kind),
                        json_escape(&e.detail)
                    ));
                }
            },
        }
    }

    let mut j = String::new();
    response_head(&mut j, "batch", &ast.name.name, &opts, &key, hit, &artifact);
    let _ = writeln!(j, "  \"lane_errors\": {errors},");
    j.push_str("  \"lanes\": [\n");
    for (i, l) in lane_json.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {l}{}",
            if i + 1 == lane_json.len() { "" } else { "," }
        );
    }
    j.push_str("  ]\n}\n");
    Ok(j)
}
