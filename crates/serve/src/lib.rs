//! `mard`: marionette-as-a-service.
//!
//! A std-only HTTP/1.1 daemon that accepts `.mar` source over POST and
//! answers with verified simulation results as JSON. The serving stack
//! is three pieces, each its own module:
//!
//! - [`http`] — the minimal request/response framing (no registry deps:
//!   the container is offline, so the needed slice of HTTP/1.1 is
//!   implemented over `std::net` directly);
//! - [`cache`] — the content-addressed compile cache. Keyed on the
//!   canonical pretty-printed source + preset options + fault set,
//!   bounded LRU, hit/miss/eviction counters;
//! - [`job`] — request decoding and the execution pipeline (frontend →
//!   cache lookup or compile → simulate → bit-verify vs the reference
//!   interpreter).
//!
//! Admission control is structural: accepted connections are fed to a
//! bounded [`marionette::parallel::WorkerPool`]; when the queue is full
//! the *acceptor* answers 429 inline and closes — a saturated server
//! sheds load instead of queueing unboundedly or hanging clients.
//! Per-job timeouts reuse the simulator's own budget machinery (cycle
//! limit, deadlock detector, interpreter firing budget), so a wedging
//! program produces a typed 422, not a stuck worker.
//!
//! The router is pure state + request → response, so the protocol is
//! testable (and usable) without opening a socket:
//!
//! ```
//! use marionette_serve::{route, Counters, ServeConfig, ServerState};
//!
//! let cfg = ServeConfig::default();
//! let state = ServerState {
//!     cache: marionette_serve::cache::CompileCache::new(cfg.cache_cap),
//!     counters: Counters::default(),
//!     metrics: marionette_serve::metrics::Metrics::default(),
//!     cfg,
//! };
//! let req = marionette_serve::http::Request {
//!     method: "GET".to_string(),
//!     path: "/healthz".to_string(),
//!     query: Vec::new(),
//!     headers: Vec::new(),
//!     body: Vec::new(),
//! };
//! let (status, body) = route(&state, 0, &req);
//! assert_eq!(status, 200);
//! assert!(body.contains("\"ok\": true"));
//! ```

pub mod cache;
pub mod http;
pub mod job;
pub mod metrics;

use marionette::parallel::{SubmitError, WorkerPool};
use marionette::report::json_escape;
use std::fmt::Write as _;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Server tunables. [`ServeConfig::default`] is sized for tests and
/// local use; `mard` exposes each knob as a flag.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads processing requests.
    pub workers: usize,
    /// Bounded admission queue depth; beyond it, connections get 429.
    pub queue_cap: usize,
    /// Compile-cache capacity in entries.
    pub cache_cap: usize,
    /// Request body limit in bytes (413 beyond it).
    pub max_body: usize,
    /// Hard per-job simulation cycle cap. Requests may lower it via
    /// `max-cycles=` but never raise it.
    pub max_cycles: u64,
    /// Firing budget for the reference interpreter — the typed timeout
    /// for wedging or unbounded programs.
    pub interp_budget: u64,
    /// Socket read/write timeout; a slow or stalled client cannot hold
    /// a worker past this.
    pub io_timeout: Option<Duration>,
    /// Emit one structured access-log line (JSON, stderr) per request.
    /// Off by default so in-process tests stay quiet; `mard` turns it
    /// on.
    pub access_log: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_cap: 8,
            cache_cap: 64,
            max_body: 256 * 1024,
            max_cycles: 10_000_000,
            interp_budget: 20_000_000,
            io_timeout: Some(Duration::from_secs(10)),
            access_log: false,
        }
    }
}

/// Request-outcome counters, grouped by response class.
#[derive(Default)]
pub struct Counters {
    /// Connections accepted by the listener.
    pub accepted: AtomicU64,
    /// 2xx responses.
    pub ok: AtomicU64,
    /// 429 admission rejections (written by the acceptor).
    pub rejected_429: AtomicU64,
    /// Other 4xx responses.
    pub client_errors: AtomicU64,
    /// 5xx responses.
    pub server_errors: AtomicU64,
}

/// Shared server state: config, cache, counters.
pub struct ServerState {
    /// The server's configuration.
    pub cfg: ServeConfig,
    /// The content-addressed compile cache.
    pub cache: cache::CompileCache,
    /// Request-outcome counters.
    pub counters: Counters,
    /// Observability state: request ids, latency histogram, per-endpoint
    /// counters, busy gauge.
    pub metrics: metrics::Metrics,
}

/// Per-request routing metadata the observability layer reports: which
/// endpoint handled it, the response content type, the cache verdict,
/// and where the time went. Filled by [`route_with_meta`].
#[derive(Debug)]
pub struct RouteMeta {
    /// Canonical endpoint label (see [`metrics::ENDPOINTS`]).
    pub endpoint: &'static str,
    /// Response `Content-Type`.
    pub content_type: &'static str,
    /// Compile-cache verdict, when the endpoint consulted it.
    pub cache_hit: Option<bool>,
    /// Microseconds spent compiling (0 on hits and non-run endpoints).
    pub compile_us: u64,
    /// Microseconds spent simulating.
    pub sim_us: u64,
}

impl Default for RouteMeta {
    fn default() -> Self {
        RouteMeta {
            endpoint: "other",
            content_type: "application/json",
            cache_hit: None,
            compile_us: 0,
            sim_us: 0,
        }
    }
}

fn error_body(kind: &str, detail: &str) -> String {
    format!(
        "{{\n  \"schema\": \"marionette.mard/v1\",\n  \"error\": {{\"kind\": \"{}\", \"detail\": \"{}\"}}\n}}\n",
        json_escape(kind),
        json_escape(detail)
    )
}

fn stats_json(state: &ServerState, depth: usize) -> String {
    let c = &state.counters;
    let cs = state.cache.stats();
    let mut j = String::new();
    j.push_str("{\n  \"schema\": \"marionette.mard/v1\",\n  \"endpoint\": \"stats\",\n");
    let _ = writeln!(
        j,
        "  \"requests\": {{\"accepted\": {}, \"ok\": {}, \"rejected_429\": {}, \"client_errors\": {}, \"server_errors\": {}}},",
        c.accepted.load(Ordering::Relaxed),
        c.ok.load(Ordering::Relaxed),
        c.rejected_429.load(Ordering::Relaxed),
        c.client_errors.load(Ordering::Relaxed),
        c.server_errors.load(Ordering::Relaxed),
    );
    let _ = writeln!(
        j,
        "  \"cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \"inserts\": {}, \"entries\": {}}},",
        cs.hits, cs.misses, cs.evictions, cs.inserts, state.cache.len()
    );
    let _ = writeln!(
        j,
        "  \"queue\": {{\"depth\": {}, \"capacity\": {}, \"workers\": {}}},",
        depth, state.cfg.queue_cap, state.cfg.workers
    );
    let _ = writeln!(j, "  \"uptime_secs\": {},", state.metrics.uptime_secs());
    let eps: Vec<String> = state
        .metrics
        .by_endpoint()
        .iter()
        .map(|(e, n)| format!("\"{e}\": {n}"))
        .collect();
    let _ = writeln!(j, "  \"endpoints\": {{{}}},", eps.join(", "));
    let _ = writeln!(
        j,
        "  \"limits\": {{\"max_body\": {}, \"max_cycles\": {}, \"interp_budget\": {}}}",
        state.cfg.max_body, state.cfg.max_cycles, state.cfg.interp_budget
    );
    j.push_str("}\n");
    j
}

/// Routes one parsed request to its handler. Exposed for in-process
/// protocol tests that want to skip the socket layer.
pub fn route(state: &ServerState, depth: usize, req: &http::Request) -> (u16, String) {
    let mut meta = RouteMeta::default();
    route_with_meta(state, depth, req, &mut meta)
}

/// [`route`] plus the per-request metadata the observability layer
/// (counters, access log, `Content-Type` selection) needs.
pub fn route_with_meta(
    state: &ServerState,
    depth: usize,
    req: &http::Request,
    meta: &mut RouteMeta,
) -> (u16, String) {
    meta.endpoint = metrics::endpoint_of(&req.path);
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => (200, "{\"ok\": true}\n".to_string()),
        ("GET", "/stats") => (200, stats_json(state, depth)),
        ("GET", "/metrics") => {
            meta.content_type = "text/plain; version=0.0.4";
            (200, metrics::render_prometheus(state, depth))
        }
        ("POST", "/run") => match job::handle_run(state, req, meta) {
            Ok(body) => (200, body),
            Err(e) => (e.status, e.to_json()),
        },
        ("POST", "/batch") => match job::handle_batch(state, req, meta) {
            Ok(body) => (200, body),
            Err(e) => (e.status, e.to_json()),
        },
        (_, "/healthz" | "/stats" | "/metrics" | "/run" | "/batch") => (
            405,
            error_body(
                "method_not_allowed",
                &format!("{} is not supported on {}", req.method, req.path),
            ),
        ),
        (_, p) => (
            404,
            error_body("not_found", &format!("no such endpoint `{p}`")),
        ),
    }
}

fn count_status(state: &ServerState, status: u16) {
    let c = &state.counters;
    let bucket = match status {
        200..=299 => &c.ok,
        429 => &c.rejected_429,
        400..=499 => &c.client_errors,
        _ => &c.server_errors,
    };
    bucket.fetch_add(1, Ordering::Relaxed);
}

/// One structured access-log line (JSON, written to stderr by the
/// caller). `method`/`path` are `-` when the request never parsed.
fn access_log_line(
    id: u64,
    method: &str,
    path: &str,
    status: u16,
    meta: &RouteMeta,
    total_us: u64,
) -> String {
    let ts = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0.0, |d| d.as_secs_f64());
    let cache = match meta.cache_hit {
        Some(true) => "\"hit\"",
        Some(false) => "\"miss\"",
        None => "null",
    };
    format!(
        "{{\"log\":\"mard.access\",\"ts\":{ts:.3},\"id\":{id},\"method\":\"{}\",\"path\":\"{}\",\"endpoint\":\"{}\",\"status\":{status},\"cache\":{cache},\"compile_us\":{},\"sim_us\":{},\"total_us\":{total_us}}}",
        json_escape(method),
        json_escape(path),
        meta.endpoint,
        meta.compile_us,
        meta.sim_us,
    )
}

/// Worker-side connection handler: read, route, respond, close.
fn handle_connection(state: &ServerState, pool_depth: usize, stream: TcpStream) {
    let _ = stream.set_read_timeout(state.cfg.io_timeout);
    let _ = stream.set_write_timeout(state.cfg.io_timeout);
    let id = state.metrics.next_request_id();
    state.metrics.busy.fetch_add(1, Ordering::Relaxed);
    let t0 = std::time::Instant::now();
    let mut meta = RouteMeta::default();
    let mut method = "-".to_string();
    let mut path = "-".to_string();
    let (status, body) = match http::read_request(&stream, state.cfg.max_body) {
        Ok(req) => {
            method.clone_from(&req.method);
            path.clone_from(&req.path);
            route_with_meta(state, pool_depth, &req, &mut meta)
        }
        Err(http::HttpError::LengthRequired) => (
            411,
            error_body("length_required", "POST bodies need a Content-Length"),
        ),
        Err(http::HttpError::TooLarge { declared, limit }) => (
            413,
            error_body(
                "body_too_large",
                &format!("declared body of {declared} bytes exceeds the {limit}-byte limit"),
            ),
        ),
        Err(http::HttpError::Malformed(d)) => (400, error_body("malformed_request", &d)),
        Err(http::HttpError::Io(_)) => {
            // The client vanished or stalled past the timeout; there is
            // nobody left to answer.
            state.metrics.busy.fetch_sub(1, Ordering::Relaxed);
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
    };
    count_status(state, status);
    state.metrics.record(meta.endpoint, status);
    let total_us = u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX);
    state.metrics.latency.observe(total_us);
    state.metrics.busy.fetch_sub(1, Ordering::Relaxed);
    if state.cfg.access_log {
        eprintln!(
            "{}",
            access_log_line(id, &method, &path, status, &meta, total_us)
        );
    }
    let request_id = id.to_string();
    let _ = http::write_response_ext(
        &stream,
        status,
        meta.content_type,
        &[("X-Request-Id", &request_id)],
        &body,
    );
    let _ = stream.shutdown(Shutdown::Both);
}

/// A running `mard` instance: listener + acceptor thread + worker pool.
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServerState>,
    pool: Option<Arc<WorkerPool<TcpStream>>>,
    stopping: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the worker pool and acceptor, and returns
    /// immediately. The bound address (with the resolved port) is
    /// [`Server::addr`].
    ///
    /// # Errors
    /// Returns the bind error.
    pub fn start(cfg: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ServerState {
            cache: cache::CompileCache::new(cfg.cache_cap),
            counters: Counters::default(),
            metrics: metrics::Metrics::default(),
            cfg,
        });
        let stopping = Arc::new(AtomicBool::new(false));

        let worker_state = Arc::clone(&state);
        // The pool's handler needs the pool's own depth for /stats; tie
        // the knot with a lazily-filled Weak so the handler does not keep
        // the pool alive (stop() unwraps the last strong handle).
        let depth_pool: Arc<std::sync::OnceLock<std::sync::Weak<WorkerPool<TcpStream>>>> =
            Arc::new(std::sync::OnceLock::new());
        let depth_probe = Arc::clone(&depth_pool);
        let pool = Arc::new(WorkerPool::new(
            state.cfg.workers,
            state.cfg.queue_cap,
            move |stream: TcpStream| {
                let depth = depth_probe
                    .get()
                    .and_then(std::sync::Weak::upgrade)
                    .map_or(0, |p| p.depth());
                handle_connection(&worker_state, depth, stream);
            },
        ));
        let _ = depth_pool.set(Arc::downgrade(&pool));

        let accept_state = Arc::clone(&state);
        let accept_pool = Arc::clone(&pool);
        let accept_stop = Arc::clone(&stopping);
        let acceptor = std::thread::Builder::new()
            .name("mard-acceptor".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    accept_state
                        .counters
                        .accepted
                        .fetch_add(1, Ordering::Relaxed);
                    match accept_pool.try_submit(stream) {
                        Ok(()) => {}
                        Err(SubmitError::QueueFull(stream))
                        | Err(SubmitError::ShuttingDown(stream)) => {
                            // Shed load from the acceptor itself: a full
                            // queue must answer fast, never block.
                            accept_state
                                .counters
                                .rejected_429
                                .fetch_add(1, Ordering::Relaxed);
                            accept_state.metrics.record("admission", 429);
                            let _ = stream.set_write_timeout(accept_state.cfg.io_timeout);
                            let _ = http::write_response(
                                &stream,
                                429,
                                &error_body(
                                    "queue_full",
                                    "admission queue at capacity; retry later",
                                ),
                            );
                            let _ = stream.shutdown(Shutdown::Both);
                        }
                    }
                }
            })?;

        Ok(Server {
            addr,
            state,
            pool: Some(pool),
            stopping,
            acceptor: Some(acceptor),
        })
    }

    /// The bound socket address (resolved port included).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared state handle (cache + counters), for tests and loadgen.
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Blocks until the acceptor exits (i.e. forever, short of
    /// [`Server::stop`] from another thread or a listener error).
    pub fn join(mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }

    /// Stops accepting, drains queued connections, and joins every
    /// thread. In-flight requests complete; new connections are refused.
    pub fn stop(mut self) {
        self.stopping.store(true, Ordering::SeqCst);
        // Unblock the acceptor's blocking accept with a throwaway
        // connection to ourselves.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // The acceptor's pool handle is gone once it exits; ours is the
        // last strong one, so unwrap and drain.
        if let Some(pool) = self.pool.take() {
            // Failing the unwrap (acceptor died without dropping its
            // handle) still drains: the pool's Drop marks shutdown.
            if let Ok(pool) = Arc::try_unwrap(pool) {
                pool.shutdown();
            }
        }
    }
}
