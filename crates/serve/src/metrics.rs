//! Server metrics: a fixed-bucket latency histogram, per-endpoint ×
//! status request counters, and the Prometheus text rendering behind
//! `GET /metrics`.
//!
//! Everything here is lock-free on the hot path except the
//! endpoint×status counter map, which takes one short mutex per
//! request — `mard`'s request rate is bounded by simulation time, not
//! by counter contention. The same [`Histogram`] type backs `loadgen`'s
//! client-side latency report, so the served histogram and the
//! benchmark snapshot bucket identically.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Upper bucket bounds of the latency histogram, in microseconds.
/// The last implicit bucket is +Inf. Spanning 100 µs – 10 s covers a
/// cache-hit `/healthz` through a worst-case cold compile + simulate.
pub const BUCKET_BOUNDS_US: &[u64] = &[
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 2_500_000, 5_000_000, 10_000_000,
];

/// A fixed-bucket histogram of microsecond observations. All-atomic:
/// `observe` is wait-free and safe from any thread.
#[derive(Debug)]
pub struct Histogram {
    /// Per-bucket (non-cumulative) counts, one per bound plus +Inf.
    buckets: Vec<AtomicU64>,
    sum_us: AtomicU64,
    count: AtomicU64,
    max_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram over [`BUCKET_BOUNDS_US`].
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            buckets: (0..=BUCKET_BOUNDS_US.len())
                .map(|_| AtomicU64::new(0))
                .collect(),
            sum_us: AtomicU64::new(0),
            count: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }

    /// Records one observation of `us` microseconds.
    pub fn observe(&self, us: u64) {
        let i = BUCKET_BOUNDS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(BUCKET_BOUNDS_US.len());
        self.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Total observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations, in microseconds.
    #[must_use]
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Largest observation, in microseconds.
    #[must_use]
    pub fn max_us(&self) -> u64 {
        self.max_us.load(Ordering::Relaxed)
    }

    /// Cumulative counts per bound (`le` semantics), ending with the
    /// +Inf total — the shape Prometheus histograms publish.
    #[must_use]
    pub fn cumulative(&self) -> Vec<u64> {
        let mut total = 0u64;
        self.buckets
            .iter()
            .map(|b| {
                total += b.load(Ordering::Relaxed);
                total
            })
            .collect()
    }

    /// Upper-bound estimate of the `q`-quantile (0.0–1.0) from the
    /// bucket boundaries: the bound of the first bucket whose cumulative
    /// count reaches `q × count`. Observations past the last bound
    /// report the recorded maximum.
    #[must_use]
    pub fn quantile_us(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let cum = self.cumulative();
        for (i, &c) in cum.iter().enumerate() {
            if c >= rank {
                return match BUCKET_BOUNDS_US.get(i) {
                    Some(&bound) => bound.min(self.max_us()),
                    None => self.max_us(),
                };
            }
        }
        self.max_us()
    }
}

/// The endpoints `mard` distinguishes in counters and logs. Unknown
/// paths collapse into `other` so a path-scanning client cannot grow
/// the counter map without bound.
pub const ENDPOINTS: &[&str] = &[
    "healthz",
    "stats",
    "metrics",
    "run",
    "batch",
    "admission",
    "other",
];

/// Canonical endpoint label for a request path.
#[must_use]
pub fn endpoint_of(path: &str) -> &'static str {
    match path {
        "/healthz" => "healthz",
        "/stats" => "stats",
        "/metrics" => "metrics",
        "/run" => "run",
        "/batch" => "batch",
        _ => "other",
    }
}

/// Aggregated server metrics, shared across workers and the acceptor.
#[derive(Debug)]
pub struct Metrics {
    /// Server start time, for `uptime_secs`.
    pub started: Instant,
    /// Monotonic request-id source (first request is 1).
    pub request_seq: AtomicU64,
    /// Workers currently inside a request handler.
    pub busy: AtomicU64,
    /// End-to-end request latency (read → route → respond).
    pub latency: Histogram,
    /// Requests by (endpoint, status).
    by_endpoint_status: Mutex<std::collections::BTreeMap<(&'static str, u16), u64>>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            started: Instant::now(),
            request_seq: AtomicU64::new(0),
            busy: AtomicU64::new(0),
            latency: Histogram::new(),
            by_endpoint_status: Mutex::new(std::collections::BTreeMap::new()),
        }
    }
}

impl Metrics {
    /// Allocates the next request id.
    pub fn next_request_id(&self) -> u64 {
        self.request_seq.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Counts one finished request.
    pub fn record(&self, endpoint: &'static str, status: u16) {
        let mut map = self.by_endpoint_status.lock().expect("metrics lock");
        *map.entry((endpoint, status)).or_insert(0) += 1;
    }

    /// Snapshot of the (endpoint, status) counters.
    #[must_use]
    pub fn by_endpoint_status(&self) -> Vec<((&'static str, u16), u64)> {
        self.by_endpoint_status
            .lock()
            .expect("metrics lock")
            .iter()
            .map(|(&k, &v)| (k, v))
            .collect()
    }

    /// Total requests per endpoint, in [`ENDPOINTS`] order (endpoints
    /// with no traffic report 0).
    #[must_use]
    pub fn by_endpoint(&self) -> Vec<(&'static str, u64)> {
        let snap = self.by_endpoint_status();
        ENDPOINTS
            .iter()
            .map(|&e| {
                (
                    e,
                    snap.iter()
                        .filter(|((ep, _), _)| *ep == e)
                        .map(|(_, n)| n)
                        .sum(),
                )
            })
            .collect()
    }

    /// Whole seconds since the server started.
    #[must_use]
    pub fn uptime_secs(&self) -> u64 {
        self.started.elapsed().as_secs()
    }
}

/// Renders the Prometheus text exposition (version 0.0.4) for the
/// server: request counters by endpoint+status, cache counters, queue
/// and worker gauges, and the latency histogram in seconds.
#[must_use]
pub fn render_prometheus(state: &crate::ServerState, depth: usize) -> String {
    use std::fmt::Write as _;
    let m = &state.metrics;
    let cs = state.cache.stats();
    let mut s = String::with_capacity(2048);

    s.push_str("# HELP mard_requests_total Requests served, by endpoint and status.\n");
    s.push_str("# TYPE mard_requests_total counter\n");
    for ((endpoint, status), n) in m.by_endpoint_status() {
        let _ = writeln!(
            s,
            "mard_requests_total{{endpoint=\"{endpoint}\",status=\"{status}\"}} {n}"
        );
    }

    s.push_str("# HELP mard_errors_total Non-2xx responses, by endpoint and status.\n");
    s.push_str("# TYPE mard_errors_total counter\n");
    for ((endpoint, status), n) in m.by_endpoint_status() {
        if !(200..300).contains(&status) {
            let _ = writeln!(
                s,
                "mard_errors_total{{endpoint=\"{endpoint}\",status=\"{status}\"}} {n}"
            );
        }
    }

    for (name, help, value) in [
        ("mard_cache_hits_total", "Compile-cache hits.", cs.hits),
        (
            "mard_cache_misses_total",
            "Compile-cache misses.",
            cs.misses,
        ),
        (
            "mard_cache_evictions_total",
            "Compile-cache LRU evictions.",
            cs.evictions,
        ),
    ] {
        let _ = writeln!(s, "# HELP {name} {help}\n# TYPE {name} counter");
        let _ = writeln!(s, "{name} {value}");
    }
    for (name, help, value) in [
        (
            "mard_cache_entries",
            "Compile-cache entries resident.",
            state.cache.len() as u64,
        ),
        (
            "mard_queue_depth",
            "Connections waiting in the admission queue.",
            depth as u64,
        ),
        (
            "mard_queue_capacity",
            "Admission queue capacity.",
            state.cfg.queue_cap as u64,
        ),
        ("mard_workers", "Worker threads.", state.cfg.workers as u64),
        (
            "mard_workers_busy",
            "Workers currently handling a request.",
            m.busy.load(Ordering::Relaxed),
        ),
        (
            "mard_uptime_seconds",
            "Seconds since the server started.",
            m.uptime_secs(),
        ),
    ] {
        let _ = writeln!(s, "# HELP {name} {help}\n# TYPE {name} gauge");
        let _ = writeln!(s, "{name} {value}");
    }

    s.push_str("# HELP mard_request_latency_seconds End-to-end request latency.\n");
    s.push_str("# TYPE mard_request_latency_seconds histogram\n");
    let cum = m.latency.cumulative();
    for (i, &bound) in BUCKET_BOUNDS_US.iter().enumerate() {
        let _ = writeln!(
            s,
            "mard_request_latency_seconds_bucket{{le=\"{}\"}} {}",
            bound as f64 / 1e6,
            cum[i]
        );
    }
    let _ = writeln!(
        s,
        "mard_request_latency_seconds_bucket{{le=\"+Inf\"}} {}",
        m.latency.count()
    );
    let _ = writeln!(
        s,
        "mard_request_latency_seconds_sum {}",
        m.latency.sum_us() as f64 / 1e6
    );
    let _ = writeln!(
        s,
        "mard_request_latency_seconds_count {}",
        m.latency.count()
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.quantile_us(0.5), 0);
        for us in [50, 200, 200, 900, 30_000_000] {
            h.observe(us);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum_us(), 30_001_350);
        assert_eq!(h.max_us(), 30_000_000);
        let cum = h.cumulative();
        // 50 ≤ 100; 200s ≤ 250; 900 ≤ 1000; 30 s overflows to +Inf.
        assert_eq!(cum[0], 1);
        assert_eq!(cum[1], 3);
        assert_eq!(cum[3], 4);
        assert_eq!(*cum.last().unwrap(), 5);
        assert_eq!(h.quantile_us(0.5), 250);
        // p99 of 5 observations is the max, which lives in +Inf.
        assert_eq!(h.quantile_us(0.99), 30_000_000);
        // The quantile never reports past the recorded max.
        let h2 = Histogram::new();
        h2.observe(120);
        assert_eq!(h2.quantile_us(0.5), 120);
    }

    #[test]
    fn endpoint_labels_are_closed() {
        assert_eq!(endpoint_of("/run"), "run");
        assert_eq!(endpoint_of("/metrics"), "metrics");
        assert_eq!(endpoint_of("/../etc/passwd"), "other");
        for e in ENDPOINTS {
            assert!(e.chars().all(|c| c.is_ascii_lowercase()));
        }
    }
}
