//! Content-addressed compile cache with a bounded LRU policy.
//!
//! The cache key is the *content* of everything that can change a
//! compiled bitstream, and nothing else:
//!
//! - the **canonical pretty-printed** source (so whitespace, comments
//!   and formatting differences hit the same entry — the canonical form
//!   is a parse→print fixed point, see `marionette_lang::print`);
//! - the preset tag and its full `CompileOptions` (fabric geometry,
//!   placement policy, slots, split, search budget);
//! - the injected [`FaultSet`] (a remap under faults is a different
//!   artifact than a healthy compile).
//!
//! Simulation-time inputs — parameter overrides, engine choice, cycle
//! budget, lane counts — are deliberately **not** part of the key: they
//! select what runs on the bitstream, not what the bitstream is. That is
//! what lets repeat traffic with fresh parameters skip compilation
//! entirely.
//!
//! Entries store the full key material and compare it on lookup, so a
//! 64-bit address collision can never serve the wrong bitstream; the
//! FNV-1a address is a display/interning convenience, not the identity.

use marionette::sim::FaultSet;
use marionette_arch::Architecture;
use marionette_lang::driver::Compiled;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// FNV-1a 64-bit — tiny, deterministic, dependency-free. Used only to
/// derive the printable content address.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The full cache key: printable content address plus the exact
/// material it was derived from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheKey {
    /// Hex FNV-1a of `material` — the "content address" surfaced in
    /// responses and logs.
    pub address: String,
    /// Everything compile-relevant, concatenated canonically.
    pub material: String,
}

impl CacheKey {
    /// Builds the key for compiling `canonical_src` on `arch` with
    /// `faults` injected.
    pub fn derive(canonical_src: &str, arch: &Architecture, faults: &FaultSet) -> CacheKey {
        // `CompileOptions` derives `Debug` over plain-data fields, so its
        // debug form is a complete, stable rendering of the mapping
        // policy (geometry, placement, slots, split, search budget).
        let mut material = String::new();
        material.push_str(arch.short);
        material.push('\x1f');
        material.push_str(&format!("{:?}", arch.opts));
        material.push('\x1f');
        for s in faults.specs() {
            material.push_str(&s.to_string());
            material.push(',');
        }
        material.push('\x1f');
        material.push_str(canonical_src);
        let address = format!("{:016x}", fnv1a64(material.as_bytes()));
        CacheKey { address, material }
    }
}

/// What the cache stores per key: the compiled artifact plus the fault
/// outcome it was produced under, so a repeat request reports the same
/// `wedged`/`remapped` metadata as the cold run that populated it.
#[derive(Clone, Debug)]
pub struct CachedArtifact {
    /// The compiled, bitstream-round-tripped preset artifact.
    pub compiled: Compiled,
    /// Fault-spec string of the resource that wedged the fault-oblivious
    /// bitstream, when the artifact is a self-healed remap.
    pub wedged: Option<String>,
    /// Whether the artifact is a fault-aware remap.
    pub remapped: bool,
}

struct Entry {
    material: String,
    value: Arc<CachedArtifact>,
    last_used: u64,
}

struct Inner {
    map: HashMap<String, Entry>,
    tick: u64,
}

/// Monotonic counters, readable while the cache is live.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned an artifact.
    pub hits: u64,
    /// Lookups that found nothing (or a collision mismatch).
    pub misses: u64,
    /// Entries displaced by the LRU bound.
    pub evictions: u64,
    /// Total insertions.
    pub inserts: u64,
}

/// A bounded, thread-safe, content-addressed LRU cache of compiled
/// bitstream artifacts.
pub struct CompileCache {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    inserts: AtomicU64,
}

impl CompileCache {
    /// Creates a cache bounded to `capacity` entries (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        CompileCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
            }),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
        }
    }

    /// Looks `key` up, counting a hit or miss and refreshing recency.
    pub fn lookup(&self, key: &CacheKey) -> Option<Arc<CachedArtifact>> {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&key.address) {
            Some(e) if e.material == key.material => {
                e.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&e.value))
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts an artifact, evicting the least-recently-used entry when
    /// the bound is exceeded. Re-inserting an existing key refreshes the
    /// value without eviction.
    pub fn insert(&self, key: &CacheKey, value: CachedArtifact) {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        self.inserts.fetch_add(1, Ordering::Relaxed);
        inner.map.insert(
            key.address.clone(),
            Entry {
                material: key.material.clone(),
                value: Arc::new(value),
                last_used: tick,
            },
        );
        while inner.map.len() > self.capacity {
            // O(n) victim scan: the cache is bounded to hundreds of
            // entries, and compiles dominate any eviction walk.
            let victim = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("nonempty above capacity");
            inner.map.remove(&victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// True when no entry is held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marionette::compiler::CompileReport;
    use marionette::isa::MachineProgram;

    fn artifact(tag: u8) -> CachedArtifact {
        CachedArtifact {
            compiled: Compiled {
                prog: MachineProgram::default(),
                bitstream: vec![tag],
                report: CompileReport::default(),
            },
            wedged: None,
            remapped: false,
        }
    }

    fn key(material: &str) -> CacheKey {
        CacheKey {
            address: format!("{:016x}", fnv1a64(material.as_bytes())),
            material: material.to_string(),
        }
    }

    #[test]
    fn hit_miss_and_counters() {
        let c = CompileCache::new(4);
        let k = key("a");
        assert!(c.lookup(&k).is_none());
        c.insert(&k, artifact(1));
        let got = c.lookup(&k).expect("hit");
        assert_eq!(got.compiled.bitstream, vec![1]);
        assert_eq!(
            c.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                evictions: 0,
                inserts: 1
            }
        );
    }

    #[test]
    fn lru_evicts_the_coldest() {
        let c = CompileCache::new(2);
        let (ka, kb, kc) = (key("a"), key("b"), key("c"));
        c.insert(&ka, artifact(1));
        c.insert(&kb, artifact(2));
        // Touch `a` so `b` is the LRU victim.
        assert!(c.lookup(&ka).is_some());
        c.insert(&kc, artifact(3));
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 1);
        assert!(c.lookup(&ka).is_some());
        assert!(c.lookup(&kb).is_none());
        assert!(c.lookup(&kc).is_some());
    }

    #[test]
    fn address_collision_cannot_false_hit() {
        let c = CompileCache::new(4);
        let ka = key("a");
        // Forge a key with the same address but different material.
        let forged = CacheKey {
            address: ka.address.clone(),
            material: "b".to_string(),
        };
        c.insert(&ka, artifact(1));
        assert!(c.lookup(&forged).is_none(), "material must be compared");
    }

    #[test]
    fn key_derivation_separates_presets_and_faults() {
        let archs = marionette_arch::all_presets();
        let none = FaultSet::none();
        let k1 = CacheKey::derive("program p;\n", &archs[0], &none);
        let k2 = CacheKey::derive("program p;\n", &archs[1], &none);
        assert_ne!(k1, k2);
        let mut fs = FaultSet::new(4, 4);
        fs.add("pe:0,0".parse().unwrap()).unwrap();
        let k3 = CacheKey::derive("program p;\n", &archs[0], &fs);
        assert_ne!(k1, k3);
        // Same inputs → same address (pure function).
        let k4 = CacheKey::derive("program p;\n", &archs[0], &none);
        assert_eq!(k1, k4);
    }
}
