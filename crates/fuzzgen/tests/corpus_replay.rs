//! Regression-corpus replay and a fixed-seed differential smoke sweep,
//! both part of the ordinary `cargo test` run.

use marionette::sim::EngineKind;
use marionette_fuzzgen::diff::{
    all_presets, diff_program, diff_program_engine, diff_program_lanes, presets_by_tags,
    DEFAULT_MAX_CYCLES,
};
use marionette_fuzzgen::gen::{generate, GenConfig};
use marionette_fuzzgen::source::diff_both;
use marionette_fuzzgen::Program;
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

fn corpus_entries() -> Vec<(String, Program)> {
    let mut out = Vec::new();
    for e in std::fs::read_dir(corpus_dir()).expect("corpus dir exists") {
        let path = e.expect("dir entry").path();
        if path.extension().and_then(|x| x.to_str()) != Some("txt") {
            continue;
        }
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        let text = std::fs::read_to_string(&path).expect("corpus file reads");
        let p = Program::parse(&text).unwrap_or_else(|err| panic!("{name}: {err}"));
        out.push((name, p));
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

#[test]
fn corpus_is_nonempty_and_parses() {
    let entries = corpus_entries();
    assert!(
        entries.len() >= 5,
        "corpus shrank to {} entries",
        entries.len()
    );
    for (name, p) in &entries {
        // The stored text is canonical: re-rendering must not drift, so
        // committed corpus files stay diffable.
        let text = std::fs::read_to_string(corpus_dir().join(name)).unwrap();
        let stripped: String = text
            .lines()
            .filter(|l| !l.trim_start().starts_with('#') && !l.trim().is_empty())
            .map(|l| format!("{l}\n"))
            .collect();
        let canonical: String = p
            .to_text()
            .lines()
            .filter(|l| !l.trim_start().starts_with('#') && !l.trim().is_empty())
            .map(|l| format!("{l}\n"))
            .collect();
        assert_eq!(stripped, canonical, "{name}: non-canonical text");
    }
}

#[test]
fn corpus_replays_divergence_free_on_all_presets() {
    // `diff_both` replays each regression on the builder axis *and* the
    // `.mar` source axis, so corpus entries shrunk from a
    // `fuzz_stack --source` failure keep pinning their failing axis.
    let presets = all_presets();
    for (name, p) in corpus_entries() {
        let stats = diff_both(&p, &presets, DEFAULT_MAX_CYCLES, true)
            .unwrap_or_else(|d| panic!("{name}: {d}"));
        assert_eq!(stats.points, 2 * presets.len(), "{name}: preset skipped");
    }
}

#[test]
fn corpus_replays_divergence_free_on_both_engines() {
    // Every committed regression, replayed under the wheel (default)
    // and the reference heap core: a corpus entry that ever exposes an
    // engine-dependent result is exactly the regression this suite
    // exists to catch.
    let presets = all_presets();
    for engine in [EngineKind::Wheel, EngineKind::Heap] {
        for (name, p) in corpus_entries() {
            diff_program_engine(&p, &presets, DEFAULT_MAX_CYCLES, true, engine)
                .unwrap_or_else(|d| panic!("{name} ({engine}): {d}"));
        }
    }
}

#[test]
fn corpus_replays_divergence_free_lane_batched() {
    // The same regressions, three lanes per preset on one machine:
    // every lane must match the interpreter bit for bit and take
    // exactly lane 0's cycle count.
    let presets = all_presets();
    for (name, p) in corpus_entries() {
        diff_program_lanes(
            &p,
            &presets,
            DEFAULT_MAX_CYCLES,
            true,
            EngineKind::default(),
            3,
        )
        .unwrap_or_else(|d| panic!("{name}: {d}"));
    }
}

#[test]
fn fixed_seed_smoke_sweep_three_presets() {
    // A slice of the fuzz_stack sweep small enough for every `cargo
    // test` run: 40 programs across the three most divergent execution
    // models (full Marionette, predicated von Neumann, tagged dataflow).
    let cfg = GenConfig::default();
    let presets = presets_by_tags("M,vN,DF").expect("tags resolve");
    for seed in 0..40 {
        let p = generate(seed, &cfg);
        diff_program(&p, &presets, DEFAULT_MAX_CYCLES, true)
            .unwrap_or_else(|d| panic!("seed {seed}: {d}"));
    }
}

#[test]
fn deep_seed_smoke_all_presets() {
    // A few deeper programs across every preset, covering the nesting
    // depth the default sweep rarely reaches.
    let cfg = GenConfig {
        max_depth: 4,
        max_stmts: 34,
        ..GenConfig::default()
    };
    let presets = all_presets();
    for seed in 100..106 {
        let p = generate(seed, &cfg);
        diff_program(&p, &presets, DEFAULT_MAX_CYCLES, true)
            .unwrap_or_else(|d| panic!("seed {seed}: {d}"));
    }
}
