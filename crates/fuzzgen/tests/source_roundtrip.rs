//! Properties of the `.mar` source round-trip, over the committed
//! regression corpus and a seeded fuzz range:
//!
//! - parse → print → parse is a fixed point of the canonical printer;
//! - lowering is deterministic (same source, bit-identical CDFG);
//! - the source-lowered graph computes bit-identical values to the
//!   direct builder path (the interpreter-level half of the source
//!   differential; the full compile→simulate half runs in `fuzz_stack
//!   --source` and the CI smoke job).

use marionette_fuzzgen::diff::DEFAULT_MAX_CYCLES;
use marionette_fuzzgen::gen::{generate, GenConfig};
use marionette_fuzzgen::source::{diff_source, to_mar};
use marionette_fuzzgen::Program;
use marionette_lang::{compile_source, parse, print};
use proptest::prelude::*;

/// Every committed corpus regression program.
fn corpus_programs() -> Vec<(String, Program)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/corpus");
    let mut out = Vec::new();
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .expect("corpus dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "txt"))
        .collect();
    entries.sort();
    for path in entries {
        let text = std::fs::read_to_string(&path).expect("corpus file");
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let p = Program::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        out.push((name, p));
    }
    out
}

/// A deterministic structural fingerprint of a CDFG.
fn fingerprint(g: &marionette_cdfg::Cdfg) -> String {
    format!(
        "{:?}|{:?}|{:?}|{:?}|{:?}",
        g.nodes, g.arrays, g.params, g.blocks, g.loops
    )
}

fn assert_roundtrip_properties(name: &str, p: &Program) {
    let text = to_mar(p);
    // parse → print → parse fixed point.
    let a1 = parse(&text).unwrap_or_else(|e| panic!("{name}: emitted source fails to parse: {e}"));
    let t1 = print(&a1);
    let a2 = parse(&t1).unwrap_or_else(|e| panic!("{name}: printed source fails to re-parse: {e}"));
    assert_eq!(t1, print(&a2), "{name}: printer is not a fixed point");
    // Deterministic lowering: same source, bit-identical graph.
    let g1 = compile_source(&text).unwrap_or_else(|d| panic!("{name}: {d:?}"));
    let g2 = compile_source(&text).unwrap();
    assert_eq!(
        fingerprint(&g1),
        fingerprint(&g2),
        "{name}: lowering is not deterministic"
    );
    // Builder-vs-source value agreement (interpreter level).
    diff_source(p, &[], DEFAULT_MAX_CYCLES, true).unwrap_or_else(|d| panic!("{name}: {d}\n{text}"));
}

#[test]
fn corpus_entries_roundtrip_through_the_source_language() {
    let programs = corpus_programs();
    assert!(programs.len() >= 6, "corpus unexpectedly small");
    for (name, p) in &programs {
        assert_roundtrip_properties(name, p);
    }
}

#[test]
fn seeded_range_roundtrips_through_the_source_language() {
    let cfg = GenConfig::default();
    for seed in 0..96 {
        let p = generate(seed, &cfg);
        assert_roundtrip_properties(&format!("seed {seed}"), &p);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary seeds keep the round-trip properties (sampled wider than
    /// the exhaustive prefix above).
    #[test]
    fn sampled_seeds_roundtrip(seed in 0u64..1_000_000) {
        let p = generate(seed, &GenConfig::default());
        assert_roundtrip_properties(&format!("seed {seed}"), &p);
    }

    /// The emitter is a function: equal programs emit equal source.
    #[test]
    fn emission_is_deterministic(seed in 0u64..1_000_000) {
        let p = generate(seed, &GenConfig::default());
        prop_assert_eq!(to_mar(&p), to_mar(&p));
    }
}
