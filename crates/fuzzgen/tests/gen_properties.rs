//! Property tests over the generator/emitter pair: for arbitrary seeds,
//! generated programs are structurally valid, lower to valid CDFGs, and
//! execute identically under both interpreter steering semantics.

use marionette_cdfg::interp::{interpret, ExecMode};
use marionette_fuzzgen::emit::emit;
use marionette_fuzzgen::gen::{generate, GenConfig};
use marionette_fuzzgen::Program;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every seed yields a checkable program that lowers to a valid CDFG
    /// and a lossless corpus-text roundtrip.
    #[test]
    fn seeds_lower_to_valid_graphs(seed in 0u64..1_000_000) {
        let cfg = GenConfig::default();
        let p = generate(seed, &cfg);
        p.check().expect("well-formed");
        let q = Program::parse(&p.to_text()).expect("parses back");
        prop_assert_eq!(&p, &q);
        let g = emit(&p);
        let errs = g.validate();
        prop_assert!(errs.is_empty(), "seed {}: {:?}", seed, errs);
    }

    /// Dropping and predicated steering must agree on results: the same
    /// cross-check the paper's von-Neumann-vs-dataflow comparison rests
    /// on, applied to random programs.
    #[test]
    fn interp_modes_agree(seed in 0u64..100_000) {
        let cfg = GenConfig::default();
        let p = generate(seed, &cfg);
        let g = emit(&p);
        let d = interpret(&g, ExecMode::Dropping, &[]).expect("dropping quiesces");
        let pr = interpret(&g, ExecMode::Predicated, &[]).expect("predicated quiesces");
        for arr in &g.arrays {
            let id = g.array_by_name(&arr.name).unwrap();
            let (a, b) = (d.memory.array(id), pr.memory.array(id));
            prop_assert_eq!(a.len(), b.len());
            for i in 0..a.len() {
                prop_assert!(a[i].bit_eq(b[i]), "seed {}: {}[{}]", seed, arr.name, i);
            }
        }
        prop_assert_eq!(d.memory.oob_events(), 0, "masked indices stay in bounds");
    }
}
