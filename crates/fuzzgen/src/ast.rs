//! The fuzzer's program AST: a structured-control-flow program over i32
//! arrays that is *well-formed by construction* when emitted through the
//! CDFG builder.
//!
//! Design invariants (enforced by [`Program::check`], relied on by
//! `emit`):
//!
//! - operands reference visible values by index **modulo the environment
//!   size at emission time**, so deleting statements (shrinking) can never
//!   dangle a reference;
//! - loops never appear inside `If` sides (the builder only predicates
//!   loop-free hammocks);
//! - array traffic is either read-only (input arrays) or token-serialized
//!   (state arrays), so every program is a deterministic Kahn network and
//!   the interpreter is a true executable specification for it.
//!
//! The textual format produced by [`Program::to_text`] and read back by
//! [`Program::parse`] is the regression-corpus format under
//! `crates/fuzzgen/corpus/`.

use marionette_cdfg::op::{BinOp, NlOp, UnOp};
use std::fmt::Write as _;

/// A declared array.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArraySpec {
    /// Array name (unique).
    pub name: String,
    /// Element count (a power of two, so indices can be masked in-bounds).
    pub len: u32,
    /// Initial contents (zero-filled to `len`).
    pub init: Vec<i32>,
    /// `true`: read-write state array (loads and stores, token-serialized,
    /// checked as a program output). `false`: read-only input array.
    pub state: bool,
}

/// An operand of a statement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Operand {
    /// A literal.
    Imm(i32),
    /// The `k % env.len()`-th visible value at emission time.
    Ref(u32),
}

/// One statement. Value-producing statements push onto the environment
/// in order; see each variant for how many values it pushes.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// Binary ALU op; pushes 1 value.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// Unary op; pushes 1 value.
    Un {
        /// Operator.
        op: UnOp,
        /// Operand.
        a: Operand,
    },
    /// Nonlinear-unit op; pushes 1 value.
    Nl {
        /// Operator.
        op: NlOp,
        /// Operand.
        a: Operand,
    },
    /// Select; pushes 1 value.
    Mux {
        /// Predicate.
        p: Operand,
        /// Taken value.
        t: Operand,
        /// Untaken value.
        f: Operand,
    },
    /// Masked load `arr[idx & (len-1)]`; pushes 1 value.
    Load {
        /// Array index into [`Program::arrays`] (resolved modulo count).
        arr: u32,
        /// Index operand.
        idx: Operand,
    },
    /// Masked store to a *state* array (resolved modulo the state-array
    /// count); pushes nothing, advances the array's ordering token.
    Store {
        /// State-array selector.
        arr: u32,
        /// Index operand.
        idx: Operand,
        /// Stored value.
        val: Operand,
    },
    /// Counted loop `for i in lo'..lo'+span step step` where
    /// `lo' = lo & 7`; carries `inits` (plus all state tokens, added by
    /// the emitter); pushes `inits.len()` values.
    For {
        /// Lower bound operand (masked to 0..=7 at emission).
        lo: Operand,
        /// Trip-span selector (masked to 0..=7).
        span: u32,
        /// Step (clamped to 1..=3).
        step: u32,
        /// Initial values of the loop-carried variables.
        inits: Vec<Operand>,
        /// Body statements.
        body: Vec<Stmt>,
    },
    /// Data-dependent loop: a counter starts at `start & 15` and strictly
    /// decreases by `dec` (clamped 1..=3) per iteration; continues while
    /// `counter > 0`. Pushes `1 + inits.len()` values (final counter
    /// first).
    While {
        /// Counter seed operand (masked to 0..=15 at emission).
        start: Operand,
        /// Per-iteration decrement (clamped 1..=3).
        dec: u32,
        /// Extra loop-carried variables.
        inits: Vec<Operand>,
        /// Body statements.
        body: Vec<Stmt>,
    },
    /// Structured branch on `(p & 3) != 0`; pushes `results` values
    /// merged from the two sides. Bodies must be loop-free.
    If {
        /// Predicate operand.
        p: Operand,
        /// Number of merged result values.
        results: u32,
        /// Taken side.
        then_b: Vec<Stmt>,
        /// Untaken side.
        else_b: Vec<Stmt>,
    },
}

impl Stmt {
    /// How many values this statement pushes onto the environment.
    pub fn pushes(&self) -> usize {
        match self {
            Stmt::Bin { .. } | Stmt::Un { .. } | Stmt::Nl { .. } | Stmt::Mux { .. } => 1,
            Stmt::Load { .. } => 1,
            Stmt::Store { .. } => 0,
            Stmt::For { inits, .. } => inits.len(),
            Stmt::While { inits, .. } => 1 + inits.len(),
            Stmt::If { results, .. } => *results as usize,
        }
    }

    /// True when this statement or anything nested in it is a loop.
    pub fn contains_loop(&self) -> bool {
        match self {
            Stmt::For { .. } | Stmt::While { .. } => true,
            Stmt::If { then_b, else_b, .. } => {
                then_b.iter().any(Stmt::contains_loop) || else_b.iter().any(Stmt::contains_loop)
            }
            _ => false,
        }
    }
}

/// A whole fuzz program.
#[derive(Clone, Debug, PartialEq)]
pub struct Program {
    /// Program name (also the CDFG name).
    pub name: String,
    /// Declared arrays (inputs and state).
    pub arrays: Vec<ArraySpec>,
    /// Top-level statements.
    pub body: Vec<Stmt>,
}

/// Structural violation found by [`Program::check`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AstError(pub String);

impl std::fmt::Display for AstError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed fuzz program: {}", self.0)
    }
}

impl std::error::Error for AstError {}

impl Program {
    /// Number of state (read-write) arrays.
    pub fn state_count(&self) -> usize {
        self.arrays.iter().filter(|a| a.state).count()
    }

    /// Total statement count (recursive), a rough size measure.
    pub fn stmt_count(&self) -> usize {
        fn rec(b: &[Stmt]) -> usize {
            b.iter()
                .map(|s| match s {
                    Stmt::For { body, .. } | Stmt::While { body, .. } => 1 + rec(body),
                    Stmt::If { then_b, else_b, .. } => 1 + rec(then_b) + rec(else_b),
                    _ => 1,
                })
                .sum()
        }
        rec(&self.body)
    }

    /// Validates the invariants the emitter relies on.
    ///
    /// # Errors
    /// Returns [`AstError`] when a structural invariant is violated.
    pub fn check(&self) -> Result<(), AstError> {
        if self.arrays.is_empty() {
            return Err(AstError("no arrays declared".into()));
        }
        if self.state_count() == 0 {
            return Err(AstError("no state array declared".into()));
        }
        for a in &self.arrays {
            if !a.len.is_power_of_two() {
                return Err(AstError(format!(
                    "array {}: len not a power of two",
                    a.name
                )));
            }
            if a.init.len() > a.len as usize {
                return Err(AstError(format!("array {}: init longer than len", a.name)));
            }
        }
        fn rec(b: &[Stmt], in_branch: bool) -> Result<(), AstError> {
            for s in b {
                match s {
                    Stmt::For { body, inits, .. } => {
                        if in_branch {
                            return Err(AstError("loop inside an if side".into()));
                        }
                        if inits.is_empty() {
                            return Err(AstError("for with no carried variables".into()));
                        }
                        rec(body, false)?;
                    }
                    Stmt::While { body, .. } => {
                        if in_branch {
                            return Err(AstError("loop inside an if side".into()));
                        }
                        rec(body, false)?;
                    }
                    Stmt::If {
                        then_b,
                        else_b,
                        results,
                        ..
                    } => {
                        if *results == 0 {
                            return Err(AstError("if with zero results".into()));
                        }
                        rec(then_b, true)?;
                        rec(else_b, true)?;
                    }
                    _ => {}
                }
            }
            Ok(())
        }
        rec(&self.body, false)
    }

    // -----------------------------------------------------------------
    // Corpus text format
    // -----------------------------------------------------------------

    /// Renders the program in the line-based corpus format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# marionette fuzzgen corpus v1");
        let _ = writeln!(out, "program {}", self.name);
        for a in &self.arrays {
            let kind = if a.state { "state" } else { "in" };
            let init: Vec<String> = a.init.iter().map(|v| v.to_string()).collect();
            let _ = writeln!(
                out,
                "array {} {kind} len={} init={}",
                a.name,
                a.len,
                init.join(",")
            );
        }
        fn operand(o: &Operand) -> String {
            match o {
                Operand::Imm(v) => format!("i{v}"),
                Operand::Ref(k) => format!("r{k}"),
            }
        }
        fn block(out: &mut String, b: &[Stmt], depth: usize) {
            let pad = "  ".repeat(depth);
            for s in b {
                match s {
                    Stmt::Bin { op, a, b: rhs } => {
                        let _ = writeln!(out, "{pad}bin {op:?} {} {}", operand(a), operand(rhs));
                    }
                    Stmt::Un { op, a } => {
                        let _ = writeln!(out, "{pad}un {op:?} {}", operand(a));
                    }
                    Stmt::Nl { op, a } => {
                        let _ = writeln!(out, "{pad}nl {op:?} {}", operand(a));
                    }
                    Stmt::Mux { p, t, f } => {
                        let _ =
                            writeln!(out, "{pad}mux {} {} {}", operand(p), operand(t), operand(f));
                    }
                    Stmt::Load { arr, idx } => {
                        let _ = writeln!(out, "{pad}load {arr} {}", operand(idx));
                    }
                    Stmt::Store { arr, idx, val } => {
                        let _ = writeln!(out, "{pad}store {arr} {} {}", operand(idx), operand(val));
                    }
                    Stmt::For {
                        lo,
                        span,
                        step,
                        inits,
                        body,
                    } => {
                        let iv: Vec<String> = inits.iter().map(operand).collect();
                        let _ = writeln!(
                            out,
                            "{pad}for {} span={span} step={step} inits={} {{",
                            operand(lo),
                            iv.join(",")
                        );
                        block(out, body, depth + 1);
                        let _ = writeln!(out, "{pad}}}");
                    }
                    Stmt::While {
                        start,
                        dec,
                        inits,
                        body,
                    } => {
                        let iv: Vec<String> = inits.iter().map(operand).collect();
                        let _ = writeln!(
                            out,
                            "{pad}while {} dec={dec} inits={} {{",
                            operand(start),
                            iv.join(",")
                        );
                        block(out, body, depth + 1);
                        let _ = writeln!(out, "{pad}}}");
                    }
                    Stmt::If {
                        p,
                        results,
                        then_b,
                        else_b,
                    } => {
                        let _ = writeln!(out, "{pad}if {} results={results} {{", operand(p));
                        block(out, then_b, depth + 1);
                        let _ = writeln!(out, "{pad}}} else {{");
                        block(out, else_b, depth + 1);
                        let _ = writeln!(out, "{pad}}}");
                    }
                }
            }
        }
        block(&mut out, &self.body, 0);
        out
    }

    /// Parses the corpus text format.
    ///
    /// # Errors
    /// Returns [`AstError`] with a line-tagged message on malformed input.
    pub fn parse(text: &str) -> Result<Program, AstError> {
        let mut name = String::from("corpus");
        let mut arrays = Vec::new();
        let mut stack: Vec<Vec<Stmt>> = vec![Vec::new()];
        // Pending frames: (kind, header fields, optional then-block).
        enum Frame {
            For {
                lo: Operand,
                span: u32,
                step: u32,
                inits: Vec<Operand>,
            },
            While {
                start: Operand,
                dec: u32,
                inits: Vec<Operand>,
            },
            If {
                p: Operand,
                results: u32,
                then_b: Option<Vec<Stmt>>,
            },
        }
        let mut frames: Vec<Frame> = Vec::new();

        fn err(ln: usize, m: impl Into<String>) -> AstError {
            AstError(format!("line {}: {}", ln + 1, m.into()))
        }
        fn operand(tok: &str, ln: usize) -> Result<Operand, AstError> {
            let bad = || err(ln, format!("bad operand {tok}"));
            if let Some(rest) = tok.strip_prefix('i') {
                let v = rest.parse::<i64>().map_err(|_| bad())?;
                Ok(Operand::Imm(v as i32))
            } else if let Some(rest) = tok.strip_prefix('r') {
                let v = rest.parse::<u64>().map_err(|_| bad())?;
                Ok(Operand::Ref(v as u32))
            } else {
                Err(bad())
            }
        }
        fn kv<'a>(tok: &'a str, key: &str, ln: usize) -> Result<&'a str, AstError> {
            tok.strip_prefix(key)
                .and_then(|t| t.strip_prefix('='))
                .ok_or_else(|| err(ln, format!("expected {key}=..., got {tok}")))
        }
        fn operands(list: &str, ln: usize) -> Result<Vec<Operand>, AstError> {
            if list.is_empty() {
                return Ok(Vec::new());
            }
            list.split(',').map(|t| operand(t, ln)).collect()
        }

        for (ln, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let toks: Vec<&str> = line.split_whitespace().collect();
            match toks[0] {
                "program" => {
                    name = toks.get(1).unwrap_or(&"corpus").to_string();
                }
                "array" => {
                    if toks.len() < 5 {
                        return Err(err(ln, "array needs name kind len= init="));
                    }
                    let state = match toks[2] {
                        "state" => true,
                        "in" => false,
                        k => return Err(err(ln, format!("bad array kind {k}"))),
                    };
                    let len: u32 = kv(toks[3], "len", ln)?
                        .parse()
                        .map_err(|_| err(ln, "bad len"))?;
                    let init_s = kv(toks[4], "init", ln)?;
                    let init = if init_s.is_empty() {
                        Vec::new()
                    } else {
                        init_s
                            .split(',')
                            .map(|t| t.parse::<i32>().map_err(|_| err(ln, "bad init value")))
                            .collect::<Result<Vec<_>, _>>()?
                    };
                    arrays.push(ArraySpec {
                        name: toks[1].to_string(),
                        len,
                        init,
                        state,
                    });
                }
                "bin" => {
                    let op = parse_bin(toks.get(1).copied().unwrap_or(""), ln)?;
                    let a = operand(
                        toks.get(2).copied().ok_or_else(|| err(ln, "missing a"))?,
                        ln,
                    )?;
                    let b = operand(
                        toks.get(3).copied().ok_or_else(|| err(ln, "missing b"))?,
                        ln,
                    )?;
                    stack.last_mut().unwrap().push(Stmt::Bin { op, a, b });
                }
                "un" => {
                    let op = parse_un(toks.get(1).copied().unwrap_or(""), ln)?;
                    let a = operand(
                        toks.get(2).copied().ok_or_else(|| err(ln, "missing a"))?,
                        ln,
                    )?;
                    stack.last_mut().unwrap().push(Stmt::Un { op, a });
                }
                "nl" => {
                    let op = parse_nl(toks.get(1).copied().unwrap_or(""), ln)?;
                    let a = operand(
                        toks.get(2).copied().ok_or_else(|| err(ln, "missing a"))?,
                        ln,
                    )?;
                    stack.last_mut().unwrap().push(Stmt::Nl { op, a });
                }
                "mux" => {
                    let p = operand(
                        toks.get(1).copied().ok_or_else(|| err(ln, "missing p"))?,
                        ln,
                    )?;
                    let t = operand(
                        toks.get(2).copied().ok_or_else(|| err(ln, "missing t"))?,
                        ln,
                    )?;
                    let f = operand(
                        toks.get(3).copied().ok_or_else(|| err(ln, "missing f"))?,
                        ln,
                    )?;
                    stack.last_mut().unwrap().push(Stmt::Mux { p, t, f });
                }
                "load" => {
                    let arr: u32 = toks
                        .get(1)
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| err(ln, "bad array selector"))?;
                    let idx = operand(
                        toks.get(2).copied().ok_or_else(|| err(ln, "missing idx"))?,
                        ln,
                    )?;
                    stack.last_mut().unwrap().push(Stmt::Load { arr, idx });
                }
                "store" => {
                    let arr: u32 = toks
                        .get(1)
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| err(ln, "bad array selector"))?;
                    let idx = operand(
                        toks.get(2).copied().ok_or_else(|| err(ln, "missing idx"))?,
                        ln,
                    )?;
                    let val = operand(
                        toks.get(3).copied().ok_or_else(|| err(ln, "missing val"))?,
                        ln,
                    )?;
                    stack
                        .last_mut()
                        .unwrap()
                        .push(Stmt::Store { arr, idx, val });
                }
                "for" => {
                    let lo = operand(
                        toks.get(1).copied().ok_or_else(|| err(ln, "missing lo"))?,
                        ln,
                    )?;
                    let span: u32 = kv(toks.get(2).copied().unwrap_or(""), "span", ln)?
                        .parse()
                        .map_err(|_| err(ln, "bad span"))?;
                    let step: u32 = kv(toks.get(3).copied().unwrap_or(""), "step", ln)?
                        .parse()
                        .map_err(|_| err(ln, "bad step"))?;
                    let inits = operands(kv(toks.get(4).copied().unwrap_or(""), "inits", ln)?, ln)?;
                    frames.push(Frame::For {
                        lo,
                        span,
                        step,
                        inits,
                    });
                    stack.push(Vec::new());
                }
                "while" => {
                    let start = operand(
                        toks.get(1)
                            .copied()
                            .ok_or_else(|| err(ln, "missing start"))?,
                        ln,
                    )?;
                    let dec: u32 = kv(toks.get(2).copied().unwrap_or(""), "dec", ln)?
                        .parse()
                        .map_err(|_| err(ln, "bad dec"))?;
                    let inits = operands(kv(toks.get(3).copied().unwrap_or(""), "inits", ln)?, ln)?;
                    frames.push(Frame::While { start, dec, inits });
                    stack.push(Vec::new());
                }
                "if" => {
                    let p = operand(
                        toks.get(1).copied().ok_or_else(|| err(ln, "missing p"))?,
                        ln,
                    )?;
                    let results: u32 = kv(toks.get(2).copied().unwrap_or(""), "results", ln)?
                        .parse()
                        .map_err(|_| err(ln, "bad results"))?;
                    frames.push(Frame::If {
                        p,
                        results,
                        then_b: None,
                    });
                    stack.push(Vec::new());
                }
                "}" => {
                    let blk = stack.pop().ok_or_else(|| err(ln, "unbalanced }"))?;
                    let frame = frames.pop().ok_or_else(|| err(ln, "unbalanced }"))?;
                    match frame {
                        Frame::For {
                            lo,
                            span,
                            step,
                            inits,
                        } => {
                            if toks.len() > 1 {
                                return Err(err(ln, "unexpected tokens after }"));
                            }
                            stack.last_mut().unwrap().push(Stmt::For {
                                lo,
                                span,
                                step,
                                inits,
                                body: blk,
                            });
                        }
                        Frame::While { start, dec, inits } => {
                            if toks.len() > 1 {
                                return Err(err(ln, "unexpected tokens after }"));
                            }
                            stack.last_mut().unwrap().push(Stmt::While {
                                start,
                                dec,
                                inits,
                                body: blk,
                            });
                        }
                        Frame::If { p, results, then_b } => match then_b {
                            None => {
                                // "} else {" — re-push for the else side.
                                if toks.len() != 3 || toks[1] != "else" || toks[2] != "{" {
                                    return Err(err(ln, "if needs `} else {`"));
                                }
                                frames.push(Frame::If {
                                    p,
                                    results,
                                    then_b: Some(blk),
                                });
                                stack.push(Vec::new());
                            }
                            Some(tb) => {
                                if toks.len() > 1 {
                                    return Err(err(ln, "unexpected tokens after }"));
                                }
                                stack.last_mut().unwrap().push(Stmt::If {
                                    p,
                                    results,
                                    then_b: tb,
                                    else_b: blk,
                                });
                            }
                        },
                    }
                }
                t => return Err(err(ln, format!("unknown statement {t}"))),
            }
        }
        if stack.len() != 1 || !frames.is_empty() {
            return Err(AstError("unclosed block at end of input".into()));
        }
        let p = Program {
            name,
            arrays,
            body: stack.pop().unwrap(),
        };
        p.check()?;
        Ok(p)
    }
}

macro_rules! op_table {
    ($fname:ident, $ty:ty, [$($v:ident),* $(,)?]) => {
        fn $fname(tok: &str, ln: usize) -> Result<$ty, AstError> {
            match tok {
                $(stringify!($v) => Ok(<$ty>::$v),)*
                _ => Err(AstError(format!(
                    "line {}: unknown {} operator {tok}",
                    ln + 1,
                    stringify!($ty)
                ))),
            }
        }
    };
}

op_table!(
    parse_bin,
    BinOp,
    [
        Add, Sub, Mul, Div, Rem, And, Or, Xor, Shl, Shr, AShr, Min, Max, Lt, Le, Gt, Ge, Eq, Ne,
        FAdd, FSub, FMul, FDiv, FMin, FMax, FLt, FLe, FGt, FGe,
    ]
);
op_table!(parse_un, UnOp, [Not, Neg, Abs, FNeg, FAbs, I2F, F2I, LNot]);
op_table!(parse_nl, NlOp, [Sigmoid, Log, Exp, Sqrt, Recip, Tanh]);

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Program {
        Program {
            name: "t".into(),
            arrays: vec![
                ArraySpec {
                    name: "a0".into(),
                    len: 8,
                    init: vec![1, -2, 3, 4, 5, 6, 7, 8],
                    state: false,
                },
                ArraySpec {
                    name: "s0".into(),
                    len: 8,
                    init: vec![],
                    state: true,
                },
            ],
            body: vec![
                Stmt::Bin {
                    op: BinOp::Add,
                    a: Operand::Imm(3),
                    b: Operand::Ref(0),
                },
                Stmt::For {
                    lo: Operand::Imm(0),
                    span: 5,
                    step: 1,
                    inits: vec![Operand::Ref(0)],
                    body: vec![
                        Stmt::Load {
                            arr: 0,
                            idx: Operand::Ref(1),
                        },
                        Stmt::If {
                            p: Operand::Ref(2),
                            results: 1,
                            then_b: vec![Stmt::Bin {
                                op: BinOp::Xor,
                                a: Operand::Ref(2),
                                b: Operand::Imm(7),
                            }],
                            else_b: vec![],
                        },
                        Stmt::Store {
                            arr: 0,
                            idx: Operand::Ref(1),
                            val: Operand::Ref(3),
                        },
                    ],
                },
                Stmt::While {
                    start: Operand::Ref(1),
                    dec: 2,
                    inits: vec![Operand::Imm(9)],
                    body: vec![Stmt::Un {
                        op: UnOp::Neg,
                        a: Operand::Ref(0),
                    }],
                },
            ],
        }
    }

    #[test]
    fn roundtrip_text() {
        let p = sample();
        p.check().unwrap();
        let text = p.to_text();
        let q = Program::parse(&text).unwrap();
        assert_eq!(p, q);
        assert_eq!(text, q.to_text());
    }

    #[test]
    fn check_rejects_loop_in_branch() {
        let mut p = sample();
        p.body.push(Stmt::If {
            p: Operand::Imm(1),
            results: 1,
            then_b: vec![Stmt::For {
                lo: Operand::Imm(0),
                span: 2,
                step: 1,
                inits: vec![Operand::Imm(0)],
                body: vec![],
            }],
            else_b: vec![],
        });
        assert!(p.check().is_err());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Program::parse("frobnicate").is_err());
        assert!(Program::parse("for i0 span=2 step=1 inits=i0 {").is_err());
        assert!(Program::parse("bin Bogus i0 i1").is_err());
        // Multi-byte first characters must be a parse error, not a panic.
        assert!(Program::parse("bin Add µ3 i1").is_err());
        assert!(Program::parse("mux µ i1 i2").is_err());
    }

    #[test]
    fn stmt_count_recursive() {
        assert_eq!(sample().stmt_count(), 8);
    }
}
