//! `.mar` source emission: the second differential axis.
//!
//! [`to_mar`] decompiles a fuzz [`Program`] into `marionette-lang` source
//! text that, after the full lexer → parser → sema → lowering front end,
//! computes **bit-identical values** to the direct `cdfg::builder` path
//! of [`crate::emit::emit`]. [`diff_source`] checks exactly that, then drives
//! the source-lowered graph through compile → bitstream → simulate on
//! the presets like any other fuzz program.
//!
//! ## Why the emitter does type inference
//!
//! Fuzz programs are dynamically typed: any value can feed any operator,
//! and the machine coerces (`i32_of`/`f32_of` in `marionette-cdfg::op`).
//! The surface language instead rejects *certainly* mismatched operands.
//! The emitter therefore tracks a static tag per value — `I32`, `F32`,
//! or `Word` (runtime-dependent) — with the same rules and the same
//! loop-carry fixpoint as `marionette-lang`'s checker, and inserts an
//! explicit conversion exactly where the tag is certain and mismatched:
//!
//! - `f2i(x)` before an integer operator on a certain-f32 value computes
//!   the same bits the machine's implicit `as i32` coercion would;
//! - `i2f(x)` (or folding an integer immediate into a float literal)
//!   matches the implicit `as f32` coercion of float operators;
//! - positions that consume values *raw* (mux arms, store values, loop
//!   carries, merges, sinks) are never wrapped — the language types them
//!   as `word`, so no conversion is needed and none would be sound.
//!
//! Every name is freshly generated (`e*` seeds, `v*` values, `t*`/`i*`/
//! `c*`/`o*` loop plumbing), so the emitted program is deterministic and
//! collision-free by construction.

use crate::ast::{Operand, Program, Stmt};
use crate::diff::{
    check_presets, compare_sinks, interp_pair, stream_mismatch, DiffStats, Divergence,
    DivergenceKind,
};
use crate::emit::emit;
use marionette_arch::Architecture;
use marionette_cdfg::op::{ArrayId, BinOp, UnOp};
use marionette_lang::ast as lang;
use marionette_lang::diag::Span;

/// Static value tag (mirrors `marionette-lang::sema::STy`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Tag {
    I32,
    F32,
    Word,
}

impl Tag {
    fn join(self, other: Tag) -> Tag {
        if self == other {
            self
        } else {
            Tag::Word
        }
    }
}

/// One visible value: its source name and static tag.
#[derive(Clone)]
struct Slot {
    name: String,
    tag: Tag,
}

struct ArrRef {
    name: String,
    mask: i32,
    state: bool,
}

struct Emitter {
    arrays: Vec<ArrRef>,
    /// Indices (into `arrays`) of the state arrays, for store selectors.
    state: Vec<usize>,
    next: usize,
}

// ---------------------------------------------------------------------
// Tiny lang-AST construction helpers (spans are irrelevant for printing)
// ---------------------------------------------------------------------

fn id(name: &str) -> lang::Ident {
    lang::Ident {
        name: name.to_string(),
        span: Span::default(),
    }
}

fn ex(kind: lang::ExprKind) -> lang::Expr {
    lang::Expr {
        kind,
        span: Span::default(),
    }
}

fn int(v: i32) -> lang::Expr {
    ex(lang::ExprKind::Int(v))
}

fn var(name: &str) -> lang::Expr {
    ex(lang::ExprKind::Var(id(name)))
}

fn bin(op: BinOp, a: lang::Expr, b: lang::Expr) -> lang::Expr {
    ex(lang::ExprKind::Bin {
        op,
        a: Box::new(a),
        b: Box::new(b),
    })
}

fn un(op: UnOp, a: lang::Expr) -> lang::Expr {
    ex(lang::ExprKind::Un { op, a: Box::new(a) })
}

fn stmt(kind: lang::StmtKind) -> lang::Stmt {
    lang::Stmt {
        kind,
        span: Span::default(),
    }
}

fn let_names(names: &[String], value: lang::Expr) -> lang::Stmt {
    stmt(lang::StmtKind::Let {
        names: names.iter().map(|n| id(n)).collect(),
        value,
    })
}

/// Wraps a certainly-f32 value for an integer-operator position. `f2i`
/// computes the same `as i32` truncation the machine's implicit coercion
/// performs, so inserting it preserves every downstream bit.
fn as_int(e: lang::Expr, tag: Tag) -> lang::Expr {
    if tag == Tag::F32 {
        un(UnOp::F2I, e)
    } else {
        e
    }
}

/// Wraps a certainly-i32 value for a float-operator position. Integer
/// immediates fold straight into float literals (`5` → `5.0`), which is
/// the same `as f32` conversion the machine performs at runtime.
fn as_float(e: lang::Expr, tag: Tag) -> lang::Expr {
    if tag != Tag::I32 {
        return e;
    }
    if let lang::ExprKind::Int(v) = e.kind {
        return ex(lang::ExprKind::Float(v as f32));
    }
    un(UnOp::I2F, e)
}

fn is_float_bin(op: BinOp) -> bool {
    use BinOp::*;
    matches!(
        op,
        FAdd | FSub | FMul | FDiv | FMin | FMax | FLt | FLe | FGt | FGe
    )
}

/// Makes `raw` a collision-free `.mar` identifier while keeping it
/// recognizable (fuzz names are already clean; corpus files may not be).
fn sanitize(raw: &str, taken: &mut std::collections::HashSet<String>) -> String {
    let mut s: String = raw
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if s.is_empty() || s.as_bytes()[0].is_ascii_digit() {
        s.insert(0, '_');
    }
    if lang::KEYWORDS.contains(&s.as_str()) {
        s.push('_');
    }
    while !taken.insert(s.clone()) {
        s.push('x');
    }
    s
}

impl Emitter {
    fn fresh(&mut self, prefix: &str) -> String {
        loop {
            let n = self.next;
            self.next += 1;
            let s = format!("{prefix}{n}");
            // `i32`/`f32` are keywords; a counter of 32 can produce them.
            if !lang::KEYWORDS.contains(&s.as_str()) {
                return s;
            }
        }
    }

    fn operand(&self, env: &[Slot], o: &Operand) -> (lang::Expr, Tag) {
        match o {
            Operand::Imm(v) => (int(*v), Tag::I32),
            Operand::Ref(k) => {
                let s = &env[*k as usize % env.len()];
                (var(&s.name), s.tag)
            }
        }
    }

    /// Emits one block: returns the lang statements; pushes one [`Slot`]
    /// per produced value onto `env`, mirroring `emit::emit_block`.
    fn block(&mut self, env: &mut Vec<Slot>, stmts: &[Stmt]) -> Vec<lang::Stmt> {
        let mut out = Vec::new();
        for s in stmts {
            match s {
                Stmt::Bin { op, a, b } => {
                    let (ea, ta) = self.operand(env, a);
                    let (eb, tb) = self.operand(env, b);
                    let (ea, eb, tag) = if is_float_bin(*op) {
                        (
                            as_float(ea, ta),
                            as_float(eb, tb),
                            if op.is_cmp() { Tag::I32 } else { Tag::F32 },
                        )
                    } else {
                        (as_int(ea, ta), as_int(eb, tb), Tag::I32)
                    };
                    let name = self.fresh("v");
                    out.push(let_names(std::slice::from_ref(&name), bin(*op, ea, eb)));
                    env.push(Slot { name, tag });
                }
                Stmt::Un { op, a } => {
                    let (ea, ta) = self.operand(env, a);
                    let (ea, tag) = match op {
                        UnOp::Not | UnOp::Neg | UnOp::Abs => (as_int(ea, ta), Tag::I32),
                        UnOp::LNot => (ea, Tag::I32),
                        UnOp::FNeg | UnOp::FAbs => (as_float(ea, ta), Tag::F32),
                        // i2f on a certain f32 (resp. f2i on a certain i32)
                        // is the language's "useless conversion" error; the
                        // pre-conversion reproduces the machine's implicit
                        // double coercion bit for bit.
                        UnOp::I2F => (as_int(ea, ta), Tag::F32),
                        UnOp::F2I => (as_float(ea, ta), Tag::I32),
                    };
                    let name = self.fresh("v");
                    out.push(let_names(std::slice::from_ref(&name), un(*op, ea)));
                    env.push(Slot { name, tag });
                }
                Stmt::Nl { op, a } => {
                    let (ea, ta) = self.operand(env, a);
                    let name = self.fresh("v");
                    out.push(let_names(
                        std::slice::from_ref(&name),
                        ex(lang::ExprKind::Nl {
                            op: *op,
                            a: Box::new(as_float(ea, ta)),
                        }),
                    ));
                    env.push(Slot {
                        name,
                        tag: Tag::F32,
                    });
                }
                Stmt::Mux { p, t, f } => {
                    let (ep, tp) = self.operand(env, p);
                    let pred = bin(BinOp::Ne, as_int(ep, tp), int(0));
                    let (et, tt) = self.operand(env, t);
                    let (ef, tf) = self.operand(env, f);
                    let name = self.fresh("v");
                    out.push(let_names(
                        std::slice::from_ref(&name),
                        ex(lang::ExprKind::Mux {
                            p: Box::new(pred),
                            t: Box::new(et),
                            f: Box::new(ef),
                        }),
                    ));
                    env.push(Slot {
                        name,
                        tag: tt.join(tf),
                    });
                }
                Stmt::Load { arr, idx } => {
                    let a = &self.arrays[*arr as usize % self.arrays.len()];
                    let (ei, ti) = self.operand(env, idx);
                    let masked = bin(BinOp::And, as_int(ei, ti), int(a.mask));
                    let tag = if a.state { Tag::Word } else { Tag::I32 };
                    let load = ex(lang::ExprKind::Load {
                        arr: id(&a.name),
                        idx: Box::new(masked),
                    });
                    let name = self.fresh("v");
                    out.push(let_names(std::slice::from_ref(&name), load));
                    env.push(Slot { name, tag });
                }
                Stmt::Store { arr, idx, val } => {
                    let ai = self.state[*arr as usize % self.state.len()];
                    let (name, mask) = {
                        let a = &self.arrays[ai];
                        (a.name.clone(), a.mask)
                    };
                    let (ei, ti) = self.operand(env, idx);
                    let (ev, _) = self.operand(env, val); // raw word store
                    out.push(stmt(lang::StmtKind::Store {
                        arr: id(&name),
                        idx: bin(BinOp::And, as_int(ei, ti), int(mask)),
                        value: ev,
                    }));
                }
                Stmt::For {
                    lo,
                    span,
                    step,
                    inits,
                    body,
                } => {
                    let (elo, tlo) = self.operand(env, lo);
                    let tname = self.fresh("t");
                    out.push(let_names(
                        std::slice::from_ref(&tname),
                        bin(BinOp::And, as_int(elo, tlo), int(7)),
                    ));
                    let hi = bin(BinOp::Add, var(&tname), int((span % 8) as i32));
                    let iname = self.fresh("i");
                    let carries: Vec<(String, lang::Expr, Tag)> = inits
                        .iter()
                        .map(|o| {
                            let (e, t) = self.operand(env, o);
                            (self.fresh("c"), e, t)
                        })
                        .collect();
                    let ndata = carries.len();
                    let mut tags: Vec<Tag> = carries.iter().map(|c| c.2).collect();
                    // Carry-type fixpoint, identical to the checker's: a
                    // non-final pass is discarded (name counter restored).
                    let body_stmts = loop {
                        let saved = self.next;
                        let mut env2 = env.clone();
                        env2.push(Slot {
                            name: iname.clone(),
                            tag: Tag::I32,
                        });
                        for ((cn, _, _), tg) in carries.iter().zip(&tags) {
                            env2.push(Slot {
                                name: cn.clone(),
                                tag: *tg,
                            });
                        }
                        let base = env2.len();
                        let mut stmts2 = self.block(&mut env2, body);
                        let pushed = &env2[base..];
                        let mut yields = Vec::with_capacity(ndata);
                        let mut ytags = Vec::with_capacity(ndata);
                        for k in 0..ndata {
                            if pushed.is_empty() {
                                // Body produced nothing: advance the carried
                                // value exactly like the builder path.
                                yields.push(bin(BinOp::Add, var(&carries[k].0), int(k as i32 + 1)));
                                ytags.push(Tag::I32);
                            } else {
                                let s = &pushed[k % pushed.len()];
                                yields.push(var(&s.name));
                                ytags.push(s.tag);
                            }
                        }
                        let joined: Vec<Tag> =
                            tags.iter().zip(&ytags).map(|(a, b)| a.join(*b)).collect();
                        if joined == tags {
                            stmts2.push(stmt(lang::StmtKind::Yield(yields)));
                            break stmts2;
                        }
                        tags = joined;
                        self.next = saved;
                    };
                    let for_e = ex(lang::ExprKind::For {
                        var: id(&iname),
                        lo: Box::new(var(&tname)),
                        hi: Box::new(hi),
                        step: (*step).clamp(1, 3) as i32,
                        carries: carries
                            .iter()
                            .map(|(n, e, _)| lang::Carry {
                                name: id(n),
                                init: e.clone(),
                            })
                            .collect(),
                        body: body_stmts,
                    });
                    let outs: Vec<Slot> = tags
                        .iter()
                        .map(|t| Slot {
                            name: self.fresh("o"),
                            tag: *t,
                        })
                        .collect();
                    let names: Vec<String> = outs.iter().map(|s| s.name.clone()).collect();
                    out.push(let_names(&names, for_e));
                    env.extend(outs);
                }
                Stmt::While {
                    start,
                    dec,
                    inits,
                    body,
                } => {
                    let (es, ts) = self.operand(env, start);
                    let cname = self.fresh("c");
                    let c_init = bin(BinOp::And, as_int(es, ts), int(15));
                    let mut carries: Vec<(String, lang::Expr, Tag)> =
                        vec![(cname.clone(), c_init, Tag::I32)];
                    for o in inits {
                        let (e, t) = self.operand(env, o);
                        carries.push((self.fresh("c"), e, t));
                    }
                    let ndata = carries.len(); // counter + data vars
                    let dec_i = (*dec).clamp(1, 3) as i32;
                    let mut tags: Vec<Tag> = carries.iter().map(|c| c.2).collect();
                    let body_stmts = loop {
                        let saved = self.next;
                        let mut env2 = env.clone();
                        for ((cn, _, _), tg) in carries.iter().zip(&tags) {
                            env2.push(Slot {
                                name: cn.clone(),
                                tag: *tg,
                            });
                        }
                        let base = env2.len();
                        let mut stmts2 = self.block(&mut env2, body);
                        let pushed = &env2[base..];
                        // The counter strictly decreases, whatever the body
                        // computes — same structural termination as emit.
                        let mut yields = vec![bin(BinOp::Sub, var(&cname), int(dec_i))];
                        let mut ytags = vec![Tag::I32];
                        for k in 1..ndata {
                            if pushed.is_empty() {
                                yields.push(var(&carries[k].0));
                                ytags.push(tags[k]);
                            } else {
                                let s = &pushed[k % pushed.len()];
                                yields.push(var(&s.name));
                                ytags.push(s.tag);
                            }
                        }
                        let joined: Vec<Tag> =
                            tags.iter().zip(&ytags).map(|(a, b)| a.join(*b)).collect();
                        if joined == tags {
                            stmts2.push(stmt(lang::StmtKind::Yield(yields)));
                            break stmts2;
                        }
                        tags = joined;
                        self.next = saved;
                    };
                    let while_e = ex(lang::ExprKind::While {
                        cond: Box::new(bin(BinOp::Gt, var(&cname), int(0))),
                        carries: carries
                            .iter()
                            .map(|(n, e, _)| lang::Carry {
                                name: id(n),
                                init: e.clone(),
                            })
                            .collect(),
                        body: body_stmts,
                    });
                    let outs: Vec<Slot> = tags
                        .iter()
                        .map(|t| Slot {
                            name: self.fresh("o"),
                            tag: *t,
                        })
                        .collect();
                    let names: Vec<String> = outs.iter().map(|s| s.name.clone()).collect();
                    out.push(let_names(&names, while_e));
                    env.extend(outs);
                }
                Stmt::If {
                    p,
                    results,
                    then_b,
                    else_b,
                } => {
                    let (ep, tp) = self.operand(env, p);
                    let pred = bin(BinOp::Ne, bin(BinOp::And, as_int(ep, tp), int(3)), int(0));
                    let nres = *results as usize;
                    let mut side = |body: &[Stmt]| -> (Vec<lang::Stmt>, Vec<Tag>) {
                        let mut env2 = env.clone();
                        let base = env2.len();
                        let mut stmts2 = self.block(&mut env2, body);
                        let pushed_len = env2.len() - base;
                        let mut yields = Vec::with_capacity(nres);
                        let mut ytags = Vec::with_capacity(nres);
                        for k in 0..nres {
                            let s = if pushed_len == 0 {
                                &env2[k % env2.len()]
                            } else {
                                &env2[base + (k % pushed_len)]
                            };
                            yields.push(var(&s.name));
                            ytags.push(s.tag);
                        }
                        stmts2.push(stmt(lang::StmtKind::Yield(yields)));
                        (stmts2, ytags)
                    };
                    let (then_s, then_t) = side(then_b);
                    let (else_s, else_t) = side(else_b);
                    let if_e = ex(lang::ExprKind::If {
                        cond: Box::new(pred),
                        then_b: then_s,
                        else_b: else_s,
                    });
                    let outs: Vec<Slot> = then_t
                        .iter()
                        .zip(&else_t)
                        .map(|(a, b)| Slot {
                            name: self.fresh("o"),
                            tag: a.join(*b),
                        })
                        .collect();
                    let names: Vec<String> = outs.iter().map(|s| s.name.clone()).collect();
                    out.push(let_names(&names, if_e));
                    env.extend(outs);
                }
            }
        }
        out
    }
}

/// Decompiles a fuzz program into a `marionette-lang` AST.
///
/// # Panics
/// Panics if the program violates [`Program::check`] invariants.
pub fn to_mar_ast(p: &Program) -> lang::Program {
    p.check().expect("well-formed fuzz program");
    let mut taken = std::collections::HashSet::new();
    let name = sanitize(&p.name, &mut taken);
    let mut arrays = Vec::new();
    let mut state = Vec::new();
    let mut decls = Vec::new();
    for (i, a) in p.arrays.iter().enumerate() {
        let sname = sanitize(&a.name, &mut taken);
        decls.push(lang::ArrayDecl {
            name: id(&sname),
            ty: lang::Ty::I32,
            len: a.len as u64,
            init: a
                .init
                .iter()
                .map(|v| lang::Lit {
                    kind: lang::LitKind::Int(*v),
                    span: Span::default(),
                })
                .collect(),
            state: a.state,
            span: Span::default(),
        });
        if a.state {
            state.push(i);
        }
        arrays.push(ArrRef {
            name: sname,
            mask: (a.len as i32) - 1,
            state: a.state,
        });
    }
    let mut em = Emitter {
        arrays,
        state,
        next: 0,
    };
    let mut body = Vec::new();
    // Environment seeds, mirroring emit(): three immediates bound to
    // names so `Ref` operands always resolve.
    let mut env = Vec::new();
    for (i, v) in [5, -3, 12].into_iter().enumerate() {
        let n = format!("e{i}");
        body.push(let_names(std::slice::from_ref(&n), int(v)));
        env.push(Slot {
            name: n,
            tag: Tag::I32,
        });
    }
    let seed_count = env.len();
    body.extend(em.block(&mut env, &p.body));
    // Sinks mirror emit()'s `r{k}` labels over the top-level values (the
    // builder path additionally sinks the state tokens, which have no
    // surface form; the differential compares the `r*` labels).
    for (k, s) in env[seed_count..].iter().enumerate() {
        body.push(stmt(lang::StmtKind::Sink {
            name: id(&format!("r{k}")),
            value: var(&s.name),
        }));
    }
    lang::Program {
        name: id(&name),
        params: Vec::new(),
        arrays: decls,
        body,
    }
}

/// Emits the canonical `.mar` source text of a fuzz program.
pub fn to_mar(p: &Program) -> String {
    marionette_lang::print(&to_mar_ast(p))
}

/// Differentially checks the `.mar` round-trip of `p`:
///
/// 1. the emitted source must be accepted by the full front end;
/// 2. the source-lowered graph must interpret to bit-identical arrays,
///    `r*` sink streams and out-of-bounds counts as the direct builder
///    path (both interpreter modes cross-checked on each graph);
/// 3. the source-lowered graph is then driven through compile →
///    bitstream → simulate on every preset, bit-compared against its
///    own reference, exactly like [`crate::diff::diff_program`].
///
/// Pass an empty preset slice for the interpreter-only value check.
///
/// # Errors
/// Returns the first [`Divergence`]; source-axis failures use
/// [`DivergenceKind::Source`].
pub fn diff_source(
    p: &Program,
    presets: &[Architecture],
    max_cycles: u64,
    check_fires: bool,
) -> Result<DiffStats, Divergence> {
    let g1 = emit(p);
    let r1 = interp_pair(&g1)?;
    source_axis(p, &g1, &r1, presets, max_cycles, check_fires)
}

/// [`crate::diff::diff_program`] and [`diff_source`] in one pass, sharing
/// the builder graph's reference interpretations: checks the direct
/// builder path on every preset, then the full source axis. This is what
/// `fuzz_stack --source` runs per seed.
///
/// # Errors
/// Returns the first [`Divergence`] (builder axis first).
pub fn diff_both(
    p: &Program,
    presets: &[Architecture],
    max_cycles: u64,
    check_fires: bool,
) -> Result<DiffStats, Divergence> {
    let g1 = emit(p);
    let r1 = interp_pair(&g1)?;
    let mut stats = DiffStats {
        nodes: g1.nodes.len(),
        ..DiffStats::default()
    };
    check_presets(&g1, &r1, presets, max_cycles, check_fires, &mut stats)?;
    let s2 = source_axis(p, &g1, &r1, presets, max_cycles, check_fires)?;
    stats.points += s2.points;
    stats.cycles += s2.cycles;
    stats.fires += s2.fires;
    Ok(stats)
}

fn source_axis(
    p: &Program,
    g1: &marionette_cdfg::Cdfg,
    r1: &crate::diff::RefPair,
    presets: &[Architecture],
    max_cycles: u64,
    check_fires: bool,
) -> Result<DiffStats, Divergence> {
    let src_fail = |detail: String| Divergence {
        preset: String::new(),
        kind: DivergenceKind::Source,
        detail,
    };
    let text = to_mar(p);
    let g2 = marionette_lang::compile_source(&text).map_err(|ds| {
        src_fail(format!(
            "front end rejected the emitted source ({} diagnostics; first: {})",
            ds.len(),
            ds[0].message
        ))
    })?;
    let r2 = interp_pair(&g2)
        .map_err(|d| src_fail(format!("source-lowered graph [{}] {}", d.kind, d.detail)))?;
    // Arrays are compared positionally: sanitization may rename, but the
    // declaration order is preserved.
    if g1.arrays.len() != g2.arrays.len() {
        return Err(src_fail(format!(
            "array count differs: builder {}, source {}",
            g1.arrays.len(),
            g2.arrays.len()
        )));
    }
    for (i, arr) in g1.arrays.iter().enumerate() {
        let id = ArrayId(i as u32);
        if let Some(m) = stream_mismatch(r1.dropping.memory.array(id), r2.dropping.memory.array(id))
        {
            return Err(src_fail(format!(
                "array {} (builder vs source){m}",
                arr.name
            )));
        }
    }
    // Sinks: the source program carries exactly the `r*` labels.
    let expect: std::collections::HashMap<String, Vec<marionette_cdfg::value::Value>> = r1
        .dropping
        .sinks
        .iter()
        .filter(|(k, _)| !k.starts_with("tok"))
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect();
    compare_sinks(&expect, &r2.dropping.sinks)
        .map_err(|m| src_fail(format!("builder vs source: {m}")))?;
    if r1.dropping.memory.oob_events() != r2.dropping.memory.oob_events() {
        return Err(src_fail(format!(
            "oob events differ: builder {}, source {}",
            r1.dropping.memory.oob_events(),
            r2.dropping.memory.oob_events()
        )));
    }
    let mut stats = DiffStats {
        nodes: g2.nodes.len(),
        ..DiffStats::default()
    };
    check_presets(&g2, &r2, presets, max_cycles, check_fires, &mut stats)?;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};

    #[test]
    fn emitted_source_parses_and_agrees_on_a_few_seeds() {
        let cfg = GenConfig::default();
        for seed in 0..8 {
            let p = generate(seed, &cfg);
            diff_source(&p, &[], crate::diff::DEFAULT_MAX_CYCLES, true)
                .unwrap_or_else(|d| panic!("seed {seed}: {d}\n{}", to_mar(&p)));
        }
    }

    #[test]
    fn emitted_source_is_deterministic() {
        let p = generate(42, &GenConfig::default());
        assert_eq!(to_mar(&p), to_mar(&p));
    }

    #[test]
    fn sanitize_avoids_keywords_and_collisions() {
        let mut taken = std::collections::HashSet::new();
        assert_eq!(sanitize("while", &mut taken), "while_");
        assert_eq!(sanitize("a-b", &mut taken), "a_b");
        assert_eq!(sanitize("a_b", &mut taken), "a_bx");
        assert_eq!(sanitize("0x", &mut taken), "_0x");
    }
}
