//! Differential fuzzing driver: sweep a seed range of generated programs
//! through the full compile→simulate stack on the architecture presets,
//! in parallel across cores (`marionette::parallel`).
//!
//! ```text
//! fuzz_stack [--start S] [--count N] [--presets M,vN,...] [--depth D]
//!            [--max-stmts K] [--shrink] [--corpus-dir DIR]
//!            [--json PATH] [--max-cycles C] [--no-fires] [--serial]
//!            [--search MOVES[,RESTARTS]] [--source] [--fabric RxC]
//!            [--faults N] [--fault SPEC]... [--engine wheel|heap]
//!            [--lanes N]
//! ```
//!
//! `--engine wheel|heap` pins the simulator's event-queue core (default
//! wheel, the production engine); fuzzing under `--engine heap` is the
//! cross-engine differential axis. `--lanes N` runs every program as N
//! batched lanes of one machine ([`marionette::sim::run_lanes`]) and
//! requires each lane to match the reference interpreter bit for bit —
//! the axis that fuzzes machine reuse/reset across lanes. Both combine
//! with neither `--source` nor fault injection.
//!
//! `--faults N` injects N seeded-random faults (dead PEs, dead links,
//! flaky links — a fresh set per program seed) into every simulation and
//! differentially fuzzes the self-healing remap loop: wedged bitstreams
//! are re-mapped around the faults and the remap must still match the
//! reference interpreter bit for bit. `--fault SPEC` (repeatable) pins
//! explicit faults (`pe:R,C`, `link:R,C-R,C`, `flaky:R,C-R,C@MULT`)
//! under every seed. A remap that cannot fit on the surviving fabric is
//! a typed, accepted outcome — not a divergence.
//!
//! `--fabric RxC` instantiates the selected presets on an R×C fabric
//! (default 4x4): larger meshes exercise longer routes, bigger agile
//! regions and the geometry-derived centralized-control timing.
//!
//! `--search` turns the compiler's annealing mapping explorer on for
//! every selected preset (MOVES annealing moves, RESTARTS chains),
//! fuzzing the searched placements and rip-up routes instead of the
//! legacy one-shot pipeline.
//!
//! `--source` additionally exercises the `.mar` source axis: each
//! program is emitted as `marionette-lang` source, re-lowered through
//! the lexer/parser/sema front end, value-compared against the direct
//! builder path, and the source-lowered graph is driven through the
//! full stack on the same presets.
//!
//! Exit status is non-zero when any divergence was found. With
//! `--shrink`, each divergence is reduced while it still reproduces and
//! written to `--corpus-dir` (default `crates/fuzzgen/corpus/`) in the
//! corpus text format, ready to commit as a regression.
//!
//! `--print-seed S` prints seed S's program in the corpus text format and
//! exits (handy for seeding the corpus or inspecting a failure).

use marionette::arch::FabricDims;
use marionette::parallel::{par_map, sweep_threads};
use marionette::sim::{EngineKind, FaultSet};
use marionette_fuzzgen::diff::{
    all_presets_on, diff_program_engine, diff_program_faulted_engine, diff_program_lanes,
    DEFAULT_MAX_CYCLES,
};
use marionette_fuzzgen::gen::{generate, GenConfig};
use marionette_fuzzgen::shrink::shrink;
use marionette_fuzzgen::source::diff_both;
use std::time::Instant;

struct Args {
    start: u64,
    count: u64,
    presets: String,
    depth: u32,
    max_stmts: usize,
    do_shrink: bool,
    corpus_dir: String,
    json: Option<String>,
    max_cycles: u64,
    check_fires: bool,
    serial: bool,
    print_seed: Option<u64>,
    search: Option<(u32, u32)>,
    source: bool,
    fabric: FabricDims,
    faults: usize,
    fault_specs: Vec<String>,
    engine: EngineKind,
    lanes: usize,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().collect();
    let get = |flag: &str| -> Option<String> {
        argv.iter()
            .position(|a| a == flag)
            .and_then(|i| argv.get(i + 1))
            .cloned()
    };
    let has = |flag: &str| argv.iter().any(|a| a == flag);
    // `--fault` repeats; collect every occurrence.
    let fault_specs: Vec<String> = argv
        .iter()
        .enumerate()
        .filter(|(_, a)| *a == "--fault")
        .map(|(i, _)| match argv.get(i + 1) {
            Some(v) if !v.starts_with("--") => v.clone(),
            _ => {
                eprintln!(
                    "fuzz_stack: --fault needs a spec (pe:R,C | link:R,C-R,C | flaky:R,C-R,C@MULT)"
                );
                std::process::exit(2);
            }
        })
        .collect();
    Args {
        start: get("--start").and_then(|v| v.parse().ok()).unwrap_or(0),
        count: get("--count").and_then(|v| v.parse().ok()).unwrap_or(1000),
        presets: get("--presets").unwrap_or_default(),
        depth: get("--depth").and_then(|v| v.parse().ok()).unwrap_or(3),
        max_stmts: get("--max-stmts")
            .and_then(|v| v.parse().ok())
            .unwrap_or(22),
        do_shrink: has("--shrink"),
        corpus_dir: get("--corpus-dir").unwrap_or_else(|| "crates/fuzzgen/corpus".into()),
        json: get("--json"),
        max_cycles: get("--max-cycles")
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_MAX_CYCLES),
        check_fires: !has("--no-fires"),
        serial: has("--serial"),
        print_seed: has("--print-seed").then(|| {
            get("--print-seed")
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| {
                    eprintln!("fuzz_stack: --print-seed needs a numeric seed");
                    std::process::exit(2);
                })
        }),
        search: has("--search").then(|| {
            let spec = get("--search").unwrap_or_default();
            let mut it = spec.split(',').map(str::trim);
            let moves = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("fuzz_stack: --search needs MOVES[,RESTARTS]");
                std::process::exit(2);
            });
            let restarts = match it.next() {
                None => 1,
                Some(v) => v.parse().unwrap_or_else(|_| {
                    eprintln!("fuzz_stack: --search RESTARTS must be numeric, got {v:?}");
                    std::process::exit(2);
                }),
            };
            (moves, restarts)
        }),
        source: has("--source"),
        fabric: match get("--fabric") {
            None => FabricDims::paper(),
            Some(spec) => spec.parse().unwrap_or_else(|e| {
                eprintln!("fuzz_stack: --fabric: {e}");
                std::process::exit(2);
            }),
        },
        faults: match get("--faults") {
            None => 0,
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("fuzz_stack: --faults needs a numeric count, got `{v}`");
                std::process::exit(2);
            }),
        },
        fault_specs,
        engine: match get("--engine") {
            None => EngineKind::default(),
            Some(v) => v.parse().unwrap_or_else(|e| {
                eprintln!("fuzz_stack: --engine: {e}");
                std::process::exit(2);
            }),
        },
        lanes: match get("--lanes") {
            None => 1,
            Some(v) => match v.parse() {
                Ok(n) if n >= 1 => n,
                _ => {
                    eprintln!("fuzz_stack: --lanes needs a count >= 1, got `{v}`");
                    std::process::exit(2);
                }
            },
        },
    }
}

struct SeedOutcome {
    seed: u64,
    points: usize,
    cycles: u64,
    fires: u64,
    nodes: usize,
    remaps: usize,
    infeasible: usize,
    failure: Option<String>,
}

use marionette::report::json_escape;

fn main() {
    let args = parse_args();
    let mut presets = if args.presets.is_empty() {
        all_presets_on(args.fabric)
    } else {
        match marionette::arch::presets_by_tags_on(args.fabric, &args.presets) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("fuzz_stack: {e}");
                std::process::exit(2);
            }
        }
    };
    if let Some((moves, restarts)) = args.search {
        for a in &mut presets {
            a.opts.search = marionette::compiler::SearchBudget::Anneal {
                moves,
                restarts,
                base_seed: 0xF022,
            };
        }
    }
    // The shared fault CLI surface: explicit `--fault` specs pinned
    // under every seed, plus `--faults N` fresh random faults per seed.
    let base_faults =
        match FaultSet::from_cli(args.fabric.rows, args.fabric.cols, &args.fault_specs, 0, 0) {
            Ok(fs) => fs,
            Err(e) => {
                eprintln!("fuzz_stack: {e}");
                std::process::exit(2);
            }
        };
    let have_faults = args.faults > 0 || !base_faults.is_empty();
    if have_faults && args.source {
        eprintln!("fuzz_stack: --source and fault injection cannot be combined");
        std::process::exit(2);
    }
    if args.lanes > 1 && (args.source || have_faults) {
        eprintln!("fuzz_stack: --lanes combines with neither --source nor fault injection");
        std::process::exit(2);
    }
    if args.source && args.engine != EngineKind::default() {
        eprintln!("fuzz_stack: --source runs on the default engine only");
        std::process::exit(2);
    }
    let cfg = GenConfig {
        max_depth: args.depth,
        max_stmts: args.max_stmts,
        ..GenConfig::default()
    };
    if let Some(seed) = args.print_seed {
        print!("{}", generate(seed, &cfg).to_text());
        return;
    }
    let threads = if args.serial { 1 } else { sweep_threads() };
    let seeds: Vec<u64> = (args.start..args.start + args.count).collect();
    let t0 = Instant::now();
    let base_faults_ref = &base_faults;
    let outcomes = par_map(seeds, threads, |seed| {
        let p = generate(seed, &cfg);
        // With --source, each seed runs both axes sharing one reference
        // interpretation of the builder graph. With faults, each seed
        // gets its own seeded-random damage on top of the pinned specs
        // and exercises the self-healing remap loop.
        let result = if have_faults {
            let mut faults = base_faults_ref.clone();
            faults.add_random(args.faults, seed);
            diff_program_faulted_engine(
                &p,
                &presets,
                args.max_cycles,
                args.check_fires,
                &faults,
                args.engine,
            )
        } else if args.source {
            diff_both(&p, &presets, args.max_cycles, args.check_fires)
        } else if args.lanes > 1 {
            diff_program_lanes(
                &p,
                &presets,
                args.max_cycles,
                args.check_fires,
                args.engine,
                args.lanes,
            )
        } else {
            diff_program_engine(&p, &presets, args.max_cycles, args.check_fires, args.engine)
        };
        match result {
            Ok(s) => SeedOutcome {
                seed,
                points: s.points,
                cycles: s.cycles,
                fires: s.fires,
                nodes: s.nodes,
                remaps: s.remaps,
                infeasible: s.infeasible,
                failure: None,
            },
            Err(d) => SeedOutcome {
                seed,
                points: 0,
                cycles: 0,
                fires: 0,
                nodes: 0,
                remaps: 0,
                infeasible: 0,
                failure: Some(d.to_string()),
            },
        }
    });
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    let failures: Vec<&SeedOutcome> = outcomes.iter().filter(|o| o.failure.is_some()).collect();
    let total_points: usize = outcomes.iter().map(|o| o.points).sum();
    let total_cycles: u64 = outcomes.iter().map(|o| o.cycles).sum();
    let total_fires: u64 = outcomes.iter().map(|o| o.fires).sum();

    for f in &failures {
        eprintln!(
            "fuzz_stack: seed {} DIVERGED: {}",
            f.seed,
            f.failure.as_deref().unwrap_or("")
        );
        if args.do_shrink {
            // Reproduce under the same damage the seed originally saw.
            let mut seed_faults = base_faults.clone();
            seed_faults.add_random(args.faults, f.seed);
            let still_fails = |q: &marionette_fuzzgen::Program| {
                if have_faults {
                    diff_program_faulted_engine(
                        q,
                        &presets,
                        args.max_cycles,
                        args.check_fires,
                        &seed_faults,
                        args.engine,
                    )
                    .err()
                } else if args.source {
                    diff_both(q, &presets, args.max_cycles, args.check_fires).err()
                } else if args.lanes > 1 {
                    diff_program_lanes(
                        q,
                        &presets,
                        args.max_cycles,
                        args.check_fires,
                        args.engine,
                        args.lanes,
                    )
                    .err()
                } else {
                    diff_program_engine(q, &presets, args.max_cycles, args.check_fires, args.engine)
                        .err()
                }
            };
            let full = generate(f.seed, &cfg);
            let small = shrink(&full, 4000, |q| still_fails(q).is_some());
            let d = still_fails(&small).expect("shrunk case still fails");
            let path = format!("{}/shrunk_seed{}.txt", args.corpus_dir, f.seed);
            let mut text = small.to_text();
            text.insert_str(
                0,
                &format!(
                    "# seed {} ({} stmts -> {}): {d}\n",
                    f.seed,
                    full.stmt_count(),
                    small.stmt_count()
                ),
            );
            if let Err(e) = std::fs::create_dir_all(&args.corpus_dir)
                .and_then(|()| std::fs::write(&path, &text))
            {
                eprintln!("fuzz_stack: writing {path}: {e}");
            } else {
                eprintln!("fuzz_stack: shrunk reproducer written to {path}");
            }
            eprintln!("{text}");
        }
    }

    if let Some(path) = &args.json {
        let mut j = String::new();
        j.push_str("{\n");
        j.push_str("  \"schema\": \"marionette.fuzz_stack/v1\",\n");
        j.push_str(&format!("  \"start\": {},\n", args.start));
        j.push_str(&format!("  \"count\": {},\n", args.count));
        j.push_str(&format!(
            "  \"presets\": [{}],\n",
            presets
                .iter()
                .map(|a| format!("\"{}\"", a.short))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        j.push_str(&format!("  \"fabric\": \"{}\",\n", args.fabric));
        j.push_str(&format!("  \"threads\": {threads},\n"));
        match args.search {
            Some((m, r)) => j.push_str(&format!(
                "  \"search\": {{\"moves\": {m}, \"restarts\": {r}}},\n"
            )),
            None => j.push_str("  \"search\": null,\n"),
        }
        j.push_str(&format!("  \"source_axis\": {},\n", args.source));
        j.push_str(&format!("  \"engine\": \"{}\",\n", args.engine));
        j.push_str(&format!("  \"lanes\": {},\n", args.lanes));
        j.push_str(&format!("  \"faults\": {},\n", args.faults));
        j.push_str(&format!(
            "  \"pinned_faults\": [{}],\n",
            args.fault_specs
                .iter()
                .map(|s| format!("\"{}\"", json_escape(s)))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        j.push_str(&format!(
            "  \"remaps\": {},\n",
            outcomes.iter().map(|o| o.remaps).sum::<usize>()
        ));
        j.push_str(&format!(
            "  \"remap_infeasible\": {},\n",
            outcomes.iter().map(|o| o.infeasible).sum::<usize>()
        ));
        j.push_str(&format!("  \"programs\": {},\n", outcomes.len()));
        j.push_str(&format!("  \"points\": {total_points},\n"));
        j.push_str(&format!("  \"sim_cycles\": {total_cycles},\n"));
        j.push_str(&format!("  \"sim_fires\": {total_fires},\n"));
        j.push_str(&format!("  \"divergences\": {},\n", failures.len()));
        j.push_str(&format!("  \"wall_ms\": {wall_ms:.3},\n"));
        j.push_str("  \"failed_seeds\": [\n");
        for (i, f) in failures.iter().enumerate() {
            j.push_str(&format!(
                "    {{\"seed\": {}, \"detail\": \"{}\"}}{}\n",
                f.seed,
                json_escape(f.failure.as_deref().unwrap_or("")),
                if i + 1 == failures.len() { "" } else { "," }
            ));
        }
        j.push_str("  ]\n}\n");
        if let Err(e) = std::fs::write(path, &j) {
            eprintln!("fuzz_stack: writing {path}: {e}");
        }
    }

    let mean_nodes = if outcomes.is_empty() {
        0.0
    } else {
        outcomes.iter().map(|o| o.nodes).sum::<usize>() as f64 / outcomes.len() as f64
    };
    let fault_note = if have_faults {
        format!(
            ", {} remaps, {} remap-infeasible",
            outcomes.iter().map(|o| o.remaps).sum::<usize>(),
            outcomes.iter().map(|o| o.infeasible).sum::<usize>()
        )
    } else {
        String::new()
    };
    let lane_note = if args.lanes > 1 {
        format!(" x {} lanes", args.lanes)
    } else {
        String::new()
    };
    println!(
        "fuzz_stack: {} programs x {} presets on {} ({} engine{}) = {} points, {} sim cycles, ~{:.0} nodes/program, {} divergences{}, {:.1} ms ({} threads)",
        outcomes.len(),
        presets.len(),
        args.fabric,
        args.engine,
        lane_note,
        total_points,
        total_cycles,
        mean_nodes,
        failures.len(),
        fault_note,
        wall_ms,
        threads
    );
    if !failures.is_empty() {
        std::process::exit(1);
    }
}
