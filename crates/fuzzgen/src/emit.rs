//! Lowers a fuzz [`Program`] into a [`Cdfg`] through the structured
//! builder API, so every generated program is well-formed by construction.
//!
//! ## Determinism discipline
//!
//! The reference interpreter is only a specification when the program is
//! a deterministic Kahn network; shared memory breaks that unless every
//! potentially-conflicting access pair is ordered by a data dependence.
//! The emitter therefore threads one *ordering token* per state array
//! through the whole program:
//!
//! - a `load` of a state array consumes the token as its dependence and
//!   its result becomes the new token (reads ordered);
//! - a `store` consumes the token and its completion token becomes the
//!   new token (writes ordered after everything before them);
//! - loops carry every state token as a loop variable (the RMW idiom of
//!   the histogram kernels) and branches merge them like any other value.
//!
//! Read-only input arrays need no ordering and are loaded without
//! dependence tokens.

use crate::ast::{Operand, Program, Stmt};
use marionette_cdfg::builder::{CdfgBuilder, V};
use marionette_cdfg::op::ArrayId;
use marionette_cdfg::value::Value;
use marionette_cdfg::Cdfg;

struct ArrayCtx {
    id: ArrayId,
    mask: i32,
    /// Index into the token vector, for state arrays.
    token_slot: Option<usize>,
}

struct Ctx {
    arrays: Vec<ArrayCtx>,
    /// Indices (into `arrays`) of the state arrays, for store selectors.
    state: Vec<usize>,
}

fn resolve(b: &mut CdfgBuilder, env: &[V], o: &Operand) -> V {
    match o {
        Operand::Imm(v) => b.imm(Value::I32(*v)),
        Operand::Ref(k) => env[*k as usize % env.len()],
    }
}

/// Emits a block; pushes each statement's values onto `env` and updates
/// `tokens` (one slot per state array) in place.
fn emit_block(b: &mut CdfgBuilder, stmts: &[Stmt], env: &mut Vec<V>, tokens: &mut [V], cx: &Ctx) {
    for s in stmts {
        match s {
            Stmt::Bin { op, a, b: rhs } => {
                let x = resolve(b, env, a);
                let y = resolve(b, env, rhs);
                let v = b.bin(*op, x, y);
                env.push(v);
            }
            Stmt::Un { op, a } => {
                let x = resolve(b, env, a);
                let v = b.un(*op, x);
                env.push(v);
            }
            Stmt::Nl { op, a } => {
                let x = resolve(b, env, a);
                let v = b.nl(*op, x);
                env.push(v);
            }
            Stmt::Mux { p, t, f } => {
                let pv = resolve(b, env, p);
                // Force a 0/1 predicate so no poison can reach steers in
                // dropping mode (Unit/float operands coerce via != 0).
                let pred = b.ne(pv, 0.into());
                let tv = resolve(b, env, t);
                let fv = resolve(b, env, f);
                let v = b.mux(pred, tv, fv);
                env.push(v);
            }
            Stmt::Load { arr, idx } => {
                let a = &cx.arrays[*arr as usize % cx.arrays.len()];
                let iv = resolve(b, env, idx);
                let masked = b.and_(iv, a.mask.into());
                let v = match a.token_slot {
                    Some(slot) => {
                        let tok = tokens[slot];
                        let v = b.load_dep(a.id, masked, tok);
                        tokens[slot] = v; // the read is the new ordering witness
                        v
                    }
                    None => b.load(a.id, masked),
                };
                env.push(v);
            }
            Stmt::Store { arr, idx, val } => {
                let ai = cx.state[*arr as usize % cx.state.len()];
                let a = &cx.arrays[ai];
                let slot = a.token_slot.expect("state array has a token");
                let iv = resolve(b, env, idx);
                let masked = b.and_(iv, a.mask.into());
                let vv = resolve(b, env, val);
                let tok = tokens[slot];
                let t = b.store_dep(a.id, masked, vv, tok);
                tokens[slot] = t;
            }
            Stmt::For {
                lo,
                span,
                step,
                inits,
                body,
            } => {
                let lo_raw = resolve(b, env, lo);
                let lo_v = b.and_(lo_raw, 7.into());
                let hi_v = b.add(lo_v, ((span % 8) as i32).into());
                let mut all_inits: Vec<V> = inits.iter().map(|o| resolve(b, env, o)).collect();
                let ndata = all_inits.len();
                all_inits.extend(tokens.iter().copied());
                let step_i = (*step).clamp(1, 3) as i32;
                let env_snapshot = env.clone();
                let outs = b.for_range_step(lo_v, hi_v, step_i, &all_inits, |b, i, vars| {
                    let mut env2 = env_snapshot;
                    env2.push(i);
                    env2.extend_from_slice(&vars[..ndata]);
                    let base = env2.len();
                    let mut tokens2 = vars[ndata..].to_vec();
                    emit_block(b, body, &mut env2, &mut tokens2, cx);
                    let pushed = &env2[base..];
                    let mut next: Vec<V> = (0..ndata)
                        .map(|k| {
                            if pushed.is_empty() {
                                // Body produced nothing: still advance the
                                // carried value so rates stay consistent.
                                b.add(vars[k], ((k as i32) + 1).into())
                            } else {
                                pushed[k % pushed.len()]
                            }
                        })
                        .collect();
                    next.extend(tokens2);
                    next
                });
                env.extend_from_slice(&outs[..ndata]);
                tokens.copy_from_slice(&outs[ndata..]);
            }
            Stmt::While {
                start,
                dec,
                inits,
                body,
            } => {
                let s_raw = resolve(b, env, start);
                let c0 = b.and_(s_raw, 15.into());
                let mut all_inits: Vec<V> = vec![c0];
                all_inits.extend(inits.iter().map(|o| resolve(b, env, o)));
                let ndata = all_inits.len(); // counter + data vars
                all_inits.extend(tokens.iter().copied());
                let dec_i = (*dec).clamp(1, 3) as i32;
                let env_snapshot = env.clone();
                let outs = b.loop_while(
                    &all_inits,
                    |b, vals| b.gt(vals[0], 0.into()),
                    |b, vals| {
                        let mut env2 = env_snapshot;
                        env2.extend_from_slice(&vals[..ndata]);
                        let base = env2.len();
                        let mut tokens2 = vals[ndata..].to_vec();
                        emit_block(b, body, &mut env2, &mut tokens2, cx);
                        let pushed = &env2[base..];
                        // The counter strictly decreases: termination is
                        // structural, whatever the body computes.
                        let cnt = b.sub(vals[0], dec_i.into());
                        let mut next: Vec<V> = vec![cnt];
                        next.extend((1..ndata).map(|k| {
                            if pushed.is_empty() {
                                vals[k]
                            } else {
                                pushed[k % pushed.len()]
                            }
                        }));
                        next.extend(tokens2);
                        next
                    },
                );
                env.extend_from_slice(&outs[..ndata]);
                tokens.copy_from_slice(&outs[ndata..]);
            }
            Stmt::If {
                p,
                results,
                then_b,
                else_b,
            } => {
                let p_raw = resolve(b, env, p);
                let masked = b.and_(p_raw, 3.into());
                let pred = b.ne(masked, 0.into());
                let nres = *results as usize;
                let env_then = env.clone();
                let env_else = env.clone();
                let tok_then = tokens.to_vec();
                let tok_else = tokens.to_vec();
                fn side(
                    b: &mut CdfgBuilder,
                    body: &[Stmt],
                    mut env2: Vec<V>,
                    mut tokens2: Vec<V>,
                    nres: usize,
                    cx: &Ctx,
                ) -> Vec<V> {
                    let base = env2.len();
                    emit_block(b, body, &mut env2, &mut tokens2, cx);
                    let pushed = &env2[base..];
                    let mut rv: Vec<V> = (0..nres)
                        .map(|k| {
                            if pushed.is_empty() {
                                env2[k % env2.len()]
                            } else {
                                pushed[k % pushed.len()]
                            }
                        })
                        .collect();
                    rv.extend(tokens2);
                    rv
                }
                let outs = b.if_else(
                    pred,
                    |b| side(b, then_b, env_then, tok_then, nres, cx),
                    |b| side(b, else_b, env_else, tok_else, nres, cx),
                );
                env.extend_from_slice(&outs[..nres]);
                tokens.copy_from_slice(&outs[nres..]);
            }
        }
    }
}

/// Emits the program as a validated CDFG.
///
/// # Panics
/// Panics if the program violates [`Program::check`] invariants (callers
/// generate or parse programs, both of which enforce them).
pub fn emit(p: &Program) -> Cdfg {
    p.check().expect("well-formed fuzz program");
    let mut b = CdfgBuilder::new(p.name.clone());
    let mut arrays = Vec::with_capacity(p.arrays.len());
    let mut state = Vec::new();
    let mut nstate = 0usize;
    for (i, a) in p.arrays.iter().enumerate() {
        let id = b.array_i32(&a.name, a.len as usize, &a.init);
        let token_slot = if a.state {
            b.mark_output(id);
            state.push(i);
            nstate += 1;
            Some(nstate - 1)
        } else {
            None
        };
        arrays.push(ArrayCtx {
            id,
            mask: (a.len as i32) - 1,
            token_slot,
        });
    }
    let cx = Ctx { arrays, state };
    // Environment seeds: a few immediates so `Ref` operands always have
    // something to bite on even in an empty program.
    let mut env: Vec<V> = vec![b.imm(5), b.imm(-3), b.imm(12)];
    let seed_count = env.len();
    let mut tokens: Vec<V> = (0..nstate).map(|_| b.start_token()).collect();
    emit_block(&mut b, &p.body, &mut env, &mut tokens, &cx);
    // Collect every top-level value and the final state tokens: they are
    // the program outputs the differential check compares (alongside the
    // final contents of the state arrays).
    for (k, v) in env[seed_count..].iter().enumerate() {
        b.sink(&format!("r{k}"), *v);
    }
    for (k, t) in tokens.iter().enumerate() {
        b.sink(&format!("tok{k}"), *t);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{ArraySpec, Operand, Stmt};
    use marionette_cdfg::interp::{interpret, ExecMode};
    use marionette_cdfg::op::BinOp;

    fn tiny() -> Program {
        Program {
            name: "emit_t".into(),
            arrays: vec![
                ArraySpec {
                    name: "a0".into(),
                    len: 8,
                    init: vec![3, 1, 4, 1, 5, 9, 2, 6],
                    state: false,
                },
                ArraySpec {
                    name: "s0".into(),
                    len: 8,
                    init: vec![],
                    state: true,
                },
            ],
            body: vec![Stmt::For {
                lo: Operand::Imm(0),
                span: 6,
                step: 1,
                inits: vec![Operand::Imm(0)],
                body: vec![
                    Stmt::Load {
                        arr: 0,
                        idx: Operand::Ref(3), // the loop index
                    },
                    Stmt::Bin {
                        op: BinOp::Add,
                        a: Operand::Ref(4),
                        b: Operand::Ref(5),
                    },
                    Stmt::Store {
                        arr: 0,
                        idx: Operand::Ref(3),
                        val: Operand::Ref(6),
                    },
                ],
            }],
        }
    }

    #[test]
    fn emits_valid_graph() {
        let g = emit(&tiny());
        assert!(g.validate().is_empty(), "{:?}", g.validate());
        assert_eq!(g.loops.len(), 1);
        assert!(g.arrays.iter().any(|a| a.is_output));
    }

    #[test]
    fn both_interp_modes_agree_and_quiesce() {
        let g = emit(&tiny());
        let d = interpret(&g, ExecMode::Dropping, &[]).expect("dropping quiesces");
        let p = interpret(&g, ExecMode::Predicated, &[]).expect("predicated quiesces");
        let sid = g.array_by_name("s0").unwrap();
        assert_eq!(d.memory.array(sid), p.memory.array(sid));
        assert_eq!(d.memory.oob_events(), 0, "masked indices stay in bounds");
    }

    #[test]
    fn empty_program_still_has_sinks() {
        let p = Program {
            name: "empty".into(),
            arrays: vec![ArraySpec {
                name: "s0".into(),
                len: 4,
                init: vec![],
                state: true,
            }],
            body: vec![],
        };
        let g = emit(&p);
        let r = interpret(&g, ExecMode::Dropping, &[]).unwrap();
        assert_eq!(r.sinks.len(), 1, "state token sinked");
    }
}
