//! Test-case shrinking: greedily apply one-step reductions while the
//! caller's failure predicate keeps reproducing.
//!
//! Because operand references resolve modulo the environment size, every
//! reduction below preserves well-formedness by construction — the
//! shrinker never needs to repair references:
//!
//! - delete any single statement;
//! - replace a loop or branch with its (flattened) body;
//! - shrink numeric fields (trip spans, while decrements, branch result
//!   counts) toward their minimum.

use crate::ast::{Program, Stmt};

/// All programs reachable from `p` by one reduction step, smallest-effect
/// first (statement deletions before structure flattening before field
/// tweaks keeps the search fast on typical failures).
pub fn reductions(p: &Program) -> Vec<Program> {
    let mut out = Vec::new();
    // 1. Delete each statement (at any nesting).
    for idx in 0..locate_count(&p.body) {
        let mut q = p.clone();
        edit_at(&mut q.body, idx, &mut |list, i| {
            list.remove(i);
        });
        out.push(q);
    }
    // 2. Flatten each compound statement into its body (hoisting an if
    //    side is legal anywhere; hoisting a loop body is legal because
    //    loops never sit inside branch sides).
    for idx in 0..locate_count(&p.body) {
        let mut q = p.clone();
        let mut changed = false;
        edit_at(&mut q.body, idx, &mut |list, i| match list[i].clone() {
            Stmt::For { body, .. } | Stmt::While { body, .. } => {
                list.splice(i..=i, body);
                changed = true;
            }
            Stmt::If { then_b, else_b, .. } => {
                let side = if then_b.is_empty() { else_b } else { then_b };
                list.splice(i..=i, side);
                changed = true;
            }
            _ => {}
        });
        if changed {
            // Flattening an if side may move a loop into a branch if the
            // *parent* was a branch — impossible (sides are loop-free),
            // but re-check to stay robust against future AST growth.
            if q.check().is_ok() {
                out.push(q);
            }
        }
    }
    // 3. Shrink numeric fields.
    for idx in 0..locate_count(&p.body) {
        let mut q = p.clone();
        let mut changed = false;
        edit_at(&mut q.body, idx, &mut |list, i| match &mut list[i] {
            Stmt::For { span, step, .. } => {
                if *span > 0 {
                    *span /= 2;
                    changed = true;
                } else if *step > 1 {
                    *step = 1;
                    changed = true;
                }
            }
            Stmt::While { dec, .. } if *dec < 3 => {
                *dec = 3; // faster termination = fewer iterations
                changed = true;
            }
            Stmt::If { results, .. } if *results > 1 => {
                *results -= 1;
                changed = true;
            }
            _ => {}
        });
        if changed {
            out.push(q);
        }
    }
    // 4. Drop a trailing array (never the last state array).
    if p.arrays.len() > 1 {
        for i in 0..p.arrays.len() {
            let mut q = p.clone();
            q.arrays.remove(i);
            if q.check().is_ok() {
                out.push(q);
            }
        }
    }
    out
}

/// Number of editable statement positions (preorder).
fn locate_count(b: &[Stmt]) -> usize {
    b.iter()
        .map(|s| {
            1 + match s {
                Stmt::For { body, .. } | Stmt::While { body, .. } => locate_count(body),
                Stmt::If { then_b, else_b, .. } => locate_count(then_b) + locate_count(else_b),
                _ => 0,
            }
        })
        .sum()
}

/// Applies `f` to the statement list holding preorder position `idx`.
fn edit_at(b: &mut Vec<Stmt>, idx: usize, f: &mut impl FnMut(&mut Vec<Stmt>, usize)) {
    fn rec(b: &mut Vec<Stmt>, idx: &mut usize, f: &mut impl FnMut(&mut Vec<Stmt>, usize)) -> bool {
        let mut i = 0;
        while i < b.len() {
            if *idx == 0 {
                f(b, i);
                return true;
            }
            *idx -= 1;
            let done = match &mut b[i] {
                Stmt::For { body, .. } | Stmt::While { body, .. } => rec(body, idx, f),
                Stmt::If { then_b, else_b, .. } => rec(then_b, idx, f) || rec(else_b, idx, f),
                _ => false,
            };
            if done {
                return true;
            }
            i += 1;
        }
        false
    }
    let mut k = idx;
    rec(b, &mut k, f);
}

/// Greedy shrink: repeatedly takes the first reduction on which
/// `still_fails` reproduces, until no reduction reproduces or `max_steps`
/// candidate evaluations have been spent. Returns the smallest failing
/// program found (possibly `p` itself).
pub fn shrink(
    p: &Program,
    max_steps: usize,
    mut still_fails: impl FnMut(&Program) -> bool,
) -> Program {
    let mut cur = p.clone();
    let mut spent = 0usize;
    'outer: loop {
        for cand in reductions(&cur) {
            spent += 1;
            if spent > max_steps {
                break 'outer;
            }
            if still_fails(&cand) {
                cur = cand;
                continue 'outer;
            }
        }
        break;
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};

    #[test]
    fn reductions_shrink_statement_count() {
        let p = generate(3, &GenConfig::default());
        let n = p.stmt_count();
        for q in reductions(&p) {
            q.check().expect("reductions stay well-formed");
            assert!(
                q.stmt_count() <= n,
                "reduction grew the program: {} -> {}",
                n,
                q.stmt_count()
            );
        }
    }

    #[test]
    fn shrink_converges_on_a_predicate() {
        // Predicate: program still contains at least one store. The
        // shrinker should strip everything else down to very few stmts.
        let p = generate(11, &GenConfig::default());
        fn has_store(b: &[Stmt]) -> bool {
            b.iter().any(|s| match s {
                Stmt::Store { .. } => true,
                Stmt::For { body, .. } | Stmt::While { body, .. } => has_store(body),
                Stmt::If { then_b, else_b, .. } => has_store(then_b) || has_store(else_b),
                _ => false,
            })
        }
        if !has_store(&p.body) {
            return; // seed without stores: nothing to test
        }
        let small = shrink(&p, 10_000, |q| has_store(&q.body));
        assert!(has_store(&small.body));
        assert!(small.stmt_count() <= p.stmt_count());
        assert!(small.stmt_count() <= 3, "shrunk to {}", small.stmt_count());
    }
}
