//! Seeded, deterministic random-program generation.
//!
//! The same `(seed, GenConfig)` pair always yields the same [`Program`],
//! so a failing seed is a complete reproducer. Generation draws from the
//! whole structured vocabulary the builder supports: nested counted and
//! data-dependent loops (zero-trip cases included), branch hammocks up to
//! the configured depth, integer/float/nonlinear arithmetic, selects and
//! token-serialized array traffic.

use crate::ast::{ArraySpec, Operand, Program, Stmt};
use marionette_cdfg::op::{BinOp, NlOp, UnOp};
use rand::{Rng, SeedableRng, StdRng};

/// Size/shape knobs of the generator.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Maximum loop/branch nesting depth below the top level.
    pub max_depth: u32,
    /// Total statement budget per program.
    pub max_stmts: usize,
    /// Read-only input arrays.
    pub inputs: usize,
    /// Read-write state arrays (token-serialized, checked as outputs).
    pub states: usize,
    /// Array length (power of two; indices are masked).
    pub array_len: u32,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_depth: 3,
            max_stmts: 22,
            inputs: 2,
            states: 2,
            array_len: 8,
        }
    }
}

const INT_BINS: &[BinOp] = &[
    BinOp::Add,
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
    BinOp::Rem,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Shl,
    BinOp::Shr,
    BinOp::AShr,
    BinOp::Min,
    BinOp::Max,
    BinOp::Lt,
    BinOp::Le,
    BinOp::Gt,
    BinOp::Ge,
    BinOp::Eq,
    BinOp::Ne,
];

const FLOAT_BINS: &[BinOp] = &[
    BinOp::FAdd,
    BinOp::FSub,
    BinOp::FMul,
    BinOp::FMin,
    BinOp::FMax,
    BinOp::FLt,
    BinOp::FGe,
];

const UNS: &[UnOp] = &[
    UnOp::Not,
    UnOp::Neg,
    UnOp::Abs,
    UnOp::LNot,
    UnOp::I2F,
    UnOp::F2I,
    UnOp::FNeg,
    UnOp::FAbs,
];

const NLS: &[NlOp] = &[
    NlOp::Sigmoid,
    NlOp::Log,
    NlOp::Exp,
    NlOp::Sqrt,
    NlOp::Recip,
    NlOp::Tanh,
];

struct Gen {
    rng: StdRng,
    budget: usize,
}

impl Gen {
    fn operand(&mut self) -> Operand {
        if self.rng.gen_range(0..10) < 7 {
            Operand::Ref(self.rng.gen_range(0u32..64))
        } else {
            Operand::Imm(self.rng.gen_range(-20i32..21))
        }
    }

    /// One random statement; `depth` limits nesting, `in_branch` forbids
    /// loops (only loop-free hammocks are predicable).
    fn stmt(&mut self, depth: u32, in_branch: bool) -> Stmt {
        loop {
            let roll = self.rng.gen_range(0u32..100);
            return match roll {
                0..=29 => {
                    let pool = if self.rng.gen_range(0..8) == 0 {
                        FLOAT_BINS
                    } else {
                        INT_BINS
                    };
                    Stmt::Bin {
                        op: pool[self.rng.gen_range(0..pool.len())],
                        a: self.operand(),
                        b: self.operand(),
                    }
                }
                30..=38 => Stmt::Un {
                    op: UNS[self.rng.gen_range(0..UNS.len())],
                    a: self.operand(),
                },
                39..=41 => Stmt::Nl {
                    op: NLS[self.rng.gen_range(0..NLS.len())],
                    a: self.operand(),
                },
                42..=50 => Stmt::Mux {
                    p: self.operand(),
                    t: self.operand(),
                    f: self.operand(),
                },
                51..=64 => Stmt::Load {
                    arr: self.rng.gen_range(0u32..16),
                    idx: self.operand(),
                },
                65..=74 => Stmt::Store {
                    arr: self.rng.gen_range(0u32..16),
                    idx: self.operand(),
                    val: self.operand(),
                },
                75..=85 if depth > 0 && !in_branch => {
                    let ninits = self.rng.gen_range(1usize..3);
                    let inits = (0..ninits).map(|_| self.operand()).collect();
                    // span 0 (zero-trip) through 7, biased to small trips.
                    let span = self.rng.gen_range(0u32..8);
                    Stmt::For {
                        lo: self.operand(),
                        span,
                        step: self.rng.gen_range(1u32..3),
                        inits,
                        body: self.block(depth - 1, false),
                    }
                }
                86..=90 if depth > 0 && !in_branch => {
                    let ninits = self.rng.gen_range(0usize..3);
                    let inits = (0..ninits).map(|_| self.operand()).collect();
                    Stmt::While {
                        start: self.operand(),
                        dec: self.rng.gen_range(1u32..4),
                        inits,
                        body: self.block(depth - 1, false),
                    }
                }
                91..=99 if depth > 0 => Stmt::If {
                    p: self.operand(),
                    results: self.rng.gen_range(1u32..3),
                    then_b: self.block(depth - 1, true),
                    else_b: self.block(depth - 1, true),
                },
                _ => continue, // structural roll at depth 0: re-roll
            };
        }
    }

    fn block(&mut self, depth: u32, in_branch: bool) -> Vec<Stmt> {
        let want = self.rng.gen_range(1usize..5);
        let mut out = Vec::new();
        for _ in 0..want {
            if self.budget == 0 {
                break;
            }
            self.budget -= 1;
            out.push(self.stmt(depth, in_branch));
        }
        out
    }
}

/// Generates the program for `seed` under `cfg`.
pub fn generate(seed: u64, cfg: &GenConfig) -> Program {
    let mut g = Gen {
        rng: StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(seed)),
        budget: cfg.max_stmts,
    };
    let mut arrays = Vec::new();
    for i in 0..cfg.inputs.max(1) {
        let init: Vec<i32> = (0..cfg.array_len)
            .map(|_| g.rng.gen_range(-50i32..51))
            .collect();
        arrays.push(ArraySpec {
            name: format!("a{i}"),
            len: cfg.array_len,
            init,
            state: false,
        });
    }
    for i in 0..cfg.states.max(1) {
        let init: Vec<i32> = if g.rng.gen_range(0..2) == 0 {
            Vec::new()
        } else {
            (0..cfg.array_len)
                .map(|_| g.rng.gen_range(-9i32..10))
                .collect()
        };
        arrays.push(ArraySpec {
            name: format!("s{i}"),
            len: cfg.array_len,
            init,
            state: true,
        });
    }
    // Top-level: a run of statements with full structural depth.
    let mut body = Vec::new();
    while g.budget > 0 {
        g.budget -= 1;
        body.push(g.stmt(cfg.max_depth, false));
    }
    let p = Program {
        name: format!("fuzz_{seed}"),
        arrays,
        body,
    };
    debug_assert!(p.check().is_ok(), "generator emitted malformed program");
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let cfg = GenConfig::default();
        assert_eq!(generate(7, &cfg), generate(7, &cfg));
        assert_ne!(generate(7, &cfg), generate(8, &cfg));
    }

    #[test]
    fn generated_programs_are_well_formed() {
        let cfg = GenConfig::default();
        for seed in 0..200 {
            let p = generate(seed, &cfg);
            p.check().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(p.stmt_count() <= cfg.max_stmts);
        }
    }

    #[test]
    fn structural_coverage_over_seed_range() {
        // Across a modest seed range the generator must exercise loops,
        // nested loops, branches, whiles and stores.
        let cfg = GenConfig::default();
        let (mut fors, mut whiles, mut ifs, mut nested, mut stores) = (0, 0, 0, 0, 0);
        for seed in 0..100 {
            let p = generate(seed, &cfg);
            fn walk(b: &[Stmt], depth: u32, f: &mut impl FnMut(&Stmt, u32)) {
                for s in b {
                    f(s, depth);
                    match s {
                        Stmt::For { body, .. } | Stmt::While { body, .. } => {
                            walk(body, depth + 1, f)
                        }
                        Stmt::If { then_b, else_b, .. } => {
                            walk(then_b, depth, f);
                            walk(else_b, depth, f);
                        }
                        _ => {}
                    }
                }
            }
            walk(&p.body, 0, &mut |s, d| match s {
                Stmt::For { .. } => {
                    fors += 1;
                    if d > 0 {
                        nested += 1;
                    }
                }
                Stmt::While { .. } => whiles += 1,
                Stmt::If { .. } => ifs += 1,
                Stmt::Store { .. } => stores += 1,
                _ => {}
            });
        }
        assert!(fors > 20, "fors: {fors}");
        assert!(whiles > 5, "whiles: {whiles}");
        assert!(ifs > 20, "ifs: {ifs}");
        assert!(nested > 5, "nested loops: {nested}");
        assert!(stores > 30, "stores: {stores}");
    }

    #[test]
    fn text_roundtrip_on_generated_programs() {
        let cfg = GenConfig::default();
        for seed in 0..50 {
            let p = generate(seed, &cfg);
            let q = Program::parse(&p.to_text()).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(p, q, "seed {seed}");
        }
    }
}
