//! # marionette-fuzzgen
//!
//! Differential fuzzing for the Marionette stack: a seeded generator of
//! random structured-control-flow programs (nested counted and
//! data-dependent loops, branch hammocks, token-serialized memory
//! traffic) that are driven through the **full pipeline** — CDFG build,
//! compile/place/route, configuration-bitstream roundtrip, cycle-level
//! simulation — on every architecture preset, and checked bit-for-bit
//! against the sequential reference interpreter.
//!
//! The paper's correctness claim is exactly this equivalence: the control
//! flow plane must execute arbitrary structured control flow identically
//! to sequential semantics. The 13 hand-written kernels sample that
//! space; this crate enumerates it.
//!
//! - [`gen::generate`] — deterministic program per `(seed, GenConfig)`;
//! - [`emit::emit`] — lowering through `cdfg::builder` (well-formed by
//!   construction, Kahn-deterministic memory via ordering tokens);
//! - [`diff::diff_program`] — interp-vs-sim differential check;
//! - [`source::to_mar`] / [`source::diff_source`] — the second
//!   differential axis: every fuzz program is also emitted as `.mar`
//!   source, re-lowered through the `marionette-lang` front end
//!   (lexer → parser → sema → lowering), and must compute bit-identical
//!   results to the direct builder path;
//! - [`shrink::shrink`] — greedy reducer for failing cases;
//! - `corpus/` — committed regression programs replayed by `cargo test`;
//! - the `fuzz_stack` binary — seed-range sweeps across cores.

#![warn(missing_docs)]

pub mod ast;
pub mod diff;
pub mod emit;
pub mod gen;
pub mod shrink;
pub mod source;

pub use ast::Program;
pub use diff::{all_presets, diff_program, DiffStats, Divergence, DivergenceKind};
pub use emit::emit;
pub use gen::{generate, GenConfig};
pub use shrink::shrink;
pub use source::{diff_both, diff_source, to_mar};
