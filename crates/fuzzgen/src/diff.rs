//! Differential execution: one fuzz program through the full stack
//! (build → compile → bitstream roundtrip → cycle-level simulation) on
//! every architecture preset, checked bit-for-bit against the reference
//! interpreter.

use crate::ast::Program;
use crate::emit::emit;
use marionette::sim::{run_lanes_full, EngineKind, FaultSet, LaneSpec};
use marionette_arch::Architecture;
use marionette_cdfg::interp::{interpret_with_budget, ExecMode, InterpResult};
use marionette_cdfg::value::Value;
use marionette_cdfg::Cdfg;
use std::fmt;

/// Firing budget for the reference interpreter (fuzz programs are small).
const INTERP_BUDGET: u64 = 20_000_000;

/// Cycle budget per simulated point.
pub const DEFAULT_MAX_CYCLES: u64 = 20_000_000;

/// All nine evaluated architecture presets on the paper's 4×4 fabric
/// (re-exported from [`marionette_arch::all_presets`], the single source
/// of truth).
pub fn all_presets() -> Vec<Architecture> {
    marionette_arch::all_presets()
}

/// All nine presets instantiated on an explicit fabric geometry, for
/// fuzzing the stack at non-paper array sizes (`fuzz_stack --fabric`).
pub fn all_presets_on(dims: marionette_arch::FabricDims) -> Vec<Architecture> {
    marionette_arch::all_presets_on(dims)
}

/// Resolves preset short tags (e.g. `"M,vN"`) to 4×4 architectures.
///
/// # Errors
/// Returns the unknown tag.
pub fn presets_by_tags(tags: &str) -> Result<Vec<Architecture>, String> {
    marionette_arch::presets_by_tags_on(marionette_arch::FabricDims::paper(), tags)
}

/// What stage of the stack disagreed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DivergenceKind {
    /// The reference interpreter itself failed (generator-invariant bug).
    Interp,
    /// Dropping and predicated interpreter modes disagreed.
    Modes,
    /// Placement/routing failed.
    Compile,
    /// Bitstream roundtrip was lossy.
    Bitstream,
    /// The simulator errored (deadlock/limit).
    Sim,
    /// An output array differed from the interpreter.
    Memory,
    /// A sink stream differed from the interpreter.
    Sinks,
    /// Out-of-bounds counts differed.
    Oob,
    /// Total firing counts differed from the matching interpreter mode.
    Fires,
    /// The `.mar` source round-trip diverged: the emitted source was
    /// rejected by the front end, or the source-lowered graph computed
    /// different values than the direct builder path.
    Source,
}

impl fmt::Display for DivergenceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DivergenceKind::Interp => "interp",
            DivergenceKind::Modes => "modes",
            DivergenceKind::Compile => "compile",
            DivergenceKind::Bitstream => "bitstream",
            DivergenceKind::Sim => "sim",
            DivergenceKind::Memory => "memory",
            DivergenceKind::Sinks => "sinks",
            DivergenceKind::Oob => "oob",
            DivergenceKind::Fires => "fires",
            DivergenceKind::Source => "source",
        };
        f.write_str(s)
    }
}

/// One interp-vs-sim disagreement, precise enough to reproduce.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Preset short tag (empty for preset-independent failures).
    pub preset: String,
    /// Failing stage.
    pub kind: DivergenceKind,
    /// Human-readable detail (first mismatch, error text, ...).
    pub detail: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.preset.is_empty() {
            write!(f, "[{}] {}", self.kind, self.detail)
        } else {
            write!(f, "[{} on {}] {}", self.kind, self.preset, self.detail)
        }
    }
}

/// Aggregate counters for one fully-checked program.
#[derive(Clone, Debug, Default)]
pub struct DiffStats {
    /// Presets simulated.
    pub points: usize,
    /// Total simulated cycles across presets.
    pub cycles: u64,
    /// Total simulated firings across presets.
    pub fires: u64,
    /// Dataflow nodes in the emitted CDFG.
    pub nodes: usize,
    /// Fault-wedged points healed by a fault-aware remap.
    pub remaps: usize,
    /// Fault-wedged points whose remap could not fit on the surviving
    /// fabric (a typed, accepted outcome — not a divergence).
    pub infeasible: usize,
}

/// Differentially checks `p` on `presets`.
///
/// The dropping-mode interpretation is the specification; each preset's
/// simulation (on the bitstream-decoded program) must match it bit for
/// bit in final array memory, every sink stream, and out-of-bounds
/// counts. Total firing counts must match the interpreter running in the
/// preset's own steering mode (predicated presets fire both branch
/// sides).
///
/// # Errors
/// Returns the first [`Divergence`] in preset order.
pub fn diff_program(
    p: &Program,
    presets: &[Architecture],
    max_cycles: u64,
    check_fires: bool,
) -> Result<DiffStats, Divergence> {
    diff_program_engine(p, presets, max_cycles, check_fires, EngineKind::default())
}

/// [`diff_program`] with an explicit simulator [`EngineKind`] — the
/// `fuzz_stack --engine` axis. Both engines must match the interpreter
/// (and therefore each other) bit for bit.
///
/// # Errors
/// Returns the first [`Divergence`] in preset order.
pub fn diff_program_engine(
    p: &Program,
    presets: &[Architecture],
    max_cycles: u64,
    check_fires: bool,
    engine: EngineKind,
) -> Result<DiffStats, Divergence> {
    let g = emit(p);
    let reference = interp_pair(&g)?;
    let mut stats = DiffStats {
        nodes: g.nodes.len(),
        ..DiffStats::default()
    };
    check_presets_engine(
        &g,
        &reference,
        presets,
        max_cycles,
        check_fires,
        engine,
        &mut stats,
    )?;
    Ok(stats)
}

/// Lane-batched differential check — the `fuzz_stack --lanes` axis.
///
/// Each preset compiles once and simulates `lanes` identical workloads
/// of the bitstream in one batched [`marionette::sim::run_lanes`] pass;
/// **every** lane must match the reference interpretation bit for bit
/// and report the same cycle count, pinning that machine reuse across
/// lanes (reset instead of rebuild) leaks no state between them.
///
/// # Errors
/// Returns the first [`Divergence`] in preset order; lane-specific
/// failures name the lane in the detail.
pub fn diff_program_lanes(
    p: &Program,
    presets: &[Architecture],
    max_cycles: u64,
    check_fires: bool,
    engine: EngineKind,
    lanes: usize,
) -> Result<DiffStats, Divergence> {
    let g = emit(p);
    let pair = interp_pair(&g)?;
    let mut stats = DiffStats {
        nodes: g.nodes.len(),
        ..DiffStats::default()
    };
    let inputs: Vec<(String, Vec<Value>)> = g
        .arrays
        .iter()
        .map(|a| (a.name.clone(), a.init.clone()))
        .collect();
    let specs = vec![
        LaneSpec {
            inputs: inputs.clone(),
            params: Vec::new(),
        };
        lanes.max(1)
    ];
    for arch in presets {
        let fail = |kind: DivergenceKind, detail: String| Divergence {
            preset: arch.short.to_string(),
            kind,
            detail,
        };
        let (prog, _) = marionette::compiler::compile_with_timing(&g, &arch.opts, &arch.tm)
            .map_err(|e| fail(DivergenceKind::Compile, e.to_string()))?;
        let bytes = marionette::isa::bitstream::encode(&prog);
        let prog = marionette::isa::bitstream::decode(&bytes)
            .map_err(|e| fail(DivergenceKind::Bitstream, e.to_string()))?;
        let results = run_lanes_full(
            &prog,
            &arch.tm,
            &FaultSet::none(),
            engine,
            &specs,
            max_cycles,
        )
        .map_err(|e| fail(DivergenceKind::Sim, e.to_string()))?;
        let mut lane0_cycles = None;
        for (li, r) in results.into_iter().enumerate() {
            let r = r.map_err(|e| fail(DivergenceKind::Sim, format!("lane {li}: {e}")))?;
            verify_point(&g, &pair, arch, &prog, &r, check_fires).map_err(|mut d| {
                d.detail = format!("lane {li}: {}", d.detail);
                d
            })?;
            match lane0_cycles {
                None => lane0_cycles = Some(r.stats.cycles),
                Some(c) if c != r.stats.cycles => {
                    return Err(fail(
                        DivergenceKind::Sim,
                        format!("lane {li} took {} cycles, lane 0 took {c}", r.stats.cycles),
                    ));
                }
                Some(_) => {}
            }
            stats.cycles += r.stats.cycles;
            stats.fires += r.stats.fires;
        }
        stats.points += 1;
    }
    Ok(stats)
}

/// Both interpreter steering modes of one graph, cross-checked.
pub(crate) struct RefPair {
    /// Dropping-mode interpretation (the specification).
    pub dropping: InterpResult,
    /// Predicated-mode interpretation (for firing-count checks).
    pub predicated: InterpResult,
}

/// Interprets `g` in both modes and cross-checks them ([`DivergenceKind::Modes`]).
pub(crate) fn interp_pair(g: &Cdfg) -> Result<RefPair, Divergence> {
    let dropping = interp(g, ExecMode::Dropping)?;
    let predicated = interp(g, ExecMode::Predicated)?;
    // The two steering semantics must agree before we even reach the
    // machine: this is the cheapest cross-check and localizes bugs to the
    // operator semantics rather than the timing machinery.
    compare_results(g, &dropping, &predicated).map_err(|d| Divergence {
        preset: String::new(),
        kind: DivergenceKind::Modes,
        detail: d,
    })?;
    Ok(RefPair {
        dropping,
        predicated,
    })
}

/// Runs `g` through compile → bitstream → simulate on each preset and
/// bit-compares against the reference pair, accumulating into `stats`.
pub(crate) fn check_presets(
    g: &Cdfg,
    pair: &RefPair,
    presets: &[Architecture],
    max_cycles: u64,
    check_fires: bool,
    stats: &mut DiffStats,
) -> Result<(), Divergence> {
    check_presets_engine(
        g,
        pair,
        presets,
        max_cycles,
        check_fires,
        EngineKind::default(),
        stats,
    )
}

/// [`check_presets`] on an explicit simulator engine.
pub(crate) fn check_presets_engine(
    g: &Cdfg,
    pair: &RefPair,
    presets: &[Architecture],
    max_cycles: u64,
    check_fires: bool,
    engine: EngineKind,
    stats: &mut DiffStats,
) -> Result<(), Divergence> {
    let inputs: Vec<(String, Vec<Value>)> = g
        .arrays
        .iter()
        .map(|a| (a.name.clone(), a.init.clone()))
        .collect();
    for arch in presets {
        let fail = |kind: DivergenceKind, detail: String| Divergence {
            preset: arch.short.to_string(),
            kind,
            detail,
        };
        // `compile_with_timing`: identical to `compile` when the preset's
        // search budget is off, and the timing-derived cost model (the
        // same one `runner::run_kernel` uses) when fuzzing with the
        // mapping explorer enabled.
        let (prog, _) = marionette::compiler::compile_with_timing(g, &arch.opts, &arch.tm)
            .map_err(|e| fail(DivergenceKind::Compile, e.to_string()))?;
        // Full-stack fidelity: simulate the decoded bitstream.
        let bytes = marionette::isa::bitstream::encode(&prog);
        let prog = marionette::isa::bitstream::decode(&bytes)
            .map_err(|e| fail(DivergenceKind::Bitstream, e.to_string()))?;
        let r = marionette::sim::run_with_engine(&prog, &arch.tm, engine, &inputs, &[], max_cycles)
            .map_err(|e| fail(DivergenceKind::Sim, e.to_string()))?;
        verify_point(g, pair, arch, &prog, &r, check_fires)?;
        stats.points += 1;
        stats.cycles += r.stats.cycles;
        stats.fires += r.stats.fires;
    }
    Ok(())
}

/// Bit-compares one preset's simulation against the reference pair:
/// every array, every sink stream, out-of-bounds counts and (optionally)
/// total firings in the preset's own steering mode.
fn verify_point(
    g: &Cdfg,
    pair: &RefPair,
    arch: &Architecture,
    prog: &marionette::isa::MachineProgram,
    r: &marionette::sim::RunResult,
    check_fires: bool,
) -> Result<(), Divergence> {
    let reference = &pair.dropping;
    let fail = |kind: DivergenceKind, detail: String| Divergence {
        preset: arch.short.to_string(),
        kind,
        detail,
    };
    // Arrays: every declared array, bit for bit.
    for arr in &g.arrays {
        let id = g.array_by_name(&arr.name).expect("declared");
        let expect = reference.memory.array(id);
        let got = r.array(prog, &arr.name).ok_or_else(|| {
            fail(
                DivergenceKind::Memory,
                format!("array {} missing", arr.name),
            )
        })?;
        if let Some(m) = stream_mismatch(expect, got) {
            return Err(fail(
                DivergenceKind::Memory,
                format!("array {}{m}", arr.name),
            ));
        }
    }
    // Sinks: same label set, same streams in arrival order.
    if let Err(d) = compare_sinks(&reference.sinks, &r.sinks) {
        return Err(fail(DivergenceKind::Sinks, d));
    }
    if r.oob_events != reference.memory.oob_events() {
        return Err(fail(
            DivergenceKind::Oob,
            format!(
                "interp {} oob events, sim {}",
                reference.memory.oob_events(),
                r.oob_events
            ),
        ));
    }
    if check_fires {
        let expect = if arch.tm.predicated_branches {
            pair.predicated.firings
        } else {
            reference.firings
        };
        if r.stats.fires != expect {
            return Err(fail(
                DivergenceKind::Fires,
                format!("interp fired {expect}, sim fired {}", r.stats.fires),
            ));
        }
    }
    Ok(())
}

/// Differentially checks `p` on `presets` with `faults` injected into
/// every simulation, exercising the self-healing remap loop: a
/// fault-oblivious bitstream that touches a dead resource is recompiled
/// with the faulty resources masked (annealing explorer forced on) and
/// the remap must still match the reference interpreter bit for bit.
/// Flaky links may stretch cycles but never change values.
///
/// A remap that cannot fit on the surviving fabric is the typed,
/// accepted outcome counted in [`DiffStats::infeasible`] — only the
/// original healthy compile failing is a [`DivergenceKind::Compile`].
///
/// # Errors
/// Returns the first [`Divergence`] in preset order.
pub fn diff_program_faulted(
    p: &Program,
    presets: &[Architecture],
    max_cycles: u64,
    check_fires: bool,
    faults: &marionette::sim::FaultSet,
) -> Result<DiffStats, Divergence> {
    diff_program_faulted_engine(
        p,
        presets,
        max_cycles,
        check_fires,
        faults,
        EngineKind::default(),
    )
}

/// [`diff_program_faulted`] with an explicit simulator [`EngineKind`] —
/// faulted runs (including the far-future events flaky links schedule)
/// must be engine-independent too.
///
/// # Errors
/// Returns the first [`Divergence`] in preset order.
pub fn diff_program_faulted_engine(
    p: &Program,
    presets: &[Architecture],
    max_cycles: u64,
    check_fires: bool,
    faults: &marionette::sim::FaultSet,
    engine: EngineKind,
) -> Result<DiffStats, Divergence> {
    let g = emit(p);
    let pair = interp_pair(&g)?;
    let mut stats = DiffStats {
        nodes: g.nodes.len(),
        ..DiffStats::default()
    };
    let inputs: Vec<(String, Vec<Value>)> = g
        .arrays
        .iter()
        .map(|a| (a.name.clone(), a.init.clone()))
        .collect();
    for arch in presets {
        let fail = |kind: DivergenceKind, detail: String| Divergence {
            preset: arch.short.to_string(),
            kind,
            detail,
        };
        let (prog, _) = marionette::compiler::compile_with_timing(&g, &arch.opts, &arch.tm)
            .map_err(|e| fail(DivergenceKind::Compile, e.to_string()))?;
        let bytes = marionette::isa::bitstream::encode(&prog);
        let prog = marionette::isa::bitstream::decode(&bytes)
            .map_err(|e| fail(DivergenceKind::Bitstream, e.to_string()))?;
        let r = match marionette::sim::run_full(
            &prog,
            &arch.tm,
            faults,
            engine,
            &inputs,
            &[],
            max_cycles,
        ) {
            Ok(r) => r,
            Err(marionette::sim::SimError::Fault { .. }) => {
                // Wedged: re-map around the faults, explorer forced on.
                let mut opts = arch.opts;
                if !opts.search.is_on() {
                    opts.search = marionette::compiler::SearchBudget::default_on();
                }
                let prog2 = match marionette::compiler::compile_with_timing_and_faults(
                    &g, &opts, &arch.tm, faults,
                ) {
                    Ok((p2, _)) => p2,
                    Err(_) => {
                        // Typed remap-infeasible: accepted, not a divergence.
                        stats.infeasible += 1;
                        continue;
                    }
                };
                let bytes = marionette::isa::bitstream::encode(&prog2);
                let prog2 = marionette::isa::bitstream::decode(&bytes)
                    .map_err(|e| fail(DivergenceKind::Bitstream, e.to_string()))?;
                let r2 = marionette::sim::run_full(
                    &prog2,
                    &arch.tm,
                    faults,
                    engine,
                    &inputs,
                    &[],
                    max_cycles,
                )
                .map_err(|e| fail(DivergenceKind::Sim, format!("after remap: {e}")))?;
                verify_point(&g, &pair, arch, &prog2, &r2, check_fires)?;
                stats.remaps += 1;
                stats.points += 1;
                stats.cycles += r2.stats.cycles;
                stats.fires += r2.stats.fires;
                continue;
            }
            Err(e) => return Err(fail(DivergenceKind::Sim, e.to_string())),
        };
        verify_point(&g, &pair, arch, &prog, &r, check_fires)?;
        stats.points += 1;
        stats.cycles += r.stats.cycles;
        stats.fires += r.stats.fires;
    }
    Ok(stats)
}

fn interp(g: &Cdfg, mode: ExecMode) -> Result<InterpResult, Divergence> {
    interpret_with_budget(g, mode, &[], INTERP_BUDGET).map_err(|e| Divergence {
        preset: String::new(),
        kind: DivergenceKind::Interp,
        detail: format!("{mode:?}: {e}"),
    })
}

// The shared bit-comparison primitives live next to `Value` itself.
pub(crate) use marionette_cdfg::value::{compare_sink_maps as compare_sinks, stream_mismatch};

/// Interp-mode cross-check: arrays and sinks bit-identical.
fn compare_results(g: &Cdfg, a: &InterpResult, b: &InterpResult) -> Result<(), String> {
    for arr in &g.arrays {
        let id = g.array_by_name(&arr.name).expect("declared");
        if let Some(m) = stream_mismatch(a.memory.array(id), b.memory.array(id)) {
            return Err(format!("array {} (dropping vs predicated){m}", arr.name));
        }
    }
    compare_sinks(&a.sinks, &b.sinks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};

    #[test]
    fn presets_resolve_by_tag() {
        assert_eq!(all_presets().len(), 9);
        let sel = presets_by_tags("M,vN,DF").unwrap();
        assert_eq!(sel.len(), 3);
        assert!(presets_by_tags("nope").is_err());
    }

    #[test]
    fn a_few_seeds_diff_clean_on_the_ladder() {
        let cfg = GenConfig::default();
        let presets = presets_by_tags("M,vN").unwrap();
        for seed in 0..6 {
            let p = generate(seed, &cfg);
            let stats = diff_program(&p, &presets, DEFAULT_MAX_CYCLES, true)
                .unwrap_or_else(|d| panic!("seed {seed}: {d}"));
            assert_eq!(stats.points, 2);
            assert!(stats.nodes > 0);
        }
    }
}
