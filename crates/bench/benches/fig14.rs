//! Criterion bench regenerating the Fig 14 ablation (Agile PE Assignment)
//! on the imperfect-loop kernel it targets (GEMM).

use criterion::{criterion_group, criterion_main, Criterion};
use marionette::kernels::traits::Scale;
use marionette::runner::run_kernel;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig14");
    g.sample_size(10);
    for arch in [
        marionette::arch::marionette_cn(),
        marionette::arch::marionette_full(),
    ] {
        let k = marionette::kernels::by_short("GEMM").unwrap();
        g.bench_function(format!("gemm/{}", arch.short), |b| {
            b.iter(|| {
                run_kernel(k.as_ref(), &arch, Scale::Tiny, 1, 1_000_000_000)
                    .unwrap()
                    .cycles
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
