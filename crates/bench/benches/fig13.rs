//! Criterion bench of the Fig 13 network models: Benes routing across the
//! stage counts the delay study sweeps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use marionette::net::Benes;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig13");
    for n in [16usize, 64, 256] {
        let net = Benes::new(n);
        let perm: Vec<usize> = (0..n).map(|i| (i * 7 + 3) % n).collect();
        // (i*7+3) mod n is a permutation when gcd(7, n) == 1 (n power of 2).
        g.bench_with_input(BenchmarkId::new("benes_route", n), &perm, |b, p| {
            b.iter(|| net.route(p).unwrap())
        });
    }
    g.bench_function("delay_study", |b| {
        b.iter(marionette::hw::netdelay::paper_sweep)
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
