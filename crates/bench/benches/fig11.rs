//! Criterion bench regenerating the Fig 11 comparison (vN / dataflow /
//! Marionette PE) on a representative kernel at reduced scale.

use criterion::{criterion_group, criterion_main, Criterion};
use marionette::kernels::traits::Scale;
use marionette::runner::run_kernel;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11");
    g.sample_size(10);
    for arch in [
        marionette::arch::von_neumann_pe(),
        marionette::arch::dataflow_pe(),
        marionette::arch::marionette_pe(),
    ] {
        let k = marionette::kernels::by_short("MS").unwrap();
        g.bench_function(format!("merge_sort/{}", arch.short), |b| {
            b.iter(|| {
                run_kernel(k.as_ref(), &arch, Scale::Tiny, 1, 1_000_000_000)
                    .unwrap()
                    .cycles
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
