//! Criterion bench of the table-generation paths: Table 1 profiling,
//! Table 4 breakdown and Table 6 comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use marionette::cdfg::analysis::profile;
use marionette::hw::breakdown::{area_power_breakdown, FabricParams};
use marionette::hw::netcmp::network_comparison;
use marionette::kernels::traits::Scale;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.bench_function("table1_profiles", |b| {
        let graphs: Vec<_> = marionette::kernels::all()
            .iter()
            .map(|k| k.build(&k.workload(Scale::Tiny, 0)).expect("kernel builds"))
            .collect();
        b.iter(|| graphs.iter().map(profile).count())
    });
    g.bench_function("table4_breakdown", |b| {
        b.iter(|| area_power_breakdown(FabricParams::paper()))
    });
    g.bench_function("table6_network_comparison", |b| b.iter(network_comparison));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
