//! Criterion bench pairing the two ablations of Fig 16 on a
//! network-leaning kernel (ADPCM) and a pipeline-leaning kernel (SCD).

use criterion::{criterion_group, criterion_main, Criterion};
use marionette::kernels::traits::Scale;
use marionette::runner::run_kernel;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig16");
    g.sample_size(10);
    for tag in ["ADPCM", "SCD"] {
        for arch in [
            marionette::arch::marionette_pe(),
            marionette::arch::marionette_cn(),
            marionette::arch::marionette_full(),
        ] {
            let k = marionette::kernels::by_short(tag).unwrap();
            g.bench_function(format!("{tag}/{}", arch.short), |b| {
                b.iter(|| {
                    run_kernel(k.as_ref(), &arch, Scale::Tiny, 1, 1_000_000_000)
                        .unwrap()
                        .cycles
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
