//! Criterion bench regenerating the Fig 12 ablation (control network) on
//! the kernel it helps most (CRC).

use criterion::{criterion_group, criterion_main, Criterion};
use marionette::kernels::traits::Scale;
use marionette::runner::run_kernel;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12");
    g.sample_size(10);
    for arch in [
        marionette::arch::marionette_pe(),
        marionette::arch::marionette_cn(),
    ] {
        let k = marionette::kernels::by_short("CRC").unwrap();
        g.bench_function(format!("crc/{}", arch.short), |b| {
            b.iter(|| {
                run_kernel(k.as_ref(), &arch, Scale::Tiny, 1, 1_000_000_000)
                    .unwrap()
                    .cycles
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
