//! Criterion bench of the Fig 15 utilization measurement path (stats
//! collection on an agile run).

use criterion::{criterion_group, criterion_main, Criterion};
use marionette::kernels::traits::Scale;
use marionette::runner::run_kernel;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig15");
    g.sample_size(10);
    let k = marionette::kernels::by_short("HT").unwrap();
    let arch = marionette::arch::marionette_full();
    g.bench_function("hough_utilization_run", |b| {
        b.iter(|| {
            let r = run_kernel(k.as_ref(), &arch, Scale::Tiny, 1, 1_000_000_000).unwrap();
            (r.stats.mean_pe_utilization(), r.cycles)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
