//! Criterion bench regenerating the Fig 17 face-off on LDPC (the paper's
//! full-application case study).

use criterion::{criterion_group, criterion_main, Criterion};
use marionette::kernels::traits::Scale;
use marionette::runner::run_kernel;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig17");
    g.sample_size(10);
    let mut archs = marionette::arch::all_sota();
    archs.push(marionette::arch::marionette_full());
    for arch in archs {
        let k = marionette::kernels::by_short("LDPC").unwrap();
        g.bench_function(format!("ldpc/{}", arch.short), |b| {
            b.iter(|| {
                run_kernel(k.as_ref(), &arch, Scale::Tiny, 1, 1_000_000_000)
                    .unwrap()
                    .cycles
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
