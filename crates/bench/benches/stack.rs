//! Criterion bench of the stack's own throughput: CDFG construction,
//! interpretation, compilation, bitstream round trip and simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use marionette::cdfg::interp::{interpret, ExecMode};
use marionette::compiler::{compile, CompileOptions};
use marionette::kernels::traits::Scale;
use marionette::sim::{run, TimingModel};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("stack");
    let k = marionette::kernels::by_short("CRC").unwrap();
    let wl = k.workload(Scale::Tiny, 0);
    g.bench_function("build_cdfg", |b| b.iter(|| k.build(&wl)));
    let graph = k.build(&wl).expect("kernel builds");
    g.bench_function("interpret", |b| {
        b.iter(|| interpret(&graph, ExecMode::Dropping, &[]).unwrap().firings)
    });
    g.bench_function("compile", |b| {
        b.iter(|| {
            compile(&graph, &CompileOptions::marionette_4x4())
                .unwrap()
                .1
                .routes
        })
    });
    let (prog, _) = compile(&graph, &CompileOptions::marionette_4x4()).unwrap();
    g.bench_function("bitstream_roundtrip", |b| {
        b.iter(|| {
            let bytes = marionette::isa::bitstream::encode(&prog);
            marionette::isa::bitstream::decode(&bytes)
                .unwrap()
                .nodes
                .len()
        })
    });
    let inputs: Vec<(String, Vec<marionette::cdfg::Value>)> = graph
        .arrays
        .iter()
        .map(|a| (a.name.clone(), a.init.clone()))
        .collect();
    let tm = TimingModel::ideal("m");
    g.bench_function("simulate", |b| {
        b.iter(|| {
            run(&prog, &tm, &inputs, &[], 100_000_000)
                .unwrap()
                .stats
                .cycles
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
