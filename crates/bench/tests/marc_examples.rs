//! Golden end-to-end tests for the committed `examples/*.mar` programs:
//! each example is pushed through the full `marc` pipeline (parse →
//! check → lower → compile → bitstream round-trip → simulate) on **all
//! nine architecture presets**, the simulation is verified bit-for-bit
//! against the reference interpreter, and the program's *meaning* is
//! pinned against an independent golden model (the kernel crate's CRC
//! reference, `sort()`, and a direct convolution).

use marionette::cdfg::value::Value;
use marionette::kernels::crc::crc32_reference;
use marionette_lang::driver::{frontend, reference, run_preset, Reference, INTERP_BUDGET};
use marionette_lang::Diagnostic;

const MAX_CYCLES: u64 = 100_000_000;

fn example(name: &str) -> String {
    let path = format!("{}/../../examples/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
}

fn render_all(src: &str, ds: &[Diagnostic]) -> String {
    ds.iter()
        .map(|d| d.render("example", src))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Front end + reference + all nine presets, bit-verified.
fn run_everywhere(name: &str) -> (marionette::cdfg::Cdfg, Reference) {
    let src = example(name);
    let (_, g) = frontend(&src).unwrap_or_else(|e| match e {
        marionette_lang::DriverError::Sema(ds) => {
            panic!("{name}: {}", render_all(&src, &ds))
        }
        other => panic!("{name}: {other}"),
    });
    let r = reference(&g, &[], INTERP_BUDGET).unwrap_or_else(|e| panic!("{name}: {e}"));
    let presets = marionette::arch::all_presets();
    assert_eq!(presets.len(), 9);
    for arch in &presets {
        let run = run_preset(&g, &r, arch, &[], MAX_CYCLES, false)
            .unwrap_or_else(|e| panic!("{name} on {}: {e}", arch.short));
        assert!(run.cycles > 0, "{name} on {}: empty run", arch.short);
    }
    (g, r)
}

fn i32_array(g: &marionette::cdfg::Cdfg, r: &Reference, name: &str) -> Vec<i32> {
    let id = g
        .array_by_name(name)
        .unwrap_or_else(|| panic!("array {name}"));
    r.dropping
        .memory
        .array(id)
        .iter()
        .map(|v| v.as_i32().unwrap_or_else(|| panic!("{name}: non-i32 {v}")))
        .collect()
}

#[test]
fn crc_example_matches_the_kernel_reference_on_all_presets() {
    let (_, r) = run_everywhere("crc.mar");
    // The message committed in the example: bytes of "12345678".
    let msg: Vec<i32> = b"12345678".iter().map(|&b| b as i32).collect();
    assert_eq!(
        r.dropping.sinks["crc"],
        vec![Value::I32(crc32_reference(&msg))],
        "crc.mar disagrees with kernels::crc::crc32_reference"
    );
}

#[test]
fn mergesort_example_sorts_on_all_presets() {
    let (g, r) = run_everywhere("mergesort.mar");
    let got = i32_array(&g, &r, "data");
    let mut expect = vec![42, -7, 19, 3, -25, 88, 0, 11];
    expect.sort_unstable();
    assert_eq!(got, expect, "mergesort.mar left data unsorted");
}

#[test]
fn conv1d_example_matches_a_direct_convolution_on_all_presets() {
    let (g, r) = run_everywhere("conv1d.mar");
    let x: [i32; 12] = [3, -1, 4, 1, -5, 9, 2, -6, 5, 3, -5, 8];
    let w: [i32; 4] = [2, -3, 1, 4];
    let expect: Vec<i32> = (0..8)
        .map(|i| (0..4).map(|t| x[i + t].wrapping_mul(w[t])).sum())
        .collect();
    assert_eq!(i32_array(&g, &r, "y"), expect, "conv1d.mar wrong output");
}

#[test]
fn examples_survive_the_mapping_explorer() {
    // A small annealing budget on the full Marionette preset: searched
    // placements must stay bit-correct too.
    let src = example("crc.mar");
    let (_, g) = frontend(&src).unwrap();
    let r = reference(&g, &[], INTERP_BUDGET).unwrap();
    let mut arch = marionette::arch::marionette_full();
    arch.opts.search = marionette::compiler::SearchBudget::Anneal {
        moves: 150,
        restarts: 1,
        base_seed: 7,
    };
    let run = run_preset(&g, &r, &arch, &[], MAX_CYCLES, false).unwrap();
    assert!(run.search.is_some(), "search report missing");
}
