//! Usage-error conformance for the bench binaries: duplicate flags,
//! conflicting flags, and out-of-range values must exit 2 with a
//! diagnostic on stderr — never panic, never silently last-win.

use std::process::{Command, Output};

fn run(bin: &str, args: &[&str]) -> Output {
    Command::new(bin)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("spawn {bin}: {e}"))
}

fn assert_usage_error(out: &Output, needle: &str, ctx: &str) {
    assert_eq!(
        out.status.code(),
        Some(2),
        "{ctx}: expected exit 2, got {:?}\nstderr: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains(needle),
        "{ctx}: stderr missing `{needle}`:\n{stderr}"
    );
}

const BENCH_SIM: &str = env!("CARGO_BIN_EXE_bench_sim");
const MARC: &str = env!("CARGO_BIN_EXE_marc");
const FAULT_SWEEP: &str = env!("CARGO_BIN_EXE_fault_sweep");
const LOADGEN: &str = env!("CARGO_BIN_EXE_loadgen");
const TRACE_DIFF: &str = env!("CARGO_BIN_EXE_trace_diff");

#[test]
fn bench_sim_rejects_duplicate_engine() {
    let out = run(BENCH_SIM, &["--engine", "wheel", "--engine", "heap"]);
    assert_usage_error(&out, "duplicate flag `--engine`", "bench_sim dup engine");
}

#[test]
fn bench_sim_rejects_duplicate_lanes_and_zero_lanes() {
    let out = run(BENCH_SIM, &["--lanes", "2", "--lanes", "4"]);
    assert_usage_error(&out, "duplicate flag `--lanes`", "bench_sim dup lanes");
    let out = run(BENCH_SIM, &["--lanes", "0"]);
    assert_usage_error(&out, "--lanes needs a count >= 1", "bench_sim lanes 0");
}

#[test]
fn bench_sim_rejects_conflicting_replay_without_check() {
    let out = run(BENCH_SIM, &["--replay", "fresh.json"]);
    assert_usage_error(&out, "--replay only makes sense", "bench_sim replay alone");
}

#[test]
fn bench_sim_allows_repeated_fault_specs() {
    // `--fault` accumulates; a bogus spec proves parsing got past the
    // duplicate check to per-spec validation (still exit 2, different
    // message).
    let out = run(BENCH_SIM, &["--fault", "pe:0,0", "--fault", "bogus"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !stderr.contains("duplicate flag"),
        "repeated --fault must not be a duplicate error: {stderr}"
    );
}

#[test]
fn marc_rejects_duplicate_engine_and_json() {
    let out = run(MARC, &["--engine", "wheel", "--engine", "heap", "x.mar"]);
    assert_usage_error(&out, "duplicate flag `--engine`", "marc dup engine");
    let out = run(MARC, &["--json", "a.json", "--json", "b.json", "x.mar"]);
    assert_usage_error(&out, "duplicate flag `--json`", "marc dup json");
}

#[test]
fn marc_rejects_unknown_flag_and_multiple_files() {
    let out = run(MARC, &["--nope", "x.mar"]);
    assert_usage_error(&out, "unknown flag `--nope`", "marc unknown flag");
    let out = run(MARC, &["a.mar", "b.mar"]);
    assert_usage_error(&out, "more than one input file", "marc two files");
}

#[test]
fn fault_sweep_rejects_duplicate_fabric() {
    let out = run(FAULT_SWEEP, &["--fabric", "4x4", "--fabric", "6x6"]);
    assert_usage_error(&out, "duplicate flag `--fabric`", "fault_sweep dup fabric");
}

#[test]
fn fault_sweep_rejects_unknown_argument() {
    let out = run(FAULT_SWEEP, &["--fault-count", "3"]);
    assert_usage_error(&out, "unknown argument", "fault_sweep typo'd flag");
}

#[test]
fn bench_sim_trace_flags_are_audited() {
    let out = run(
        BENCH_SIM,
        &[
            "--trace",
            "a.json",
            "--trace",
            "b.json",
            "--trace-point",
            "CRC:M",
        ],
    );
    assert_usage_error(&out, "duplicate flag `--trace`", "bench_sim dup trace");
    let out = run(BENCH_SIM, &["--trace", "a.json"]);
    assert_usage_error(&out, "--trace needs --trace-point", "bench_sim trace alone");
    let out = run(BENCH_SIM, &["--trace-point", "CRC:M"]);
    assert_usage_error(
        &out,
        "--trace-point only makes sense with --trace",
        "bench_sim point alone",
    );
    let out = run(BENCH_SIM, &["--trace", "a.json", "--trace-point", "CRC"]);
    assert_usage_error(&out, "wants KERNEL:PRESET", "bench_sim point no colon");
    let out = run(BENCH_SIM, &["--trace", "a.json", "--trace-point", "NOPE:M"]);
    assert_usage_error(&out, "not a kernel tag", "bench_sim point bad kernel");
    let out = run(
        BENCH_SIM,
        &[
            "--trace",
            "/nonexistent-dir/t.json",
            "--trace-point",
            "CRC:M",
        ],
    );
    assert_usage_error(
        &out,
        "--trace /nonexistent-dir/t.json",
        "bench_sim bad path",
    );
    let out = run(
        BENCH_SIM,
        &[
            "--trace",
            "a.json",
            "--trace-point",
            "CRC:M",
            "--check",
            "b.json",
        ],
    );
    assert_usage_error(
        &out,
        "--trace records a single run",
        "bench_sim trace+check",
    );
}

#[test]
fn fault_sweep_trace_flags_are_audited() {
    let out = run(FAULT_SWEEP, &["--trace", "a.json", "--trace", "b.json"]);
    assert_usage_error(&out, "duplicate flag `--trace`", "fault_sweep dup trace");
    // An unnarrowed sweep has hundreds of points; --trace refuses it.
    let out = run(FAULT_SWEEP, &["--trace", "a.json"]);
    assert_usage_error(
        &out,
        "--trace records one point's run",
        "fault_sweep trace unnarrowed",
    );
    let out = run(
        FAULT_SWEEP,
        &[
            "--trace",
            "/nonexistent-dir/t.json",
            "--kernels",
            "CRC",
            "--presets",
            "M",
            "--fault-counts",
            "0",
        ],
    );
    assert_usage_error(
        &out,
        "--trace /nonexistent-dir/t.json",
        "fault_sweep bad trace path",
    );
}

#[test]
fn marc_rejects_duplicate_trace_and_bad_trace_path() {
    let out = run(MARC, &["--trace", "a.json", "--trace", "b.json", "x.mar"]);
    assert_usage_error(&out, "duplicate flag `--trace`", "marc dup trace");
    let out = run(
        MARC,
        &[
            "--trace",
            "/nonexistent-dir/t.json",
            "--presets",
            "M",
            "x.mar",
        ],
    );
    assert_usage_error(&out, "--trace /nonexistent-dir/t.json", "marc bad path");
}

#[test]
fn trace_diff_rejects_bad_argv_and_unreadable_files() {
    let out = run(TRACE_DIFF, &["a.json"]);
    assert_usage_error(
        &out,
        "expected exactly two trace files",
        "trace_diff one file",
    );
    let out = run(TRACE_DIFF, &["a.json", "b.json", "c.json"]);
    assert_usage_error(
        &out,
        "expected exactly two trace files",
        "trace_diff three files",
    );
    let out = run(
        TRACE_DIFF,
        &["a.json", "b.json", "--limit", "1", "--limit", "2"],
    );
    assert_usage_error(&out, "duplicate flag `--limit`", "trace_diff dup limit");
    let out = run(TRACE_DIFF, &["a.json", "b.json", "--limit", "many"]);
    assert_usage_error(&out, "--limit needs a count", "trace_diff bad limit");
    let out = run(TRACE_DIFF, &["a.json", "b.json", "--nope"]);
    assert_usage_error(&out, "unknown argument `--nope`", "trace_diff unknown flag");
    let out = run(TRACE_DIFF, &["/nonexistent-a.json", "/nonexistent-b.json"]);
    assert_usage_error(
        &out,
        "reading /nonexistent-a.json",
        "trace_diff missing input",
    );
}

#[test]
fn loadgen_rejects_duplicates_and_unknown_flags() {
    let out = run(LOADGEN, &["--requests", "10", "--requests", "20"]);
    assert_usage_error(&out, "duplicate flag `--requests`", "loadgen dup requests");
    let out = run(LOADGEN, &["--nope"]);
    assert_usage_error(&out, "unknown flag `--nope`", "loadgen unknown flag");
}
