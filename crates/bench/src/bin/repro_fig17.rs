//! Fig 17: Marionette vs Softbrain, TIA, REVEL and RipTide across all 13
//! kernels (intensive + non-intensive control flow).

use marionette::experiments::fig17;
use marionette_bench::{report, scale_from_args};

fn main() {
    let f = fig17(scale_from_args(), 1).expect("experiment");
    report::print_fig17(&f);
}
