//! Fig 17: Marionette vs Softbrain, TIA, REVEL and RipTide across all 13
//! kernels (intensive + non-intensive control flow).

use marionette::experiments::fig17;
use marionette_bench::{banner, header, row, scale_from_args};

fn main() {
    banner("Fig 17 — state-of-the-art comparison", "MICRO'23 Fig 17");
    let f = fig17(scale_from_args(), 1).expect("experiment");
    println!("intensive control flow:");
    println!("{}", header("kernel", &f.intensive.kernels));
    for (a, cyc) in &f.intensive.series {
        println!("{}", row(&format!("cycles {a}"), &cyc.iter().map(|&c| c as f64).collect::<Vec<_>>()));
    }
    for a in ["SB", "TIA", "RV", "RT"] {
        println!("{}", row(&format!("speedup M / {a}"), &f.intensive.speedups("M", a)));
    }
    println!("\nnon-intensive control flow (must not regress):");
    println!("{}", header("kernel", &f.non_intensive.kernels));
    for (a, cyc) in &f.non_intensive.series {
        println!("{}", row(&format!("cycles {a}"), &cyc.iter().map(|&c| c as f64).collect::<Vec<_>>()));
    }
    println!("----------------------------------------------------------------");
    let paper = [("SB", 2.88), ("TIA", 3.38), ("RV", 1.55), ("RT", 2.66)];
    for (a, gm) in &f.geomeans {
        let p = paper.iter().find(|(t, _)| t == a).unwrap().1;
        println!("geomean speedup vs {a:<4}: {gm:.2}x   (paper: {p:.2}x)");
    }
    println!("\nfull LDPC application (pre + decode + post):");
    let paper_app = [("SB", 3.01), ("TIA", 3.13), ("RV", 2.36), ("RT", 2.68)];
    for (a, sp) in &f.ldpc_app_speedups {
        let p = paper_app.iter().find(|(t, _)| t == a).unwrap().1;
        println!("speedup vs {a:<4}: {sp:.2}x   (paper: {p:.2}x)");
    }
}
