//! Simulator performance trajectory harness.
//!
//! Runs the full evaluation sweep (every kernel, every architecture
//! preset: the 13-kernel suite + the composite LDPC app, across the
//! vN/DF ladder and the SOTA models) and writes `BENCH_sim.json` with
//! per-point cycle counts and wall-clock times, so successive PRs can
//! track simulator speedups and catch cycle-count regressions.
//!
//! Flags:
//! - `--paper`     use the paper's Table 5 data sizes (default: Small);
//! - `--serial`    run the sweep single-threaded only;
//! - `--compare`   run the sweep twice (serial then parallel) and record
//!   the wall-clock speedup;
//! - `--no-search` skip the mapping-search delta sweep;
//! - `--out PATH`  output path (default `BENCH_sim.json`).
//!
//! Unless `--no-search` is given, every point is additionally compiled
//! with the annealing mapping explorer (`SearchBudget::default_on()`)
//! and re-simulated; each point records `cycles_search` and the summary
//! records the geomean cycle speedup of the searched mappings over the
//! greedy baseline.

use marionette::compiler::SearchBudget;
use marionette::kernels::traits::Scale;
use marionette::parallel::{par_map, sweep_threads};
use marionette::runner::{run_kernel, DEFAULT_MAX_CYCLES};
use std::time::Instant;

const SEED: u64 = 1;

struct Point {
    kernel: String,
    arch: marionette::arch::Architecture,
}

struct Measured {
    kernel: String,
    arch: String,
    cycles: u64,
    fires: u64,
    wall_ms: f64,
    cycles_search: Option<u64>,
}

fn points() -> Vec<Point> {
    let archs = marionette::arch::all_presets();
    let mut tags: Vec<String> = marionette::kernels::all()
        .iter()
        .map(|k| k.short().to_string())
        .collect();
    tags.push("LDPC-APP".to_string());
    tags.iter()
        .flat_map(|kernel| {
            archs.iter().map(move |a| Point {
                kernel: kernel.clone(),
                arch: a.clone(),
            })
        })
        .collect()
}

fn sweep(scale: Scale, threads: usize, search: bool) -> Result<(Vec<Measured>, f64), String> {
    let pts = points();
    let t0 = Instant::now();
    let results = par_map(pts, threads, |p| -> Result<Measured, String> {
        let k = marionette::kernels::by_short(&p.kernel)
            .ok_or_else(|| format!("{}: unknown kernel tag", p.kernel))?;
        // `wall_ms` times the greedy compile+simulate only: it is the
        // cross-PR simulator-throughput metric, and must not absorb the
        // mapping-search compile time of the delta sweep below.
        let t = Instant::now();
        let r = run_kernel(k.as_ref(), &p.arch, scale, SEED, DEFAULT_MAX_CYCLES)
            .map_err(|e| format!("{} on {}: {e}", p.kernel, p.arch.short))?;
        let wall_ms = t.elapsed().as_secs_f64() * 1e3;
        let cycles_search = match search {
            false => None,
            true => {
                let mut searched = p.arch.clone();
                searched.opts.search = SearchBudget::default_on();
                let rs = run_kernel(k.as_ref(), &searched, scale, SEED, DEFAULT_MAX_CYCLES)
                    .map_err(|e| format!("{} on {} (search): {e}", p.kernel, p.arch.short))?;
                Some(rs.cycles)
            }
        };
        Ok(Measured {
            kernel: p.kernel.clone(),
            arch: p.arch.short.to_string(),
            cycles: r.cycles,
            fires: r.stats.fires,
            wall_ms,
            cycles_search,
        })
    });
    let mut measured = Vec::with_capacity(results.len());
    for r in results {
        measured.push(r?);
    }
    Ok((measured, t0.elapsed().as_secs_f64() * 1e3))
}

use marionette::report::json_escape;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match parse_flags(&args) {
        Err(e) => {
            eprintln!("bench_sim: {e}");
            std::process::exit(2);
        }
        Ok(flags) => {
            if let Err(e) = run(flags) {
                eprintln!("bench_sim: {e}");
                std::process::exit(1);
            }
        }
    }
}

struct Flags {
    scale: Scale,
    serial_only: bool,
    compare: bool,
    search: bool,
    out_path: String,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags {
        scale: Scale::Small,
        serial_only: false,
        compare: false,
        search: true,
        out_path: "BENCH_sim.json".to_string(),
    };
    // Single pass: a value consumed by `--out` can never double as a flag.
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--paper" => flags.scale = Scale::Paper,
            "--serial" => flags.serial_only = true,
            "--compare" => flags.compare = true,
            "--no-search" => flags.search = false,
            "--out" => {
                i += 1;
                flags.out_path = match args.get(i) {
                    Some(p) if !p.starts_with("--") => p.clone(),
                    _ => return Err("--out needs a path".to_string()),
                };
            }
            other => {
                return Err(format!(
                    "unknown argument `{other}` (flags: --paper --serial --compare \
                     --no-search --out PATH)"
                ))
            }
        }
        i += 1;
    }
    Ok(flags)
}

fn run(flags: Flags) -> Result<(), String> {
    let Flags {
        scale,
        serial_only,
        compare,
        search,
        out_path,
    } = flags;
    let threads = sweep_threads();

    let mut serial_wall: Option<f64> = None;
    let (points, wall_ms, mode, used_threads) = if serial_only {
        let (p, w) = sweep(scale, 1, search)?;
        (p, w, "serial", 1)
    } else {
        if compare {
            let (_, w) = sweep(scale, 1, search)?;
            serial_wall = Some(w);
        }
        let (p, w) = sweep(scale, threads, search)?;
        (p, w, "parallel", threads)
    };

    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"schema\": \"marionette.bench_sim/v1\",\n");
    j.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        if matches!(scale, Scale::Paper) {
            "paper"
        } else {
            "small"
        }
    ));
    j.push_str(&format!("  \"seed\": {SEED},\n"));
    j.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    j.push_str(&format!("  \"threads\": {used_threads},\n"));
    j.push_str(&format!("  \"total_wall_ms\": {wall_ms:.3},\n"));
    if let Some(sw) = serial_wall {
        j.push_str(&format!("  \"serial_wall_ms\": {sw:.3},\n"));
        j.push_str(&format!("  \"parallel_speedup\": {:.3},\n", sw / wall_ms));
    }
    let speedups: Vec<f64> = points
        .iter()
        .filter_map(|m| m.cycles_search.map(|cs| m.cycles as f64 / cs as f64))
        .collect();
    let search_geomean = marionette::experiments::geomean(&speedups);
    if search {
        let improved = speedups.iter().filter(|&&s| s > 1.0).count();
        let regressed = speedups.iter().filter(|&&s| s < 1.0).count();
        let greedy_wall: f64 = points.iter().map(|m| m.wall_ms).sum();
        if let SearchBudget::Anneal {
            moves, restarts, ..
        } = SearchBudget::default_on()
        {
            j.push_str(&format!(
                "  \"search\": {{\"moves\": {moves}, \"restarts\": {restarts}, \"geomean_speedup\": {search_geomean:.4}, \"improved\": {improved}, \"regressed\": {regressed}}},\n"
            ));
        }
        // Per-point wall_ms times the greedy run only; this sum is the
        // comparable simulator-throughput number across snapshots.
        j.push_str(&format!("  \"greedy_wall_ms\": {greedy_wall:.3},\n"));
    }
    j.push_str("  \"points\": [\n");
    for (i, m) in points.iter().enumerate() {
        let search_field = match m.cycles_search {
            Some(cs) => format!(", \"cycles_search\": {cs}"),
            None => String::new(),
        };
        j.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"arch\": \"{}\", \"cycles\": {}, \"fires\": {}{}, \"wall_ms\": {:.3}}}{}\n",
            json_escape(&m.kernel),
            json_escape(&m.arch),
            m.cycles,
            m.fires,
            search_field,
            m.wall_ms,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    j.push_str("  ]\n}\n");
    std::fs::write(&out_path, &j).map_err(|e| format!("writing {out_path}: {e}"))?;

    let total_cycles: u64 = points.iter().map(|m| m.cycles).sum();
    println!(
        "bench_sim: {} points, {total_cycles} total cycles, {wall_ms:.1} ms wall ({mode}, {used_threads} threads) -> {out_path}",
        points.len()
    );
    if search {
        println!(
            "bench_sim: mapping search geomean cycle speedup {search_geomean:.4} over the greedy baseline"
        );
    }
    if let Some(sw) = serial_wall {
        println!(
            "bench_sim: serial {sw:.1} ms vs parallel {wall_ms:.1} ms = {:.2}x speedup",
            sw / wall_ms
        );
    }
    Ok(())
}
