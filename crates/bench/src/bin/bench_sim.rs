//! Simulator performance trajectory harness.
//!
//! Runs the full evaluation sweep (every kernel, every architecture
//! preset: the 13-kernel suite + the composite LDPC app, across the
//! vN/DF ladder and the SOTA models) and writes `BENCH_sim.json` with
//! per-point cycle counts and wall-clock times, so successive PRs can
//! track simulator speedups and catch cycle-count regressions.
//!
//! Flags:
//! - `--paper`     use the paper's Table 5 data sizes (default: Small);
//! - `--serial`    run the sweep single-threaded only;
//! - `--compare`   run the sweep twice (serial then parallel) and record
//!   the wall-clock speedup;
//! - `--no-search` skip the mapping-search delta sweep;
//! - `--fabric RxC` instantiate the presets on an R×C fabric
//!   (default 4x4);
//! - `--out PATH`  output path (default `BENCH_sim.json`);
//! - `--check BASELINE`  perf-regression gate: run the greedy sweep only
//!   (search implied off) and exit 1 if any per-point `cycles` differs
//!   from the committed BASELINE snapshot, or if the greedy wall clock
//!   regresses more than 25% over it;
//! - `--replay FRESH`  with `--check`: compare an already-written FRESH
//!   snapshot against BASELINE without re-running the sweep (used by CI
//!   to demonstrate the gate on a tampered baseline);
//! - `--wall-tolerance PCT`  wall-regression threshold of the gate
//!   (default 25; the cycle compare is exact regardless — widen this
//!   when baseline and runner are not comparable machines);
//! - `--fault SPEC` (repeatable: `pe:R,C`, `link:R,C-R,C`,
//!   `flaky:R,C-R,C@MULT`) and `--faults N` (seeded-random damage,
//!   `--fault-seed S` to vary it)  inject faults into every simulation;
//!   wedged bitstreams are re-mapped around the damage and bit-verified.
//!   Fault runs imply `--no-search` and refuse `--check` (a damaged
//!   fabric is not comparable to the healthy baseline);
//! - `--engine wheel|heap`  pin the simulator's event-queue core. The
//!   default (and what every committed snapshot records and gates
//!   against) is the event wheel; `--engine heap` measures the reference
//!   core. The gate refuses to compare snapshots from different engines;
//! - `--lanes N`  run each point as N batched lanes (seeds S..S+N) of
//!   one compiled bitstream (`runner::run_kernel_lanes`), recording lane
//!   0's cycles and the whole batch's wall time — the amortized-sweep
//!   mode. Implies `--no-search` and refuses `--check` (an N-lane wall
//!   is not comparable to the single-lane baseline);
//! - `--trace FILE --trace-point KERNEL:PRESET`  skip the sweep and run
//!   the one named point with the cycle tracer attached, writing a
//!   Chrome trace-event JSON (Perfetto-viewable) to FILE. Combines with
//!   `--engine` (heap-vs-wheel trace diffing) and the fault flags
//!   (healthy-vs-remapped); refuses `--check`/`--replay`/`--compare`/
//!   `--serial`/`--lanes`, whose wall-clock semantics a traced run
//!   would distort.
//!
//! Unless `--no-search` is given, every point is additionally compiled
//! with the annealing mapping explorer (`SearchBudget::default_on()`)
//! and re-simulated; each point records `cycles_search` and the summary
//! records the geomean cycle speedup of the searched mappings over the
//! greedy baseline.

use marionette::arch::FabricDims;
use marionette::compiler::SearchBudget;
use marionette::kernels::traits::Scale;
use marionette::parallel::{par_map, sweep_threads};
use marionette::runner::{
    run_kernel, run_kernel_faulted, run_kernel_faulted_traced, run_kernel_lanes_with_engine,
    run_kernel_traced, run_kernel_with_engine, DEFAULT_MAX_CYCLES,
};
use marionette::sim::{EngineKind, FaultSet, Tracer};
use marionette_bench::snapshot;
use std::time::Instant;

const SEED: u64 = 1;

/// Default wall-clock regression threshold of the `--check` gate
/// (override with `--wall-tolerance PCT`). The per-point cycle compare
/// is exact; the wall gate assumes baseline and run come from
/// comparable machines — widen the tolerance when they don't.
const WALL_TOLERANCE: f64 = 0.25;

struct Point {
    kernel: String,
    arch: marionette::arch::Architecture,
}

struct Measured {
    kernel: String,
    arch: String,
    cycles: u64,
    fires: u64,
    wall_ms: f64,
    cycles_search: Option<u64>,
    remapped: bool,
}

fn points(fabric: FabricDims) -> Vec<Point> {
    let archs = marionette::arch::all_presets_on(fabric);
    let mut tags: Vec<String> = marionette::kernels::all()
        .iter()
        .map(|k| k.short().to_string())
        .collect();
    tags.push("LDPC-APP".to_string());
    tags.iter()
        .flat_map(|kernel| {
            archs.iter().map(move |a| Point {
                kernel: kernel.clone(),
                arch: a.clone(),
            })
        })
        .collect()
}

fn sweep(
    scale: Scale,
    threads: usize,
    search: bool,
    fabric: FabricDims,
    faults: &FaultSet,
    engine: EngineKind,
    lanes: usize,
) -> Result<(Vec<Measured>, usize, f64), String> {
    let pts = points(fabric);
    let t0 = Instant::now();
    let results = par_map(pts, threads, |p| -> Result<Option<Measured>, String> {
        let k = marionette::kernels::by_short(&p.kernel)
            .ok_or_else(|| format!("{}: unknown kernel tag", p.kernel))?;
        // `wall_ms` times the greedy compile+simulate only: it is the
        // cross-PR simulator-throughput metric, and must not absorb the
        // mapping-search compile time of the delta sweep below.
        let t = Instant::now();
        // The empty fault set keeps the legacy path (bit-identical
        // anyway, but the throughput metric stays honest).
        let (r, remapped) = if faults.is_empty() && lanes > 1 {
            // Amortized mode: one compile, N verified lanes; the point
            // records lane 0 (seed SEED, same numbers as a 1-lane run)
            // and the batch wall time. Every lane replays the same seed:
            // kernels that bake workload values into immediates (e.g.
            // Conv-1d) are not batchable across seeds, and identical
            // lanes still pin machine-reset isolation — any cross-lane
            // state leak shows up as a lane-i verification mismatch.
            let seeds: Vec<u64> = vec![SEED; lanes];
            let runs = run_kernel_lanes_with_engine(
                k.as_ref(),
                &p.arch,
                scale,
                &seeds,
                DEFAULT_MAX_CYCLES,
                engine,
            )
            .map_err(|e| format!("{} on {}: {e}", p.kernel, p.arch.short))?;
            let mut first = None;
            for (li, r) in runs.into_iter().enumerate() {
                let r =
                    r.map_err(|e| format!("{} on {} lane {li}: {e}", p.kernel, p.arch.short))?;
                if li == 0 {
                    first = Some(r);
                }
            }
            (first.expect("lanes >= 1"), false)
        } else if faults.is_empty() {
            let r = run_kernel_with_engine(
                k.as_ref(),
                &p.arch,
                scale,
                SEED,
                DEFAULT_MAX_CYCLES,
                engine,
            )
            .map_err(|e| format!("{} on {}: {e}", p.kernel, p.arch.short))?;
            (r, false)
        } else {
            match run_kernel_faulted(k.as_ref(), &p.arch, scale, SEED, DEFAULT_MAX_CYCLES, faults) {
                Ok(fr) => (fr.run, fr.remapped),
                // The healthy compile of every shipped point succeeds,
                // so a compile error is the typed remap-infeasible
                // outcome: the point is skipped, not a sweep failure.
                Err(marionette::runner::RunnerError::Compile(_)) => return Ok(None),
                Err(e) => {
                    return Err(format!(
                        "{} on {} with [{faults}]: {e}",
                        p.kernel, p.arch.short
                    ))
                }
            }
        };
        let wall_ms = t.elapsed().as_secs_f64() * 1e3;
        let cycles_search = match search {
            false => None,
            true => {
                let mut searched = p.arch.clone();
                searched.opts.search = SearchBudget::default_on();
                let rs = run_kernel(k.as_ref(), &searched, scale, SEED, DEFAULT_MAX_CYCLES)
                    .map_err(|e| format!("{} on {} (search): {e}", p.kernel, p.arch.short))?;
                Some(rs.cycles)
            }
        };
        Ok(Some(Measured {
            kernel: p.kernel.clone(),
            arch: p.arch.short.to_string(),
            cycles: r.cycles,
            fires: r.stats.fires,
            wall_ms,
            cycles_search,
            remapped,
        }))
    });
    let mut measured = Vec::with_capacity(results.len());
    let mut infeasible = 0usize;
    for r in results {
        match r? {
            Some(m) => measured.push(m),
            None => infeasible += 1,
        }
    }
    Ok((measured, infeasible, t0.elapsed().as_secs_f64() * 1e3))
}

use marionette::report::json_escape;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match parse_flags(&args) {
        Err(e) => {
            eprintln!("bench_sim: {e}");
            std::process::exit(2);
        }
        Ok(flags) => {
            if let Err(e) = run(flags) {
                eprintln!("bench_sim: {e}");
                std::process::exit(1);
            }
        }
    }
}

struct Flags {
    scale: Scale,
    serial_only: bool,
    compare: bool,
    search: bool,
    out_path: String,
    fabric: FabricDims,
    check: Option<String>,
    replay: Option<String>,
    wall_tolerance: f64,
    fault_specs: Vec<String>,
    faults: usize,
    fault_seed: u64,
    engine: EngineKind,
    lanes: usize,
    trace: Option<String>,
    trace_point: Option<String>,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags {
        scale: Scale::Small,
        serial_only: false,
        compare: false,
        search: true,
        out_path: "BENCH_sim.json".to_string(),
        fabric: FabricDims::paper(),
        check: None,
        replay: None,
        wall_tolerance: WALL_TOLERANCE,
        fault_specs: Vec::new(),
        faults: 0,
        fault_seed: 1,
        engine: EngineKind::default(),
        lanes: 1,
        trace: None,
        trace_point: None,
    };
    // Single pass: a value consumed by a flag can never double as a flag.
    // Each flag may appear once (`--fault` excepted: it accumulates) —
    // a repeated flag is a typo'd command line, and silently letting the
    // last occurrence win hides it.
    let mut seen = std::collections::HashSet::new();
    let mut i = 1;
    let value = |args: &[String], i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        match args.get(*i) {
            Some(p) if !p.starts_with("--") => Ok(p.clone()),
            _ => Err(format!("{flag} needs a value")),
        }
    };
    while i < args.len() {
        if args[i] != "--fault" && !seen.insert(args[i].clone()) {
            return Err(format!("duplicate flag `{}`", args[i]));
        }
        match args[i].as_str() {
            "--paper" => flags.scale = Scale::Paper,
            "--serial" => flags.serial_only = true,
            "--compare" => flags.compare = true,
            "--no-search" => flags.search = false,
            "--out" => flags.out_path = value(args, &mut i, "--out")?,
            "--fabric" => {
                flags.fabric = value(args, &mut i, "--fabric")?
                    .parse()
                    .map_err(|e| format!("--fabric: {e}"))?
            }
            "--check" => flags.check = Some(value(args, &mut i, "--check")?),
            "--replay" => flags.replay = Some(value(args, &mut i, "--replay")?),
            "--wall-tolerance" => {
                let v = value(args, &mut i, "--wall-tolerance")?;
                let pct: f64 = v
                    .parse()
                    .map_err(|_| format!("--wall-tolerance: `{v}` is not a percentage"))?;
                if pct < 0.0 || pct.is_nan() {
                    return Err(format!("--wall-tolerance: `{v}` must be >= 0"));
                }
                flags.wall_tolerance = pct / 100.0;
            }
            "--fault" => flags.fault_specs.push(value(args, &mut i, "--fault")?),
            "--faults" => {
                let v = value(args, &mut i, "--faults")?;
                flags.faults = v
                    .parse()
                    .map_err(|_| format!("--faults needs a numeric count, got `{v}`"))?;
            }
            "--fault-seed" => {
                let v = value(args, &mut i, "--fault-seed")?;
                flags.fault_seed = v
                    .parse()
                    .map_err(|_| format!("--fault-seed must be numeric, got `{v}`"))?;
            }
            "--engine" => {
                let v = value(args, &mut i, "--engine")?;
                flags.engine = v.parse().map_err(|e| format!("--engine: {e}"))?;
            }
            "--lanes" => {
                let v = value(args, &mut i, "--lanes")?;
                flags.lanes = match v.parse() {
                    Ok(n) if n >= 1 => n,
                    _ => return Err(format!("--lanes needs a count >= 1, got `{v}`")),
                };
            }
            "--trace" => flags.trace = Some(value(args, &mut i, "--trace")?),
            "--trace-point" => flags.trace_point = Some(value(args, &mut i, "--trace-point")?),
            other => {
                return Err(format!(
                    "unknown argument `{other}` (flags: --paper --serial --compare \
                     --no-search --fabric RxC --out PATH --check BASELINE --replay FRESH \
                     --wall-tolerance PCT --fault SPEC --faults N --fault-seed S \
                     --engine wheel|heap --lanes N --trace FILE --trace-point KERNEL:PRESET)"
                ))
            }
        }
        i += 1;
    }
    if flags.replay.is_some() && flags.check.is_none() {
        return Err("--replay only makes sense with --check BASELINE".to_string());
    }
    // Fault specs are validated against the selected fabric here so a
    // malformed or off-fabric `--fault` is a usage error (exit 2).
    FaultSet::from_cli(
        flags.fabric.rows,
        flags.fabric.cols,
        &flags.fault_specs,
        flags.faults,
        flags.fault_seed,
    )?;
    if flags.faults > 0 || !flags.fault_specs.is_empty() {
        if flags.check.is_some() {
            return Err(
                "--check compares against a healthy baseline; drop the fault flags".to_string(),
            );
        }
        if flags.engine != EngineKind::default() {
            // The self-healing fault path runs the production engine;
            // cross-engine fault equivalence is pinned by the test suite
            // (`engine_equivalence.rs`), not this harness.
            return Err(
                "--engine combines with healthy sweeps only; drop the fault flags".to_string(),
            );
        }
        if flags.lanes > 1 {
            return Err(
                "--lanes combines with healthy sweeps only; drop the fault flags".to_string(),
            );
        }
        // The search delta sweep measures healthy mappings; on a damaged
        // fabric only the (self-healing) greedy sweep is meaningful.
        flags.search = false;
    }
    if flags.lanes > 1 {
        if flags.check.is_some() {
            return Err(
                "--check compares single-lane wall times; drop --lanes for gate runs".to_string(),
            );
        }
        // Lane batching amortizes the greedy sweep; the search delta
        // re-compiles per point and would dominate the measurement.
        flags.search = false;
    }
    match (&flags.trace, &flags.trace_point) {
        (Some(_), None) => {
            return Err("--trace needs --trace-point KERNEL:PRESET to name the run".to_string())
        }
        (None, Some(_)) => {
            return Err("--trace-point only makes sense with --trace FILE".to_string())
        }
        (Some(path), Some(point)) => {
            if flags.check.is_some() || flags.replay.is_some() || flags.compare || flags.serial_only
            {
                return Err(
                    "--trace records a single run; drop --check/--replay/--compare/--serial"
                        .to_string(),
                );
            }
            if flags.lanes > 1 {
                return Err("--trace records a single-lane run; drop --lanes".to_string());
            }
            // Resolve the point and open the file now so a typo'd
            // selector or an unwritable path is a usage error (exit 2),
            // not a mid-run failure.
            resolve_trace_point(point, flags.fabric)?;
            std::fs::File::create(path).map_err(|e| format!("--trace {path}: {e}"))?;
        }
        (None, None) => {}
    }
    if let Some(base) = &flags.check {
        // The gate compares greedy cycle counts: the search delta sweep
        // would only add wall time without entering the comparison.
        flags.search = false;
        // Writing the fresh snapshot over the baseline would make the
        // gate compare the run against itself (and destroy the committed
        // reference) — the baseline is loaded before the sweep runs
        // regardless, but an identical path is always a mistake.
        if flags.replay.is_none() && *base == flags.out_path {
            return Err(format!(
                "--check {base} would be overwritten by --out {}; pass a different --out",
                flags.out_path
            ));
        }
    }
    Ok(flags)
}

/// Resolves a `--trace-point KERNEL:PRESET` selector (kernel tags are
/// matched case-insensitively, like `fault_sweep --kernels`) to the
/// canonical kernel tag and the one architecture it names.
fn resolve_trace_point(
    point: &str,
    fabric: FabricDims,
) -> Result<(String, marionette::arch::Architecture), String> {
    let (ktag, ptag) = point
        .split_once(':')
        .ok_or_else(|| format!("--trace-point wants KERNEL:PRESET (e.g. CRC:M), got `{point}`"))?;
    let mut tags: Vec<String> = marionette::kernels::all()
        .iter()
        .map(|k| k.short().to_string())
        .collect();
    tags.push("LDPC-APP".to_string());
    let tag = tags
        .iter()
        .find(|t| t.eq_ignore_ascii_case(ktag))
        .ok_or_else(|| format!("--trace-point: `{ktag}` is not a kernel tag"))?
        .clone();
    let mut archs = marionette::arch::presets_by_tags_on(fabric, ptag)
        .map_err(|e| format!("--trace-point: {e}"))?;
    if archs.len() != 1 {
        return Err(format!(
            "--trace-point: `{ptag}` selects {} presets; name exactly one",
            archs.len()
        ));
    }
    Ok((tag, archs.remove(0)))
}

/// A parsed baseline (or replay) snapshot with its sweep metadata.
struct Snapshot {
    points: Vec<snapshot::BenchPoint>,
    wall_ms: f64,
    scale: String,
    fabric: String,
    engine: String,
}

/// Loads a `bench_sim` snapshot file up front — before anything is
/// written — so the gate always compares against the pre-run contents.
fn load_snapshot(path: &str) -> Result<Snapshot, String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let points = snapshot::parse_points(&json).map_err(|e| format!("parsing {path}: {e}"))?;
    let wall_ms = snapshot::greedy_wall_ms(&json, &points);
    let meta = |key: &str, default: &str| {
        json.lines()
            .find_map(|l| snapshot::field_str(l, key))
            .unwrap_or_else(|| default.to_string())
    };
    Ok(Snapshot {
        points,
        wall_ms,
        scale: meta("scale", "small"),
        // Snapshots written before the fabric axis existed are 4×4.
        fabric: meta("fabric", "4x4"),
        // Snapshots written before the engine selector existed were
        // measured on the pre-wheel heap core — but their cycle counts
        // are engine-independent, and the wheel has been the default
        // since it landed, so missing means "wheel" for gate purposes.
        engine: meta("engine", "wheel"),
    })
}

/// The `--check` gate: compares fresh greedy points against the
/// pre-loaded baseline snapshot. Refuses incomparable runs (different
/// scale or fabric) with a single clear error instead of 126 bogus
/// per-point violations.
#[allow(clippy::too_many_arguments)]
fn run_gate(
    baseline_path: &str,
    base: &Snapshot,
    fresh: &[snapshot::BenchPoint],
    fresh_wall_ms: f64,
    fresh_scale: &str,
    fresh_fabric: &str,
    fresh_engine: &str,
    wall_tolerance: f64,
) -> Result<(), String> {
    if (base.scale.as_str(), base.fabric.as_str()) != (fresh_scale, fresh_fabric) {
        return Err(format!(
            "baseline {baseline_path} is scale={} fabric={}, this run is scale={fresh_scale} fabric={fresh_fabric} — not comparable",
            base.scale, base.fabric
        ));
    }
    if base.engine != fresh_engine {
        return Err(format!(
            "baseline {baseline_path} was measured on the {} engine, this run on {fresh_engine} — wall times are not comparable",
            base.engine
        ));
    }
    let violations = snapshot::check_against_baseline(
        &base.points,
        base.wall_ms,
        fresh,
        fresh_wall_ms,
        wall_tolerance,
    );
    if violations.is_empty() {
        println!(
            "bench_check: {} points match {baseline_path} bit for bit, greedy wall {fresh_wall_ms:.1} ms vs baseline {:.1} ms (gate <= +{:.0}%)",
            fresh.len(),
            base.wall_ms,
            wall_tolerance * 100.0
        );
        return Ok(());
    }
    for v in &violations {
        eprintln!("bench_check: {v}");
    }
    Err(format!(
        "{} regression(s) against {baseline_path}",
        violations.len()
    ))
}

fn run(flags: Flags) -> Result<(), String> {
    let Flags {
        scale,
        serial_only,
        compare,
        search,
        out_path,
        fabric,
        check,
        replay,
        wall_tolerance,
        fault_specs,
        faults,
        fault_seed,
        engine,
        lanes,
        trace,
        trace_point,
    } = flags;
    let faults = FaultSet::from_cli(fabric.rows, fabric.cols, &fault_specs, faults, fault_seed)
        .expect("validated by parse_flags");

    // Trace mode: one named point with the cycle recorder attached, no
    // sweep (tracing perturbs the wall times the snapshot tracks).
    if let (Some(path), Some(point)) = (&trace, &trace_point) {
        let (tag, arch) = resolve_trace_point(point, fabric).expect("validated by parse_flags");
        let k = marionette::kernels::by_short(&tag).expect("tag from the registry");
        let mut tracer = Tracer::new();
        let t = Instant::now();
        let (r, remapped) = if faults.is_empty() {
            let r = run_kernel_traced(
                k.as_ref(),
                &arch,
                scale,
                SEED,
                DEFAULT_MAX_CYCLES,
                engine,
                &mut tracer,
            )
            .map_err(|e| format!("{tag} on {}: {e}", arch.short))?;
            (r, false)
        } else {
            let fr = run_kernel_faulted_traced(
                k.as_ref(),
                &arch,
                scale,
                SEED,
                DEFAULT_MAX_CYCLES,
                &faults,
                engine,
                &mut tracer,
            )
            .map_err(|e| format!("{tag} on {} with [{faults}]: {e}", arch.short))?;
            (fr.run, fr.remapped)
        };
        let wall_ms = t.elapsed().as_secs_f64() * 1e3;
        std::fs::write(path, tracer.to_chrome_json())
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!(
            "bench_sim: traced {tag} on {}: {} cycles, {} fires{}, {wall_ms:.1} ms -> {} trace events in {path}",
            arch.short,
            r.cycles,
            r.stats.fires,
            if remapped { " (remapped)" } else { "" },
            tracer.len()
        );
        return Ok(());
    }

    // The baseline is loaded before the sweep runs (and before anything
    // is written), so the gate always compares against the pre-run file.
    let baseline = match &check {
        Some(path) => Some(load_snapshot(path)?),
        None => None,
    };

    // --check --replay: compare two already-written snapshots without
    // re-running the sweep (CI uses this to demonstrate the gate).
    if let (Some(base_path), Some(fresh_path)) = (&check, &replay) {
        let base = baseline.as_ref().expect("loaded above");
        let fresh = load_snapshot(fresh_path)?;
        return run_gate(
            base_path,
            base,
            &fresh.points,
            fresh.wall_ms,
            &fresh.scale,
            &fresh.fabric,
            &fresh.engine,
            wall_tolerance,
        );
    }

    // Refuse an incomparable gate run before spending a sweep on it.
    let scale_name = if matches!(scale, Scale::Paper) {
        "paper"
    } else {
        "small"
    };
    if let (Some(path), Some(base)) = (&check, &baseline) {
        if (base.scale.as_str(), base.fabric.as_str()) != (scale_name, fabric.to_string().as_str())
        {
            return Err(format!(
                "baseline {path} is scale={} fabric={}, this run is scale={scale_name} fabric={fabric} — not comparable",
                base.scale, base.fabric
            ));
        }
        if base.engine != engine.to_string() {
            return Err(format!(
                "baseline {path} was measured on the {} engine, this run on {engine} — wall times are not comparable",
                base.engine
            ));
        }
    }

    let threads = sweep_threads();

    let mut serial_wall: Option<f64> = None;
    let (points, infeasible, wall_ms, mode, used_threads) = if serial_only {
        let (p, inf, w) = sweep(scale, 1, search, fabric, &faults, engine, lanes)?;
        (p, inf, w, "serial", 1)
    } else {
        if compare {
            let (_, _, w) = sweep(scale, 1, search, fabric, &faults, engine, lanes)?;
            serial_wall = Some(w);
        }
        let (p, inf, w) = sweep(scale, threads, search, fabric, &faults, engine, lanes)?;
        (p, inf, w, "parallel", threads)
    };

    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"schema\": \"marionette.bench_sim/v1\",\n");
    j.push_str(&format!("  \"scale\": \"{scale_name}\",\n"));
    j.push_str(&format!("  \"seed\": {SEED},\n"));
    j.push_str(&format!("  \"fabric\": \"{fabric}\",\n"));
    j.push_str(&format!("  \"engine\": \"{engine}\",\n"));
    if lanes > 1 {
        j.push_str(&format!("  \"lanes\": {lanes},\n"));
    }
    if !faults.is_empty() {
        j.push_str(&format!(
            "  \"faults\": [{}],\n",
            faults
                .specs()
                .iter()
                .map(|s| format!("\"{}\"", json_escape(&s.to_string())))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        j.push_str(&format!("  \"remap_infeasible\": {infeasible},\n"));
    }
    j.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    j.push_str(&format!("  \"threads\": {used_threads},\n"));
    j.push_str(&format!("  \"total_wall_ms\": {wall_ms:.3},\n"));
    if let Some(sw) = serial_wall {
        j.push_str(&format!("  \"serial_wall_ms\": {sw:.3},\n"));
        j.push_str(&format!("  \"parallel_speedup\": {:.3},\n", sw / wall_ms));
    }
    let speedups: Vec<f64> = points
        .iter()
        .filter_map(|m| m.cycles_search.map(|cs| m.cycles as f64 / cs as f64))
        .collect();
    let search_geomean = marionette::experiments::geomean(&speedups);
    if search {
        let improved = speedups.iter().filter(|&&s| s > 1.0).count();
        let regressed = speedups.iter().filter(|&&s| s < 1.0).count();
        let greedy_wall: f64 = points.iter().map(|m| m.wall_ms).sum();
        if let SearchBudget::Anneal {
            moves, restarts, ..
        } = SearchBudget::default_on()
        {
            j.push_str(&format!(
                "  \"search\": {{\"moves\": {moves}, \"restarts\": {restarts}, \"geomean_speedup\": {search_geomean:.4}, \"improved\": {improved}, \"regressed\": {regressed}}},\n"
            ));
        }
        // Per-point wall_ms times the greedy run only; this sum is the
        // comparable simulator-throughput number across snapshots.
        j.push_str(&format!("  \"greedy_wall_ms\": {greedy_wall:.3},\n"));
    }
    j.push_str("  \"points\": [\n");
    for (i, m) in points.iter().enumerate() {
        let search_field = match m.cycles_search {
            Some(cs) => format!(", \"cycles_search\": {cs}"),
            None => String::new(),
        };
        let remap_field = if faults.is_empty() {
            String::new()
        } else {
            format!(", \"remapped\": {}", m.remapped)
        };
        j.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"arch\": \"{}\", \"cycles\": {}, \"fires\": {}{}{}, \"wall_ms\": {:.3}}}{}\n",
            json_escape(&m.kernel),
            json_escape(&m.arch),
            m.cycles,
            m.fires,
            search_field,
            remap_field,
            m.wall_ms,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    j.push_str("  ]\n}\n");
    std::fs::write(&out_path, &j).map_err(|e| format!("writing {out_path}: {e}"))?;

    let total_cycles: u64 = points.iter().map(|m| m.cycles).sum();
    println!(
        "bench_sim: {} points, {total_cycles} total cycles, {wall_ms:.1} ms wall ({mode}, {used_threads} threads) -> {out_path}",
        points.len()
    );
    if !faults.is_empty() {
        println!(
            "bench_sim: injected {faults}; {} of {} points healed by remap, {infeasible} remap-infeasible (skipped)",
            points.iter().filter(|m| m.remapped).count(),
            points.len()
        );
    }
    if search {
        println!(
            "bench_sim: mapping search geomean cycle speedup {search_geomean:.4} over the greedy baseline"
        );
    }
    if let Some(sw) = serial_wall {
        println!(
            "bench_sim: serial {sw:.1} ms vs parallel {wall_ms:.1} ms = {:.2}x speedup",
            sw / wall_ms
        );
    }

    if let Some(base_path) = &check {
        let fresh: Vec<snapshot::BenchPoint> = points
            .iter()
            .map(|m| snapshot::BenchPoint {
                kernel: m.kernel.clone(),
                arch: m.arch.clone(),
                cycles: m.cycles,
                wall_ms: m.wall_ms,
            })
            .collect();
        let fresh_wall: f64 = points.iter().map(|m| m.wall_ms).sum();
        run_gate(
            base_path,
            baseline.as_ref().expect("loaded above"),
            &fresh,
            fresh_wall,
            scale_name,
            &fabric.to_string(),
            &engine.to_string(),
            wall_tolerance,
        )?;
    }
    Ok(())
}
