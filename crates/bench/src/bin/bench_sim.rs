//! Simulator performance trajectory harness.
//!
//! Runs the full evaluation sweep (every kernel, every architecture
//! preset: the 13-kernel suite + the composite LDPC app, across the
//! vN/DF ladder and the SOTA models) and writes `BENCH_sim.json` with
//! per-point cycle counts and wall-clock times, so successive PRs can
//! track simulator speedups and catch cycle-count regressions.
//!
//! Flags:
//! - `--paper`    use the paper's Table 5 data sizes (default: Small);
//! - `--serial`   run the sweep single-threaded only;
//! - `--compare`  run the sweep twice (serial then parallel) and record
//!   the wall-clock speedup;
//! - `--out PATH` output path (default `BENCH_sim.json`).

use marionette::kernels::traits::Scale;
use marionette::parallel::{par_map, sweep_threads};
use marionette::runner::{run_kernel, DEFAULT_MAX_CYCLES};
use std::time::Instant;

const SEED: u64 = 1;

struct Point {
    kernel: String,
    arch: marionette::arch::Architecture,
}

struct Measured {
    kernel: String,
    arch: String,
    cycles: u64,
    fires: u64,
    wall_ms: f64,
}

fn points() -> Vec<Point> {
    let mut archs = vec![
        marionette::arch::von_neumann_pe(),
        marionette::arch::dataflow_pe(),
        marionette::arch::marionette_pe(),
        marionette::arch::marionette_cn(),
        marionette::arch::marionette_full(),
    ];
    archs.extend(marionette::arch::all_sota());
    let mut tags: Vec<String> = marionette::kernels::all()
        .iter()
        .map(|k| k.short().to_string())
        .collect();
    tags.push("LDPC-APP".to_string());
    tags.iter()
        .flat_map(|kernel| {
            archs.iter().map(move |a| Point {
                kernel: kernel.clone(),
                arch: a.clone(),
            })
        })
        .collect()
}

fn sweep(scale: Scale, threads: usize) -> (Vec<Measured>, f64) {
    let pts = points();
    let t0 = Instant::now();
    let results = par_map(pts, threads, |p| {
        let k = marionette::kernels::by_short(&p.kernel).expect("kernel tag");
        let t = Instant::now();
        let r = run_kernel(k.as_ref(), &p.arch, scale, SEED, DEFAULT_MAX_CYCLES)
            .unwrap_or_else(|e| panic!("{} on {}: {e}", p.kernel, p.arch.short));
        Measured {
            kernel: p.kernel.clone(),
            arch: p.arch.short.to_string(),
            cycles: r.cycles,
            fires: r.stats.fires,
            wall_ms: t.elapsed().as_secs_f64() * 1e3,
        }
    });
    (results, t0.elapsed().as_secs_f64() * 1e3)
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = if args.iter().any(|a| a == "--paper") {
        Scale::Paper
    } else {
        Scale::Small
    };
    let serial_only = args.iter().any(|a| a == "--serial");
    let compare = args.iter().any(|a| a == "--compare");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_sim.json".to_string());
    let threads = sweep_threads();

    let mut serial_wall: Option<f64> = None;
    let (points, wall_ms, mode, used_threads) = if serial_only {
        let (p, w) = sweep(scale, 1);
        (p, w, "serial", 1)
    } else {
        if compare {
            let (_, w) = sweep(scale, 1);
            serial_wall = Some(w);
        }
        let (p, w) = sweep(scale, threads);
        (p, w, "parallel", threads)
    };

    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"schema\": \"marionette.bench_sim/v1\",\n");
    j.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        if matches!(scale, Scale::Paper) {
            "paper"
        } else {
            "small"
        }
    ));
    j.push_str(&format!("  \"seed\": {SEED},\n"));
    j.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    j.push_str(&format!("  \"threads\": {used_threads},\n"));
    j.push_str(&format!("  \"total_wall_ms\": {wall_ms:.3},\n"));
    if let Some(sw) = serial_wall {
        j.push_str(&format!("  \"serial_wall_ms\": {sw:.3},\n"));
        j.push_str(&format!("  \"parallel_speedup\": {:.3},\n", sw / wall_ms));
    }
    j.push_str("  \"points\": [\n");
    for (i, m) in points.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"arch\": \"{}\", \"cycles\": {}, \"fires\": {}, \"wall_ms\": {:.3}}}{}\n",
            json_escape(&m.kernel),
            json_escape(&m.arch),
            m.cycles,
            m.fires,
            m.wall_ms,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    j.push_str("  ]\n}\n");
    std::fs::write(&out_path, &j).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));

    let total_cycles: u64 = points.iter().map(|m| m.cycles).sum();
    println!(
        "bench_sim: {} points, {total_cycles} total cycles, {wall_ms:.1} ms wall ({mode}, {used_threads} threads) -> {out_path}",
        points.len()
    );
    if let Some(sw) = serial_wall {
        println!(
            "bench_sim: serial {sw:.1} ms vs parallel {wall_ms:.1} ms = {:.2}x speedup",
            sw / wall_ms
        );
    }
}
