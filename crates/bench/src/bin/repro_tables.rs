//! Tables 1-6: control-flow characterization, taxonomy, capabilities,
//! area/power breakdown, data sizes and network-area comparison.

use marionette_bench::report;

fn main() {
    report::print_tables();
}
