//! Tables 1-6: control-flow characterization, taxonomy, capabilities,
//! area/power breakdown, data sizes and network-area comparison.

use marionette::arch::taxonomy::{capability_matrix, sa_taxonomy};
use marionette::cdfg::analysis::profile;
use marionette::hw::breakdown::{area_power_breakdown, FabricParams};
use marionette::hw::netcmp::network_comparison;
use marionette::kernels::traits::Scale;

fn main() {
    println!("=== Table 1: control flow forms across the benchmarks ===");
    println!("{:<18} {:<22} {:<28} {:<28}", "workload", "domain", "branches", "loops");
    for k in marionette::kernels::all() {
        let wl = k.workload(Scale::Tiny, 0);
        let p = profile(&k.build(&wl));
        println!(
            "{:<18} {:<22} {:<28} {:<28}",
            k.name(),
            k.domain(),
            p.branch_text(),
            p.loop_text()
        );
    }

    println!("\n=== Table 2: SA taxonomy by PE execution model ===");
    for r in sa_taxonomy() {
        println!("{:<12} {:<12} {}", r.architecture, r.class, r.mechanism);
    }

    println!("\n=== Table 3: control-flow capability matrix ===");
    println!("{:<12} {:>11} {:>13} {:>22}", "architecture", "autonomous", "peer-to-peer", "temporally decoupled");
    for (name, c) in capability_matrix() {
        let t = |b: bool| if b { "yes" } else { "no" };
        println!(
            "{name:<12} {:>11} {:>13} {:>22}",
            t(c.autonomous),
            t(c.peer_to_peer),
            t(c.temporally_decoupled)
        );
    }

    println!("\n=== Table 4: area & power breakdown (28nm, 500MHz, 4x4) ===");
    println!("{:<10} {:<42} {:>10} {:>10}", "category", "component", "area mm2", "power mW");
    for r in area_power_breakdown(FabricParams::paper()) {
        println!(
            "{:<10} {:<42} {:>10.4} {:>10.2}",
            r.category, r.component, r.area_mm2, r.power_mw
        );
    }
    println!("(paper totals: 0.151 mm2, 152.09 mW)");

    println!("\n=== Table 5: benchmark data sizes (Paper scale) ===");
    for k in marionette::kernels::all() {
        let wl = k.workload(Scale::Paper, 0);
        let sizes: Vec<String> = wl.sizes.iter().map(|(n, v)| format!("{n}={v}")).collect();
        println!("{:<18} {}", k.name(), sizes.join(", "));
    }

    println!("\n=== Table 6: network area vs state of the art (normalized) ===");
    println!(
        "{:<12} {:>9} {:>12} {:>9} {:>12} {:>9}",
        "arch", "PE mm2", "network mm2", "fabric", "net ratio", "source"
    );
    for r in network_comparison() {
        println!(
            "{:<12} {:>9.4} {:>12.4} {:>9.4} {:>11.1}% {:>9}",
            r.architecture,
            r.pe_area_mm2,
            r.network_area_mm2,
            r.fabric_area(),
            100.0 * r.network_ratio(),
            if r.computed { "computed" } else { "paper" }
        );
    }
    println!("(paper: Marionette network ratio 11.5%)");
}
