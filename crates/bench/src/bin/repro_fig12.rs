//! Fig 12: the dedicated peer-to-peer control network's contribution.

use marionette::experiments::fig12;
use marionette_bench::{report, scale_from_args};

fn main() {
    let f = fig12(scale_from_args(), 1).expect("experiment");
    report::print_fig12(&f);
}
