//! Fig 12: the dedicated peer-to-peer control network's contribution.

use marionette::experiments::{fig12, geomean};
use marionette_bench::{banner, header, row, scale_from_args};

fn main() {
    banner("Fig 12 — control network speedup", "MICRO'23 Fig 12");
    let f = fig12(scale_from_args(), 1).expect("experiment");
    println!("{}", header("kernel", &f.cycles.kernels));
    for (a, cyc) in &f.cycles.series {
        println!("{}", row(&format!("cycles {a}"), &cyc.iter().map(|&c| c as f64).collect::<Vec<_>>()));
    }
    println!("{}", row("speedup from ctrl net", &f.speedup));
    println!("----------------------------------------------------------------");
    println!(
        "geomean speedup: {:.2}x   (paper: 1.14x, up to 1.36x on CRC)",
        geomean(&f.speedup)
    );
}
