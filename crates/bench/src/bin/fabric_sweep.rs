//! Fabric-scaling experiment: how the control-plane gap grows with the
//! array.
//!
//! The paper models a centralized configuration change as a CCU round
//! trip of "~corner distance" of the mesh — a cost that *grows* with the
//! fabric, while Marionette's proactive switch stays one cycle. This
//! sweep runs every kernel on the same presets instantiated at several
//! fabric sizes (default 4×4, 6×6 and 8×8 — scales the paper didn't
//! plot) and reports, per fabric, the geomean cycle gap of each preset
//! against full Marionette. Every point is driven through the complete
//! compile → bitstream → simulate stack and bit-verified against the
//! reference interpreter (arrays, sink streams, out-of-bounds counts and
//! firing totals).
//!
//! ```text
//! fabric_sweep [--fabrics 4x4,6x6,8x8] [--presets vN,DF,M-PE,M-CN,M]
//!              [--kernels A,B] [--scale tiny|small|paper]
//!              [--search MOVES[,RESTARTS]] [--max-cycles N]
//!              [--partition RxC@r,c]... [--tenants A,B,...]
//!              [--tenancy-fabric RxC] [--out BENCH_fabric.json]
//! ```
//!
//! With `--search`, each point is additionally compiled with the
//! annealing mapping explorer and re-verified (`cycles_search`).
//!
//! With `--partition` (repeatable, one per tenant) and `--tenants`
//! (kernel tags, one per partition) the sweep additionally runs the
//! **tenancy experiment**: for every preset, each tenant kernel runs
//! solo on a fabric of its partition's size, then all tenants co-run on
//! the sharded host fabric (default: the tightest fabric covering the
//! partitions; override with `--tenancy-fabric`), and the same kernels
//! run serially on the monolithic host fabric. Each co-resident tenant
//! is asserted bit-identical to its solo run (cycles and fires), and
//! the report compares sharded makespan against the monolith's serial
//! total — does a 2x2-of-8x8 sharded mesh beat one 16x16 monolith?
//!
//! Exit codes: `0` every point verified, `1` any pipeline or
//! verification failure (including a tenant diverging from its solo
//! run), `2` usage errors.

use marionette::arch::{preset_for_partition, Architecture, FabricDims};
use marionette::compiler::{Partition, PartitionMap, SearchBudget};
use marionette::experiments::geomean;
use marionette::kernels::traits::Scale;
use marionette::parallel::{par_map, sweep_threads};
use marionette::report::json_escape;
use marionette_lang::driver::{reference, run_preset, Reference, INTERP_BUDGET};
use marionette_lang::tenancy::{run_tenancy, TenantJob};
use std::time::Instant;

const SEED: u64 = 1;
const DEFAULT_MAX_CYCLES: u64 = 4_000_000_000;

struct Args {
    fabrics: Vec<FabricDims>,
    presets: String,
    kernels: Option<String>,
    scale: Scale,
    search: Option<(u32, u32)>,
    max_cycles: u64,
    partitions: Vec<Partition>,
    tenants: Option<String>,
    tenancy_fabric: Option<FabricDims>,
    out: String,
}

fn usage() -> String {
    "usage: fabric_sweep [--fabrics 4x4,6x6,8x8] [--presets vN,DF,M-PE,M-CN,M] \
     [--kernels A,B] [--scale tiny|small|paper] [--search MOVES[,RESTARTS]] \
     [--max-cycles N] [--partition RxC@r,c]... [--tenants A,B,...] \
     [--tenancy-fabric RxC] [--out PATH]"
        .to_string()
}

const KNOWN_FLAGS: &[&str] = &[
    "--fabrics",
    "--presets",
    "--kernels",
    "--scale",
    "--search",
    "--max-cycles",
    "--partition",
    "--tenants",
    "--tenancy-fabric",
    "--out",
];

fn parse_args(argv: &[String]) -> Result<Args, String> {
    // Strict argv validation: every token must be a known flag or the
    // value of the preceding one (a typo'd `--fabric` must error, not
    // silently run the default 4x4,6x6,8x8 sweep).
    let mut i = 1;
    while i < argv.len() {
        if !KNOWN_FLAGS.contains(&argv[i].as_str()) {
            return Err(format!("unknown argument `{}`\n{}", argv[i], usage()));
        }
        i += 2; // the flag's value (validated by the per-flag parser)
    }
    let get = |flag: &str| -> Result<Option<String>, String> {
        match argv.iter().position(|a| a == flag) {
            None => Ok(None),
            Some(i) => match argv.get(i + 1) {
                Some(v) if !v.starts_with("--") => Ok(Some(v.clone())),
                _ => Err(format!("{flag} needs a value\n{}", usage())),
            },
        }
    };
    let fabrics = get("--fabrics")?
        .unwrap_or_else(|| "4x4,6x6,8x8".to_string())
        .split(',')
        .map(|s| s.trim().parse::<FabricDims>())
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| format!("--fabrics: {e}"))?;
    if fabrics.is_empty() {
        return Err("--fabrics needs at least one RxC entry".to_string());
    }
    let search = match get("--search")? {
        None => None,
        Some(spec) => {
            let mut it = spec.split(',').map(str::trim);
            let moves: u32 = it
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| format!("--search needs MOVES[,RESTARTS], got `{spec}`"))?;
            let restarts: u32 = match it.next() {
                None => 1,
                Some(v) => v
                    .parse()
                    .map_err(|_| format!("--search RESTARTS must be numeric, got `{v}`"))?,
            };
            Some((moves, restarts))
        }
    };
    // --partition is repeatable: one entry per tenant, in tenant order.
    let mut partitions = Vec::new();
    for (i, a) in argv.iter().enumerate() {
        if a == "--partition" {
            let v = argv
                .get(i + 1)
                .filter(|v| !v.starts_with("--"))
                .ok_or_else(|| format!("--partition needs a value\n{}", usage()))?;
            partitions.push(
                v.parse::<Partition>()
                    .map_err(|e| format!("--partition: {e}"))?,
            );
        }
    }
    let tenants = get("--tenants")?;
    match (&tenants, partitions.len()) {
        (None, 0) => {}
        (None, _) => return Err("--partition requires --tenants".to_string()),
        (Some(_), 0) => return Err("--tenants requires at least one --partition".to_string()),
        (Some(t), n) => {
            let count = t.split(',').filter(|s| !s.trim().is_empty()).count();
            if count != n {
                return Err(format!(
                    "--tenants lists {count} kernels but {n} --partition flags were given"
                ));
            }
        }
    }
    let tenancy_fabric = get("--tenancy-fabric")?
        .map(|v| {
            v.parse::<FabricDims>()
                .map_err(|e| format!("--tenancy-fabric: {e}"))
        })
        .transpose()?;
    Ok(Args {
        fabrics,
        presets: get("--presets")?.unwrap_or_else(|| "vN,DF,M-PE,M-CN,M".to_string()),
        kernels: get("--kernels")?,
        scale: match get("--scale")?.as_deref() {
            None | Some("small") => Scale::Small,
            Some("tiny") => Scale::Tiny,
            Some("paper") => Scale::Paper,
            Some(other) => {
                return Err(format!(
                    "--scale: `{other}` is not one of tiny, small, paper"
                ))
            }
        },
        search,
        max_cycles: match get("--max-cycles")? {
            None => DEFAULT_MAX_CYCLES,
            Some(v) => v
                .parse()
                .map_err(|_| format!("--max-cycles must be numeric, got `{v}`"))?,
        },
        partitions,
        tenants,
        tenancy_fabric,
        out: get("--out")?.unwrap_or_else(|| "BENCH_fabric.json".to_string()),
    })
}

/// Kernel tags, filtered by `--kernels`.
fn kernel_tags(filter: Option<&str>) -> Result<Vec<String>, String> {
    let mut tags: Vec<String> = marionette::kernels::all()
        .iter()
        .map(|k| k.short().to_string())
        .collect();
    tags.push("LDPC-APP".to_string());
    if let Some(filter) = filter {
        let want: Vec<String> = filter
            .split(',')
            .map(|s| s.trim().to_uppercase())
            .filter(|s| !s.is_empty())
            .collect();
        tags.retain(|t| want.iter().any(|w| w == &t.to_uppercase()));
        if tags.is_empty() {
            return Err(format!("no kernels match --kernels {filter}"));
        }
    }
    Ok(tags)
}

struct Measured {
    kernel: String,
    fabric: FabricDims,
    arch: String,
    cycles: u64,
    fires: u64,
    switch_stalls: u64,
    cycles_search: Option<u64>,
}

struct TenantMeasure {
    kernel: String,
    partition: String,
    cycles: u64,
    fires: u64,
}

struct TenancyPreset {
    preset: String,
    makespan_cycles: u64,
    monolith_serial_cycles: u64,
    tenants: Vec<TenantMeasure>,
}

/// The sharded-vs-monolith tenancy experiment (see module docs): per
/// preset, runs every tenant solo on a partition-sized fabric, co-runs
/// them on the sharded host fabric asserting each tenant bit-matches
/// its solo run, and runs the same kernels serially on the monolithic
/// host fabric for the makespan comparison.
fn tenancy_experiment(
    args: &Args,
    threads: usize,
) -> Result<Option<(FabricDims, Vec<TenancyPreset>)>, String> {
    let Some(tenant_spec) = &args.tenants else {
        return Ok(None);
    };
    // Canonicalize tenant tags case-insensitively, like --kernels.
    let canonical = kernel_tags(None)?;
    let mut tags = Vec::new();
    for t in tenant_spec
        .split(',')
        .map(str::trim)
        .filter(|t| !t.is_empty())
    {
        let tag = canonical
            .iter()
            .find(|c| c.eq_ignore_ascii_case(t))
            .ok_or_else(|| format!("--tenants: unknown kernel tag {t}"))?;
        tags.push(tag.clone());
    }
    let map = match args.tenancy_fabric {
        Some(dims) => PartitionMap::new(dims, args.partitions.clone()),
        None => PartitionMap::covering(args.partitions.clone()),
    }
    .map_err(|e| format!("tenancy partitions: {e}"))?;
    let host = map.fabric();

    // Build each tenant's CDFG and reference once (slot order).
    let builds = par_map(tags.clone(), threads, |tag| {
        let k = marionette::kernels::by_short(&tag)
            .ok_or_else(|| format!("{tag}: unknown kernel tag"))?;
        let wl = k.workload(args.scale, SEED);
        let g = k.build(&wl).map_err(|e| format!("{tag}: build: {e}"))?;
        let r = reference(&g, &[], INTERP_BUDGET).map_err(|e| format!("{tag}: reference: {e}"))?;
        Ok::<_, String>((g, r))
    });
    let mut kernels = Vec::with_capacity(builds.len());
    for b in builds {
        kernels.push(b?);
    }

    let preset_tags: Vec<String> = args
        .presets
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    let apply_search = |a: &mut Architecture| {
        a.opts.search = match args.search {
            None => SearchBudget::Off,
            Some((moves, restarts)) => SearchBudget::Anneal {
                moves,
                restarts,
                base_seed: 0xA11E,
            },
        };
    };
    let kernels_ref = &kernels;
    let tags_ref = &tags;
    let map_ref = &map;
    let outcomes = par_map(
        preset_tags,
        threads,
        |ptag| -> Result<TenancyPreset, String> {
            // Solo baselines: each tenant alone on a partition-sized fabric.
            let mut archs = Vec::new();
            let mut solos = Vec::new();
            for (i, part) in map_ref.parts().iter().enumerate() {
                let mut arch = preset_for_partition(part, &ptag)?;
                apply_search(&mut arch);
                let (g, r) = &kernels_ref[i];
                let solo = run_preset(g, r, &arch, &[], args.max_cycles, false).map_err(|e| {
                    format!(
                        "{} solo on {} at {}: {e}",
                        tags_ref[i],
                        arch.short,
                        part.dims()
                    )
                })?;
                archs.push(arch);
                solos.push(solo);
            }
            // Co-resident run on the sharded host fabric.
            let jobs: Vec<TenantJob<'_>> = map_ref
                .parts()
                .iter()
                .enumerate()
                .map(|(i, part)| TenantJob {
                    name: tags_ref[i].clone(),
                    g: &kernels_ref[i].0,
                    reference: &kernels_ref[i].1,
                    arch: &archs[i],
                    partition: *part,
                    overrides: Vec::new(),
                    max_cycles: args.max_cycles,
                })
                .collect();
            let report = run_tenancy(host.rows as u8, host.cols as u8, &jobs, Default::default())
                .map_err(|e| format!("tenancy on {ptag} at {host}: {e}"))?;
            // Every tenant must complete AND bit-match its solo run.
            let mut tenants = Vec::new();
            for (i, t) in report.tenants.iter().enumerate() {
                let run = t.outcome.run().ok_or_else(|| {
                    format!(
                        "tenancy on {ptag}: tenant {} wedged: {:?}",
                        t.name, t.outcome
                    )
                })?;
                if (run.cycles, run.fires) != (solos[i].cycles, solos[i].fires) {
                    return Err(format!(
                        "tenancy on {ptag}: tenant {} diverges from its solo run \
                     (co-resident {} cycles / {} fires, solo {} / {})",
                        t.name, run.cycles, run.fires, solos[i].cycles, solos[i].fires
                    ));
                }
                tenants.push(TenantMeasure {
                    kernel: t.name.clone(),
                    partition: t.partition.clone(),
                    cycles: run.cycles,
                    fires: run.fires,
                });
            }
            // Monolith: the same kernels serially on the full host fabric.
            let mut mono = marionette::arch::presets_by_tags_on(host, &ptag)?
                .pop()
                .ok_or_else(|| format!("empty preset {ptag}"))?;
            apply_search(&mut mono);
            let mut monolith_serial_cycles = 0u64;
            for (i, (g, r)) in kernels_ref.iter().enumerate() {
                let m = run_preset(g, r, &mono, &[], args.max_cycles, false).map_err(|e| {
                    format!("{} monolith on {} at {host}: {e}", tags_ref[i], mono.short)
                })?;
                monolith_serial_cycles += m.cycles;
            }
            Ok(TenancyPreset {
                preset: ptag,
                makespan_cycles: report.makespan_cycles,
                monolith_serial_cycles,
                tenants,
            })
        },
    );
    let mut per_preset = Vec::with_capacity(outcomes.len());
    for o in outcomes {
        per_preset.push(o?);
    }
    Ok(Some((host, per_preset)))
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fabric_sweep: {e}");
            std::process::exit(2);
        }
    };
    // Selection problems (unknown kernel/preset tags) are usage errors.
    let selection = (|| -> Result<_, String> {
        let tags = kernel_tags(args.kernels.as_deref())?;
        let mut grids: Vec<(FabricDims, Vec<Architecture>)> = Vec::new();
        for &dims in &args.fabrics {
            let mut archs = marionette::arch::presets_by_tags_on(dims, &args.presets)?;
            if archs.is_empty() {
                return Err("empty preset selection".to_string());
            }
            for a in &mut archs {
                a.opts.search = SearchBudget::Off;
            }
            grids.push((dims, archs));
        }
        Ok((tags, grids))
    })();
    let (tags, grids) = match selection {
        Ok(s) => s,
        Err(e) => {
            eprintln!("fabric_sweep: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = run(&args, tags, grids) {
        eprintln!("fabric_sweep: {e}");
        std::process::exit(1);
    }
}

fn run(
    args: &Args,
    tags: Vec<String>,
    grids: Vec<(FabricDims, Vec<Architecture>)>,
) -> Result<(), String> {
    let t0 = Instant::now();
    let threads = sweep_threads();

    // The CDFG and its reference interpretation are fabric-independent:
    // build and interpret each kernel once, then fan the fabric × preset
    // simulations out over threads.
    let refs: Vec<Result<(String, marionette::cdfg::Cdfg, Reference), String>> =
        par_map(tags.clone(), threads, |tag| {
            let k = marionette::kernels::by_short(&tag)
                .ok_or_else(|| format!("{tag}: unknown kernel tag"))?;
            let wl = k.workload(args.scale, SEED);
            let g = k.build(&wl).map_err(|e| format!("{tag}: build: {e}"))?;
            let r =
                reference(&g, &[], INTERP_BUDGET).map_err(|e| format!("{tag}: reference: {e}"))?;
            Ok((tag, g, r))
        });
    let mut kernels = Vec::with_capacity(refs.len());
    for r in refs {
        kernels.push(r?);
    }

    let points: Vec<(usize, FabricDims, Architecture)> = (0..kernels.len())
        .flat_map(|ki| {
            grids
                .iter()
                .flat_map(move |(dims, archs)| archs.iter().map(move |a| (ki, *dims, a.clone())))
        })
        .collect();
    let npoints = points.len();
    let kernels_ref = &kernels;
    let outcomes = par_map(
        points,
        threads,
        |(ki, dims, arch)| -> Result<Measured, String> {
            let (tag, g, reference) = &kernels_ref[ki];
            let what = || format!("{tag} on {} at {dims}", arch.short);
            let run = run_preset(g, reference, &arch, &[], args.max_cycles, false)
                .map_err(|e| format!("{}: {e}", what()))?;
            let cycles_search = match args.search {
                None => None,
                Some((moves, restarts)) => {
                    let mut searched = arch.clone();
                    searched.opts.search = SearchBudget::Anneal {
                        moves,
                        restarts,
                        base_seed: 0xA11E,
                    };
                    let rs = run_preset(g, reference, &searched, &[], args.max_cycles, false)
                        .map_err(|e| format!("{} (search): {e}", what()))?;
                    Some(rs.cycles)
                }
            };
            Ok(Measured {
                kernel: tag.clone(),
                fabric: dims,
                arch: arch.short.to_string(),
                cycles: run.cycles,
                fires: run.fires,
                switch_stalls: run.switch_stall_cycles,
                cycles_search,
            })
        },
    );
    let mut measured = Vec::with_capacity(outcomes.len());
    for o in outcomes {
        measured.push(o?);
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Control-plane gap: per fabric, the geomean over kernels of each
    // preset's cycles relative to full Marionette on the same fabric.
    let preset_order: Vec<String> = grids[0].1.iter().map(|a| a.short.to_string()).collect();
    let has_m = preset_order.iter().any(|p| p == "M");
    let mut gap: Vec<(FabricDims, Vec<(String, f64)>)> = Vec::new();
    if has_m {
        for &(dims, _) in &grids {
            let cycles_of = |kernel: &str, arch: &str| -> Option<u64> {
                measured
                    .iter()
                    .find(|m| m.fabric == dims && m.kernel == *kernel && m.arch == arch)
                    .map(|m| m.cycles)
            };
            let mut per_preset = Vec::new();
            for p in &preset_order {
                if p == "M" {
                    continue;
                }
                let ratios: Vec<f64> = kernels
                    .iter()
                    .filter_map(|(tag, _, _)| {
                        Some(cycles_of(tag, p)? as f64 / cycles_of(tag, "M")? as f64)
                    })
                    .collect();
                per_preset.push((p.clone(), geomean(&ratios)));
            }
            gap.push((dims, per_preset));
        }
    }

    let tenancy = tenancy_experiment(args, threads)?;

    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"schema\": \"marionette.fabric_sweep/v1\",\n");
    j.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        match args.scale {
            Scale::Tiny => "tiny",
            Scale::Paper => "paper",
            _ => "small",
        }
    ));
    j.push_str(&format!("  \"seed\": {SEED},\n"));
    j.push_str(&format!(
        "  \"fabrics\": [{}],\n",
        args.fabrics
            .iter()
            .map(|d| format!("\"{d}\""))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    j.push_str(&format!(
        "  \"presets\": [{}],\n",
        preset_order
            .iter()
            .map(|p| format!("\"{p}\""))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    match args.search {
        Some((m, r)) => j.push_str(&format!(
            "  \"search\": {{\"moves\": {m}, \"restarts\": {r}}},\n"
        )),
        None => j.push_str("  \"search\": null,\n"),
    }
    j.push_str(&format!("  \"total_wall_ms\": {wall_ms:.3},\n"));
    j.push_str("  \"gap_vs_marionette\": [\n");
    for (i, (dims, per_preset)) in gap.iter().enumerate() {
        let cells: Vec<String> = per_preset
            .iter()
            .map(|(p, g)| format!("\"{}\": {g:.4}", json_escape(p)))
            .collect();
        j.push_str(&format!(
            "    {{\"fabric\": \"{dims}\", {}}}{}\n",
            cells.join(", "),
            if i + 1 == gap.len() { "" } else { "," }
        ));
    }
    j.push_str("  ],\n");
    match &tenancy {
        None => j.push_str("  \"tenancy\": null,\n"),
        Some((host, per_preset)) => {
            j.push_str("  \"tenancy\": {\n");
            j.push_str(&format!("    \"fabric\": \"{host}\",\n"));
            j.push_str(&format!(
                "    \"partitions\": [{}],\n",
                args.partitions
                    .iter()
                    .map(|p| format!("\"{p}\""))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
            j.push_str("    \"per_preset\": [\n");
            for (i, tp) in per_preset.iter().enumerate() {
                let speedup = tp.monolith_serial_cycles as f64 / tp.makespan_cycles as f64;
                let tenants: Vec<String> = tp
                    .tenants
                    .iter()
                    .map(|t| {
                        format!(
                            "{{\"kernel\": \"{}\", \"partition\": \"{}\", \"cycles\": {}, \"fires\": {}, \"solo_identical\": true}}",
                            json_escape(&t.kernel),
                            json_escape(&t.partition),
                            t.cycles,
                            t.fires
                        )
                    })
                    .collect();
                j.push_str(&format!(
                    "      {{\"preset\": \"{}\", \"makespan_cycles\": {}, \"monolith_serial_cycles\": {}, \"sharded_speedup\": {speedup:.4}, \"tenants\": [{}]}}{}\n",
                    json_escape(&tp.preset),
                    tp.makespan_cycles,
                    tp.monolith_serial_cycles,
                    tenants.join(", "),
                    if i + 1 == per_preset.len() { "" } else { "," }
                ));
            }
            j.push_str("    ]\n  },\n");
        }
    }
    j.push_str("  \"points\": [\n");
    for (i, m) in measured.iter().enumerate() {
        let search_field = match m.cycles_search {
            Some(cs) => format!(", \"cycles_search\": {cs}"),
            None => String::new(),
        };
        j.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"fabric\": \"{}\", \"arch\": \"{}\", \"cycles\": {}, \"fires\": {}, \"switch_stall_cycles\": {}{}, \"verified\": true}}{}\n",
            json_escape(&m.kernel),
            m.fabric,
            json_escape(&m.arch),
            m.cycles,
            m.fires,
            m.switch_stalls,
            search_field,
            if i + 1 == measured.len() { "" } else { "," }
        ));
    }
    j.push_str("  ]\n}\n");
    std::fs::write(&args.out, &j).map_err(|e| format!("writing {}: {e}", args.out))?;

    println!(
        "fabric_sweep: {} kernels x {} fabrics x {} presets = {npoints} points, all bit-verified vs the interpreter, {wall_ms:.1} ms ({threads} threads) -> {}",
        kernels.len(),
        grids.len(),
        preset_order.len(),
        args.out
    );
    for (dims, per_preset) in &gap {
        let cells: Vec<String> = per_preset
            .iter()
            .map(|(p, g)| format!("{p} {g:.2}x"))
            .collect();
        println!(
            "fabric_sweep: {dims} geomean cycles vs Marionette: {}",
            cells.join(", ")
        );
    }
    if let Some((host, per_preset)) = &tenancy {
        for tp in per_preset {
            let speedup = tp.monolith_serial_cycles as f64 / tp.makespan_cycles as f64;
            println!(
                "fabric_sweep: tenancy {host} {}: sharded makespan {} vs monolith serial {} ({speedup:.2}x), {} tenants all bit-identical to solo",
                tp.preset,
                tp.makespan_cycles,
                tp.monolith_serial_cycles,
                tp.tenants.len()
            );
        }
    }
    Ok(())
}
